"""Repo-root pytest configuration shared by tests/ and benchmarks/.

The ``--update-golden`` flag lives here (not in ``tests/conftest.py``)
so one invocation can regenerate *every* golden regression fixture:
the NAVG+ baselines under ``tests/metrics/`` and the vector op-count
gate under ``benchmarks/`` — see docs/performance.md for the flow.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden regression fixtures (the NAVG+ baselines "
             "in tests/metrics/ and the vector operation-count gate in "
             "benchmarks/) from the current run instead of comparing "
             "against them",
    )


@pytest.fixture()
def update_golden(request) -> bool:
    """True when the run should rewrite golden fixtures, not check them."""
    return request.config.getoption("--update-golden")
