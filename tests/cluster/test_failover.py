"""The cluster's end-to-end proof: crashes change nothing but the RTO.

A seeded clustered run (3 hosts, 1 follower per database) absorbs two
primary-killing crashes and still converges to the byte-identical
outcome of the fault-free single-host run — same records, same NAVG+
table, same verification, same fingerprint.  RTO is strictly positive
(detection + election + promotion + redispatch all cost virtual time),
RPO is zero under sync shipping, and the whole story is deterministic
across invocations.
"""

import pytest

from repro.parallel.spec import RunSpec, run_spec
from repro.resilience import FaultEvent, FaultSpec
from repro.toolsuite.monitor import Monitor

SEED = 7

CRASHES = FaultSpec(
    name="double-crash",
    events=(
        FaultEvent(at=40.0, kind="crash", point="arrival"),
        FaultEvent(at=120.0, kind="crash", point="commit"),
    ),
)


def _baseline_spec():
    return RunSpec(
        engine="federated", datasize=0.05, time=1.0, periods=1, seed=SEED,
    )


def _clustered_spec(**overrides):
    fields = dict(
        engine="federated", datasize=0.05, time=1.0, periods=1, seed=SEED,
        faults=CRASHES, durability="snapshot+wal", checkpoint_every=200.0,
        cluster_hosts=3, cluster_replicas=1, repl_mode="sync",
    )
    fields.update(overrides)
    return RunSpec(**fields)


@pytest.fixture(scope="module")
def baseline():
    outcome = run_spec(_baseline_spec())
    assert outcome.ok, outcome.error
    return outcome


@pytest.fixture(scope="module")
def clustered():
    outcome = run_spec(_clustered_spec())
    assert outcome.ok, outcome.error
    return outcome


class TestByteIdentity:
    def test_crashed_cluster_converges_to_the_fault_free_run(
        self, baseline, clustered
    ):
        assert clustered.result.verification.ok, (
            clustered.result.verification.failures
        )
        assert [repr(r) for r in clustered.result.records] == [
            repr(r) for r in baseline.result.records
        ]
        assert (
            clustered.result.metrics.as_table()
            == baseline.result.metrics.as_table()
        )
        assert clustered.landscape_digest == baseline.landscape_digest
        assert clustered.fingerprint() == baseline.fingerprint()

    def test_two_crashes_actually_happened(self, clustered):
        reports = clustered.result.failover_reports
        assert len(reports) == 2
        # Two distinct hosts died (round-robin victim selection).
        assert len({r.dead_host for r in reports}) == 2
        for report in reports:
            assert report.promoted or report.rebuilt_from_log

    def test_rto_positive_rpo_zero_under_sync(self, clustered):
        for report in clustered.result.failover_reports:
            assert report.rto_eu is not None and report.rto_eu > 0
            assert report.detection_eu > 0
            assert report.rpo_records == 0
        stats = clustered.result.replication
        assert stats is not None
        assert stats.mode == "sync"
        assert stats.shipped_records > 0
        assert stats.divergent == 0

    def test_monitor_reports_the_failovers(self, clustered):
        monitor = Monitor.merged([clustered])
        summary = monitor.failover_summary()
        assert summary.failovers == 2
        assert summary.rpo_records == 0
        assert summary.mean_rto_tu > 0
        assert summary.max_rto_tu >= summary.mean_rto_tu
        assert "RTO" in summary.describe()


class TestDeterminism:
    def test_same_seed_same_failovers_same_fingerprint(self, clustered):
        again = run_spec(_clustered_spec())
        assert again.ok, again.error
        assert again.fingerprint() == clustered.fingerprint()
        first = [
            (r.dead_host, r.crash_at, r.detected_at, r.rpo_records, r.rto_eu)
            for r in clustered.result.failover_reports
        ]
        second = [
            (r.dead_host, r.crash_at, r.detected_at, r.rpo_records, r.rto_eu)
            for r in again.result.failover_reports
        ]
        assert first == second


class TestAsyncReplication:
    def test_async_mode_converges_with_bounded_rpo(self, baseline):
        outcome = run_spec(_clustered_spec(
            repl_mode="async", repl_lag=30.0, repl_batch=4,
        ))
        assert outcome.ok, outcome.error
        assert outcome.fingerprint() == baseline.fingerprint()
        assert outcome.result.verification.ok
        for report in outcome.result.failover_reports:
            # Unreplicated records at election are caught up from the
            # durable WAL: measured exposure, never lost work.
            assert report.rpo_records == report.catchup_records or (
                report.rpo_records <= report.catchup_records
            )
            assert report.rto_eu is not None and report.rto_eu > 0
        stats = outcome.result.replication
        assert stats.mode == "async"
