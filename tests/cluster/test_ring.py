"""Consistent-hash ring, shard map, and failover-protocol unit pieces."""

import pytest

from repro.cluster import (
    ClusterConfig,
    DatabaseReplica,
    HashRing,
    HeartbeatConfig,
    ShardMap,
    elect,
)
from repro.errors import ClusterError


class TestHashRing:
    def test_placement_is_a_pure_function_of_the_seed(self):
        keys = [f"db{n}" for n in range(20)]
        ring_a = HashRing(["H0", "H1", "H2"], seed=7)
        ring_b = HashRing(["H0", "H1", "H2"], seed=7)
        assert [ring_a.host_for(k) for k in keys] == [
            ring_b.host_for(k) for k in keys
        ]
        ring_c = HashRing(["H0", "H1", "H2"], seed=8)
        assert [ring_a.host_for(k) for k in keys] != [
            ring_c.host_for(k) for k in keys
        ]

    def test_every_host_gets_keys(self):
        ring = HashRing(["H0", "H1", "H2"], seed=42, vnodes=16)
        placed = {ring.host_for(f"key{n}") for n in range(200)}
        assert placed == {"H0", "H1", "H2"}

    def test_preference_lists_distinct_hosts(self):
        ring = HashRing(["H0", "H1", "H2", "H3"], seed=1)
        preference = ring.preference("some-db", 4)
        assert sorted(preference) == ["H0", "H1", "H2", "H3"]

    def test_dead_host_keys_move_only_to_successors(self):
        # The consistent-hashing failover property: when a host dies,
        # every one of its keys lands on the next live host in its own
        # preference walk — keys of surviving hosts do not move.
        ring = HashRing(["H0", "H1", "H2"], seed=7)
        keys = [f"key{n}" for n in range(60)]
        before = {k: ring.host_for(k) for k in keys}
        alive = ["H0", "H2"]
        for key in keys:
            after = ring.preference(key, 1, alive=alive)[0]
            if before[key] != "H1":
                assert after == before[key], f"{key} moved needlessly"
            else:
                walk = ring.preference(key, 3)
                survivors = [h for h in walk if h != "H1"]
                assert after == survivors[0]

    def test_no_live_host_rejected(self):
        ring = HashRing(["H0", "H1"], seed=3)
        with pytest.raises(ClusterError, match="no live host"):
            ring.preference("db", 1, alive=[])

    def test_duplicate_hosts_rejected(self):
        with pytest.raises(ClusterError, match="duplicate"):
            HashRing(["H0", "H0"], seed=1)


class TestShardMap:
    def test_large_tables_split_small_tables_do_not(self):
        from repro.db.database import Database
        from repro.db.schema import Column, TableSchema

        db = Database("d")
        for name, rows in (("small", 10), ("large", 250)):
            table = db.create_table(
                TableSchema(
                    name,
                    [Column("k", "BIGINT", nullable=False)],
                    primary_key=("k",),
                )
            )
            for k in range(rows):
                table.insert({"k": k})
        ring = HashRing(["H0", "H1", "H2"], seed=7)
        shard_map = ShardMap.build([db], ring)
        assert len(shard_map.shards[("d", "small")]) == 1
        assert len(shard_map.shards[("d", "large")]) == 4
        assert shard_map.shard_count() == 5
        assert sum(shard_map.balance().values()) == 5
        assert "d.large: 4 shards" in shard_map.describe()


class TestHeartbeat:
    def test_detection_is_deterministic_and_positive(self):
        config = HeartbeatConfig(interval=5.0, miss_threshold=2)
        # Crash at t=12: first missed beat t=15, declared dead at t=20.
        assert config.detection_delay(12.0) == pytest.approx(8.0)
        # Crash exactly on a beat: that beat was served; the next one
        # (t=15) is the first missed.
        assert config.detection_delay(10.0) == pytest.approx(10.0)
        for crash_at in (0.1, 4.9, 5.0, 99.3):
            assert config.detection_delay(crash_at) > 0


class TestElection:
    def test_max_lsn_wins_host_id_breaks_ties(self):
        ahead = DatabaseReplica("db", "H2")
        ahead.applied_lsn = 10
        behind = DatabaseReplica("db", "H1")
        behind.applied_lsn = 7
        assert elect([behind, ahead]) is ahead
        peer = DatabaseReplica("db", "H1")
        peer.applied_lsn = 10
        assert elect([ahead, peer]) is peer  # smaller host id


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ClusterError):
            ClusterConfig(hosts=1)
        with pytest.raises(ClusterError):
            ClusterConfig(hosts=3, replicas=3)
        with pytest.raises(ClusterError):
            ClusterConfig(mode="telepathy")
        config = ClusterConfig(hosts=4, replicas=2)
        assert config.host_names == ["H0", "H1", "H2", "H3"]
