"""Log-shipping properties, pinned at the storage layer.

The replication contract the cluster rests on, proven without an
engine: replaying any WAL prefix onto a replica seeded from the
period-begin checkpoint reproduces the primary's table digest at that
LSN — across seeds, replication modes and checkpoint cadences — and
the flush-before-truncate barrier is exactly what keeps a lagging
follower's prefix replayable.
"""

import random
from dataclasses import dataclass

import pytest

from repro.cluster import DatabaseReplica, LogShipper
from repro.db.database import Database
from repro.db.schema import Column, TableSchema
from repro.errors import WalError
from repro.services.network import Network
from repro.storage import StorageManager
from repro.storage.digest import database_digest

PRIMARY = "H0"
FOLLOWERS = ("H1", "H2")


@dataclass
class FakeRecord:
    completion: float


class FakeEngine:
    """Just enough engine surface for the StorageManager protocol."""

    def __init__(self, db):
        self.records = []
        self.storage = None
        self._db = db
        self._runtime = {"worker_free": [0.0], "in_system": [],
                         "next_instance_id": 1}

    def durable_databases(self):
        return [self._db]

    def runtime_state(self):
        return dict(self._runtime)

    def restore_runtime_state(self, state):
        self._runtime = dict(state)


class ShipperHook:
    """The StorageManager-side replication hook, minus the cluster.

    Mirrors what ClusterManager does: ship on every group commit, and
    drain every follower before any WAL truncation (the replication
    barrier).  ``barrier=False`` deliberately breaks the contract so a
    test can show why it exists.
    """

    def __init__(self, shipper, barrier=True):
        self.shipper = shipper
        self.barrier = barrier

    def _home_of(self, db_name):
        return PRIMARY

    def on_commit(self, commit_id, at):
        self.shipper.on_commit(commit_id, at, self._home_of)

    def before_truncate(self):
        if self.barrier:
            self.shipper.flush_all(self._home_of)


def make_db(name="shard"):
    db = Database(name)
    db.create_table(
        TableSchema(
            "t",
            [Column("k", "BIGINT", nullable=False), Column("v", "VARCHAR")],
            primary_key=("k",),
        )
    )
    return db


def make_network():
    net = Network(seed=0)
    for host in (PRIMARY, *FOLLOWERS):
        net.add_host(host)
    return net


def seeded_workload(db, storage, engine, seed, commits=12, ops_per_commit=4):
    """Apply a deterministic random op stream; yield after each commit.

    Yields ``(last_lsn, primary_table_digest)`` at every group-commit
    boundary — the ground truth every replica property compares against.
    """
    rng = random.Random(seed)
    next_key = 1000
    at = 0.0
    for _ in range(commits):
        table = db.table("t")
        for _ in range(ops_per_commit):
            keys = [row["k"] for row in table.scan()]
            choice = rng.random()
            if choice < 0.5 or not keys:
                table.insert({"k": next_key, "v": f"v{next_key}"})
                next_key += 1
            elif choice < 0.8:
                victim = rng.choice(keys)
                table.update({"v": f"u{victim}"},
                             lambda row, k=victim: row["k"] == k)
            else:
                victim = rng.choice(keys)
                table.delete(lambda row, k=victim: row["k"] == k)
        at += rng.uniform(5.0, 15.0)
        storage.commit_instance(engine, FakeRecord(completion=at))
        yield (storage.wals[db.name].last_lsn,
               database_digest(db, include_views=False))


def _rig(mode="wal", checkpoint_every=None, seed_rows=5):
    storage = StorageManager(mode=mode, checkpoint_every=checkpoint_every)
    db = make_db()
    engine = FakeEngine(db)
    storage.attach_engine(engine)
    for k in range(seed_rows):
        db.insert("t", {"k": k, "v": f"seed{k}"})
    storage.begin_period(0, engine)
    return storage, db, engine


class TestPrefixReplay:
    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_any_wal_prefix_replays_to_the_primary_digest(self, seed):
        # Pure-WAL mode: nothing truncates, so every prefix of the
        # period's redo log is still addressable afterwards.
        storage, db, engine = _rig(mode="wal")
        baseline = storage.checkpoint_state.databases[db.name]
        boundaries = list(
            seeded_workload(db, storage, engine, seed=seed)
        )
        records = storage.wals[db.name].committed_records()
        assert records, "workload must journal something"
        for lsn, expected in boundaries:
            replica = DatabaseReplica(db.name, FOLLOWERS[0])
            replica.seed(baseline, as_of_lsn=0)
            replica.apply(r for r in records if r.lsn <= lsn)
            assert replica.applied_lsn == lsn
            assert replica.digest() == expected, (
                f"seed {seed}: replica diverged at LSN {lsn}"
            )

    @pytest.mark.parametrize("seed", [7, 29])
    def test_replay_is_idempotent_below_the_applied_lsn(self, seed):
        storage, db, engine = _rig(mode="wal")
        baseline = storage.checkpoint_state.databases[db.name]
        final = list(seeded_workload(db, storage, engine, seed=seed))[-1]
        records = storage.wals[db.name].committed_records()
        replica = DatabaseReplica(db.name, FOLLOWERS[0])
        replica.seed(baseline, as_of_lsn=0)
        replica.apply(records)
        # Re-offering the whole log is a no-op, not a double-apply.
        assert replica.apply(records) == 0
        assert replica.digest() == final[1]


class TestShippedReplicas:
    @pytest.mark.parametrize("seed", [3, 42])
    @pytest.mark.parametrize("checkpoint_every", [30.0, 1000.0])
    def test_sync_shipping_keeps_followers_lockstep(
        self, seed, checkpoint_every
    ):
        storage, db, engine = _rig(
            mode="snapshot+wal", checkpoint_every=checkpoint_every
        )
        shipper = LogShipper(storage, make_network(), mode="sync")
        storage.replication = ShipperHook(shipper)
        for host in FOLLOWERS:
            replica = DatabaseReplica(db.name, host)
            replica.seed(storage.checkpoint_state.databases[db.name],
                         as_of_lsn=0)
            shipper.add_replica(replica)
        for _lsn, _digest in seeded_workload(
            db, storage, engine, seed=seed
        ):
            # Sync mode: zero lag and digest equality at *every* commit
            # boundary, through mid-run checkpoint truncations too.
            assert shipper.lag_records() == 0
            assert shipper.divergence_report() == []
        assert shipper.stats.max_lag_records == 0
        assert shipper.stats.shipped_records > 0

    @pytest.mark.parametrize("seed", [11, 29])
    def test_async_lag_is_bounded_and_drains_to_equality(self, seed):
        storage, db, engine = _rig(mode="wal")
        batch, ops_per_commit = 6, 4
        shipper = LogShipper(
            storage, make_network(), mode="async", lag=1e9, batch=batch
        )
        storage.replication = ShipperHook(shipper)
        replica = DatabaseReplica(db.name, FOLLOWERS[0])
        replica.seed(storage.checkpoint_state.databases[db.name],
                     as_of_lsn=0)
        shipper.add_replica(replica)
        lags = []
        for _lsn, _digest in seeded_workload(
            db, storage, engine, seed=seed, ops_per_commit=ops_per_commit
        ):
            lag = shipper.lag_records()
            lags.append(lag)
            # Bounded by the batch threshold plus one commit's worth of
            # records (a commit lands whole, then triggers the ship).
            assert lag < batch + ops_per_commit
        assert any(lag > 0 for lag in lags), "async must actually lag"
        shipper.flush_all(lambda name: PRIMARY)
        assert shipper.lag_records() == 0
        assert shipper.divergence_report() == []
        # Stats remember the post-ship peak: at least one full commit
        # sat unshipped below the batch threshold.
        assert shipper.stats.max_lag_records >= ops_per_commit

    def test_checkpoint_barrier_makes_lagging_prefixes_replayable(self):
        # Frequent checkpoints + a large async batch: followers would
        # lag across every truncation without the barrier.
        storage, db, engine = _rig(
            mode="snapshot+wal", checkpoint_every=10.0
        )
        shipper = LogShipper(
            storage, make_network(), mode="async", lag=1e9, batch=50
        )
        storage.replication = ShipperHook(shipper, barrier=True)
        replica = DatabaseReplica(db.name, FOLLOWERS[0])
        replica.seed(storage.checkpoint_state.databases[db.name],
                     as_of_lsn=0)
        shipper.add_replica(replica)
        for _ in seeded_workload(db, storage, engine, seed=5):
            pass
        shipper.flush_all(lambda name: PRIMARY)
        assert shipper.divergence_report() == []

    def test_without_the_barrier_truncation_strands_the_follower(self):
        # The negative twin: skip the flush barrier and the checkpoint
        # truncates records the lagging follower still needs — its next
        # ship hits an unreplayable hole.  This is the failure mode the
        # before_truncate hook exists to rule out.
        storage, db, engine = _rig(
            mode="snapshot+wal", checkpoint_every=10.0
        )
        shipper = LogShipper(
            storage, make_network(), mode="async", lag=1e9, batch=50
        )
        storage.replication = ShipperHook(shipper, barrier=False)
        replica = DatabaseReplica(db.name, FOLLOWERS[0])
        replica.seed(storage.checkpoint_state.databases[db.name],
                     as_of_lsn=0)
        shipper.add_replica(replica)
        with pytest.raises(WalError):
            for _ in seeded_workload(db, storage, engine, seed=5):
                pass
            shipper.flush_all(lambda name: PRIMARY)

    @pytest.mark.parametrize("mode,batch", [("sync", 1), ("async", 4)])
    def test_shipping_statistics_are_seed_deterministic(self, mode, batch):
        def one_run():
            storage, db, engine = _rig(mode="wal")
            shipper = LogShipper(
                storage, make_network(), mode=mode, lag=1e9, batch=batch
            )
            storage.replication = ShipperHook(shipper)
            replica = DatabaseReplica(db.name, FOLLOWERS[1])
            replica.seed(storage.checkpoint_state.databases[db.name],
                         as_of_lsn=0)
            shipper.add_replica(replica)
            digests = [
                digest for _lsn, digest in
                seeded_workload(db, storage, engine, seed=17)
            ]
            shipper.flush_all(lambda name: PRIMARY)
            return digests, shipper.stats

        digests_a, stats_a = one_run()
        digests_b, stats_b = one_run()
        assert digests_a == digests_b
        assert stats_a == stats_b
        assert stats_a.transfer_cost_eu > 0.0
