"""Shared fixtures: a small scenario, engines, populations, factories.

The ``--update-golden`` option and its ``update_golden`` fixture live in
the repo-root ``conftest.py`` so ``benchmarks/`` shares them.
"""

from __future__ import annotations

import pytest

from repro.datagen.generators import GeneratorProfile
from repro.engine import FederatedEngine, MtmInterpreterEngine
from repro.scenario import build_processes, build_scenario
from repro.scenario.messages import MessageFactory
from repro.toolsuite import BenchmarkClient, Initializer, ScaleFactors


@pytest.fixture()
def scenario():
    """A freshly built Fig. 1 landscape (empty systems)."""
    return build_scenario()


@pytest.fixture()
def small_profile():
    """A tiny generator profile for fast unit tests."""
    return GeneratorProfile(
        customers_base=60, products_base=40, orders_base=80,
        duplicate_rate=0.1, corruption_rate=0.1,
    )


@pytest.fixture()
def initialized(scenario, small_profile):
    """(scenario, population) with one period of source data planted."""
    initializer = Initializer(scenario, d=1.0, f=0, seed=7, profile=small_profile)
    population = initializer.initialize_sources(0)
    return scenario, population


@pytest.fixture()
def engine(scenario):
    """An interpreter engine with all benchmark processes deployed."""
    eng = MtmInterpreterEngine(scenario.registry)
    eng.deploy_all(build_processes().values())
    return eng


@pytest.fixture()
def federated(scenario):
    eng = FederatedEngine(scenario.registry)
    eng.deploy_all(build_processes().values())
    return eng


@pytest.fixture()
def factory(initialized):
    _, population = initialized
    return MessageFactory(population, seed=3, error_rate=0.3)


@pytest.fixture()
def quick_client(scenario):
    """A 1-period client at the paper's d=0.05 reference configuration."""
    eng = MtmInterpreterEngine(scenario.registry)
    return BenchmarkClient(
        scenario, eng, ScaleFactors(datasize=0.05), periods=1, seed=5
    )
