"""The exception hierarchy and the plotting module."""

import pytest

from repro import errors
from repro.engine.base import InstanceRecord
from repro.engine.costs import CostBreakdown
from repro.metrics.navg import compute_metrics
from repro.toolsuite.monitor import Monitor
from repro.toolsuite.plotting import (
    performance_plot_ascii,
    performance_plot_svg,
    series_plot_ascii,
)


class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        leaves = [
            errors.SchemaError, errors.IntegrityError, errors.QueryError,
            errors.ProcedureError, errors.XmlParseError,
            errors.XsdValidationError, errors.StxError, errors.XPathError,
            errors.EndpointNotFound, errors.OperationNotSupported,
            errors.NetworkError, errors.ProcessDefinitionError,
            errors.ProcessRuntimeError, errors.ValidationError,
            errors.DeploymentError, errors.VerificationError,
            errors.ScaleFactorError,
        ]
        for leaf in leaves:
            assert issubclass(leaf, errors.ReproError)

    def test_domain_bases(self):
        assert issubclass(errors.IntegrityError, errors.DatabaseError)
        assert issubclass(errors.StxError, errors.XmlError)
        assert issubclass(errors.NetworkError, errors.ServiceError)
        assert issubclass(errors.ValidationError, errors.MtmError)
        assert issubclass(errors.ScaleFactorError, errors.BenchmarkError)

    def test_validation_errors_carry_violations(self):
        error = errors.ValidationError("bad", ["v1", "v2"])
        assert error.violations == ["v1", "v2"]
        assert errors.XsdValidationError("bad").violations == []

    def test_catching_the_base_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.EndpointNotFound("gone")


def _record(pid, total, iid):
    return InstanceRecord(
        instance_id=iid, process_id=pid, period=0, stream="A",
        arrival=0.0, start=0.0, completion=total,
        costs=CostBreakdown(processing=total),
    )


class TestPlotting:
    def _report(self):
        return compute_metrics([
            _record("P01", 10.0, 1), _record("P01", 12.0, 2),
            _record("P13", 200.0, 3),
        ])

    def test_ascii_scales_to_peak(self):
        plot = performance_plot_ascii(self._report(), width=40)
        lines = plot.splitlines()
        p13_bar = next(l for l in lines if l.startswith("P13"))
        p01_bar = next(l for l in lines if l.startswith("P01"))
        assert p13_bar.count("#") > p01_bar.count("#")
        assert p13_bar.count("#") == 40  # the peak fills the width

    def test_ascii_orders_numerically(self):
        report = compute_metrics([
            _record("P10", 1.0, 1), _record("P02", 1.0, 2),
        ])
        plot = performance_plot_ascii(report)
        assert plot.index("P02") < plot.index("P10")

    def test_svg_contains_labels_and_values(self):
        svg = performance_plot_svg(self._report())
        assert "P01" in svg and "P13" in svg
        assert "200.0" in svg

    def test_series_plot(self):
        text = series_plot_ascii({"m": [1.0, 2.0, 4.0]}, "demo")
        assert "demo" in text
        assert "*" * 60 in text  # the peak value fills the default width

    def test_series_plot_star_counts(self):
        text = series_plot_ascii({"m": [2.0, 4.0]}, "demo", width=10)
        lines = [l for l in text.splitlines() if "*" in l]
        assert lines[0].count("*") == 5
        assert lines[1].count("*") == 10


class TestMonitorExport:
    def test_dat_format(self):
        monitor = Monitor()
        monitor.absorb([_record("P01", 10.0, 1), _record("P02", 5.0, 2)])
        dat = monitor.export_dat()
        lines = dat.strip().splitlines()
        assert lines[0].startswith("#")
        assert lines[1].split()[0] == "P01"
        assert float(lines[1].split()[2]) == 10.0

    def test_save_dat(self, tmp_path):
        monitor = Monitor()
        monitor.absorb([_record("P01", 10.0, 1)])
        path = tmp_path / "metrics.dat"
        monitor.save_dat(str(path))
        assert "P01" in path.read_text()

    def test_time_scale_applied_to_dat(self):
        monitor = Monitor(time_scale=2.0)
        monitor.absorb([_record("P01", 10.0, 1)])
        assert "20.0000" in monitor.export_dat()
