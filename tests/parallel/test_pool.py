"""The persistent WorkerPool (repro.parallel.pool).

This is the machinery both `repro sweep --workers N` and the serving
layer's pool dispatcher run on, so its contract is tested directly:
futures resolve to outcomes, run failures and worker deaths are
contained to the spec that caused them, the pool replaces dead workers
and keeps serving, and close() never strands a caller.
"""

from __future__ import annotations

import pytest

from repro.parallel import RunSpec, SweepError, WorkerPool, run_spec

FAST = dict(datasize=0.02, time=1.0)


def fast_spec(**overrides) -> RunSpec:
    base = dict(FAST, seed=11)
    base.update(overrides)
    return RunSpec(**base)


@pytest.fixture(scope="module")
def pool():
    pool = WorkerPool(workers=2)
    yield pool
    pool.close()


class TestSubmit:
    def test_future_resolves_to_outcome(self, pool):
        outcome = pool.submit(fast_spec()).result(timeout=60)
        assert outcome.status == "ok"
        assert outcome.landscape_digest
        assert outcome.result.verification.ok

    def test_run_matches_direct_execution(self, pool):
        spec = fast_spec(seed=23)
        pooled = pool.run(spec)
        direct = run_spec(spec)
        assert pooled.fingerprint() == direct.fingerprint()
        assert pooled.landscape_digest == direct.landscape_digest

    def test_batch_keeps_submission_order(self, pool):
        specs = [fast_spec(seed=s) for s in (41, 42, 43)]
        futures = [pool.submit(spec) for spec in specs]
        outcomes = [f.result(timeout=60) for f in futures]
        assert [o.spec.seed for o in outcomes] == [41, 42, 43]

    def test_run_failure_is_an_error_outcome_not_a_raise(self, pool):
        outcome = pool.run(fast_spec(sabotage="raise"))
        assert outcome.status == "error"
        assert outcome.error_type == "SweepSabotage"


class TestCrashContainment:
    def test_hard_exit_fails_only_its_spec(self, pool):
        crash = pool.submit(fast_spec(seed=77, sabotage="hard-exit"))
        healthy = pool.submit(fast_spec(seed=78))
        crashed = crash.result(timeout=60)
        assert crashed.status == "crashed"
        assert crashed.error_type == "WorkerCrashed"
        assert healthy.result(timeout=60).status == "ok"

    def test_pool_respawns_and_keeps_serving(self, pool):
        pool.run(fast_spec(sabotage="hard-exit"))
        after = pool.run(fast_spec(seed=99))
        assert after.status == "ok"
        assert len(pool._pool) == pool.workers
        assert all(w.process.is_alive() for w in pool._pool)


class TestLifecycle:
    def test_workers_must_be_positive(self):
        with pytest.raises(SweepError, match="workers must be >= 1"):
            WorkerPool(workers=0)

    def test_close_is_idempotent(self):
        pool = WorkerPool(workers=1)
        pool.close()
        pool.close()
        with pytest.raises(SweepError, match="closed"):
            pool.submit(fast_spec())

    def test_close_resolves_pending_futures(self):
        pool = WorkerPool(workers=1)
        futures = [pool.submit(fast_spec(seed=s)) for s in range(3)]
        pool.close()
        for future in futures:
            outcome = future.result(timeout=10)
            assert outcome.status in ("ok", "crashed")

    def test_context_manager_closes(self):
        with WorkerPool(workers=1) as pool:
            assert pool.run(fast_spec()).status == "ok"
        with pytest.raises(SweepError, match="closed"):
            pool.submit(fast_spec())

    def test_unknown_start_method_rejected(self):
        with pytest.raises(SweepError, match="not available"):
            WorkerPool(workers=1, start_method="no-such-method")
