"""The deterministic parallel sweep executor (repro.parallel).

The contract under test: a sweep fanned across N worker processes is
byte-identical — per-instance records, landscape digests, NAVG+ tables,
verification outcomes, merged observability shards — to the same sweep
run serially, and a grid point that crashes its worker outright fails
alone while the rest of the sweep completes.
"""

from __future__ import annotations

import pickle

import pytest

from repro.parallel import (
    RunOutcome,
    RunSpec,
    SweepError,
    SweepExecutor,
    expand_grid,
    grid_from_axes,
    parse_grid_axes,
    run_spec,
    run_sweep,
)

#: Small enough to keep the suite quick, large enough that every stream
#: (A/B/C/D) actually runs instances.
FAST = dict(datasize=0.02, time=1.0)


def fast_spec(**overrides) -> RunSpec:
    base = dict(FAST, seed=11)
    base.update(overrides)
    return RunSpec(**base)


# ---------------------------------------------------------------------------
# grid construction
# ---------------------------------------------------------------------------


class TestParseGridAxes:
    def test_parses_all_three_axes(self):
        axes = parse_grid_axes(["d=0.02,0.05", "t=1,2", "f=0,3"])
        assert axes == {"d": [0.02, 0.05], "t": [1.0, 2.0], "f": [0, 3]}

    def test_long_spellings(self):
        axes = parse_grid_axes(
            ["datasize=0.1", "time=2.0", "distribution=1"]
        )
        assert axes == {"d": [0.1], "t": [2.0], "f": [1]}

    def test_values_keep_written_order(self):
        assert parse_grid_axes(["d=0.05,0.02"])["d"] == [0.05, 0.02]

    def test_unknown_axis_rejected(self):
        with pytest.raises(SweepError, match="bad grid axis"):
            parse_grid_axes(["q=1,2"])

    def test_missing_equals_rejected(self):
        with pytest.raises(SweepError, match="bad grid axis"):
            parse_grid_axes(["d0.02"])

    def test_duplicate_axis_rejected(self):
        with pytest.raises(SweepError, match="given twice"):
            parse_grid_axes(["d=0.02", "datasize=0.05"])

    def test_empty_axis_rejected(self):
        with pytest.raises(SweepError, match="no values"):
            parse_grid_axes(["d="])

    def test_non_numeric_rejected(self):
        with pytest.raises(SweepError, match="bad grid axis"):
            parse_grid_axes(["f=abc"])


class TestExpandGrid:
    def test_product_order_engines_then_d_t_f_seed(self):
        specs = expand_grid(
            engines=["interpreter", "federated"],
            datasizes=[0.02, 0.05],
            seeds=[1, 2],
        )
        keys = [s.grid_key() for s in specs]
        assert keys == [
            ("interpreter", 0.02, 1.0, 0, 1, ""),
            ("interpreter", 0.02, 1.0, 0, 2, ""),
            ("interpreter", 0.05, 1.0, 0, 1, ""),
            ("interpreter", 0.05, 1.0, 0, 2, ""),
            ("federated", 0.02, 1.0, 0, 1, ""),
            ("federated", 0.02, 1.0, 0, 2, ""),
            ("federated", 0.05, 1.0, 0, 1, ""),
            ("federated", 0.05, 1.0, 0, 2, ""),
        ]

    def test_common_fields_reach_every_spec(self):
        specs = expand_grid(seeds=[1, 2], periods=3, durability="wal")
        assert all(s.periods == 3 and s.durability == "wal" for s in specs)

    def test_empty_axis_rejected(self):
        with pytest.raises(SweepError, match="no values"):
            expand_grid(engines=[])

    def test_grid_from_axes_fills_defaults(self):
        specs = grid_from_axes(
            {"d": [0.02]}, engines=["interpreter"], seeds=[42]
        )
        assert len(specs) == 1
        assert specs[0].time == 1.0 and specs[0].distribution == 0


class TestRunSpec:
    def test_is_picklable(self):
        spec = fast_spec(collect_metrics=True)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_with_engine_changes_only_the_engine(self):
        spec = fast_spec()
        twin = spec.with_engine("federated")
        assert twin.engine == "federated"
        assert twin.grid_key()[1:] == spec.grid_key()[1:]

    def test_label_is_stable(self):
        assert fast_spec(seed=7).label == "interpreter d=0.02 t=1 f=0 seed=7"


# ---------------------------------------------------------------------------
# single-spec execution and failure containment
# ---------------------------------------------------------------------------


class TestRunSpecExecution:
    def test_ok_outcome_carries_everything(self):
        outcome = run_spec(fast_spec())
        assert outcome.ok and outcome.status == "ok"
        assert outcome.result is not None
        assert outcome.result.total_instances > 0
        assert outcome.result.verification.ok
        assert len(outcome.landscape_digest) == 64
        assert outcome.wall_seconds > 0

    def test_outcome_is_picklable(self):
        outcome = run_spec(fast_spec(collect_metrics=True))
        clone = pickle.loads(pickle.dumps(outcome))
        assert clone.fingerprint() == outcome.fingerprint()

    def test_fingerprint_ignores_wall_clock(self):
        outcome = run_spec(fast_spec())
        before = outcome.fingerprint()
        outcome.wall_seconds = 999.0
        assert outcome.fingerprint() == before

    def test_sabotage_raise_is_contained(self):
        outcome = run_spec(fast_spec(sabotage="raise"))
        assert not outcome.ok
        assert outcome.status == "error"
        assert outcome.error_type == "SweepSabotage"
        assert outcome.result is None

    def test_unknown_engine_is_contained(self):
        outcome = run_spec(fast_spec(engine="quantum"))
        assert outcome.status == "error"
        assert outcome.error_type == "BenchmarkError"
        assert "quantum" in outcome.error

    def test_metrics_shard_only_when_requested(self):
        assert run_spec(fast_spec()).metrics_shard is None
        shard = run_spec(fast_spec(collect_metrics=True)).metrics_shard
        assert shard is not None
        assert any(
            m.name == "engine_instances_total" for m in shard.collect()
        )

    def test_trace_shard_only_when_requested(self):
        assert run_spec(fast_spec()).spans is None
        spans = run_spec(fast_spec(collect_trace=True)).spans
        assert spans and any(s["kind"] == "instance" for s in spans)


# ---------------------------------------------------------------------------
# byte-identity: serial vs parallel
# ---------------------------------------------------------------------------

GRID = expand_grid(
    engines=["interpreter", "federated"],
    datasizes=[0.02],
    times=[1.0],
    seeds=[11, 12],
    collect_metrics=True,
)


@pytest.fixture(scope="module")
def serial_result():
    return run_sweep(GRID, workers=1)


@pytest.fixture(scope="module")
def parallel_result():
    return run_sweep(GRID, workers=3)


class TestByteIdentity:
    def test_parallel_equals_serial_fingerprint(
        self, serial_result, parallel_result
    ):
        assert serial_result.fingerprint() == parallel_result.fingerprint()

    def test_every_point_matches(self, serial_result, parallel_result):
        for serial, parallel in zip(
            serial_result.outcomes, parallel_result.outcomes
        ):
            assert serial.spec == parallel.spec
            assert serial.landscape_digest == parallel.landscape_digest
            assert serial.result.records == parallel.result.records
            assert (
                serial.result.metrics.as_table()
                == parallel.result.metrics.as_table()
            )

    def test_outcomes_come_back_in_grid_order(self, parallel_result):
        assert [o.spec for o in parallel_result.outcomes] == GRID

    def test_json_documents_identical(self, serial_result, parallel_result):
        assert serial_result.to_json() == parallel_result.to_json()

    def test_merged_metrics_independent_of_worker_count(
        self, serial_result, parallel_result
    ):
        assert (
            serial_result.merged_metrics().snapshot()
            == parallel_result.merged_metrics().snapshot()
        )

    def test_all_points_verified(self, parallel_result):
        assert parallel_result.ok
        assert parallel_result.failed == []
        assert parallel_result.total_instances > 0

    def test_engine_variants_converge_per_seed(self, serial_result):
        by_key = {
            o.spec.grid_key(): o.landscape_digest
            for o in serial_result.outcomes
        }
        for (engine, d, t, f, seed, synth), digest in by_key.items():
            if engine != "interpreter":
                continue
            twin = by_key[("federated", d, t, f, seed, synth)]
            assert digest == twin


class TestMergedTrace:
    def test_trace_shards_absorb_across_workers(self):
        grid = [
            fast_spec(seed=21, collect_trace=True),
            fast_spec(seed=22, collect_trace=True),
        ]
        serial = run_sweep(grid, workers=1)
        parallel = run_sweep(grid, workers=2)
        serial_spans = serial.merged_trace().spans
        parallel_spans = parallel.merged_trace().spans
        assert len(serial_spans) == len(parallel_spans) > 0
        assert (
            [s.name for s in serial_spans]
            == [s.name for s in parallel_spans]
        )
        # Side-by-side timeline: absorbed spans never run backwards.
        starts = [s.start_time for s in parallel_spans]
        assert min(starts) >= 0.0


# ---------------------------------------------------------------------------
# worker-crash containment
# ---------------------------------------------------------------------------

CONTAINMENT_GRID = [
    fast_spec(seed=31),
    fast_spec(seed=32, sabotage="hard-exit"),
    fast_spec(seed=33, sabotage="raise"),
    fast_spec(seed=34),
]


@pytest.fixture(scope="module")
def contained_parallel():
    return run_sweep(CONTAINMENT_GRID, workers=2)


class TestCrashContainment:
    def test_dead_worker_fails_only_its_grid_point(self, contained_parallel):
        statuses = [o.status for o in contained_parallel.outcomes]
        assert statuses == ["ok", "crashed", "error", "ok"]

    def test_crash_outcome_is_structured(self, contained_parallel):
        crashed = contained_parallel.outcomes[1]
        assert crashed.error_type == "WorkerCrashed"
        assert "died" in crashed.error
        assert crashed.result is None

    def test_error_outcome_keeps_exception_type(self, contained_parallel):
        errored = contained_parallel.outcomes[2]
        assert errored.error_type == "SweepSabotage"

    def test_survivors_still_verify(self, contained_parallel):
        for index in (0, 3):
            outcome = contained_parallel.outcomes[index]
            assert outcome.ok and outcome.result.verification.ok

    def test_sweep_reports_failure(self, contained_parallel):
        assert not contained_parallel.ok
        assert len(contained_parallel.failed) == 2

    def test_serial_sweep_mirrors_the_containment(self, contained_parallel):
        serial = run_sweep(CONTAINMENT_GRID, workers=1)
        assert serial.fingerprint() == contained_parallel.fingerprint()
        assert (
            [o.status for o in serial.outcomes]
            == [o.status for o in contained_parallel.outcomes]
        )


class TestExecutorValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(SweepError, match="workers"):
            SweepExecutor(workers=0)

    def test_empty_grid_rejected(self):
        with pytest.raises(SweepError, match="nothing to sweep"):
            SweepExecutor(workers=1).run([])

    def test_unavailable_start_method_rejected(self):
        with pytest.raises(SweepError, match="not available"):
            SweepExecutor(workers=2, start_method="hyperdrive")

    def test_single_spec_runs_inline(self):
        result = SweepExecutor(workers=4).run([fast_spec(seed=41)])
        assert result.start_method == "serial"
        assert result.workers == 1
        assert result.outcomes[0].ok

    def test_crashed_outcome_classmethod(self):
        outcome = RunOutcome.crashed(fast_spec())
        assert outcome.status == "crashed" and not outcome.ok
        assert outcome.navg_plus_total() == 0.0
