"""The NAVG+ metric."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.base import InstanceRecord
from repro.engine.costs import CostBreakdown
from repro.errors import BenchmarkError
from repro.metrics.navg import compute_metrics, navg_plus


def record(pid, total, instance_id=0, status="ok"):
    return InstanceRecord(
        instance_id=instance_id,
        process_id=pid,
        period=0,
        stream="A",
        arrival=0.0,
        start=0.0,
        completion=total,
        costs=CostBreakdown(processing=total),
        status=status,
    )


class TestNavgPlus:
    def test_single_value_no_sigma(self):
        assert navg_plus([5.0]) == 5.0

    def test_constant_values(self):
        assert navg_plus([4.0, 4.0, 4.0]) == 4.0

    def test_mean_plus_population_std(self):
        values = [2.0, 4.0]
        expected = 3.0 + math.sqrt(((2 - 3) ** 2 + (4 - 3) ** 2) / 2)
        assert navg_plus(values) == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(BenchmarkError):
            navg_plus([])

    @given(st.lists(st.floats(0.1, 1e6), min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_navg_plus_at_least_mean(self, values):
        """sigma+ only ever rewards *predictable* systems: the metric is
        bounded below by the plain average."""
        mean = sum(values) / len(values)
        assert navg_plus(values) >= mean - 1e-9

    @given(st.floats(1.0, 100.0), st.floats(0.1, 50.0),
           st.integers(1, 10))
    @settings(max_examples=60)
    def test_jitter_penalized(self, base, spread, pairs):
        """Same mean, added spread -> strictly higher NAVG+ than a
        perfectly predictable system (the metric's stated purpose)."""
        stable = [base] * (2 * pairs)
        jittery = [base - spread, base + spread] * pairs
        assert navg_plus(jittery) > navg_plus(stable)
        assert sum(jittery) / len(jittery) == pytest.approx(base)


class TestComputeMetrics:
    def test_grouping_by_type(self):
        records = [record("P01", 10.0, 1), record("P01", 20.0, 2),
                   record("P02", 5.0, 3)]
        report = compute_metrics(records)
        assert report.process_ids == ["P01", "P02"]
        assert report["P01"].instance_count == 2
        assert report["P01"].navg == pytest.approx(15.0)
        assert report["P01"].navg_plus == pytest.approx(20.0)
        assert report["P02"].sigma == 0.0

    def test_errors_excluded_from_costs(self):
        records = [record("P01", 10.0, 1),
                   record("P01", 99999.0, 2, status="error")]
        report = compute_metrics(records)
        assert report["P01"].navg == pytest.approx(10.0)
        assert report["P01"].error_count == 1
        assert report["P01"].instance_count == 2

    def test_all_errors(self):
        report = compute_metrics([record("P01", 1.0, 1, status="error")])
        assert report["P01"].navg == 0.0
        assert report["P01"].error_count == 1

    def test_cost_category_means(self):
        r = record("P01", 10.0, 1)
        r.costs.communication = 3.0
        r.costs.management = 2.0
        report = compute_metrics([r])
        assert report["P01"].communication_mean == 3.0
        assert report["P01"].management_mean == 2.0

    def test_relative_sigma(self):
        records = [record("P01", 10.0, 1), record("P01", 20.0, 2)]
        m = compute_metrics(records)["P01"]
        assert m.relative_sigma == pytest.approx(m.sigma / m.navg)

    def test_as_table_renders_all_types(self):
        records = [record("P01", 10.0, 1), record("P13", 100.0, 2)]
        table = compute_metrics(records).as_table()
        assert "P01" in table and "P13" in table
        assert "NAVG+" in table

    def test_contains(self):
        report = compute_metrics([record("P01", 1.0, 1)])
        assert "P01" in report
        assert "P99" not in report
