"""Cost normalization under concurrency (Section V)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BenchmarkError
from repro.metrics.normalize import ActiveInterval, normalize_intervals


class TestBasics:
    def test_empty(self):
        assert normalize_intervals([]) == {}

    def test_single_interval_equals_elapsed(self):
        result = normalize_intervals([ActiveInterval(1, 2.0, 7.0)])
        assert result == {1: 5.0}

    def test_disjoint_intervals_unchanged(self):
        result = normalize_intervals([
            ActiveInterval(1, 0.0, 4.0),
            ActiveInterval(2, 10.0, 13.0),
        ])
        assert result == {1: 4.0, 2: 3.0}

    def test_fully_overlapping_pair_splits_evenly(self):
        result = normalize_intervals([
            ActiveInterval(1, 0.0, 10.0),
            ActiveInterval(2, 0.0, 10.0),
        ])
        assert result == {1: 5.0, 2: 5.0}

    def test_partial_overlap(self):
        result = normalize_intervals([
            ActiveInterval(1, 0.0, 10.0),
            ActiveInterval(2, 5.0, 15.0),
        ])
        # [0,5) alone -> 5; [5,10) shared -> 2.5 each; [10,15) alone -> 5.
        assert result[1] == pytest.approx(7.5)
        assert result[2] == pytest.approx(7.5)

    def test_nested_interval(self):
        result = normalize_intervals([
            ActiveInterval(1, 0.0, 10.0),
            ActiveInterval(2, 4.0, 6.0),
        ])
        assert result[1] == pytest.approx(9.0)
        assert result[2] == pytest.approx(1.0)

    def test_zero_length_interval(self):
        result = normalize_intervals([ActiveInterval(1, 3.0, 3.0)])
        assert result == {1: 0.0}

    def test_backwards_interval_rejected(self):
        with pytest.raises(BenchmarkError):
            ActiveInterval(1, 5.0, 1.0)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(BenchmarkError):
            normalize_intervals([
                ActiveInterval(1, 0.0, 1.0),
                ActiveInterval(1, 2.0, 3.0),
            ])


intervals_strategy = st.lists(
    st.tuples(
        st.floats(0, 100, allow_nan=False),
        st.floats(0, 50, allow_nan=False),
    ),
    min_size=1,
    max_size=12,
).map(
    lambda pairs: [
        ActiveInterval(i, start, start + width)
        for i, (start, width) in enumerate(pairs)
    ]
)


class TestInvariants:
    @given(intervals_strategy)
    @settings(max_examples=100)
    def test_total_normalized_equals_busy_time(self, intervals):
        """Sum of normalized costs == measure of the union of intervals."""
        normalized = normalize_intervals(intervals)
        boundaries = sorted(
            {i.start for i in intervals} | {i.end for i in intervals}
        )
        busy = sum(
            right - left
            for left, right in zip(boundaries, boundaries[1:])
            if any(i.start <= left and i.end >= right for i in intervals)
        )
        assert sum(normalized.values()) == pytest.approx(busy)

    @given(intervals_strategy)
    @settings(max_examples=100)
    def test_normalized_never_exceeds_elapsed(self, intervals):
        normalized = normalize_intervals(intervals)
        for interval in intervals:
            assert (
                normalized[interval.instance_id]
                <= interval.elapsed + 1e-9
            )

    @given(intervals_strategy)
    @settings(max_examples=100)
    def test_nonnegative(self, intervals):
        assert all(v >= 0 for v in normalize_intervals(intervals).values())
