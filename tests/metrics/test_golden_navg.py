"""Golden NAVG+ regression tests.

The NAVG+ numbers (mean + population sigma of normalized costs, per
process type) are the benchmark's published quantity: any code change
that silently shifts them invalidates cross-run comparisons.  This
module pins the full metric table of two reference configurations to a
golden JSON fixture.

When a change *intentionally* moves the numbers (a cost-model fix, a
datagen change), regenerate the fixture and commit it alongside the
change::

    PYTHONPATH=src python -m pytest tests/metrics/test_golden_navg.py \
        --update-golden

A failing comparison prints the per-field drift, so an unintentional
regression is attributable directly to the process type it hit.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.parallel import RunSpec, run_spec

GOLDEN_PATH = Path(__file__).parent / "golden_navg.json"

#: Reference configurations pinned by the fixture.  Keys are the
#: fixture's JSON keys; keep them stable.
CASES: dict[str, RunSpec] = {
    "interpreter-d0.02-s11": RunSpec(
        engine="interpreter", datasize=0.02, time=1.0, seed=11
    ),
    "federated-d0.05-s42": RunSpec(
        engine="federated", datasize=0.05, time=1.0, seed=42
    ),
}

#: Float fields are rounded before comparison so the fixture is stable
#: across platforms (the runs themselves are deterministic; rounding
#: only guards against repr drift).
ROUND = 6


def _capture(spec: RunSpec) -> dict:
    outcome = run_spec(spec)
    assert outcome.ok, f"golden case failed to run: {outcome.error}"
    result = outcome.result
    return {
        "spec": spec.label,
        "landscape_digest": outcome.landscape_digest,
        "total_instances": result.total_instances,
        "error_instances": result.error_instances,
        "verification_ok": result.verification.ok,
        "navg": {
            m.process_id: {
                "instances": m.instance_count,
                "errors": m.error_count,
                "navg": round(m.navg, ROUND),
                "sigma": round(m.sigma, ROUND),
                "navg_plus": round(m.navg_plus, ROUND),
            }
            for m in result.metrics.rows()
        },
    }


@pytest.fixture(scope="module")
def golden() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden fixture missing: {GOLDEN_PATH} — generate it with "
            "--update-golden"
        )
    return json.loads(GOLDEN_PATH.read_text())


def test_update_golden(update_golden):
    """Rewrites the fixture when --update-golden is given; no-op otherwise."""
    if not update_golden:
        pytest.skip("comparison mode (pass --update-golden to regenerate)")
    document = {key: _capture(spec) for key, spec in CASES.items()}
    GOLDEN_PATH.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )


@pytest.mark.parametrize("case", sorted(CASES))
class TestGoldenNavg:
    def test_matches_golden(self, golden, update_golden, case):
        if update_golden:
            pytest.skip("fixture being regenerated")
        assert case in golden, f"fixture has no entry for {case}"
        expected = golden[case]
        actual = _capture(CASES[case])
        # Compare the cheap identity fields first for a readable failure,
        # then the full per-process table.
        assert actual["landscape_digest"] == expected["landscape_digest"]
        assert actual["total_instances"] == expected["total_instances"]
        assert actual["error_instances"] == expected["error_instances"]
        assert actual["verification_ok"] == expected["verification_ok"]
        drift = {
            pid: (expected["navg"].get(pid), got)
            for pid, got in actual["navg"].items()
            if expected["navg"].get(pid) != got
        }
        assert not drift, f"NAVG+ drifted for {sorted(drift)}: {drift}"
        assert sorted(actual["navg"]) == sorted(expected["navg"])


def test_golden_covers_every_case(golden, update_golden):
    if update_golden:
        pytest.skip("fixture being regenerated")
    assert sorted(golden) == sorted(CASES)
