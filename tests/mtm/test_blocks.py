"""Structured blocks: Sequence, Switch, Fork, Subprocess."""

import pytest

from repro.errors import ProcessDefinitionError, ProcessRuntimeError
from repro.mtm.blocks import Fork, Sequence, Subprocess, Switch, SwitchCase
from repro.mtm.context import ExecutionContext
from repro.mtm.message import Message
from repro.mtm.operators import Assign, Signal, Validate
from repro.services import Network, ServiceRegistry
from repro.xmlkit.doc import parse_xml
from repro.xmlkit.xsd import XsdElement, XsdSchema


@pytest.fixture()
def ctx():
    net = Network()
    net.add_host("IS")
    return ExecutionContext(ServiceRegistry(net), "IS")


class TestSequence:
    def test_runs_in_order(self, ctx):
        seen = []
        seq = Sequence([
            Assign("a", lambda c: seen.append("first") or 1),
            Assign("b", lambda c: seen.append("second") or 2),
        ])
        seq._run(ctx)
        assert seen == ["first", "second"]

    def test_empty_rejected(self):
        with pytest.raises(ProcessDefinitionError):
            Sequence([])

    def test_validation_failure_stops_sequence(self, ctx):
        """The P10 pattern: failed validation routes and ends the flow."""
        schema = XsdSchema("s", XsdElement("expected"))
        after = []
        seq = Sequence([
            Assign("in", Message(parse_xml("<wrong/>"))),
            Validate("in", schema, on_fail=Assign("note", "failed")),
            Assign("never", lambda c: after.append(1) or 1),
        ])
        seq._run(ctx)
        assert after == []
        assert ctx.get("note").payload == "failed"

    def test_iter_tree(self):
        seq = Sequence([Signal(), Sequence([Signal()])])
        kinds = [op.kind for op in seq.iter_tree()]
        assert kinds == ["sequence", "signal", "sequence", "signal"]


class TestSwitch:
    def _switch(self, otherwise=None):
        return Switch(
            [
                SwitchCase(lambda c: c.get("k").payload < 10,
                           Assign("route", "low"), "low"),
                SwitchCase(lambda c: c.get("k").payload < 100,
                           Assign("route", "mid"), "mid"),
            ],
            otherwise=otherwise,
        )

    def test_first_matching_case_wins(self, ctx):
        ctx.set("k", Message(5))
        self._switch()._run(ctx)
        assert ctx.get("route").payload == "low"

    def test_second_case(self, ctx):
        ctx.set("k", Message(50))
        self._switch()._run(ctx)
        assert ctx.get("route").payload == "mid"

    def test_otherwise(self, ctx):
        ctx.set("k", Message(5000))
        self._switch(otherwise=Assign("route", "high"))._run(ctx)
        assert ctx.get("route").payload == "high"

    def test_no_match_no_otherwise_is_noop(self, ctx):
        ctx.set("k", Message(5000))
        self._switch()._run(ctx)
        assert not ctx.has("route")

    def test_needs_cases(self):
        with pytest.raises(ProcessDefinitionError):
            Switch([])


class TestFork:
    def test_branch_writes_merged(self, ctx):
        fork = Fork([Assign("a", 1), Assign("b", 2)])
        fork._run(ctx)
        assert ctx.get("a").payload == 1
        assert ctx.get("b").payload == 2

    def test_branches_isolated_from_each_other(self, ctx):
        """A branch must not see a sibling's writes (logical concurrency)."""
        observations = []

        def probe(c):
            observations.append(c.has("a"))
            return 2

        fork = Fork([Assign("a", 1), Assign("b", probe)])
        fork._run(ctx)
        assert observations == [False]

    def test_branches_see_pre_fork_state(self, ctx):
        ctx.set("base", Message(10))
        fork = Fork([
            Assign("x", lambda c: c.get("base").payload + 1),
            Assign("y", lambda c: c.get("base").payload + 2),
        ])
        fork._run(ctx)
        assert ctx.get("x").payload == 11
        assert ctx.get("y").payload == 12

    def test_conflicting_writes_rejected(self, ctx):
        fork = Fork([Assign("same", 1), Assign("same", 2)])
        with pytest.raises(ProcessRuntimeError, match="both write"):
            fork._run(ctx)

    def test_needs_two_branches(self):
        with pytest.raises(ProcessDefinitionError):
            Fork([Signal()])

    def test_parallel_pricing_credits_overlap(self, ctx):
        """With perfect efficiency, a fork of equal branches costs one."""
        ctx.parallel_efficiency = 1.0
        fork = Fork([
            Sequence([Assign("a", 1), Signal(), Signal()]),
            Sequence([Assign("b", 2), Signal(), Signal()]),
        ])
        fork._run(ctx)
        # Each branch: 3 control units; sum 6, max 3; +1 for the fork itself.
        assert ctx.work_units["control"] == pytest.approx(4.0)

    def test_serial_pricing_when_inefficient(self, ctx):
        ctx.parallel_efficiency = 0.0
        fork = Fork([Signal(), Signal()])
        fork._run(ctx)
        assert ctx.work_units["control"] == pytest.approx(3.0)


class TestSubprocess:
    def _ctx_with_runner(self, result=None):
        net = Network()
        net.add_host("IS")
        calls = []

        def runner(process_id, message, parent):
            calls.append((process_id, message.payload if message else None))
            return result

        ctx = ExecutionContext(ServiceRegistry(net), "IS",
                               subprocess_runner=runner)
        return ctx, calls

    def test_invocation_with_input(self):
        ctx, calls = self._ctx_with_runner(Message("child-result"))
        ctx.set("payload", Message("data"))
        Subprocess("P_CHILD", input="payload", output="out")._run(ctx)
        assert calls == [("P_CHILD", "data")]
        assert ctx.get("out").payload == "child-result"

    def test_invocation_without_io(self):
        ctx, calls = self._ctx_with_runner()
        Subprocess("P_CHILD")._run(ctx)
        assert calls == [("P_CHILD", None)]

    def test_missing_result_when_expected(self):
        ctx, _ = self._ctx_with_runner(result=None)
        with pytest.raises(ProcessRuntimeError):
            Subprocess("P_CHILD", output="out")._run(ctx)

    def test_no_runner_configured(self, ctx):
        with pytest.raises(ProcessRuntimeError):
            Subprocess("P_CHILD")._run(ctx)
