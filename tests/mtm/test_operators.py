"""Atomic MTM operators, executed against a minimal context."""

import pytest

from repro.db import Column, Database, TableSchema, col, lit
from repro.db.relation import Relation
from repro.errors import (
    ProcessDefinitionError,
    ProcessRuntimeError,
    ValidationError,
)
from repro.mtm.context import ExecutionContext
from repro.mtm.message import Message
from repro.mtm.operators import (
    Assign,
    Convert,
    Delete,
    ExtractField,
    Invoke,
    Join,
    Projection,
    Receive,
    Selection,
    Signal,
    Translation,
    Union,
    Validate,
    ValidateRows,
)
from repro.services import DatabaseService, Envelope, Network, ServiceRegistry
from repro.xmlkit.convert import rows_to_resultset
from repro.xmlkit.doc import parse_xml
from repro.xmlkit.stx import RenameRule, Stylesheet
from repro.xmlkit.xsd import XsdElement, XsdSchema


@pytest.fixture()
def registry():
    net = Network()
    net.add_host("IS")
    registry = ServiceRegistry(net)
    db = Database("ext")
    db.create_table(
        TableSchema("t", [Column("k", "BIGINT", nullable=False)],
                    primary_key=("k",))
    )
    registry.register(DatabaseService("ext", "ES", db))
    return registry, db


@pytest.fixture()
def ctx(registry):
    reg, _ = registry
    return ExecutionContext(reg, "IS")


def run(op, ctx):
    op._run(ctx)
    return ctx


class TestReceive:
    def test_binds_inbound(self, ctx):
        ctx.set("__in", Message("payload", "typed"))
        run(Receive("msg1"), ctx)
        assert ctx.get("msg1").payload == "payload"

    def test_missing_inbound(self, ctx):
        with pytest.raises(ProcessRuntimeError):
            run(Receive("msg1"), ctx)

    def test_type_check(self, ctx):
        ctx.set("__in", Message("x", "wrong"))
        with pytest.raises(ProcessRuntimeError):
            run(Receive("msg1", expected_type="right"), ctx)


class TestAssignDelete:
    def test_assign_constant(self, ctx):
        run(Assign("v", 42), ctx)
        assert ctx.get("v").payload == 42

    def test_assign_callable(self, ctx):
        ctx.set("a", Message(2))
        run(Assign("b", lambda c: c.get("a").payload * 3), ctx)
        assert ctx.get("b").payload == 6

    def test_assign_message_passthrough(self, ctx):
        msg = Message("x", "t")
        run(Assign("v", msg), ctx)
        assert ctx.get("v") is msg

    def test_delete(self, ctx):
        ctx.set("v", Message(1))
        run(Delete("v"), ctx)
        assert not ctx.has("v")

    def test_delete_missing_is_noop(self, ctx):
        run(Delete("ghost"), ctx)

    def test_unbound_read_raises(self, ctx):
        with pytest.raises(ProcessRuntimeError, match="unbound"):
            ctx.get("nope")


class TestInvoke:
    def test_invoke_binds_output_and_charges(self, ctx, registry):
        _, db = registry
        db.insert("t", {"k": 1})
        op = Invoke("ext", lambda c: Envelope.query_request("t"), output="res")
        run(op, ctx)
        assert len(ctx.get("res").payload) == 1
        assert ctx.communication_cost > 0
        assert ctx.work_units["relational"] > 0

    def test_invoke_without_output(self, ctx):
        op = Invoke("ext", lambda c: Envelope.update_request("t", [{"k": 9}]))
        run(op, ctx)
        assert not ctx.has("result")

    def test_work_kind_routing(self, ctx):
        op = Invoke("ext", lambda c: Envelope.query_request("t"),
                    output="r", work_kind="xml")
        run(op, ctx)
        assert ctx.work_units["xml"] > 0
        assert ctx.work_units["relational"] == 0


class TestRelationalOperators:
    def test_selection(self, ctx):
        ctx.set("in", Message(Relation(("k",), [{"k": 1}, {"k": 5}])))
        run(Selection("in", "out", col("k") > lit(2)), ctx)
        assert len(ctx.get("out").relation()) == 1
        assert ctx.work_units["relational"] == 2.0

    def test_projection(self, ctx):
        ctx.set("in", Message(Relation(("a",), [{"a": 1}])))
        run(Projection("in", "out", {"b": "a"}), ctx)
        assert ctx.get("out").relation().columns == ("b",)

    def test_join(self, ctx):
        ctx.set("l", Message(Relation(("k",), [{"k": 1}])))
        ctx.set("r", Message(Relation(("k", "v"), [{"k": 1, "v": "x"}])))
        run(Join("l", "r", "out", on=[("k", "k")]), ctx)
        assert ctx.get("out").relation().rows[0]["v"] == "x"

    def test_union_distinct(self, ctx):
        ctx.set("a", Message(Relation(("k",), [{"k": 1}, {"k": 2}])))
        ctx.set("b", Message(Relation(("k",), [{"k": 2}, {"k": 3}])))
        run(Union(["a", "b"], "out", distinct_key=("k",)), ctx)
        assert len(ctx.get("out").relation()) == 3

    def test_union_all(self, ctx):
        ctx.set("a", Message(Relation(("k",), [{"k": 1}])))
        ctx.set("b", Message(Relation(("k",), [{"k": 1}])))
        run(Union(["a", "b"], "out"), ctx)
        assert len(ctx.get("out").relation()) == 2

    def test_union_needs_inputs(self):
        with pytest.raises(ProcessDefinitionError):
            Union([], "out")


class TestTranslation:
    def test_applies_stylesheet_and_charges_xml(self, ctx):
        sheet = Stylesheet("s", [RenameRule("/a", "z")])
        ctx.set("in", Message(parse_xml("<a><b/></a>"), "m"))
        run(Translation("in", "out", sheet), ctx)
        assert ctx.get("out").xml().tag == "z"
        assert ctx.get("out").message_type == "m"
        assert ctx.work_units["xml"] == 4.0  # 2 starts + 2 ends


class TestValidate:
    def _schema(self):
        return XsdSchema("s", XsdElement("ok"))

    def test_valid_passes(self, ctx):
        ctx.set("in", Message(parse_xml("<ok/>")))
        run(Validate("in", self._schema()), ctx)
        assert ctx.validation_failures == []

    def test_strict_failure_raises(self, ctx):
        ctx.set("in", Message(parse_xml("<bad/>")))
        with pytest.raises(ValidationError):
            run(Validate("in", self._schema()), ctx)
        assert len(ctx.validation_failures) == 1

    def test_on_fail_branch_runs(self, ctx):
        from repro.mtm.operators import _ValidationHandled

        handled = []
        branch = Assign("failnote", lambda c: handled.append(1) or "noted")
        ctx.set("in", Message(parse_xml("<bad/>")))
        with pytest.raises(_ValidationHandled):
            run(Validate("in", self._schema(), on_fail=branch), ctx)
        assert handled == [1]


class TestValidateRows:
    def test_strict_mode(self, ctx):
        ctx.set("in", Message(Relation(("k",), [{"k": -1}])))
        with pytest.raises(ValidationError):
            run(ValidateRows("in", {"pos": col("k") > lit(0)}), ctx)

    def test_filter_mode(self, ctx):
        ctx.set("in", Message(Relation(("k",), [{"k": -1}, {"k": 5}])))
        run(
            ValidateRows("in", {"pos": col("k") > lit(0)},
                         output="out", filter_invalid=True),
            ctx,
        )
        assert len(ctx.get("out").relation()) == 1
        assert len(ctx.validation_failures) == 1

    def test_needs_checks(self):
        with pytest.raises(ProcessDefinitionError):
            ValidateRows("in", {})

    def test_clean_rows_pass_through(self, ctx):
        ctx.set("in", Message(Relation(("k",), [{"k": 1}])))
        run(ValidateRows("in", {"pos": col("k") > lit(0)}), ctx)
        assert len(ctx.get("in").relation()) == 1


class TestConvert:
    def test_xml_to_relation(self, ctx):
        doc = rows_to_resultset(("k",), [{"k": 5}], "t")
        ctx.set("in", Message(doc))
        run(
            Convert("in", "out", "xml_to_relation",
                    columns=["k"], types={"k": "BIGINT"}),
            ctx,
        )
        assert ctx.get("out").relation().rows == [{"k": 5}]

    def test_relation_to_xml(self, ctx):
        ctx.set("in", Message(Relation(("k",), [{"k": 5}])))
        run(Convert("in", "out", "relation_to_xml", table="t"), ctx)
        doc = ctx.get("out").xml()
        assert doc.tag == "ResultSet"
        assert doc.attributes["table"] == "t"

    def test_empty_resultset_with_columns(self, ctx):
        ctx.set("in", Message(rows_to_resultset(("k",), [], "t")))
        run(Convert("in", "out", "xml_to_relation", columns=["k"]), ctx)
        assert len(ctx.get("out").relation()) == 0

    def test_empty_resultset_without_columns_raises(self, ctx):
        ctx.set("in", Message(rows_to_resultset(("k",), [], "t")))
        with pytest.raises(ProcessRuntimeError):
            run(Convert("in", "out", "xml_to_relation"), ctx)

    def test_bad_direction(self):
        with pytest.raises(ProcessDefinitionError):
            Convert("in", "out", "sideways")


class TestExtractField:
    def test_extract_with_conversion(self, ctx):
        ctx.set("in", Message(parse_xml("<m><k>42</k></m>")))
        run(ExtractField("in", "out", "/m/k", convert=int), ctx)
        assert ctx.get("out").payload == 42

    def test_missing_path_raises(self, ctx):
        ctx.set("in", Message(parse_xml("<m/>")))
        with pytest.raises(ProcessRuntimeError):
            run(ExtractField("in", "out", "/m/ghost"), ctx)


class TestSignalAndBookkeeping:
    def test_signal_charges_control(self, ctx):
        run(Signal(), ctx)
        assert ctx.work_units["control"] == 1.0

    def test_operator_counter(self, ctx):
        run(Signal(), ctx)
        run(Signal(), ctx)
        assert ctx.operators_executed == 2

    def test_trace(self, registry):
        reg, _ = registry
        traced = ExecutionContext(reg, "IS", trace=True)
        run(Signal(name="end"), traced)
        assert traced.trace_log == ["signal:end"]

    def test_unknown_work_kind(self, ctx):
        with pytest.raises(ProcessRuntimeError):
            ctx.charge_work("quantum", 1.0)
