"""Static validation of process definitions."""

import pytest

from repro.db import col, lit
from repro.errors import ProcessDefinitionError
from repro.mtm import (
    Assign,
    EventType,
    Fork,
    ProcessGroup,
    ProcessType,
    Receive,
    Selection,
    Sequence,
    Signal,
    Subprocess,
    Switch,
    SwitchCase,
)
from repro.mtm.process import assert_valid_definition, validate_definition


def make(event_type, root, subprocess_only=False, pid="P99"):
    return ProcessType(pid, ProcessGroup.B, "test", event_type, root,
                       subprocess_only=subprocess_only)


class TestEventTypeRules:
    def test_e1_must_start_with_receive(self):
        p = make(EventType.E1_MESSAGE, Sequence([Signal(), Receive("m")]))
        errors = validate_definition(p)
        assert any("must *start*" in e for e in errors)

    def test_e1_without_receive(self):
        p = make(EventType.E1_MESSAGE, Sequence([Signal()]))
        assert any("must contain" in e for e in validate_definition(p))

    def test_e2_must_not_receive(self):
        p = make(EventType.E2_SCHEDULE, Sequence([Receive("m"), Signal()]))
        assert any("must not" in e for e in validate_definition(p))

    def test_valid_e1(self):
        p = make(EventType.E1_MESSAGE, Sequence([Receive("m"), Signal()]))
        assert validate_definition(p) == []

    def test_subprocess_may_use_receive(self):
        p = make(EventType.E2_SCHEDULE, Sequence([Receive("m"), Signal()]),
                 subprocess_only=True)
        assert validate_definition(p) == []

    def test_subprocess_may_skip_receive_and_read_in(self):
        p = make(
            EventType.E2_SCHEDULE,
            Sequence([Assign("x", lambda c: c.get("__in"))]),
            subprocess_only=True,
        )
        assert validate_definition(p) == []


class TestDataFlow:
    def test_unbound_read_detected(self):
        p = make(
            EventType.E2_SCHEDULE,
            Sequence([Selection("ghost", "out", col("k") == lit(1))]),
        )
        assert any("unbound" in e for e in validate_definition(p))

    def test_bound_by_earlier_step(self):
        p = make(
            EventType.E2_SCHEDULE,
            Sequence([
                Assign("data", 1),
                Selection("data", "out", col("k") == lit(1)),
            ]),
        )
        assert validate_definition(p) == []

    def test_switch_branch_binding_not_visible_without_otherwise(self):
        switch = Switch([SwitchCase(lambda c: True, Assign("v", 1))])
        p = make(
            EventType.E2_SCHEDULE,
            Sequence([switch, Selection("v", "o", col("k") == lit(1))]),
        )
        assert any("unbound" in e for e in validate_definition(p))

    def test_switch_all_branches_bind_with_otherwise(self):
        switch = Switch(
            [SwitchCase(lambda c: True, Assign("v", 1))],
            otherwise=Assign("v", 2),
        )
        p = make(
            EventType.E2_SCHEDULE,
            Sequence([switch, Selection("v", "o", col("k") == lit(1))]),
        )
        assert validate_definition(p) == []

    def test_fork_conflicting_writers_detected(self):
        fork = Fork([Assign("same", 1), Assign("same", 2)])
        p = make(EventType.E2_SCHEDULE, Sequence([fork, Signal()]))
        assert any("both write" in e for e in validate_definition(p))

    def test_fork_bindings_visible_after(self):
        fork = Fork([Assign("a", 1), Assign("b", 2)])
        p = make(
            EventType.E2_SCHEDULE,
            Sequence([fork, Selection("a", "o", col("k") == lit(1))]),
        )
        assert validate_definition(p) == []


class TestSubprocessRefs:
    def test_unknown_subprocess(self):
        p = make(EventType.E2_SCHEDULE, Sequence([Subprocess("P_GHOST")]))
        errors = validate_definition(p, known_processes=["P01"])
        assert any("P_GHOST" in e for e in errors)

    def test_known_subprocess_ok(self):
        p = make(EventType.E2_SCHEDULE, Sequence([Subprocess("P01")]))
        assert validate_definition(p, known_processes=["P01"]) == []

    def test_subprocess_ids(self):
        p = make(
            EventType.E2_SCHEDULE,
            Sequence([Subprocess("A1"), Fork([Subprocess("A2"), Signal()])]),
        )
        assert p.subprocess_ids() == ["A1", "A2"]


class TestAssertHelper:
    def test_raises_with_all_errors(self):
        p = make(EventType.E1_MESSAGE, Sequence([Signal()]))
        with pytest.raises(ProcessDefinitionError):
            assert_valid_definition(p)

    def test_requires_id(self):
        with pytest.raises(ProcessDefinitionError):
            ProcessType("", ProcessGroup.A, "x", EventType.E2_SCHEDULE,
                        Sequence([Signal()]))

    def test_repr(self):
        p = make(EventType.E1_MESSAGE, Sequence([Receive("m"), Signal()]))
        assert "P99" in repr(p)
        assert "E1" in repr(p)
