"""Message payloads and sizes."""

import pytest

from repro.db.relation import Relation
from repro.mtm.message import Message, payload_size
from repro.xmlkit.doc import parse_xml


class TestPayloadKinds:
    def test_relational(self):
        msg = Message(Relation(("k",), [{"k": 1}]))
        assert msg.is_relational and not msg.is_xml
        assert len(msg.relation()) == 1

    def test_xml(self):
        msg = Message(parse_xml("<a><b/></a>"))
        assert msg.is_xml and not msg.is_relational
        assert msg.xml().tag == "a"

    def test_wrong_accessor_raises(self):
        msg = Message("scalar")
        with pytest.raises(TypeError):
            msg.relation()
        with pytest.raises(TypeError):
            msg.xml()

    def test_unique_ids(self):
        assert Message(1).message_id != Message(1).message_id


class TestSizes:
    def test_relation_size_is_rows(self):
        assert payload_size(Relation(("k",), [{"k": 1}, {"k": 2}])) == 2.0

    def test_xml_size_is_elements(self):
        assert payload_size(parse_xml("<a><b/><c/></a>")) == 3.0

    def test_list_size(self):
        assert payload_size([1, 2, 3]) == 3.0

    def test_scalar_size(self):
        assert payload_size(42) == 1.0

    def test_message_size_units(self):
        assert Message(parse_xml("<a/>")).size_units == 1.0


class TestCopy:
    def test_copy_xml_is_deep(self):
        msg = Message(parse_xml("<a><b>t</b></a>"), "m")
        clone = msg.copy()
        clone.xml().find("b").text = "changed"
        assert msg.xml().find("b").text == "t"

    def test_copy_relation_is_deep(self):
        msg = Message(Relation(("k",), [{"k": 1}]))
        clone = msg.copy()
        clone.relation().rows[0]["k"] = 99
        assert msg.relation().rows[0]["k"] == 1

    def test_copy_keeps_type(self):
        msg = Message(1, "typed")
        assert msg.copy().message_type == "typed"
