"""XML document model: building, navigation, parse/serialize."""

import pytest

from repro.errors import XmlParseError
from repro.xmlkit.doc import XmlElement, parse_xml, serialize_xml


class TestBuilding:
    def test_add_returns_child(self):
        root = XmlElement("a")
        child = root.add(XmlElement("b"))
        assert child.tag == "b"
        assert root.children == [child]

    def test_add_text_child(self):
        root = XmlElement("a")
        root.add_text_child("n", 42)
        assert root.find("n").text == "42"

    def test_add_text_child_none_is_empty(self):
        root = XmlElement("a")
        root.add_text_child("n", None)
        assert root.find("n").text is None

    def test_empty_tag_rejected(self):
        with pytest.raises(XmlParseError):
            XmlElement("")


class TestNavigation:
    @pytest.fixture()
    def doc(self):
        return parse_xml(
            "<order id='1'><item>a</item><item>b</item><note>n</note></order>"
        )

    def test_find_first(self, doc):
        assert doc.find("item").text == "a"

    def test_find_missing(self, doc):
        assert doc.find("ghost") is None

    def test_find_all(self, doc):
        assert [e.text for e in doc.find_all("item")] == ["a", "b"]

    def test_child_text_default(self, doc):
        assert doc.child_text("ghost", "dflt") == "dflt"

    def test_iter_preorder(self, doc):
        assert [e.tag for e in doc.iter()] == ["order", "item", "item", "note"]

    def test_size(self, doc):
        assert doc.size() == 4


class TestCopyEquality:
    def test_copy_is_deep(self):
        original = parse_xml("<a><b>t</b></a>")
        clone = original.copy()
        clone.find("b").text = "changed"
        assert original.find("b").text == "t"

    def test_structural_equality(self):
        a = parse_xml("<a x='1'><b>t</b></a>")
        b = parse_xml("<a x='1'><b>t</b></a>")
        assert a.structurally_equal(b)

    def test_attribute_difference_detected(self):
        a = parse_xml("<a x='1'/>")
        b = parse_xml("<a x='2'/>")
        assert not a.structurally_equal(b)

    def test_child_count_difference_detected(self):
        a = parse_xml("<a><b/></a>")
        b = parse_xml("<a><b/><b/></a>")
        assert not a.structurally_equal(b)

    def test_text_whitespace_normalized(self):
        a = parse_xml("<a>t</a>")
        b = XmlElement("a", text="  t  ")
        assert a.structurally_equal(b)


class TestParseSerialize:
    def test_malformed_raises(self):
        with pytest.raises(XmlParseError):
            parse_xml("<a><b></a>")

    def test_round_trip(self):
        text = '<a x="1"><b>t&amp;u</b><c/></a>'
        assert serialize_xml(parse_xml(text)) == text

    def test_escaping(self):
        root = XmlElement("a", {"q": 'say "hi" <now>'}, text="x < y & z")
        round_tripped = parse_xml(serialize_xml(root))
        assert round_tripped.attributes["q"] == 'say "hi" <now>'
        assert round_tripped.text == "x < y & z"

    def test_pretty_print_contains_newlines(self):
        doc = parse_xml("<a><b>t</b></a>")
        pretty = serialize_xml(doc, indent=2)
        assert "\n  <b>" in pretty
        assert parse_xml(pretty).structurally_equal(doc)

    def test_self_closing_for_empty(self):
        assert serialize_xml(XmlElement("empty")) == "<empty/>"

    def test_parser_strips_whitespace_only_text(self):
        doc = parse_xml("<a>\n  <b>t</b>\n</a>")
        assert doc.text is None
