"""XSD-subset validation."""

import pytest

from repro.errors import XsdValidationError
from repro.xmlkit.doc import parse_xml
from repro.xmlkit.xsd import XsdAttribute, XsdChild, XsdElement, XsdSchema


@pytest.fixture()
def order_schema():
    item = XsdElement("Item", content="string")
    root = XsdElement(
        "Order",
        attributes=(
            XsdAttribute("id", "integer", required=True),
            XsdAttribute("note", "string"),
        ),
        children=(
            XsdChild(XsdElement("Date", content="date")),
            XsdChild(XsdElement("Total", content="decimal"), 0, 1),
            XsdChild(item, 1, 3),
        ),
    )
    return XsdSchema("order", root)


class TestValid:
    def test_minimal_valid(self, order_schema):
        doc = parse_xml("<Order id='1'><Date>2007-01-01</Date><Item>x</Item></Order>")
        assert order_schema.validate(doc) == []
        assert order_schema.is_valid(doc)

    def test_optional_elements(self, order_schema):
        doc = parse_xml(
            "<Order id='1' note='hi'><Date>2007-01-01</Date>"
            "<Total>1.5</Total><Item>a</Item><Item>b</Item></Order>"
        )
        assert order_schema.validate(doc) == []


class TestViolations:
    def test_wrong_root(self, order_schema):
        violations = order_schema.validate(parse_xml("<Bogus/>"))
        assert len(violations) == 1
        assert "root" in violations[0]

    def test_missing_required_attribute(self, order_schema):
        doc = parse_xml("<Order><Date>2007-01-01</Date><Item>x</Item></Order>")
        assert any("id" in v for v in order_schema.validate(doc))

    def test_bad_attribute_type(self, order_schema):
        doc = parse_xml("<Order id='xx'><Date>2007-01-01</Date><Item>x</Item></Order>")
        assert any("integer" in v for v in order_schema.validate(doc))

    def test_undeclared_attribute(self, order_schema):
        doc = parse_xml(
            "<Order id='1' hacked='y'><Date>2007-01-01</Date><Item>x</Item></Order>"
        )
        assert any("hacked" in v for v in order_schema.validate(doc))

    def test_undeclared_child(self, order_schema):
        doc = parse_xml(
            "<Order id='1'><Date>2007-01-01</Date><Item>x</Item><Spy/></Order>"
        )
        assert any("Spy" in v for v in order_schema.validate(doc))

    def test_bad_content_type(self, order_schema):
        doc = parse_xml("<Order id='1'><Date>tomorrow</Date><Item>x</Item></Order>")
        assert any("date" in v for v in order_schema.validate(doc))

    def test_min_occurs(self, order_schema):
        doc = parse_xml("<Order id='1'><Date>2007-01-01</Date></Order>")
        assert any("minimum" in v for v in order_schema.validate(doc))

    def test_max_occurs(self, order_schema):
        doc = parse_xml(
            "<Order id='1'><Date>2007-01-01</Date>"
            "<Item>1</Item><Item>2</Item><Item>3</Item><Item>4</Item></Order>"
        )
        assert any("more than" in v for v in order_schema.validate(doc))

    def test_out_of_sequence(self, order_schema):
        doc = parse_xml(
            "<Order id='1'><Item>x</Item><Date>2007-01-01</Date></Order>"
        )
        assert order_schema.validate(doc)

    def test_all_violations_collected(self, order_schema):
        """The validator keeps going after the first problem (P10 needs
        the full diagnosis for the failed-data destination)."""
        doc = parse_xml("<Order id='xx'><Date>nope</Date></Order>")
        assert len(order_schema.validate(doc)) >= 3

    def test_unexpected_text_on_container(self, order_schema):
        doc = parse_xml(
            "<Order id='1'>boo<Date>2007-01-01</Date><Item>x</Item></Order>"
        )
        assert any("text" in v for v in order_schema.validate(doc))


class TestAssertValid:
    def test_raises_with_violations_attached(self, order_schema):
        with pytest.raises(XsdValidationError) as excinfo:
            order_schema.assert_valid(parse_xml("<Order/>"))
        assert excinfo.value.violations

    def test_passes_silently(self, order_schema):
        order_schema.assert_valid(
            parse_xml("<Order id='1'><Date>2007-01-01</Date><Item>x</Item></Order>")
        )


class TestSimpleTypes:
    @pytest.mark.parametrize(
        "type_name,good,bad",
        [
            ("integer", "42", "4.2"),
            ("integer", "-7", "seven"),
            ("decimal", "3.14", "3,14"),
            ("decimal", "-.5", "--5"),
            ("boolean", "true", "maybe"),
            ("boolean", "1", "yes"),
            ("date", "2007-12-31", "2007-13-01"),
        ],
    )
    def test_content_types(self, type_name, good, bad):
        schema = XsdSchema("t", XsdElement("V", content=type_name))
        assert schema.is_valid(parse_xml(f"<V>{good}</V>"))
        assert not schema.is_valid(parse_xml(f"<V>{bad}</V>"))

    def test_unknown_content_type_rejected(self):
        with pytest.raises(XsdValidationError):
            XsdElement("V", content="float")

    def test_unknown_attribute_type_rejected(self):
        with pytest.raises(XsdValidationError):
            XsdAttribute("a", "float")

    def test_bad_occurs_bounds(self):
        with pytest.raises(XsdValidationError):
            XsdChild(XsdElement("x"), 2, 1)
