"""XPath subset evaluation."""

import pytest

from repro.errors import XPathError
from repro.xmlkit.doc import parse_xml
from repro.xmlkit.xpath import xpath_all, xpath_first, xpath_text


@pytest.fixture()
def doc():
    return parse_xml(
        """<catalog version="2">
             <group name="g1">
               <item sku="1"><price>10</price></item>
               <item sku="2"><price>20</price></item>
             </group>
             <group name="g2">
               <item sku="3"><price>30</price></item>
             </group>
             <price>0</price>
           </catalog>"""
    )


class TestAbsolutePaths:
    def test_root_match(self, doc):
        assert xpath_all(doc, "/catalog") == [doc]

    def test_root_mismatch(self, doc):
        assert xpath_all(doc, "/wrong") == []

    def test_nested(self, doc):
        assert len(xpath_all(doc, "/catalog/group/item")) == 3

    def test_attribute_step(self, doc):
        assert xpath_all(doc, "/catalog/@version") == ["2"]

    def test_text_step(self, doc):
        assert xpath_all(doc, "/catalog/group/item/price/text()") == [
            "10", "20", "30",
        ]


class TestDescendantPaths:
    def test_double_slash_document_order(self, doc):
        assert xpath_all(doc, "//price/text()") == ["10", "20", "30", "0"]

    def test_inner_descendant(self, doc):
        assert len(xpath_all(doc, "/catalog//price")) == 4

    def test_descendant_no_duplicates(self):
        d = parse_xml("<a><b><b><c/></b></b></a>")
        assert len(xpath_all(d, "//c")) == 1


class TestRelativePaths:
    def test_relative_from_element(self, doc):
        group = xpath_first(doc, "/catalog/group")
        assert len(xpath_all(group, "item")) == 2

    def test_relative_with_depth(self, doc):
        group = xpath_first(doc, "/catalog/group")
        assert xpath_all(group, "item/price/text()") == ["10", "20"]


class TestPredicates:
    def test_positional(self, doc):
        item = xpath_first(doc, "//item[2]")
        assert item.attributes["sku"] == "2"

    def test_equality_on_child_text(self, doc):
        items = xpath_all(doc, "//item[price='30']")
        assert len(items) == 1
        assert items[0].attributes["sku"] == "3"

    def test_wildcard(self, doc):
        assert len(xpath_all(doc, "/catalog/*")) == 3

    def test_unsupported_predicate(self, doc):
        with pytest.raises(XPathError):
            xpath_all(doc, "//item[last()]")

    def test_position_zero_rejected(self, doc):
        with pytest.raises(XPathError):
            xpath_all(doc, "//item[0]")


class TestHelpers:
    def test_xpath_first_none(self, doc):
        assert xpath_first(doc, "//ghost") is None

    def test_xpath_text_element(self, doc):
        assert xpath_text(doc, "//price") == "10"

    def test_xpath_text_attribute(self, doc):
        assert xpath_text(doc, "/catalog/@version") == "2"

    def test_xpath_text_default(self, doc):
        assert xpath_text(doc, "//ghost", "dflt") == "dflt"


class TestErrors:
    @pytest.mark.parametrize("bad", ["", "/", "//", "a//", "a/[1]", "/a/b[",
                                     "text()/a", "@x/a"])
    def test_rejected_paths(self, doc, bad):
        with pytest.raises(XPathError):
            xpath_all(doc, bad)
