"""STX-like streaming transformations."""

import pytest

from repro.errors import StxError
from repro.xmlkit.doc import XmlElement, parse_xml, serialize_xml
from repro.xmlkit.stx import (
    DropRule,
    END,
    RenameRule,
    START,
    Stylesheet,
    TemplateRule,
    TEXT,
    UnwrapRule,
    ValueRule,
    iter_events,
)


class TestEventStream:
    def test_event_order(self):
        doc = parse_xml("<a x='1'><b>t</b><c/></a>")
        events = list(iter_events(doc))
        kinds = [e[0] for e in events]
        assert kinds == [START, START, TEXT, END, START, END, END]

    def test_start_carries_attributes(self):
        doc = parse_xml("<a x='1'/>")
        assert list(iter_events(doc))[0] == (START, "a", {"x": "1"})

    def test_event_count_scales_with_size(self):
        doc = parse_xml("<a><b/><b/><b/></a>")
        assert len(list(iter_events(doc))) == 8  # 4 starts + 4 ends


class TestRenameRule:
    def test_exact_path(self):
        sheet = Stylesheet("s", [RenameRule("/a", "z")])
        out = sheet.transform(parse_xml("<a><b/></a>"))
        assert out.tag == "z"
        assert out.find("b") is not None

    def test_anywhere_pattern(self):
        sheet = Stylesheet("s", [RenameRule("//b", "x")])
        out = sheet.transform(parse_xml("<a><b/><c><b/></c></a>"))
        assert len([e for e in out.iter() if e.tag == "x"]) == 2

    def test_attribute_rename(self):
        sheet = Stylesheet("s", [RenameRule("/a", "a", {"old": "new"})])
        out = sheet.transform(parse_xml("<a old='1' keep='2'/>"))
        assert out.attributes == {"new": "1", "keep": "2"}

    def test_specific_beats_anywhere(self):
        sheet = Stylesheet("s", [
            RenameRule("//b", "generic"),
            RenameRule("/a/b", "specific"),
        ])
        out = sheet.transform(parse_xml("<a><b/><c><b/></c></a>"))
        assert out.children[0].tag == "specific"
        assert out.find("c").children[0].tag == "generic"


class TestDropAndUnwrap:
    def test_drop_removes_subtree(self):
        sheet = Stylesheet("s", [DropRule("//secret")])
        out = sheet.transform(parse_xml("<a><secret><deep/></secret><b/></a>"))
        assert [c.tag for c in out.children] == ["b"]

    def test_drop_root_raises(self):
        sheet = Stylesheet("s", [DropRule("/a")])
        with pytest.raises(StxError):
            sheet.transform(parse_xml("<a/>"))

    def test_unwrap_keeps_children(self):
        sheet = Stylesheet("s", [UnwrapRule("//wrapper")])
        out = sheet.transform(parse_xml("<a><wrapper><x/><y/></wrapper></a>"))
        assert [c.tag for c in out.children] == ["x", "y"]

    def test_unwrap_root_promotes_child(self):
        sheet = Stylesheet("s", [UnwrapRule("/envelope")])
        out = sheet.transform(parse_xml("<envelope><body><x/></body></envelope>"))
        assert out.tag == "body"

    def test_unwrap_root_with_multiple_children_raises(self):
        sheet = Stylesheet("s", [UnwrapRule("/envelope")])
        with pytest.raises(StxError, match="multiple root"):
            sheet.transform(parse_xml("<envelope><a/><b/></envelope>"))

    def test_nested_unwrap(self):
        sheet = Stylesheet("s", [UnwrapRule("//w1"), UnwrapRule("//w2")])
        out = sheet.transform(parse_xml("<a><w1><w2><x/></w2></w1></a>"))
        assert [c.tag for c in out.children] == ["x"]


class TestValueRule:
    def test_dict_mapping(self):
        sheet = Stylesheet("s", [
            ValueRule("//Stat", to="Status", value_map={"OPEN": "O"}),
        ])
        out = sheet.transform(parse_xml("<m><Stat>OPEN</Stat></m>"))
        assert out.find("Status").text == "O"

    def test_unmapped_value_passes_through(self):
        sheet = Stylesheet("s", [ValueRule("//Stat", value_map={"OPEN": "O"})])
        out = sheet.transform(parse_xml("<m><Stat>WEIRD</Stat></m>"))
        assert out.find("Stat").text == "WEIRD"

    def test_callable_mapping(self):
        sheet = Stylesheet("s", [ValueRule("//n", value_map=lambda t: t.upper())])
        out = sheet.transform(parse_xml("<m><n>abc</n></m>"))
        assert out.find("n").text == "ABC"


class TestTemplateRule:
    def test_build_with_attribute_promotion(self):
        def build(tag, attrs):
            el = XmlElement("Customer")
            el.add_text_child("Key", attrs["k"])
            return el

        sheet = Stylesheet("s", [TemplateRule("//rec", build)])
        out = sheet.transform(parse_xml("<m><rec k='7'><Name>A</Name></rec></m>"))
        customer = out.find("Customer")
        assert customer.children[0].text == "7"
        assert customer.find("Name").text == "A"

    def test_build_returning_none_drops(self):
        sheet = Stylesheet("s", [TemplateRule("//rec", lambda t, a: None)])
        out = sheet.transform(parse_xml("<m><rec><x/></rec><keep/></m>"))
        assert [c.tag for c in out.children] == ["keep"]


class TestStreamingBehaviour:
    def test_identity_without_rules(self):
        doc = parse_xml("<a x='1'><b>t</b></a>")
        out = Stylesheet("s", []).transform(doc)
        assert out.structurally_equal(doc)
        assert out is not doc

    def test_input_not_mutated(self):
        doc = parse_xml("<a><b>t</b></a>")
        Stylesheet("s", [RenameRule("//b", "z")]).transform(doc)
        assert doc.find("b") is not None

    def test_events_processed_accumulates(self):
        sheet = Stylesheet("s", [])
        sheet.transform(parse_xml("<a><b/></a>"))
        first = sheet.events_processed
        sheet.transform(parse_xml("<a><b/></a>"))
        assert sheet.events_processed == 2 * first

    def test_bad_pattern_rejected(self):
        with pytest.raises(StxError):
            RenameRule("", "x")
        with pytest.raises(StxError):
            RenameRule("//", "x")


class TestScenarioShapedTransform:
    def test_full_dialect_translation(self):
        """A miniature of the P01 Beijing→Seoul translation."""

        def build_customer(tag, attrs):
            el = XmlElement("Customer")
            el.add_text_child("Custkey", attrs["custkey"])
            return el

        sheet = Stylesheet("mini", [
            RenameRule("/BeijingMasterData", "SeoulMasterData"),
            TemplateRule("//CustomerRec", build_customer),
            RenameRule("//CName", "Name"),
        ])
        source = parse_xml(
            "<BeijingMasterData>"
            "<CustomerRec custkey='9'><CName>Ada</CName></CustomerRec>"
            "</BeijingMasterData>"
        )
        out = sheet.transform(source)
        assert serialize_xml(out) == (
            "<SeoulMasterData><Customer><Custkey>9</Custkey>"
            "<Name>Ada</Name></Customer></SeoulMasterData>"
        )
