"""Property-based tests on the XML kit (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.relation import Relation
from repro.xmlkit.convert import relation_to_resultset, resultset_to_rows
from repro.xmlkit.doc import XmlElement, parse_xml, serialize_xml
from repro.xmlkit.stx import RenameRule, Stylesheet, iter_events

tags = st.sampled_from(["a", "b", "c", "item", "row"])
texts = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"),
        whitelist_characters=" <>&\"'",
    ),
    max_size=12,
).filter(lambda s: s.strip() == s and s != "")


@st.composite
def elements(draw, depth=0):
    tag = draw(tags)
    attrs = draw(
        st.dictionaries(st.sampled_from(["x", "y"]), texts, max_size=2)
    )
    element = XmlElement(tag, attrs)
    if draw(st.booleans()):
        element.text = draw(texts)
    if depth < 3:
        for child in draw(st.lists(elements(depth=depth + 1), max_size=3)):
            element.children.append(child)
    return element


class TestSerializationProperties:
    @given(elements())
    @settings(max_examples=80)
    def test_parse_serialize_round_trip(self, element):
        assert parse_xml(serialize_xml(element)).structurally_equal(element)

    @given(elements())
    @settings(max_examples=80)
    def test_pretty_print_is_equivalent(self, element):
        pretty = serialize_xml(element, indent=2)
        assert parse_xml(pretty).structurally_equal(element)

    @given(elements())
    def test_copy_equals_original(self, element):
        assert element.copy().structurally_equal(element)

    @given(elements())
    def test_size_equals_iter_length(self, element):
        assert element.size() == len(list(element.iter()))

    @given(elements())
    def test_event_stream_balanced(self, element):
        events = list(iter_events(element))
        starts = sum(1 for e in events if e[0] == "start")
        ends = sum(1 for e in events if e[0] == "end")
        assert starts == ends == element.size()


class TestStxProperties:
    @given(elements())
    @settings(max_examples=60)
    def test_identity_stylesheet(self, element):
        out = Stylesheet("id", []).transform(element)
        assert out.structurally_equal(element)

    @given(elements())
    @settings(max_examples=60)
    def test_rename_then_rename_back(self, element):
        forward = Stylesheet("f", [RenameRule("//a", "tmp_zz")])
        backward = Stylesheet("b", [RenameRule("//tmp_zz", "a")])
        assert backward.transform(forward.transform(element)).structurally_equal(
            element
        )


rows_st = st.lists(
    st.fixed_dictionaries(
        {"k": st.integers(0, 99), "v": st.one_of(st.none(), texts)}
    ),
    max_size=15,
)


class TestConvertProperties:
    @given(rows_st)
    @settings(max_examples=60)
    def test_resultset_round_trip(self, rows):
        relation = Relation(("k", "v"), rows)
        doc = relation_to_resultset(relation, "t")
        back = resultset_to_rows(doc, {"k": "BIGINT", "v": "VARCHAR"})
        assert back == relation.to_dicts()

    @given(rows_st)
    @settings(max_examples=60)
    def test_resultset_survives_text_round_trip(self, rows):
        relation = Relation(("k", "v"), rows)
        doc = parse_xml(serialize_xml(relation_to_resultset(relation, "t")))
        back = resultset_to_rows(doc, {"k": "BIGINT", "v": "VARCHAR"})
        assert back == relation.to_dicts()
