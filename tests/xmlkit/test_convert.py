"""Relation ↔ generic result-set XML converters."""

import datetime
from decimal import Decimal

import pytest

from repro.db.relation import Relation
from repro.errors import XmlParseError
from repro.xmlkit.convert import (
    relation_to_resultset,
    resultset_to_rows,
    rows_to_resultset,
)
from repro.xmlkit.doc import parse_xml, serialize_xml


class TestSerialize:
    def test_shape(self):
        doc = rows_to_resultset(("k", "v"), [{"k": 1, "v": "x"}], table="t")
        assert doc.tag == "ResultSet"
        assert doc.attributes["table"] == "t"
        assert doc.find("Row").find("k").text == "1"

    def test_null_marker(self):
        doc = rows_to_resultset(("k",), [{"k": None}])
        cell = doc.find("Row").find("k")
        assert cell.attributes["null"] == "true"
        assert cell.text is None

    def test_dates_iso_rendered(self):
        doc = rows_to_resultset(("d",), [{"d": datetime.date(2007, 3, 9)}])
        assert doc.find("Row").find("d").text == "2007-03-09"

    def test_from_relation(self):
        rel = Relation(("a",), [{"a": 1}, {"a": 2}])
        doc = relation_to_resultset(rel, "numbers")
        assert len(doc.find_all("Row")) == 2


class TestParse:
    def test_round_trip_typed(self):
        rows = [
            {"k": 7, "price": Decimal("1.50"), "d": datetime.date(2007, 1, 2),
             "name": "x", "flag": True},
            {"k": 8, "price": None, "d": None, "name": None, "flag": False},
        ]
        doc = rows_to_resultset(("k", "price", "d", "name", "flag"), rows)
        types = {"k": "BIGINT", "price": "DECIMAL", "d": "DATE",
                 "name": "VARCHAR", "flag": "BOOLEAN"}
        assert resultset_to_rows(doc, types) == rows

    def test_untyped_columns_stay_strings(self):
        doc = rows_to_resultset(("k",), [{"k": 5}])
        assert resultset_to_rows(doc) == [{"k": "5"}]

    def test_wrong_root_rejected(self):
        with pytest.raises(XmlParseError):
            resultset_to_rows(parse_xml("<NotAResultSet/>"))

    def test_survives_serialization_round_trip(self):
        doc = rows_to_resultset(("k", "v"), [{"k": 1, "v": None}], "t")
        reparsed = parse_xml(serialize_xml(doc))
        assert resultset_to_rows(reparsed, {"k": "INTEGER"}) == [
            {"k": 1, "v": None}
        ]

    def test_double_and_timestamp_types(self):
        doc = rows_to_resultset(
            ("x", "ts"),
            [{"x": 1.5, "ts": datetime.datetime(2007, 1, 2, 3, 4)}],
        )
        parsed = resultset_to_rows(doc, {"x": "DOUBLE", "ts": "TIMESTAMP"})
        assert parsed[0]["x"] == 1.5
        assert parsed[0]["ts"] == datetime.datetime(2007, 1, 2, 3, 4)
