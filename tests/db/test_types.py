"""SQL type system: checking and coercion."""

import datetime
from decimal import Decimal

import pytest

from repro.db.types import coerce_value, type_check, validate_type_name
from repro.errors import SchemaError


class TestValidateTypeName:
    def test_accepts_known_types_case_insensitively(self):
        assert validate_type_name("bigint") == "BIGINT"
        assert validate_type_name("Varchar") == "VARCHAR"

    def test_rejects_unknown_type(self):
        with pytest.raises(SchemaError):
            validate_type_name("BLOB")


class TestTypeCheck:
    def test_none_is_acceptable_for_every_type(self):
        for sql_type in ("INTEGER", "VARCHAR", "DATE", "BOOLEAN", "DECIMAL"):
            assert type_check(sql_type, None)

    def test_integer_accepts_int_rejects_bool(self):
        assert type_check("INTEGER", 4)
        assert not type_check("INTEGER", True)
        assert not type_check("INTEGER", 4.5)

    def test_decimal_accepts_decimal_and_int(self):
        assert type_check("DECIMAL", Decimal("1.5"))
        assert type_check("DECIMAL", 3)
        assert not type_check("DECIMAL", 1.5)

    def test_varchar_and_clob_take_strings(self):
        assert type_check("VARCHAR", "x")
        assert type_check("CLOB", "<xml/>")
        assert not type_check("CLOB", 7)

    def test_date_rejects_datetime(self):
        assert type_check("DATE", datetime.date(2007, 1, 1))
        assert not type_check("DATE", datetime.datetime(2007, 1, 1))

    def test_timestamp_accepts_datetime(self):
        assert type_check("TIMESTAMP", datetime.datetime(2007, 1, 1, 9))

    def test_boolean_strict(self):
        assert type_check("BOOLEAN", True)
        assert not type_check("BOOLEAN", 1)

    def test_unknown_type_raises(self):
        with pytest.raises(SchemaError):
            type_check("ARRAY", [])


class TestCoerceValue:
    def test_none_passes_through(self):
        assert coerce_value("INTEGER", None) is None

    def test_int_from_string(self):
        assert coerce_value("BIGINT", "42") == 42

    def test_bool_not_an_integer(self):
        with pytest.raises(SchemaError):
            coerce_value("INTEGER", True)

    def test_float_to_decimal_rounds(self):
        value = coerce_value("DECIMAL", 19.90000001)
        assert isinstance(value, Decimal)
        assert value == Decimal("19.9")

    def test_decimal_identity(self):
        d = Decimal("7.25")
        assert coerce_value("DECIMAL", d) is d

    def test_date_from_iso_string(self):
        assert coerce_value("DATE", "2007-03-09") == datetime.date(2007, 3, 9)

    def test_date_from_datetime_truncates(self):
        value = coerce_value("DATE", datetime.datetime(2007, 3, 9, 13, 30))
        assert value == datetime.date(2007, 3, 9)

    def test_timestamp_from_date(self):
        value = coerce_value("TIMESTAMP", datetime.date(2007, 3, 9))
        assert value == datetime.datetime(2007, 3, 9)

    def test_varchar_stringifies(self):
        assert coerce_value("VARCHAR", 12) == "12"

    def test_bad_date_raises(self):
        with pytest.raises(SchemaError):
            coerce_value("DATE", "not-a-date")

    def test_bad_decimal_raises(self):
        with pytest.raises(SchemaError):
            coerce_value("DECIMAL", "12,99")

    def test_boolean_from_int(self):
        assert coerce_value("BOOLEAN", 1) is True
        assert coerce_value("BOOLEAN", 0) is False

    def test_boolean_from_string_rejected(self):
        with pytest.raises(SchemaError):
            coerce_value("BOOLEAN", "yes")
