"""Property-based tests on the relational algebra (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.expressions import col, lit
from repro.db.relation import Relation

#: Small row strategy over a fixed two-column schema.
rows_strategy = st.lists(
    st.fixed_dictionaries(
        {"k": st.integers(min_value=0, max_value=20),
         "v": st.sampled_from(["a", "b", "c"])}
    ),
    max_size=30,
)


def make(rows):
    return Relation(("k", "v"), rows)


class TestSelectionProperties:
    @given(rows_strategy, st.integers(min_value=0, max_value=20))
    def test_selection_never_grows(self, rows, threshold):
        r = make(rows)
        assert len(r.select(col("k") > lit(threshold))) <= len(r)

    @given(rows_strategy, st.integers(min_value=0, max_value=20))
    def test_selection_partition(self, rows, threshold):
        """select(p) + select(not p) partitions the bag (no NULLs here)."""
        r = make(rows)
        hits = r.select(col("k") > lit(threshold))
        misses = r.select(~(col("k") > lit(threshold)))
        assert len(hits) + len(misses) == len(r)

    @given(rows_strategy, st.integers(min_value=0, max_value=20))
    def test_selection_idempotent(self, rows, threshold):
        r = make(rows)
        once = r.select(col("k") > lit(threshold))
        twice = once.select(col("k") > lit(threshold))
        assert once.rows == twice.rows


class TestDistinctProperties:
    @given(rows_strategy)
    def test_distinct_idempotent(self, rows):
        r = make(rows).distinct()
        assert r.rows == r.distinct().rows

    @given(rows_strategy)
    def test_keyed_distinct_has_unique_keys(self, rows):
        r = make(rows).distinct(("k",))
        keys = [row["k"] for row in r]
        assert len(keys) == len(set(keys))

    @given(rows_strategy)
    def test_keyed_distinct_keeps_first_occurrence(self, rows):
        r = make(rows)
        deduped = r.distinct(("k",))
        first_by_key = {}
        for row in rows:
            first_by_key.setdefault(row["k"], row["v"])
        for row in deduped:
            assert row["v"] == first_by_key[row["k"]]


class TestUnionProperties:
    @given(rows_strategy, rows_strategy)
    def test_union_all_length(self, a, b):
        assert len(make(a).union_all(make(b))) == len(a) + len(b)

    @given(rows_strategy, rows_strategy)
    def test_union_distinct_bounded(self, a, b):
        merged = make(a).union_distinct(make(b), ("k",))
        distinct_keys = {row["k"] for row in a} | {row["k"] for row in b}
        assert len(merged) == len(distinct_keys)

    @given(rows_strategy, rows_strategy)
    def test_union_distinct_key_set_is_commutative(self, a, b):
        ab = make(a).union_distinct(make(b), ("k",))
        ba = make(b).union_distinct(make(a), ("k",))
        assert {r["k"] for r in ab} == {r["k"] for r in ba}


class TestJoinProperties:
    @given(rows_strategy, rows_strategy)
    @settings(max_examples=50)
    def test_inner_join_size_matches_key_products(self, a, b):
        left = make(a)
        right = Relation(
            ("k", "w"), [{"k": row["k"], "w": row["v"]} for row in b]
        )
        joined = left.join(right, on=[("k", "k")])
        from collections import Counter

        left_counts = Counter(row["k"] for row in a)
        right_counts = Counter(row["k"] for row in b)
        expected = sum(left_counts[k] * right_counts[k] for k in left_counts)
        assert len(joined) == expected

    @given(rows_strategy, rows_strategy)
    @settings(max_examples=50)
    def test_left_join_preserves_left_cardinality_when_right_unique(self, a, b):
        left = make(a)
        right = Relation(
            ("k", "w"), [{"k": row["k"], "w": row["v"]} for row in b]
        ).distinct(("k",))
        joined = left.join(right, on=[("k", "k")], how="left")
        assert len(joined) == len(left)


class TestGroupByProperties:
    @given(rows_strategy)
    def test_counts_sum_to_total(self, rows):
        r = make(rows)
        grouped = r.group_by(("k",), {"n": ("COUNT", None)})
        assert sum(row["n"] for row in grouped) == len(r)

    @given(rows_strategy)
    def test_group_count_equals_distinct_keys(self, rows):
        r = make(rows)
        grouped = r.group_by(("k",), {"n": ("COUNT", None)})
        assert len(grouped) == len({row["k"] for row in rows})


class TestOrderProperties:
    @given(rows_strategy)
    def test_order_by_is_sorted_and_stable_permutation(self, rows):
        r = make(rows).order_by(("k",))
        keys = [row["k"] for row in r]
        assert keys == sorted(keys)
        normalize = lambda rs: sorted(tuple(sorted(row.items())) for row in rs)
        assert normalize(r) == normalize(rows)
