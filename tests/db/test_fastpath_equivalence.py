"""Differential conformance: fast path vs naive path, operator by operator.

The fast path (zero-copy operators, compiled expressions, index joins,
pushdown, incremental MVs) must be observationally identical to the
naive implementation: same ``columns``, same rows in the same order,
same ``rows_read``/``rows_written`` accounting.  Every test here runs
the same operation on both paths over seeded random inputs — including
NULL keys, duplicate keys and empty relations — and compares outputs
exactly.
"""

import random

import pytest

from repro.db import (
    Column,
    Database,
    TableSchema,
    ViewJoin,
    ViewQuery,
    col,
    fastpath,
    func,
    lit,
)
from repro.db.expressions import UnaryOp
from repro.db.relation import Relation


def is_null(expr):
    return UnaryOp("IS NULL", expr)


def is_not_null(expr):
    return UnaryOp("IS NOT NULL", expr)

SEEDS = range(12)

K_VALUES = [None, 0, 1, 2, 3, 3]  # duplicates and NULLs on purpose
V_VALUES = [None, "a", "b", "c", "a"]
W_VALUES = [None, -1.5, 0.0, 2.5, 10.0]


def random_rows(rng, max_rows=14):
    return [
        {
            "k": rng.choice(K_VALUES),
            "v": rng.choice(V_VALUES),
            "w": rng.choice(W_VALUES),
        }
        for _ in range(rng.randrange(max_rows + 1))  # sometimes empty
    ]


def relation(rows):
    return Relation(("k", "v", "w"), [dict(r) for r in rows])


def both_paths(operation, rows, *more_rows):
    """Run ``operation`` on fresh relations via each path; return both."""
    with fastpath.enabled():
        fast = operation(relation(rows), *[relation(r) for r in more_rows])
    with fastpath.disabled():
        naive = operation(relation(rows), *[relation(r) for r in more_rows])
    return fast, naive


def assert_identical(fast, naive):
    assert fast.columns == naive.columns
    assert fast.to_dicts() == naive.to_dicts()


@pytest.mark.parametrize("seed", SEEDS)
class TestOperatorEquivalence:
    def test_select(self, seed):
        rows = random_rows(random.Random(seed))
        predicate = (col("k") > lit(0)) & (col("v") == lit("a"))
        assert_identical(*both_paths(lambda r: r.select(predicate), rows))

    def test_select_null_comparisons(self, seed):
        rows = random_rows(random.Random(seed))
        predicate = (col("k") == lit(None)) | is_null(col("v"))
        assert_identical(*both_paths(lambda r: r.select(predicate), rows))

    def test_select_callable(self, seed):
        rows = random_rows(random.Random(seed))
        assert_identical(
            *both_paths(lambda r: r.select(lambda row: row["k"] == 1), rows)
        )

    def test_project(self, seed):
        rows = random_rows(random.Random(seed))
        mapping = {"key": "k", "twice": col("k") * lit(2)}
        assert_identical(*both_paths(lambda r: r.project(mapping), rows))

    def test_keep(self, seed):
        rows = random_rows(random.Random(seed))
        assert_identical(*both_paths(lambda r: r.keep("v", "k"), rows))

    def test_extend(self, seed):
        rows = random_rows(random.Random(seed))
        expr = func("COALESCE", col("w"), lit(0.0))
        assert_identical(*both_paths(lambda r: r.extend("w2", expr), rows))

    def test_distinct(self, seed):
        rows = random_rows(random.Random(seed))
        assert_identical(*both_paths(lambda r: r.distinct(), rows))
        assert_identical(*both_paths(lambda r: r.distinct(["k"]), rows))

    def test_union_all(self, seed):
        rng = random.Random(seed)
        rows, other = random_rows(rng), random_rows(rng)
        assert_identical(
            *both_paths(lambda r, o: r.union_all(o), rows, other)
        )

    def test_join_inner_and_left(self, seed):
        rng = random.Random(seed)
        rows, other = random_rows(rng), random_rows(rng)
        for how in ("inner", "left"):
            assert_identical(
                *both_paths(
                    lambda r, o: r.join(o, on=[("k", "k")], how=how),
                    rows,
                    other,
                )
            )

    def test_join_multi_key(self, seed):
        rng = random.Random(seed)
        rows, other = random_rows(rng), random_rows(rng)
        assert_identical(
            *both_paths(
                lambda r, o: r.join(o, on=[("k", "k"), ("v", "v")]),
                rows,
                other,
            )
        )

    def test_group_by_all_aggregates(self, seed):
        rows = random_rows(random.Random(seed))
        aggregates = {
            "n": ("COUNT", None),
            "n_w": ("COUNT", "w"),
            "total": ("SUM", "w"),
            "lo": ("MIN", "w"),
            "hi": ("MAX", "w"),
            "mean": ("AVG", "w"),
        }
        assert_identical(
            *both_paths(lambda r: r.group_by(("k",), aggregates), rows)
        )

    def test_order_by(self, seed):
        rows = random_rows(random.Random(seed))
        for descending in (False, True):
            assert_identical(
                *both_paths(
                    lambda r: r.order_by(("k", "v"), descending=descending),
                    rows,
                )
            )

    def test_limit(self, seed):
        rng = random.Random(seed)
        rows = random_rows(rng)
        n = rng.randrange(len(rows) + 2)
        assert_identical(*both_paths(lambda r: r.limit(n), rows))

    def test_chained_pipeline(self, seed):
        rows = random_rows(random.Random(seed))

        def pipeline(r):
            return (
                r.select(is_not_null(col("k")))
                .keep("k", "w")
                .extend("w0", func("COALESCE", col("w"), lit(0.0)))
                .distinct()
                .order_by(("k", "w0"), descending=True)
                .limit(5)
            )

        assert_identical(*both_paths(pipeline, rows))


def make_table(rows, with_index=False):
    table_rows = [dict(r, pk=i) for i, r in enumerate(rows)]
    schema = TableSchema(
        "t",
        [
            Column("pk", "INTEGER", nullable=False),
            Column("k", "INTEGER"),
            Column("v", "VARCHAR"),
            Column("w", "DOUBLE"),
        ],
        primary_key=("pk",),
    )
    db = Database("eq")
    table = db.create_table(schema)
    for row in table_rows:
        table.insert(row)
    if with_index:
        table.create_index("by_k", ["k"])
    return db, table


@pytest.mark.parametrize("seed", SEEDS)
class TestTableBackedEquivalence:
    def test_index_join_matches_hash_join(self, seed):
        rng = random.Random(seed)
        db, _ = make_table(random_rows(rng), with_index=True)
        left = relation(random_rows(rng))

        def run():
            right = db.query("t").keep("k", "v")
            return left.join(right, on=[("k", "k")])

        with fastpath.enabled():
            base = fastpath.STATS.copy()
            fast = run()
            used_index = (fastpath.STATS - base).index_joins
        with fastpath.disabled():
            naive = run()
        assert_identical(fast, naive)
        if len(left) and len(db.table("t")):
            assert used_index == 1  # the probe really took the index

    def test_pk_join_matches(self, seed):
        rng = random.Random(seed)
        db, _ = make_table(random_rows(rng))
        left = Relation(
            ("pk", "x"),
            [
                {"pk": rng.choice([None, 0, 1, 2, 5, 99]), "x": i}
                for i in range(rng.randrange(8))
            ],
        )

        def run():
            return left.join(db.query("t"), on=[("pk", "pk")])

        with fastpath.enabled():
            fast = run()
        with fastpath.disabled():
            naive = run()
        assert_identical(fast, naive)

    def test_pushdown_matches_scan(self, seed):
        rng = random.Random(seed)
        rows = random_rows(rng)
        predicates = [
            col("k") == lit(rng.choice([0, 1, 2, 3, 7])),
            (col("k") == lit(1)) & (col("v") == lit("a")),
            (col("pk") == lit(rng.randrange(6))) & (col("w") > lit(0.0)),
        ]
        for predicate in predicates:
            db_fast, t_fast = make_table(rows, with_index=True)
            db_naive, t_naive = make_table(rows, with_index=True)
            with fastpath.enabled():
                base = fastpath.STATS.copy()
                fast = db_fast.query("t", predicate=predicate)
                pushed = (fastpath.STATS - base).pushdowns
            with fastpath.disabled():
                naive = db_naive.query("t", predicate=predicate)
            assert_identical(fast, naive)
            # The probe answered the query but charged a full scan.
            assert pushed == 1
            assert t_fast.rows_read == t_naive.rows_read

    def test_scan_with_predicate_matches(self, seed):
        rng = random.Random(seed)
        rows = random_rows(rng)
        predicate = (col("k") > lit(0)) | is_null(col("v"))
        _, t_fast = make_table(rows)
        _, t_naive = make_table(rows)
        with fastpath.enabled():
            fast = t_fast.scan(predicate)
        with fastpath.disabled():
            naive = t_naive.scan(predicate)
        assert fast == naive
        assert t_fast.rows_read == t_naive.rows_read

    def test_update_with_expressions_matches(self, seed):
        rng = random.Random(seed)
        rows = random_rows(rng)
        _, t_fast = make_table(rows)
        _, t_naive = make_table(rows)
        predicate = col("k") == lit(1)
        assignments = {"w": col("w") * lit(2), "v": lit("z")}
        with fastpath.enabled():
            n_fast = t_fast.update(assignments, predicate)
        with fastpath.disabled():
            n_naive = t_naive.update(assignments, predicate)
        assert n_fast == n_naive
        assert t_fast.scan() == t_naive.scan()
        assert t_fast.rows_written == t_naive.rows_written


def star_schema(database_name="dwh"):
    db = Database(database_name)
    db.create_table(
        TableSchema(
            "nation",
            [
                Column("nationkey", "INTEGER", nullable=False),
                Column("name", "VARCHAR"),
            ],
            primary_key=("nationkey",),
        )
    )
    db.create_table(
        TableSchema(
            "city",
            [
                Column("citykey", "INTEGER", nullable=False),
                Column("nationkey", "INTEGER"),
            ],
            primary_key=("citykey",),
        )
    )
    db.create_table(
        TableSchema(
            "customer",
            [
                Column("custkey", "INTEGER", nullable=False),
                Column("citykey", "INTEGER"),
                Column("segment", "VARCHAR"),
            ],
            primary_key=("custkey",),
        )
    )
    db.create_table(
        TableSchema(
            "orders",
            [
                Column("orderkey", "INTEGER", nullable=False),
                Column("custkey", "INTEGER"),
                Column("orderdate", "DATE"),
                Column("totalprice", "DOUBLE"),
            ],
            primary_key=("orderkey",),
        )
    )
    for nationkey, name in ((1, "DE"), (2, "FR")):
        db.insert("nation", {"nationkey": nationkey, "name": name})
    for citykey, nationkey in ((10, 1), (11, 1), (20, 2)):
        db.insert("city", {"citykey": citykey, "nationkey": nationkey})
    for custkey, citykey, segment in ((100, 10, "A"), (101, 11, "B"), (102, 20, "A")):
        db.insert(
            "customer",
            {"custkey": custkey, "citykey": citykey, "segment": segment},
        )
    return db


def orders_view_query():
    return ViewQuery(
        fact_table="orders",
        joins=(
            ViewJoin(
                table="customer",
                on=(("custkey", "custkey"),),
                columns=(("custkey", "custkey"), ("citykey", "citykey")),
            ),
            ViewJoin(
                table="city",
                on=(("citykey", "citykey"),),
                columns=(("citykey", "citykey"), ("nationkey", "nationkey")),
            ),
            ViewJoin(
                table="nation",
                on=(("nationkey", "nationkey"),),
                columns=(("nationkey", "nationkey"), ("nation_name", "name")),
            ),
        ),
        extend=(("orderyear", func("YEAR", col("orderdate"))),),
        group_keys=("nation_name", "orderyear"),
        aggregates=(
            ("order_count", ("COUNT", None)),
            ("revenue", ("SUM", "totalprice")),
        ),
    )


def plain_view_query():
    """Ungrouped select/project/join shape (no aggregates)."""
    return ViewQuery(
        fact_table="orders",
        predicate=col("totalprice") > lit(0.0),
        joins=(
            ViewJoin(
                table="customer",
                on=(("custkey", "custkey"),),
                columns=(("custkey", "custkey"), ("segment", "segment")),
            ),
        ),
    )


import datetime


def random_order(rng, orderkey):
    return {
        "orderkey": orderkey,
        "custkey": rng.choice([100, 101, 102, 100]),
        "orderdate": datetime.date(rng.choice([2023, 2024]), 1 + rng.randrange(12), 1),
        "totalprice": rng.choice([-5.0, 10.0, 25.0, 100.0]),
    }


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "make_query", [orders_view_query, plain_view_query], ids=["grouped", "plain"]
)
def test_mv_incremental_vs_full_recompute(seed, make_query):
    """Random insert/update/delete sequences: delta == full, costs equal."""
    rng = random.Random(seed)
    db_fast = star_schema()
    db_naive = star_schema()
    view_fast = db_fast.create_materialized_view("MV", make_query())
    view_naive = db_naive.create_materialized_view("MV", make_query())

    next_key = 1
    next_custkey = 200
    ops = []
    for _ in range(rng.randrange(4, 16)):
        ops.append(rng.choice(["insert", "insert", "insert", "update",
                               "delete", "dim_insert", "refresh"]))
    ops.append("refresh")

    for op in ops:
        if op == "insert":
            row = random_order(rng, next_key)
            next_key += 1
            with fastpath.enabled():
                db_fast.insert("orders", dict(row))
            with fastpath.disabled():
                db_naive.insert("orders", dict(row))
        elif op == "update" and next_key > 1:
            key = rng.randrange(1, next_key)
            assignments = {"totalprice": lit(50.0)}
            predicate = col("orderkey") == lit(key)
            with fastpath.enabled():
                db_fast.table("orders").update(dict(assignments), predicate)
            with fastpath.disabled():
                db_naive.table("orders").update(dict(assignments), predicate)
        elif op == "delete" and next_key > 1:
            key = rng.randrange(1, next_key)
            predicate = col("orderkey") == lit(key)
            with fastpath.enabled():
                db_fast.table("orders").delete(predicate)
            with fastpath.disabled():
                db_naive.table("orders").delete(predicate)
        elif op == "dim_insert":
            next_custkey += 1
            row = {"custkey": next_custkey, "citykey": 10, "segment": "C"}
            with fastpath.enabled():
                db_fast.insert("customer", dict(row))
            with fastpath.disabled():
                db_naive.insert("customer", dict(row))
        elif op == "refresh":
            with fastpath.enabled():
                view_fast.refresh(db_fast)
            with fastpath.disabled():
                view_naive.refresh(db_naive)
            assert view_fast.snapshot.columns == view_naive.snapshot.columns
            assert (
                view_fast.snapshot.to_dicts() == view_naive.snapshot.to_dicts()
            )
            # Delta maintenance must charge exactly what a full
            # recompute would: scan-equivalent reads on every base table.
            for name in ("orders", "customer", "city", "nation"):
                assert (
                    db_fast.table(name).rows_read
                    == db_naive.table(name).rows_read
                ), f"rows_read diverged on {name} after {op}"


@pytest.mark.parametrize(
    "make_query", [orders_view_query, plain_view_query], ids=["grouped", "plain"]
)
def test_single_insert_refresh_is_incremental(make_query):
    """ISSUE acceptance: one appended fact row -> delta, no full recompute."""
    db = star_schema()
    view = db.create_materialized_view("MV", make_query())
    with fastpath.enabled():
        db.insert("orders", random_order(random.Random(7), 1))
        view.refresh(db)  # initial population: necessarily full
        base = fastpath.STATS.copy()
        db.insert("orders", random_order(random.Random(8), 2))
        view.refresh(db)
        delta = fastpath.STATS - base
    assert delta.mv_full_recompute == 0
    assert delta.mv_incremental == 1
    assert delta.mv_delta_rows == 1


def test_mutation_forces_full_recompute():
    db = star_schema()
    view = db.create_materialized_view("MV", orders_view_query())
    with fastpath.enabled():
        db.insert("orders", random_order(random.Random(1), 1))
        view.refresh(db)
        db.table("orders").update(
            {"totalprice": lit(1.0)}, col("orderkey") == lit(1)
        )
        base = fastpath.STATS.copy()
        view.refresh(db)
        delta = fastpath.STATS - base
    assert delta.mv_full_recompute == 1
    assert delta.mv_incremental == 0


def test_dimension_insert_forces_full_recompute():
    db = star_schema()
    view = db.create_materialized_view("MV", orders_view_query())
    with fastpath.enabled():
        db.insert("orders", random_order(random.Random(2), 1))
        view.refresh(db)
        db.insert("customer", {"custkey": 500, "citykey": 10, "segment": "Z"})
        base = fastpath.STATS.copy()
        view.refresh(db)
        delta = fastpath.STATS - base
    assert delta.mv_full_recompute == 1
