"""Table storage: DML, constraints, indexes."""

import pytest

from repro.db import fastpath
from repro.db.expressions import col, lit
from repro.db.schema import Column, TableSchema
from repro.db.table import Table
from repro.errors import IntegrityError, QueryError, SchemaError


@pytest.fixture()
def customers():
    return Table(
        TableSchema(
            "customer",
            [
                Column("custkey", "BIGINT", nullable=False),
                Column("name", "VARCHAR"),
                Column("city", "VARCHAR"),
            ],
            primary_key=("custkey",),
        )
    )


class TestInsert:
    def test_insert_returns_normalized_row(self, customers):
        row = customers.insert({"custkey": "7", "name": "Ada"})
        assert row == {"custkey": 7, "name": "Ada", "city": None}

    def test_duplicate_pk_rejected(self, customers):
        customers.insert({"custkey": 1})
        with pytest.raises(IntegrityError):
            customers.insert({"custkey": 1})

    def test_not_null_enforced(self, customers):
        with pytest.raises(IntegrityError):
            customers.insert({"name": "missing key"})

    def test_unknown_column_rejected(self, customers):
        with pytest.raises(SchemaError):
            customers.insert({"custkey": 1, "ghost": 2})

    def test_insert_many_counts(self, customers):
        n = customers.insert_many({"custkey": i} for i in range(5))
        assert n == 5
        assert len(customers) == 5


class TestUpsert:
    def test_upsert_inserts_when_new(self, customers):
        customers.upsert({"custkey": 1, "name": "A"})
        assert len(customers) == 1

    def test_upsert_replaces_existing(self, customers):
        customers.upsert({"custkey": 1, "name": "old"})
        customers.upsert({"custkey": 1, "name": "new"})
        assert len(customers) == 1
        assert customers.get(1)["name"] == "new"

    def test_upsert_requires_pk(self):
        table = Table(TableSchema("t", [Column("a", "INTEGER")]))
        with pytest.raises(IntegrityError):
            table.upsert({"a": 1})


class TestDeleteUpdate:
    def test_delete_with_predicate(self, customers):
        customers.insert_many({"custkey": i, "city": "B" if i % 2 else "P"}
                              for i in range(6))
        removed = customers.delete(col("city") == lit("B"))
        assert removed == 3
        assert len(customers) == 3

    def test_delete_with_callable(self, customers):
        customers.insert_many({"custkey": i} for i in range(4))
        assert customers.delete(lambda r: r["custkey"] >= 2) == 2

    def test_delete_all(self, customers):
        customers.insert_many({"custkey": i} for i in range(4))
        assert customers.delete() == 4
        assert len(customers) == 0

    def test_truncate(self, customers):
        customers.insert({"custkey": 1})
        customers.truncate()
        assert len(customers) == 0

    def test_pk_index_rebuilt_after_delete(self, customers):
        customers.insert_many({"custkey": i} for i in range(4))
        customers.delete(col("custkey") == lit(0))
        assert customers.get(3)["custkey"] == 3
        assert customers.get(0) is None

    def test_update_with_expression_value(self, customers):
        customers.insert({"custkey": 1, "name": "a"})
        n = customers.update({"name": lit("b")}, col("custkey") == lit(1))
        assert n == 1
        assert customers.get(1)["name"] == "b"

    def test_update_all_rows(self, customers):
        customers.insert_many({"custkey": i} for i in range(3))
        assert customers.update({"city": "X"}) == 3

    def test_update_validates_types(self, customers):
        customers.insert({"custkey": 1})
        with pytest.raises(IntegrityError):
            customers.update({"custkey": None})


class TestReads:
    def test_get_by_scalar_key(self, customers):
        customers.insert({"custkey": 5, "name": "E"})
        assert customers.get(5)["name"] == "E"

    def test_get_missing_returns_none(self, customers):
        assert customers.get(99) is None

    def test_get_without_pk_raises(self):
        table = Table(TableSchema("t", [Column("a", "INTEGER")]))
        with pytest.raises(QueryError):
            table.get(1)

    def test_scan_with_filter(self, customers):
        customers.insert_many({"custkey": i, "city": "B"} for i in range(3))
        assert len(customers.scan(col("custkey") > lit(0))) == 2

    def test_scan_returns_copies_on_naive_path(self, customers):
        customers.insert({"custkey": 1, "name": "x"})
        with fastpath.disabled():
            rows = customers.scan()
        rows[0]["name"] = "mutated"
        assert customers.get(1)["name"] == "x"

    def test_scan_shares_rows_on_fast_path(self, customers):
        # Zero-copy contract: reads hand out the stored dicts by
        # reference; callers treat them as immutable and go through
        # update()/upsert() for writes (the table itself never mutates a
        # stored dict in place, so sharing is safe).
        customers.insert({"custkey": 1, "name": "x"})
        with fastpath.enabled():
            rows = customers.scan()
            assert rows[0] is customers.get(1)

    def test_to_relation(self, customers):
        customers.insert({"custkey": 1})
        relation = customers.to_relation()
        assert relation.columns == ("custkey", "name", "city")
        assert len(relation) == 1


class TestSecondaryIndexes:
    def test_lookup(self, customers):
        customers.insert_many(
            {"custkey": i, "city": "B" if i % 2 else "P"} for i in range(10)
        )
        customers.create_index("by_city", ["city"])
        assert len(customers.lookup("by_city", "B")) == 5

    def test_index_maintained_on_insert(self, customers):
        customers.create_index("by_city", ["city"])
        customers.insert({"custkey": 1, "city": "B"})
        assert len(customers.lookup("by_city", "B")) == 1

    def test_index_rebuilt_on_delete(self, customers):
        customers.create_index("by_city", ["city"])
        customers.insert_many({"custkey": i, "city": "B"} for i in range(3))
        customers.delete(col("custkey") == lit(0))
        assert len(customers.lookup("by_city", "B")) == 2

    def test_duplicate_index_name(self, customers):
        customers.create_index("i", ["city"])
        with pytest.raises(SchemaError):
            customers.create_index("i", ["name"])

    def test_unknown_index_column(self, customers):
        with pytest.raises(SchemaError):
            customers.create_index("i", ["ghost"])

    def test_unknown_index_lookup(self, customers):
        with pytest.raises(QueryError):
            customers.lookup("ghost", 1)

    def test_key_arity_checked(self, customers):
        customers.create_index("i", ["city", "name"])
        with pytest.raises(QueryError):
            customers.lookup("i", "B")


class TestStatistics:
    def test_reads_and_writes_counted(self, customers):
        customers.insert({"custkey": 1})
        customers.scan()
        customers.get(1)
        assert customers.rows_written == 1
        assert customers.rows_read >= 2
