"""Database catalog: DDL, triggers, procedures, MVs, integrity."""

import pytest

from repro.db import Column, Database, TableSchema
from repro.db.schema import ForeignKey
from repro.errors import IntegrityError, ProcedureError, SchemaError


@pytest.fixture()
def db():
    database = Database("test")
    database.create_table(
        TableSchema(
            "customer",
            [Column("custkey", "BIGINT", nullable=False),
             Column("name", "VARCHAR")],
            primary_key=("custkey",),
        )
    )
    database.create_table(
        TableSchema(
            "orders",
            [Column("orderkey", "BIGINT", nullable=False),
             Column("custkey", "BIGINT", nullable=False)],
            primary_key=("orderkey",),
            foreign_keys=[ForeignKey(("custkey",), "customer", ("custkey",))],
        )
    )
    return database


class TestDdl:
    def test_duplicate_table_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_table(TableSchema("customer", [Column("x", "INTEGER")]))

    def test_table_names_sorted(self, db):
        assert db.table_names == ["customer", "orders"]

    def test_drop_table(self, db):
        db.drop_table("orders")
        assert not db.has_table("orders")

    def test_drop_unknown_table(self, db):
        with pytest.raises(SchemaError):
            db.drop_table("ghost")

    def test_drop_table_removes_its_triggers(self, db):
        db.create_trigger("t", "orders", lambda d, r: None)
        db.drop_table("orders")
        with pytest.raises(SchemaError):
            db.trigger("t")


class TestTriggers:
    def test_after_insert_fires(self, db):
        fired = []
        db.create_trigger("t", "customer", lambda d, row: fired.append(row))
        db.insert("customer", {"custkey": 1, "name": "A"})
        assert fired == [{"custkey": 1, "name": "A"}]

    def test_trigger_sees_database(self, db):
        """Fig. 9a: the trigger body runs integration logic on the db."""

        def body(database, row):
            database.table("orders").insert(
                {"orderkey": row["custkey"] * 100, "custkey": row["custkey"]}
            )

        db.create_trigger("t", "customer", body)
        db.insert("customer", {"custkey": 2})
        assert len(db.table("orders")) == 1

    def test_disabled_trigger_does_not_fire(self, db):
        fired = []
        trigger = db.create_trigger("t", "customer", lambda d, r: fired.append(1))
        trigger.enabled = False
        db.insert("customer", {"custkey": 1})
        assert not fired

    def test_fire_count(self, db):
        trigger = db.create_trigger("t", "customer", lambda d, r: None)
        db.insert_many("customer", [{"custkey": i} for i in range(3)])
        assert trigger.fire_count == 3

    def test_trigger_on_unknown_table(self, db):
        with pytest.raises(SchemaError):
            db.create_trigger("t", "ghost", lambda d, r: None)

    def test_duplicate_trigger_name(self, db):
        db.create_trigger("t", "customer", lambda d, r: None)
        with pytest.raises(SchemaError):
            db.create_trigger("t", "customer", lambda d, r: None)

    def test_direct_table_insert_bypasses_triggers(self, db):
        """Only Database.insert dispatches triggers (documented contract)."""
        fired = []
        db.create_trigger("t", "customer", lambda d, r: fired.append(1))
        db.table("customer").insert({"custkey": 9})
        assert not fired


class TestProcedures:
    def test_call_with_params(self, db):
        db.create_procedure("add", lambda d, a, b: a + b)
        assert db.call_procedure("add", a=2, b=3) == 5

    def test_procedure_gets_database(self, db):
        db.create_procedure("count", lambda d: len(d.table("customer")))
        db.insert("customer", {"custkey": 1})
        assert db.call_procedure("count") == 1

    def test_missing_procedure(self, db):
        with pytest.raises(ProcedureError):
            db.call_procedure("ghost")

    def test_failure_wrapped(self, db):
        db.create_procedure("boom", lambda d: 1 / 0)
        with pytest.raises(ProcedureError, match="boom"):
            db.call_procedure("boom")

    def test_call_count(self, db):
        proc = db.create_procedure("noop", lambda d: None)
        db.call_procedure("noop")
        db.call_procedure("noop")
        assert proc.call_count == 2

    def test_duplicate_name(self, db):
        db.create_procedure("p", lambda d: None)
        with pytest.raises(SchemaError):
            db.create_procedure("p", lambda d: None)


class TestMaterializedViews:
    def test_refresh_and_snapshot(self, db):
        view = db.create_materialized_view(
            "cust_mv", lambda d: d.query("customer")
        )
        db.insert("customer", {"custkey": 1})
        assert view.refresh(db) == 1
        assert len(view.snapshot) == 1

    def test_snapshot_is_stale_until_refresh(self, db):
        view = db.create_materialized_view("mv", lambda d: d.query("customer"))
        view.refresh(db)
        db.insert("customer", {"custkey": 1})
        assert len(view.snapshot) == 0

    def test_unrefreshed_snapshot_raises(self, db):
        view = db.create_materialized_view("mv", lambda d: d.query("customer"))
        with pytest.raises(ProcedureError):
            _ = view.snapshot

    def test_invalidate(self, db):
        view = db.create_materialized_view("mv", lambda d: d.query("customer"))
        view.refresh(db)
        view.invalidate()
        assert not view.is_populated


class TestMaintenance:
    def test_truncate_all_clears_tables_and_views(self, db):
        view = db.create_materialized_view("mv", lambda d: d.query("customer"))
        db.insert("customer", {"custkey": 1})
        view.refresh(db)
        db.truncate_all()
        assert len(db.table("customer")) == 0
        assert not view.is_populated

    def test_statistics_delta(self, db):
        before = db.statistics()
        db.insert("customer", {"custkey": 1})
        db.query("customer")
        delta = db.statistics() - before
        assert delta.rows_written == 1
        assert delta.rows_read == 1


class TestIntegrity:
    def test_clean_database_passes(self, db):
        db.insert("customer", {"custkey": 1})
        db.insert("orders", {"orderkey": 10, "custkey": 1})
        assert db.check_integrity() == []

    def test_orphan_detected(self, db):
        db.insert("orders", {"orderkey": 10, "custkey": 99})
        violations = db.check_integrity()
        assert len(violations) == 1
        assert "99" in violations[0]

    def test_null_fk_is_allowed(self):
        database = Database("t")
        database.create_table(TableSchema("p", [Column("k", "INTEGER", nullable=False)],
                                          primary_key=("k",)))
        database.create_table(
            TableSchema(
                "c",
                [Column("k", "INTEGER", nullable=False), Column("pk", "INTEGER")],
                primary_key=("k",),
                foreign_keys=[ForeignKey(("pk",), "p", ("k",))],
            )
        )
        database.insert("c", {"k": 1, "pk": None})
        assert database.check_integrity() == []

    def test_child_first_load_then_parent_passes(self, db):
        """Deferred checking: staging loads children before parents."""
        db.insert("orders", {"orderkey": 1, "custkey": 5})
        db.insert("customer", {"custkey": 5})
        assert db.check_integrity() == []
