"""Expression language: evaluation, null semantics, functions."""

import datetime

import pytest

from repro.db.expressions import (
    BinaryOp,
    FunctionCall,
    Literal,
    UnaryOp,
    col,
    func,
    lit,
)
from repro.errors import QueryError

ROW = {"a": 5, "b": 2, "name": "Ada", "none_col": None,
       "d": datetime.date(2007, 3, 9)}


class TestBasics:
    def test_column_lookup(self):
        assert col("a").evaluate(ROW) == 5

    def test_unknown_column_raises(self):
        with pytest.raises(QueryError):
            col("ghost").evaluate(ROW)

    def test_literal(self):
        assert lit(7).evaluate(ROW) == 7

    def test_comparison_operators(self):
        assert (col("a") > lit(4)).evaluate(ROW) is True
        assert (col("a") <= col("b")).evaluate(ROW) is False
        assert (col("a") != col("b")).evaluate(ROW) is True

    def test_arithmetic(self):
        assert (col("a") + col("b")).evaluate(ROW) == 7
        assert (col("a") * lit(3)).evaluate(ROW) == 15
        assert (col("a") - lit(1)).evaluate(ROW) == 4

    def test_bare_values_become_literals(self):
        assert (col("a") == 5).evaluate(ROW) is True

    def test_referenced_columns(self):
        expr = (col("a") + col("b")) > lit(0)
        assert expr.referenced_columns() == {"a", "b"}


class TestNullSemantics:
    def test_comparison_with_null_is_null(self):
        assert (col("none_col") == lit(1)).evaluate(ROW) is None
        assert (col("none_col") < lit(1)).evaluate(ROW) is None

    def test_and_short_circuit_false(self):
        expr = (col("a") > lit(100)) & (col("none_col") == lit(1))
        assert expr.evaluate(ROW) is False

    def test_and_with_null_is_null(self):
        expr = (col("a") > lit(0)) & (col("none_col") == lit(1))
        assert expr.evaluate(ROW) is None

    def test_or_with_true_wins_over_null(self):
        expr = (col("none_col") == lit(1)) | (col("a") > lit(0))
        assert expr.evaluate(ROW) is True

    def test_or_with_null_is_null(self):
        expr = (col("none_col") == lit(1)) | (col("a") > lit(100))
        assert expr.evaluate(ROW) is None

    def test_not_null_is_null(self):
        assert (~(col("none_col") == lit(1))).evaluate(ROW) is None

    def test_is_null(self):
        assert UnaryOp("IS NULL", col("none_col")).evaluate(ROW) is True
        assert UnaryOp("IS NOT NULL", col("a")).evaluate(ROW) is True


class TestFunctions:
    def test_string_functions(self):
        assert func("UPPER", col("name")).evaluate(ROW) == "ADA"
        assert func("LOWER", col("name")).evaluate(ROW) == "ada"
        assert func("LENGTH", col("name")).evaluate(ROW) == 3

    def test_substr(self):
        assert func("SUBSTR", col("name"), 2).evaluate(ROW) == "da"
        assert func("SUBSTR", col("name"), 1, 2).evaluate(ROW) == "Ad"

    def test_concat(self):
        assert func("CONCAT", col("name"), lit("!")).evaluate(ROW) == "Ada!"

    def test_concat_null_propagates(self):
        assert func("CONCAT", col("name"), col("none_col")).evaluate(ROW) is None

    def test_coalesce(self):
        assert func("COALESCE", col("none_col"), col("a")).evaluate(ROW) == 5

    def test_time_dimension_functions(self):
        """The DWH time dimension is built-in functions (Fig. 3)."""
        assert func("YEAR", col("d")).evaluate(ROW) == 2007
        assert func("MONTH", col("d")).evaluate(ROW) == 3
        assert func("DAY", col("d")).evaluate(ROW) == 9

    def test_null_date_functions(self):
        assert func("YEAR", col("none_col")).evaluate(ROW) is None

    def test_abs(self):
        assert func("ABS", lit(-4)).evaluate(ROW) == 4

    def test_unknown_function_rejected(self):
        with pytest.raises(QueryError):
            FunctionCall("MYSTERY")

    def test_unknown_binary_op_rejected(self):
        with pytest.raises(QueryError):
            BinaryOp("<=>", Literal(1), Literal(2))

    def test_unknown_unary_op_rejected(self):
        with pytest.raises(QueryError):
            UnaryOp("SQRT", Literal(1))

    def test_type_error_becomes_query_error(self):
        with pytest.raises(QueryError):
            (col("a") + col("name")).evaluate(ROW)
