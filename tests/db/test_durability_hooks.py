"""Storage-facing table/database surface: incremental index maintenance,
index DDL parity, change listeners, redo, counters and statistics deltas."""

import pytest

from repro.db.database import Database, DatabaseStatistics
from repro.db.schema import Column, TableSchema
from repro.db.table import Table
from repro.errors import QueryError, SchemaError


def orders_schema():
    return TableSchema(
        "orders",
        [
            Column("orderkey", "BIGINT", nullable=False),
            Column("custkey", "BIGINT"),
            Column("status", "VARCHAR"),
        ],
        primary_key=("orderkey",),
    )


@pytest.fixture()
def orders():
    table = Table(orders_schema())
    table.create_index("idx_cust", ("custkey",))
    for k, c, s in ((1, 10, "open"), (2, 20, "open"), (3, 10, "done")):
        table.insert({"orderkey": k, "custkey": c, "status": s})
    return table


def rebuilt_lookup(table, index_name, key):
    """The ground truth: what a full index rebuild would answer."""
    clone = Table(table.schema)
    clone.restore_rows([dict(r) for r in table])
    clone.create_index(index_name, table.index_columns(index_name))
    return clone.lookup(index_name, key)


class TestIncrementalIndexMaintenance:
    def test_upsert_moves_secondary_bucket(self, orders):
        orders.upsert({"orderkey": 2, "custkey": 10, "status": "open"})
        assert [r["orderkey"] for r in orders.lookup("idx_cust", (10,))] \
            == [1, 2, 3]
        assert orders.lookup("idx_cust", (20,)) == []

    def test_update_patches_pk_and_secondary(self, orders):
        orders.update({"custkey": 99},
                      lambda row: row["orderkey"] == 1)
        assert orders.lookup("idx_cust", (10,))[0]["orderkey"] == 3
        assert orders.lookup("idx_cust", (99,))[0]["orderkey"] == 1
        assert orders.get(1)["custkey"] == 99

    def test_update_of_pk_column_rekeys(self, orders):
        orders.update({"orderkey": 7},
                      lambda row: row["orderkey"] == 2)
        assert orders.get(2) is None
        assert orders.get(7)["custkey"] == 20

    def test_incremental_matches_full_rebuild_order(self, orders):
        # Interleave inserts and updates, then compare against a clone
        # whose index was built in one pass over the final rows.
        orders.insert({"orderkey": 4, "custkey": 10, "status": "open"})
        orders.update({"custkey": 10}, lambda row: row["orderkey"] == 2)
        orders.upsert({"orderkey": 5, "custkey": 10, "status": "new"})
        assert orders.lookup("idx_cust", (10,)) \
            == rebuilt_lookup(orders, "idx_cust", (10,))


class TestIndexDdl:
    def test_drop_index(self, orders):
        orders.drop_index("idx_cust")
        assert not orders.has_index("idx_cust")
        with pytest.raises(QueryError):
            orders.lookup("idx_cust", (10,))

    def test_drop_unknown_index(self, orders):
        with pytest.raises(SchemaError, match="no index"):
            orders.drop_index("ghost")

    def test_index_introspection(self, orders):
        orders.create_index("idx_status", ("status",))
        assert orders.index_names == ["idx_cust", "idx_status"]
        assert orders.index_columns("idx_cust") == ("custkey",)

    def test_database_list_indexes(self):
        db = Database("cdb")
        db.create_table(orders_schema())
        db.table("orders").create_index("idx_cust", ("custkey",))
        assert db.list_indexes() == {
            "orders": [("idx_cust", ("custkey",))],
        }


class TestChangeListener:
    def collect(self, table):
        events = []
        table.listener = lambda name, op, payload: events.append((name, op))
        return events

    def test_dml_emits_logical_records(self, orders):
        events = self.collect(orders)
        orders.insert({"orderkey": 9, "custkey": 1})
        orders.upsert({"orderkey": 9, "custkey": 2})
        orders.delete(lambda row: row["orderkey"] == 9)
        orders.truncate()
        assert [op for _, op in events] \
            == ["insert", "upsert", "delete_at", "truncate"]

    def test_restore_and_dump_bypass_listener_and_counters(self, orders):
        events = self.collect(orders)
        written = orders.rows_written
        read = orders.rows_read
        rows = orders.dump_rows()
        orders.restore_rows(rows)
        assert events == []
        assert orders.rows_written == written
        assert orders.rows_read == read


class TestRedo:
    def test_redo_replays_dml_without_firing_triggers(self):
        db = Database("cdb")
        db.create_table(orders_schema())
        fired = []
        db.create_trigger("trg", "orders",
                          lambda d, row: fired.append(row["orderkey"]))
        db.redo("orders", "insert", ({"orderkey": 1, "custkey": 10,
                                      "status": "open"},))
        assert len(db.table("orders")) == 1
        assert fired == []  # trigger effects are journaled separately

    def test_redo_unknown_op_rejected(self, orders):
        with pytest.raises(QueryError, match="redo"):
            orders.redo("warp", ())


class TestStatistics:
    def test_subtraction_is_fieldwise(self):
        a = DatabaseStatistics(10, 8, 3, 2)
        b = DatabaseStatistics(4, 5, 1, 2)
        assert a - b == DatabaseStatistics(6, 3, 2, 0)

    def test_counter_state_round_trip(self):
        db = Database("cdb")
        db.create_table(orders_schema())
        db.insert("orders", {"orderkey": 1, "custkey": 10})
        saved = db.counter_state()
        before = db.statistics()

        # Divergent work after the "commit", then a crash-style restore.
        db.insert("orders", {"orderkey": 2, "custkey": 20})
        db.table("orders").scan()
        db.restore_counter_state(saved)

        assert db.statistics() == before
        assert db.statistics().rows_written == 1

    def test_replay_does_not_double_count(self):
        """Redo bumps live counters, but recovery overwrites them with
        the committed values — the statistics delta a monitor computes
        across a crash must equal the fault-free delta."""
        db = Database("cdb")
        db.create_table(orders_schema())
        db.insert("orders", {"orderkey": 1, "custkey": 10})
        committed = db.counter_state()
        stats_at_commit = db.statistics()

        # Crash: content lost, then redo replays the committed insert.
        db.table("orders").restore_rows([])
        db.redo("orders", "insert", ({"orderkey": 1, "custkey": 10,
                                      "status": None},))
        assert db.statistics().rows_written == 2  # replay counted twice...
        db.restore_counter_state(committed)
        assert db.statistics() == stats_at_commit  # ...until the overwrite
