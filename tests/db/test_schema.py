"""Table/column definitions and their validation."""

import pytest

from repro.db.schema import Column, ForeignKey, TableSchema
from repro.errors import SchemaError


class TestColumn:
    def test_canonicalizes_type(self):
        assert Column("k", "bigint").sql_type == "BIGINT"

    def test_rejects_bad_name(self):
        with pytest.raises(SchemaError):
            Column("not a name", "INTEGER")

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Column("", "INTEGER")

    def test_rejects_nonpositive_length(self):
        with pytest.raises(SchemaError):
            Column("k", "VARCHAR", length=0)

    def test_is_frozen(self):
        column = Column("k", "INTEGER")
        with pytest.raises(AttributeError):
            column.name = "other"


class TestForeignKey:
    def test_column_count_must_match(self):
        with pytest.raises(SchemaError):
            ForeignKey(("a", "b"), "parent", ("x",))

    def test_needs_at_least_one_column(self):
        with pytest.raises(SchemaError):
            ForeignKey((), "parent", ())


class TestTableSchema:
    def _schema(self):
        return TableSchema(
            "orders",
            [
                Column("orderkey", "BIGINT", nullable=False),
                Column("custkey", "BIGINT", nullable=False),
                Column("note", "VARCHAR"),
            ],
            primary_key=("orderkey",),
            foreign_keys=[ForeignKey(("custkey",), "customer", ("custkey",))],
        )

    def test_column_names_preserve_order(self):
        assert self._schema().column_names == ("orderkey", "custkey", "note")

    def test_column_lookup(self):
        assert self._schema().column("note").sql_type == "VARCHAR"

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            self._schema().column("nope")

    def test_has_column(self):
        schema = self._schema()
        assert schema.has_column("custkey")
        assert not schema.has_column("ghost")

    def test_pk_extraction(self):
        row = {"orderkey": 9, "custkey": 1, "note": None}
        assert self._schema().pk_of(row) == (9,)

    def test_rejects_duplicate_columns(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", "INTEGER"), Column("a", "INTEGER")])

    def test_rejects_unknown_pk_column(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", "INTEGER")], primary_key=("b",))

    def test_rejects_unknown_fk_column(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", "INTEGER")],
                foreign_keys=[ForeignKey(("b",), "p", ("x",))],
            )

    def test_rejects_empty_table(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_rejects_bad_table_name(self):
        with pytest.raises(SchemaError):
            TableSchema("no spaces", [Column("a", "INTEGER")])
