"""Differential conformance: columnar batch kernels vs the scalar fast path.

``repro.db.vector`` answers selections with compiled bitmask kernels,
joins with column-array probes and group-bys with position-gathered
folds.  Every batch kernel must be observationally identical to the
scalar fast path it replaces: same ``columns``, same rows in the same
order, same ``rows_read``/``rows_copied``/``rows_shared`` accounting,
same errors.  Every test here runs the same operation on both paths —
scalar (``vector.disabled()``) and batched (``vector.enabled(0)``, so
the threshold never masks a kernel) — over seeded random inputs
including NULL keys, duplicate keys and empty relations, and compares
outputs and counters exactly.

The suite ends with whole-benchmark differentials: full runs at
d ∈ {0.05, 0.1} whose result fingerprints and landscape digests must be
byte-identical with the kernels on and off.
"""

import random

import pytest

from repro.db import (
    Column,
    Database,
    TableSchema,
    ViewJoin,
    ViewQuery,
    col,
    fastpath,
    func,
    lit,
    vector,
)
from repro.db.expressions import UnaryOp
from repro.db.relation import Relation
from repro.parallel import RunSpec
from repro.parallel.spec import run_spec


def is_null(expr):
    return UnaryOp("IS NULL", expr)


def is_not_null(expr):
    return UnaryOp("IS NOT NULL", expr)


SEEDS = range(10)

K_VALUES = [None, 0, 1, 2, 3, 3]  # duplicates and NULLs on purpose
V_VALUES = [None, "a", "b", "c", "a"]
W_VALUES = [None, -1.5, 0.0, 2.5, 10.0]

#: Kernel counters both paths must charge identically: they feed the
#: accounting the NAVG+ work model observes.  (masks_compiled and
#: expr_compiled legitimately differ — they count which compiler ran,
#: not work done; per-table rows_read/rows_written parity is asserted in
#: the table-backed tests.)
PARITY_COUNTERS = ("rows_copied", "rows_shared")


def random_rows(rng, max_rows=40):
    return [
        {
            "k": rng.choice(K_VALUES),
            "v": rng.choice(V_VALUES),
            "w": rng.choice(W_VALUES),
        }
        for _ in range(rng.randrange(max_rows + 1))  # sometimes empty
    ]


def relation(rows):
    return Relation(("k", "v", "w"), [dict(r) for r in rows])


def both_paths(operation, rows, *more_rows):
    """Run ``operation`` per path; return (vector, scalar, deltas)."""
    with fastpath.enabled():
        with vector.enabled(0):
            base = fastpath.STATS.copy()
            vectored = operation(relation(rows), *[relation(r) for r in more_rows])
            vector_delta = fastpath.STATS - base
        with vector.disabled():
            base = fastpath.STATS.copy()
            scalar = operation(relation(rows), *[relation(r) for r in more_rows])
            scalar_delta = fastpath.STATS - base
    return vectored, scalar, vector_delta, scalar_delta


def assert_identical(vectored, scalar, vector_delta=None, scalar_delta=None):
    assert vectored.columns == scalar.columns
    assert vectored.to_dicts() == scalar.to_dicts()
    if vector_delta is not None:
        for counter in PARITY_COUNTERS:
            assert getattr(vector_delta, counter) == getattr(
                scalar_delta, counter
            ), f"{counter} diverged between vector and scalar paths"


@pytest.mark.parametrize("seed", SEEDS)
class TestVectorOperatorEquivalence:
    def test_select_simple(self, seed):
        rows = random_rows(random.Random(seed))
        predicate = (col("k") > lit(0)) & (col("v") == lit("a"))
        vec, scalar, vd, sd = both_paths(lambda r: r.select(predicate), rows)
        assert_identical(vec, scalar, vd, sd)
        assert vd.vector_filters == 1
        assert sd.vector_filters == 0

    def test_select_null_semantics(self, seed):
        rows = random_rows(random.Random(seed))
        predicates = [
            (col("k") == lit(None)) | is_null(col("v")),
            is_not_null(col("k")) & (col("w") >= lit(0.0)),
            ~((col("v") == lit("a")) | (col("k") < lit(2))),
        ]
        for predicate in predicates:
            vec, scalar, vd, sd = both_paths(
                lambda r: r.select(predicate), rows
            )
            assert_identical(vec, scalar, vd, sd)
            assert vd.vector_filters == 1

    def test_select_column_column(self, seed):
        rows = random_rows(random.Random(seed))
        predicate = col("k") == col("w")
        vec, scalar, vd, sd = both_paths(lambda r: r.select(predicate), rows)
        assert_identical(vec, scalar, vd, sd)
        assert vd.vector_filters == 1

    def test_select_unsupported_falls_back(self, seed):
        """Grammar the mask compiler rejects runs the scalar loop."""
        rows = random_rows(random.Random(seed))
        predicate = func("COALESCE", col("w"), lit(0.0)) > lit(1.0)
        vec, scalar, vd, sd = both_paths(lambda r: r.select(predicate), rows)
        assert_identical(vec, scalar, vd, sd)
        assert vd.vector_filters == 0  # declined, not answered

    def test_join_inner_and_left(self, seed):
        rng = random.Random(seed)
        rows, other = random_rows(rng), random_rows(rng)
        for how in ("inner", "left"):
            vec, scalar, vd, sd = both_paths(
                lambda r, o: r.join(o, on=[("k", "k")], how=how),
                rows,
                other,
            )
            assert_identical(vec, scalar, vd, sd)
            assert vd.vector_joins == 1
            assert vd.hash_joins == 0  # the batch kernel replaced it
            assert sd.hash_joins == 1

    def test_join_multi_key(self, seed):
        rng = random.Random(seed)
        rows, other = random_rows(rng), random_rows(rng)
        vec, scalar, vd, sd = both_paths(
            lambda r, o: r.join(o, on=[("k", "k"), ("v", "v")]),
            rows,
            other,
        )
        assert_identical(vec, scalar, vd, sd)
        assert vd.vector_joins == 1

    def test_join_self(self, seed):
        rows = random_rows(random.Random(seed))
        vec, scalar, vd, sd = both_paths(
            lambda r: r.join(r, on=[("k", "k")]), rows
        )
        assert_identical(vec, scalar, vd, sd)

    def test_group_by_all_aggregates(self, seed):
        rows = random_rows(random.Random(seed))
        aggregates = {
            "n": ("COUNT", None),
            "n_w": ("COUNT", "w"),
            "total": ("SUM", "w"),
            "lo": ("MIN", "w"),
            "hi": ("MAX", "w"),
            "mean": ("AVG", "w"),
        }
        vec, scalar, vd, sd = both_paths(
            lambda r: r.group_by(("k",), aggregates), rows
        )
        assert_identical(vec, scalar, vd, sd)
        assert vd.vector_group_bys == 1

    def test_group_by_multi_key(self, seed):
        rows = random_rows(random.Random(seed))
        vec, scalar, vd, sd = both_paths(
            lambda r: r.group_by(("k", "v"), {"n": ("COUNT", None)}), rows
        )
        assert_identical(vec, scalar, vd, sd)
        assert vd.vector_group_bys == 1

    def test_chained_pipeline(self, seed):
        rows = random_rows(random.Random(seed))

        def pipeline(r):
            return (
                r.select(is_not_null(col("k")))
                .join(r, on=[("k", "k")], how="left")
                .group_by(("k",), {"n": ("COUNT", None), "hi": ("MAX", "w")})
                .order_by(("k",))
            )

        assert_identical(*both_paths(pipeline, rows))

    def test_threshold_gates_the_kernels(self, seed):
        rows = random_rows(random.Random(seed))
        predicate = col("k") > lit(0)
        with fastpath.enabled(), vector.enabled(10**9):
            base = fastpath.STATS.copy()
            gated = relation(rows).select(predicate)
            delta = fastpath.STATS - base
        with fastpath.enabled(), vector.disabled():
            scalar = relation(rows).select(predicate)
        assert_identical(gated, scalar)
        assert delta.vector_filters == 0  # below threshold: scalar loop


@pytest.mark.parametrize("seed", SEEDS)
def test_error_parity_on_mixed_type_comparison(seed):
    """A predicate that raises must raise identically on both paths."""
    rows = random_rows(random.Random(seed))
    if not any(r["v"] is not None for r in rows):
        rows.append({"k": 1, "v": "a", "w": 0.0})
    predicate = col("v") > lit(0)  # str > int raises

    def attempt(path):
        with fastpath.enabled(), path:
            try:
                relation(rows).select(predicate)
                return None
            except Exception as exc:  # noqa: BLE001 - parity capture
                return type(exc), str(exc)

    assert attempt(vector.enabled(0)) == attempt(vector.disabled())


def make_table(rows, with_index=False):
    table_rows = [dict(r, pk=i) for i, r in enumerate(rows)]
    schema = TableSchema(
        "t",
        [
            Column("pk", "INTEGER", nullable=False),
            Column("k", "INTEGER"),
            Column("v", "VARCHAR"),
            Column("w", "DOUBLE"),
        ],
        primary_key=("pk",),
    )
    db = Database("eq")
    table = db.create_table(schema)
    for row in table_rows:
        table.insert(row)
    if with_index:
        table.create_index("by_k", ["k"])
    return db, table


@pytest.mark.parametrize("seed", SEEDS)
class TestTableBackedVectorEquivalence:
    def test_scan_with_predicate(self, seed):
        rng = random.Random(seed)
        rows = random_rows(rng)
        predicate = (col("k") > lit(0)) | is_null(col("v"))
        _, t_vec = make_table(rows)
        _, t_scalar = make_table(rows)
        with fastpath.enabled(), vector.enabled(0):
            base = fastpath.STATS.copy()
            vec = t_vec.scan(predicate)
            delta = fastpath.STATS - base
        with fastpath.enabled(), vector.disabled():
            scalar = t_scalar.scan(predicate)
        assert vec == scalar
        assert t_vec.rows_read == t_scalar.rows_read
        assert delta.vector_filters == 1

    def test_columnar_image_is_cached_until_mutation(self, seed):
        rng = random.Random(seed)
        rows = random_rows(rng)
        _, table = make_table(rows)
        predicate = col("k") == lit(1)
        with fastpath.enabled(), vector.enabled(0):
            base = fastpath.STATS.copy()
            first = table.scan(predicate)
            second = table.scan(predicate)
            cached = fastpath.STATS - base
            table.insert({"pk": 10_000, "k": 1, "v": "z", "w": 1.0})
            third = table.scan(predicate)
            rebuilt = fastpath.STATS - base
        assert first == second
        assert cached.column_builds == 1  # second scan reused the image
        assert rebuilt.column_builds == 2  # the insert invalidated it
        with fastpath.enabled(), vector.disabled():
            assert third == table.scan(predicate)

    def test_update_invalidates_columnar_image(self, seed):
        rng = random.Random(seed)
        rows = random_rows(rng)
        if not rows:
            rows = [{"k": 1, "v": "a", "w": 0.0}]
        _, table = make_table(rows)
        predicate = col("v") == lit("z")
        with fastpath.enabled(), vector.enabled(0):
            assert table.scan(predicate) == []
            table.update({"v": lit("z")}, col("pk") == lit(0))
            changed = table.scan(predicate)
        assert [row["pk"] for row in changed] == [0]

    def test_query_pushdown_parity(self, seed):
        rng = random.Random(seed)
        rows = random_rows(rng)
        predicate = col("k") == lit(rng.choice([0, 1, 2, 3, 7]))
        db_vec, t_vec = make_table(rows, with_index=True)
        db_scalar, t_scalar = make_table(rows, with_index=True)
        with fastpath.enabled(), vector.enabled(0):
            vec = db_vec.query("t", predicate=predicate)
        with fastpath.enabled(), vector.disabled():
            scalar = db_scalar.query("t", predicate=predicate)
        assert_identical(vec, scalar)
        assert t_vec.rows_read == t_scalar.rows_read

    def test_index_probe_beats_vector_join(self, seed):
        """Table-snapshot right sides keep taking the index probe."""
        rng = random.Random(seed)
        db, _ = make_table(random_rows(rng), with_index=True)
        left = relation(random_rows(rng))
        with fastpath.enabled(), vector.enabled(0):
            base = fastpath.STATS.copy()
            vec = left.join(db.query("t").keep("k", "v"), on=[("k", "k")])
            delta = fastpath.STATS - base
        with fastpath.enabled(), vector.disabled():
            scalar = left.join(db.query("t").keep("k", "v"), on=[("k", "k")])
        assert_identical(vec, scalar)
        if len(left) and len(db.table("t")):
            assert delta.index_joins == 1
            assert delta.vector_joins == 0


# ---------------------------------------------------------------- MV sequences


def star_schema(database_name="dwh"):
    db = Database(database_name)
    db.create_table(
        TableSchema(
            "nation",
            [
                Column("nationkey", "INTEGER", nullable=False),
                Column("name", "VARCHAR"),
            ],
            primary_key=("nationkey",),
        )
    )
    db.create_table(
        TableSchema(
            "customer",
            [
                Column("custkey", "INTEGER", nullable=False),
                Column("nationkey", "INTEGER"),
                Column("segment", "VARCHAR"),
            ],
            primary_key=("custkey",),
        )
    )
    db.create_table(
        TableSchema(
            "orders",
            [
                Column("orderkey", "INTEGER", nullable=False),
                Column("custkey", "INTEGER"),
                Column("totalprice", "DOUBLE"),
            ],
            primary_key=("orderkey",),
        )
    )
    for nationkey, name in ((1, "DE"), (2, "FR")):
        db.insert("nation", {"nationkey": nationkey, "name": name})
    for custkey, nationkey, segment in (
        (100, 1, "A"),
        (101, 1, "B"),
        (102, 2, "A"),
    ):
        db.insert(
            "customer",
            {"custkey": custkey, "nationkey": nationkey, "segment": segment},
        )
    return db


def grouped_view_query():
    return ViewQuery(
        fact_table="orders",
        joins=(
            ViewJoin(
                table="customer",
                on=(("custkey", "custkey"),),
                columns=(("custkey", "custkey"), ("nationkey", "nationkey")),
            ),
            ViewJoin(
                table="nation",
                on=(("nationkey", "nationkey"),),
                columns=(("nationkey", "nationkey"), ("nation_name", "name")),
            ),
        ),
        group_keys=("nation_name",),
        aggregates=(
            ("order_count", ("COUNT", None)),
            ("revenue", ("SUM", "totalprice")),
        ),
    )


def random_order(rng, orderkey):
    return {
        "orderkey": orderkey,
        "custkey": rng.choice([100, 101, 102, 100]),
        "totalprice": rng.choice([-5.0, 10.0, 25.0, 100.0]),
    }


@pytest.mark.parametrize("seed", range(6))
def test_mv_sequences_vector_vs_scalar(seed):
    """Random mutate/refresh sequences: snapshots and reads identical."""
    rng = random.Random(seed)
    db_vec = star_schema()
    db_scalar = star_schema()
    view_vec = db_vec.create_materialized_view("MV", grouped_view_query())
    view_scalar = db_scalar.create_materialized_view("MV", grouped_view_query())

    next_key = 1
    ops = [
        rng.choice(["insert", "insert", "insert", "update", "delete", "refresh"])
        for _ in range(rng.randrange(4, 14))
    ]
    ops.append("refresh")

    for op in ops:
        if op == "insert":
            row = random_order(rng, next_key)
            next_key += 1
            with fastpath.enabled(), vector.enabled(0):
                db_vec.insert("orders", dict(row))
            with fastpath.enabled(), vector.disabled():
                db_scalar.insert("orders", dict(row))
        elif op == "update" and next_key > 1:
            key = rng.randrange(1, next_key)
            predicate = col("orderkey") == lit(key)
            with fastpath.enabled(), vector.enabled(0):
                db_vec.table("orders").update({"totalprice": lit(50.0)}, predicate)
            with fastpath.enabled(), vector.disabled():
                db_scalar.table("orders").update(
                    {"totalprice": lit(50.0)}, predicate
                )
        elif op == "delete" and next_key > 1:
            key = rng.randrange(1, next_key)
            predicate = col("orderkey") == lit(key)
            with fastpath.enabled(), vector.enabled(0):
                db_vec.table("orders").delete(predicate)
            with fastpath.enabled(), vector.disabled():
                db_scalar.table("orders").delete(predicate)
        else:  # refresh
            with fastpath.enabled(), vector.enabled(0):
                view_vec.refresh(db_vec)
            with fastpath.enabled(), vector.disabled():
                view_scalar.refresh(db_scalar)
            assert view_vec.snapshot.columns == view_scalar.snapshot.columns
            assert (
                view_vec.snapshot.to_dicts() == view_scalar.snapshot.to_dicts()
            )
            for name in ("orders", "customer", "nation"):
                assert (
                    db_vec.table(name).rows_read
                    == db_scalar.table(name).rows_read
                ), f"rows_read diverged on {name} after {op}"


# ------------------------------------------------------- whole-benchmark runs


@pytest.mark.parametrize("datasize", [0.05, 0.1])
@pytest.mark.parametrize("seed", [42, 7])
def test_full_run_fingerprints_identical(seed, datasize):
    """ISSUE acceptance: byte-identical fingerprints at d ∈ {0.05, 0.1}."""
    spec = RunSpec(
        engine="interpreter", datasize=datasize, periods=1, seed=seed
    )
    with vector.disabled():
        scalar = run_spec(spec)
    with vector.enabled(0):
        vectored = run_spec(spec)
    assert scalar.status == vectored.status == "ok"
    assert vectored.fingerprint() == scalar.fingerprint()
    assert vectored.landscape_digest == scalar.landscape_digest
    assert vectored.result.verification.ok
    assert scalar.result.verification.ok


def test_full_run_fingerprints_identical_federated():
    """The federated realization is byte-identical too."""
    spec = RunSpec(engine="federated", datasize=0.05, periods=1, seed=42)
    with vector.disabled():
        scalar = run_spec(spec)
    with vector.enabled(0):
        vectored = run_spec(spec)
    assert vectored.fingerprint() == scalar.fingerprint()
    assert vectored.landscape_digest == scalar.landscape_digest
