"""Differential conformance: budgeted partitioned storage vs resident.

The spill tier is a *physical* knob: every logical result — operator
outputs, ``rows_read``/``rows_written`` accounting, the fastpath
``rows_copied``/``rows_shared`` counters, and whole-run fingerprints —
must be byte-identical whether a table is fully resident, half evicted,
or squeezed down to roughly one resident partition.  Every test here
runs the same workload at several budgets and compares exactly.
"""

import random
from dataclasses import replace

import pytest

from repro.db import Column, Database, TableSchema, col, fastpath, lit
from repro.db import partition
from repro.parallel.spec import RunSpec, run_spec

SCHEMA_A = TableSchema(
    "orders",
    [
        Column("oid", "BIGINT", nullable=False),
        Column("cust", "BIGINT"),
        Column("status", "VARCHAR"),
        Column("amount", "DOUBLE"),
    ],
    primary_key=("oid",),
)
SCHEMA_B = TableSchema(
    "customers",
    [
        Column("cid", "BIGINT", nullable=False),
        Column("region", "VARCHAR"),
        Column("tier", "BIGINT"),
    ],
    primary_key=("cid",),
)

#: None = fully resident; 120 evicts >= 50% of the 240-row working set;
#: 16 (one partition of slack) forces nearly everything through disk.
BUDGETS = [None, 120, 16]


def seed_rows(seed):
    rng = random.Random(seed)
    orders = [
        {
            "oid": i,
            "cust": rng.randrange(40) if rng.random() > 0.05 else None,
            "status": rng.choice(["new", "paid", "shipped", None]),
            "amount": round(rng.uniform(-10, 500), 2),
        }
        for i in range(160)
    ]
    customers = [
        {
            "cid": i,
            "region": rng.choice(["EU", "US", "APAC"]),
            "tier": rng.randrange(3),
        }
        for i in range(80)
    ]
    return orders, customers


def build_db(budget, seed):
    db = Database("diff")
    if budget is not None:
        db.set_memory_budget(budget, partition_rows=16)
    orders, customers = seed_rows(seed)
    db.create_table(SCHEMA_A).insert_many(orders)
    db.create_table(SCHEMA_B).insert_many(customers)
    return db


def run_workload(db):
    """A representative read mix; returns all outputs plus accounting."""
    out = {}
    sel = db.query("orders", (col("amount") > lit(100.0)))
    out["select"] = sel.to_dicts()
    joined = db.query("orders").join(
        db.query("customers"), on=[("cust", "cid")], how="inner"
    )
    out["join_inner"] = joined.to_dicts()
    out["join_left"] = (
        db.query("orders")
        .join(db.query("customers"), on=[("cust", "cid")], how="left")
        .to_dicts()
    )
    # Non-indexed key: no probe, so a spilled side goes through the
    # grace hash join instead of the index join.
    out["join_nonindexed"] = (
        db.query("orders")
        .join(db.query("customers"), on=[("cust", "tier")], how="inner")
        .to_dicts()
    )
    out["group"] = (
        db.query("orders")
        .group_by(
            ["status"],
            {
                "n": ("COUNT", "oid"),
                "total": ("SUM", "amount"),
                "avg": ("AVG", "amount"),
                "lo": ("MIN", "amount"),
                "hi": ("MAX", "amount"),
            },
        )
        .to_dicts()
    )
    out["multi_key_group"] = (
        joined.group_by(
            ["region", "status"], {"n": ("COUNT", "oid")}
        ).to_dicts()
    )
    out["scan"] = [r["oid"] for r in db.table("orders").scan()]
    stats = db.statistics()
    out["rows_read"] = stats.rows_read
    out["rows_written"] = stats.rows_written
    return out


@pytest.mark.parametrize("seed", range(4))
def test_operator_outputs_identical_across_budgets(seed):
    baseline = None
    for budget in BUDGETS:
        fast_base = fastpath.STATS.copy()
        db = build_db(budget, seed)
        got = run_workload(db)
        fast_delta = fastpath.STATS - fast_base
        got["rows_copied"] = fast_delta.rows_copied
        got["rows_shared"] = fast_delta.rows_shared
        if budget is not None:
            assert db.memory_budget.resident_rows <= budget + 16
        if baseline is None:
            baseline = got
        else:
            assert got == baseline, f"budget={budget} diverged"


def test_tight_budget_engages_partitioned_operators():
    base = partition.STATS.copy()
    db = build_db(16, seed=0)
    run_workload(db)
    delta = partition.STATS - base
    assert delta.evictions > 0
    assert delta.grace_joins > 0
    assert delta.partitioned_group_bys > 0


def test_naive_path_unaffected_by_budget():
    with fastpath.disabled():
        resident = run_workload(build_db(None, seed=1))
        budgeted = run_workload(build_db(16, seed=1))
    assert budgeted == resident


@pytest.mark.parametrize("engine", ["interpreter", "federated"])
def test_run_fingerprint_identical_under_budget(engine):
    """The tentpole contract: one full benchmark run, same fingerprint."""
    spec = RunSpec(engine=engine, datasize=0.05, periods=1, seed=7)
    unbudgeted = run_spec(spec)
    assert unbudgeted.ok, unbudgeted.error
    base = partition.STATS.copy()
    budgeted = run_spec(replace(spec, mem_budget=500))
    delta = partition.STATS - base
    assert budgeted.ok, budgeted.error
    assert delta.evictions > 0, "budget of 500 rows must force spilling"
    assert budgeted.fingerprint() == unbudgeted.fingerprint()


def test_synth_scenario_4x_working_set_fingerprint_identical():
    """ISSUE acceptance: working set >= 4x budget, identical fingerprint."""
    spec = RunSpec(
        periods=2, seed=11, synth="families=cdc+dirty,sources=2"
    )
    unbudgeted = run_spec(spec)
    assert unbudgeted.ok, unbudgeted.error
    working_set = sum(
        len(table)
        for db in _databases_of(spec)
        for table in db._tables.values()
    )
    budget = max(1, working_set // 4)
    base = partition.STATS.copy()
    budgeted = run_spec(replace(spec, mem_budget=budget))
    delta = partition.STATS - base
    assert budgeted.ok, budgeted.error
    assert delta.spills > 0
    assert budgeted.fingerprint() == unbudgeted.fingerprint()


def _databases_of(spec):
    """Re-synthesize the landscape to measure its final working set."""
    from repro.synth.runner import SynthClient

    client = SynthClient.from_spec(spec)
    client.run(verify=False)
    return list(client.scenario.all_databases.values())
