"""Unit tests for :mod:`repro.db.partition` storage primitives.

Covers the list-protocol drop-in contract of :class:`PartitionStore`,
LRU residency bounds under a :class:`MemoryBudget`, dirty-vs-clean
re-spill behaviour (segment reuse), generation-stale segment detection,
copy-on-write snapshot semantics of :class:`PartitionView`, and the
column-cache coherence regression (a spill/reload cycle must never
serve a stale columnar image).
"""

import pickle

import pytest

from repro.db import Column, Database, TableSchema, partition
from repro.db.partition import (
    MemoryBudget,
    PartitionStore,
    budget_rows_from_env,
    default_capacity,
)
from repro.errors import StorageError


def schema():
    return TableSchema(
        "t",
        [
            Column("id", "BIGINT", nullable=False),
            Column("v", "VARCHAR"),
            Column("w", "DOUBLE"),
        ],
        primary_key=("id",),
    )


def rows(n, start=0):
    return [
        {"id": i, "v": f"v{i % 7}", "w": float(i) / 2} for i in range(start, start + n)
    ]


def make_store(n=100, limit=40, capacity=10):
    budget = MemoryBudget(limit, partition_rows=capacity)
    return PartitionStore(schema(), budget, rows(n)), budget


class TestBudgetKnobs:
    def test_env_budget_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_MEM_BUDGET", raising=False)
        assert budget_rows_from_env() is None
        monkeypatch.setenv("REPRO_MEM_BUDGET", "5000")
        assert budget_rows_from_env() == 5000
        monkeypatch.setenv("REPRO_MEM_BUDGET", "0")
        assert budget_rows_from_env() is None
        monkeypatch.setenv("REPRO_MEM_BUDGET", "lots")
        with pytest.raises(StorageError):
            budget_rows_from_env()

    def test_default_capacity_clamps(self):
        assert default_capacity(10) == partition.MIN_PARTITION_ROWS
        assert default_capacity(800) == 100
        assert default_capacity(10**9) == partition.MAX_PARTITION_ROWS

    def test_budget_validation(self):
        with pytest.raises(StorageError):
            MemoryBudget(0)
        with pytest.raises(StorageError):
            MemoryBudget(100, partition_rows=0)


class TestListProtocol:
    def test_equivalence_with_plain_list(self):
        store, _ = make_store()
        reference = rows(100)
        assert len(store) == 100
        assert list(store) == reference
        assert store[0] == reference[0]
        assert store[57] == reference[57]
        assert store[-1] == reference[-1]
        with pytest.raises(IndexError):
            store[100]

    def test_setitem_and_append(self):
        store, _ = make_store(n=25, limit=10, capacity=5)
        store[3] = {"id": 999, "v": "patched", "w": 0.0}
        assert store[3]["id"] == 999
        store.append({"id": 25, "v": "new", "w": 1.0})
        assert len(store) == 26
        assert store[25]["v"] == "new"
        # The tail partition keeps filling before a new one is opened.
        assert store.partition_count == 6

    def test_clear_and_replace_all(self):
        store, budget = make_store(n=30, limit=10, capacity=5)
        store.replace_all(rows(8, start=100))
        assert list(store) == rows(8, start=100)
        store.clear()
        assert len(store) == 0
        assert store.partition_count == 0
        assert budget.resident_rows == 0

    def test_uniform_capacity_invariant(self):
        store, _ = make_store(n=47, limit=1000, capacity=10)
        counts = [p.n_rows() for p in store._partitions]
        assert counts == [10, 10, 10, 10, 7]


class TestResidency:
    def test_lru_bounds_resident_rows(self):
        store, budget = make_store(n=100, limit=40, capacity=10)
        assert budget.resident_rows <= 40
        assert store.spilled_partitions >= 6
        # Full scans stream partition-at-a-time; the bound holds with
        # one partition of slack for the pinned working partition.
        list(store)
        assert budget.peak_resident_rows <= 40 + 10

    def test_reload_round_trips_rows(self):
        store, _ = make_store(n=60, limit=20, capacity=10)
        assert store.has_spilled()
        assert list(store) == rows(60)

    def test_oversized_partition_stays_resident(self):
        # A single partition larger than the whole budget must load
        # anyway (evicting everything else), never evict itself.
        budget = MemoryBudget(8, partition_rows=16)
        store = PartitionStore(schema(), budget, rows(48))
        assert store[40] == rows(48)[40]
        assert budget.resident_rows == 16

    def test_clean_respill_reuses_segment(self):
        store, _ = make_store(n=40, limit=20, capacity=10)
        base = partition.STATS.copy()
        # Touch an evicted partition (reload), then force it back out
        # untouched: the segment is clean and must not be rewritten.
        store[0]
        resident = next(
            p.index for p in store._partitions if p.rows is not None
        )
        store.spill_partition(resident)
        delta = partition.STATS - base
        assert delta.segment_reuses >= 1

    def test_dirty_respill_rewrites_segment(self):
        store, _ = make_store(n=40, limit=20, capacity=10)
        store[0] = {"id": -1, "v": "dirty", "w": 0.0}
        base = partition.STATS.copy()
        store.spill_partition(0)
        delta = partition.STATS - base
        assert delta.spills == 1 and delta.segment_reuses == 0
        assert store[0]["v"] == "dirty"

    def test_spill_errors(self):
        store, _ = make_store(n=40, limit=20, capacity=10)
        spilled = next(
            p.index for p in store._partitions if p.rows is None
        )
        with pytest.raises(StorageError):
            store.spill_partition(spilled)

    def test_stale_segment_detected_at_reload(self):
        store, _ = make_store(n=40, limit=20, capacity=10)
        part = next(p for p in store._partitions if p.rows is None)
        # Tamper: rewrite the segment claiming a different generation,
        # as if a stale image survived a missed rewrite.
        payload = pickle.loads(part.path.read_bytes())
        part.path.write_bytes(
            pickle.dumps((payload[0] + 1, payload[1], payload[2]))
        )
        with pytest.raises(StorageError, match="stale"):
            store[part.index * store.capacity]

    def test_detach_returns_plain_rows(self):
        store, budget = make_store(n=50, limit=20, capacity=10)
        plain = store.detach()
        assert plain == rows(50)
        assert isinstance(plain, list)
        assert budget.resident_rows == 0


class TestViews:
    def test_view_is_lazy_then_consistent(self):
        store, _ = make_store(n=60, limit=20, capacity=10)
        view = store.view()
        assert not view.materialized
        assert len(view) == 60
        assert view[5] == rows(60)[5]
        assert view[10:13] == rows(60)[10:13]
        assert list(view) == rows(60)

    def test_view_survives_destructive_mutation(self):
        store, _ = make_store(n=30, limit=100, capacity=10)
        view = store.view()
        store.replace_all(rows(5, start=500))
        # Copy-on-write froze the snapshot at mutation time.
        assert list(view) == rows(30)
        assert view.materialized

    def test_view_excludes_later_appends(self):
        store, _ = make_store(n=30, limit=100, capacity=10)
        view = store.view()
        store.append({"id": 30, "v": "late", "w": 0.0})
        assert len(view) == 30
        assert list(view) == rows(30)

    def test_view_concatenation(self):
        store, _ = make_store(n=10, limit=100, capacity=5)
        view = store.view()
        extra = [{"id": 99, "v": "x", "w": 0.0}]
        assert view + extra == rows(10) + extra
        assert extra + view == extra + rows(10)


class TestColumnCacheCoherence:
    """Satellite regression: spilled storage never serves stale columns."""

    def _db(self, budget=24):
        db = Database("cachetest")
        db.set_memory_budget(budget, partition_rows=8)
        table = db.create_table(schema())
        table.insert_many(rows(64))
        return db, table

    def test_column_data_tracks_updates_across_spill(self):
        _, table = self._db()
        before = list(table.column_data()["v"])
        table.update({"v": "mutant"}, lambda r: r["id"] == 3)
        after = table.column_data()["v"]
        assert before[3] != "mutant"
        assert after[3] == "mutant"
        # Force residency churn, then re-read: still the fresh image.
        _ = table.get((63,))
        assert table.column_data()["v"][3] == "mutant"

    def test_partition_slices_keyed_by_generation(self):
        store, _ = make_store(n=20, limit=100, capacity=10)
        part = store._partitions[0]
        first = part.column_slices(store.schema, ("v",))
        assert part.column_slices(store.schema, ("v",)) is not None
        part.rows[0]["v"] = "changed"
        part.mutated()
        second = part.column_slices(store.schema, ("v",))
        assert list(second[0])[0] == "changed"
        assert first is not second

    def test_budget_attach_detach_round_trip(self):
        db, table = self._db()
        assert table.partition_store is not None
        db.set_memory_budget(None)
        assert table.partition_store is None
        assert [r["id"] for r in table.scan()] == list(range(64))
        db.set_memory_budget(16, partition_rows=8)
        assert table.partition_store is not None
        assert [r["id"] for r in table.scan()] == list(range(64))
