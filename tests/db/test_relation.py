"""The relational operator algebra."""

import pytest

from repro.db import fastpath
from repro.db.expressions import col, func, lit
from repro.db.relation import Relation, strict_rows
from repro.errors import QueryError


def rel(*rows, columns=("k", "v")):
    return Relation(columns, [dict(zip(columns, row)) for row in rows])


class TestConstruction:
    def test_rows_are_normalized_to_column_order(self):
        r = Relation(("a", "b"), [{"b": 2, "a": 1, "extra": 9}])
        assert list(r.rows[0].keys()) == ["a", "b"]

    def test_missing_column_raises(self):
        with pytest.raises(QueryError):
            Relation(("a", "b"), [{"a": 1}])

    def test_duplicate_columns_raise(self):
        with pytest.raises(QueryError):
            Relation(("a", "a"), [])

    def test_empty(self):
        assert len(Relation.empty(("x",))) == 0

    def test_strict_mode_rejects_extra_keys(self):
        # By default extra keys are silently dropped (normalization);
        # strict mode turns them into errors for debugging zero-copy
        # boundaries.
        with strict_rows():
            with pytest.raises(QueryError, match="extra columns"):
                Relation(("a", "b"), [{"a": 1, "b": 2, "extra": 9}])

    def test_strict_mode_accepts_exact_rows(self):
        with strict_rows():
            r = Relation(("a", "b"), [{"b": 2, "a": 1}])
        assert r.to_dicts() == [{"a": 1, "b": 2}]

    def test_strict_mode_restores_on_exit(self):
        with strict_rows():
            pass
        r = Relation(("a",), [{"a": 1, "extra": 2}])
        assert list(r.rows[0].keys()) == ["a"]


class TestSelect:
    def test_expression_predicate(self):
        r = rel((1, "x"), (2, "y"), (3, "x"))
        assert len(r.select(col("v") == lit("x"))) == 2

    def test_null_predicate_result_drops_row(self):
        r = Relation(("k",), [{"k": None}, {"k": 1}])
        assert len(r.select(col("k") > lit(0))) == 1

    def test_callable_predicate(self):
        r = rel((1, "x"), (2, "y"))
        assert len(r.select(lambda row: row["k"] > 1)) == 1

    def test_select_preserves_input(self):
        r = rel((1, "x"))
        r.select(col("k") == lit(99))
        assert len(r) == 1


class TestProject:
    def test_rename(self):
        r = rel((1, "x")).project({"key": "k"})
        assert r.columns == ("key",)
        assert r.rows[0] == {"key": 1}

    def test_computed_column(self):
        r = rel((1, "x")).project({"up": func("UPPER", col("v"))})
        assert r.rows[0] == {"up": "X"}

    def test_mixed_rename_and_computed(self):
        r = rel((2, "y")).project({"k": "k", "double": col("k") * lit(2)})
        assert r.rows[0] == {"k": 2, "double": 4}

    def test_unknown_source_raises(self):
        with pytest.raises(QueryError):
            rel((1, "x")).project({"a": "ghost"})

    def test_keep(self):
        r = rel((1, "x")).keep("v")
        assert r.columns == ("v",)

    def test_extend(self):
        r = rel((1, "x")).extend("twice", col("k") * lit(2))
        assert r.rows[0]["twice"] == 2

    def test_extend_existing_column_raises(self):
        with pytest.raises(QueryError):
            rel((1, "x")).extend("k", lit(0))


class TestDistinctAndUnion:
    def test_distinct_full_row(self):
        r = rel((1, "x"), (1, "x"), (2, "y")).distinct()
        assert len(r) == 2

    def test_keyed_distinct_first_wins(self):
        r = rel((1, "first"), (1, "second")).distinct(("k",))
        assert r.rows == [{"k": 1, "v": "first"}]

    def test_union_all_keeps_duplicates(self):
        r = rel((1, "x")).union_all(rel((1, "x")))
        assert len(r) == 2

    def test_union_distinct_keyed(self):
        """The P03/P09 merge: same key from two sources appears once."""
        chicago = rel((1, "c"), (2, "c"))
        baltimore = rel((2, "b"), (3, "b"))
        merged = chicago.union_distinct(baltimore, ("k",))
        assert sorted(row["k"] for row in merged) == [1, 2, 3]
        assert merged.select(col("k") == lit(2)).rows[0]["v"] == "c"

    def test_union_schema_mismatch_raises(self):
        with pytest.raises(QueryError):
            rel((1, "x")).union_all(Relation(("other",), []))


class TestJoin:
    def test_inner_join(self):
        orders = Relation(("orderkey", "custkey"), [
            {"orderkey": 1, "custkey": 10},
            {"orderkey": 2, "custkey": 99},
        ])
        customers = Relation(("custkey", "name"), [{"custkey": 10, "name": "A"}])
        joined = orders.join(customers, on=[("custkey", "custkey")])
        assert len(joined) == 1
        assert joined.rows[0]["name"] == "A"

    def test_left_join_pads_with_null(self):
        left = Relation(("k",), [{"k": 1}, {"k": 2}])
        right = Relation(("k", "v"), [{"k": 1, "v": "x"}])
        joined = left.join(right, on=[("k", "k")], how="left")
        assert len(joined) == 2
        assert joined.select(col("k") == lit(2)).rows[0]["v"] is None

    def test_null_keys_never_join(self):
        left = Relation(("k",), [{"k": None}])
        right = Relation(("k", "v"), [{"k": None, "v": "x"}])
        assert len(left.join(right, on=[("k", "k")])) == 0

    def test_name_collision_gets_suffix(self):
        left = Relation(("k", "name"), [{"k": 1, "name": "L"}])
        right = Relation(("k", "name"), [{"k": 1, "name": "R"}])
        joined = left.join(right, on=[("k", "k")])
        assert joined.rows[0]["name"] == "L"
        assert joined.rows[0]["name_r"] == "R"

    def test_one_to_many(self):
        left = Relation(("k",), [{"k": 1}])
        right = Relation(("k", "v"), [{"k": 1, "v": "a"}, {"k": 1, "v": "b"}])
        assert len(left.join(right, on=[("k", "k")])) == 2

    def test_multi_key_join(self):
        left = Relation(("a", "b"), [{"a": 1, "b": 2}])
        right = Relation(("a", "b", "v"), [{"a": 1, "b": 2, "v": "x"},
                                           {"a": 1, "b": 3, "v": "y"}])
        joined = left.join(right, on=[("a", "a"), ("b", "b")])
        assert len(joined) == 1

    def test_bad_join_type(self):
        with pytest.raises(QueryError):
            rel((1, "x")).join(rel((1, "x")), on=[("k", "k")], how="outer")

    def test_empty_on_rejected(self):
        with pytest.raises(QueryError):
            rel((1, "x")).join(rel((1, "x")), on=[])


class TestGroupBy:
    def _orders(self):
        return Relation(
            ("nation", "total"),
            [
                {"nation": "DE", "total": 10},
                {"nation": "DE", "total": 30},
                {"nation": "FR", "total": 5},
                {"nation": "FR", "total": None},
            ],
        )

    def test_count_star_counts_nulls(self):
        g = self._orders().group_by(("nation",), {"n": ("COUNT", None)})
        assert {r["nation"]: r["n"] for r in g} == {"DE": 2, "FR": 2}

    def test_count_column_skips_nulls(self):
        g = self._orders().group_by(("nation",), {"n": ("COUNT", "total")})
        assert {r["nation"]: r["n"] for r in g} == {"DE": 2, "FR": 1}

    def test_sum_min_max_avg(self):
        g = self._orders().group_by(
            ("nation",),
            {"s": ("SUM", "total"), "lo": ("MIN", "total"),
             "hi": ("MAX", "total"), "mu": ("AVG", "total")},
        )
        de = next(r for r in g if r["nation"] == "DE")
        assert (de["s"], de["lo"], de["hi"], de["mu"]) == (40, 10, 30, 20)

    def test_all_null_aggregate_is_null(self):
        r = Relation(("g", "x"), [{"g": 1, "x": None}])
        g = r.group_by(("g",), {"s": ("SUM", "x")})
        assert g.rows[0]["s"] is None

    def test_unknown_aggregate(self):
        with pytest.raises(QueryError):
            self._orders().group_by(("nation",), {"m": ("MEDIAN", "total")})

    def test_group_order_is_first_appearance(self):
        g = self._orders().group_by(("nation",), {"n": ("COUNT", None)})
        assert [r["nation"] for r in g] == ["DE", "FR"]


class TestOrderAndLimit:
    def test_order_by(self):
        r = rel((3, "c"), (1, "a"), (2, "b")).order_by(("k",))
        assert [row["k"] for row in r] == [1, 2, 3]

    def test_order_by_descending(self):
        r = rel((3, "c"), (1, "a")).order_by(("k",), descending=True)
        assert [row["k"] for row in r] == [3, 1]

    def test_nulls_sort_first(self):
        r = Relation(("k",), [{"k": 2}, {"k": None}]).order_by(("k",))
        assert [row["k"] for row in r] == [None, 2]

    def test_descending_keeps_nulls_first(self):
        # Regression: sorted(reverse=True) used to push NULLs last.
        r = Relation(
            ("k",), [{"k": 2}, {"k": None}, {"k": 5}]
        ).order_by(("k",), descending=True)
        assert [row["k"] for row in r] == [None, 5, 2]

    def test_descending_ties_stay_stable(self):
        # Regression: sorted(reverse=True) used to reverse tie order.
        r = rel((1, "first"), (2, "x"), (1, "second")).order_by(
            ("k",), descending=True
        )
        assert [(row["k"], row["v"]) for row in r] == [
            (2, "x"),
            (1, "first"),
            (1, "second"),
        ]

    def test_descending_multi_column_with_nulls(self):
        r = rel((1, None), (1, "b"), (2, "a")).order_by(
            ("k", "v"), descending=True
        )
        assert [(row["k"], row["v"]) for row in r] == [
            (2, "a"),
            (1, None),
            (1, "b"),
        ]

    def test_descending_matches_naive_path(self):
        rows = [(3, "a"), (1, "x"), (None, "y"), (3, "b"), (2, None)]
        fast = rel(*rows).order_by(("k", "v"), descending=True)
        with fastpath.disabled():
            naive = rel(*rows).order_by(("k", "v"), descending=True)
        assert fast.to_dicts() == naive.to_dicts()

    def test_limit(self):
        assert len(rel((1, "a"), (2, "b")).limit(1)) == 1

    def test_negative_limit_raises(self):
        with pytest.raises(QueryError):
            rel((1, "a")).limit(-1)

    def test_column_values(self):
        assert rel((1, "a"), (2, "b")).column_values("k") == [1, 2]

    def test_to_dicts_copies(self):
        r = rel((1, "a"))
        dicts = r.to_dicts()
        dicts[0]["k"] = 999
        assert r.rows[0]["k"] == 1
