"""Whole-benchmark integration tests: multi-period runs, both engines,
scale-factor effects, failure injection."""

import pytest

from repro.engine import FederatedEngine, MtmInterpreterEngine
from repro.scenario import build_scenario
from repro.toolsuite import BenchmarkClient, ScaleFactors


def run_benchmark(engine_cls=MtmInterpreterEngine, periods=2,
                  factors=None, **engine_kwargs):
    scenario = build_scenario()
    engine = engine_cls(scenario.registry, **engine_kwargs)
    client = BenchmarkClient(
        scenario, engine, factors or ScaleFactors(datasize=0.05),
        periods=periods, seed=5,
    )
    return client.run(), scenario, engine


class TestMultiPeriod:
    @pytest.fixture(scope="class")
    def three_periods(self):
        return run_benchmark(periods=3)

    def test_clean_and_verified(self, three_periods):
        result, _, _ = three_periods
        assert result.error_instances == 0
        assert result.verification.ok, result.verification.summary()

    def test_e2_types_once_per_period(self, three_periods):
        result, _, _ = three_periods
        for pid in ("P03", "P05", "P09", "P12", "P13", "P14", "P15"):
            assert len([r for r in result.records if r.process_id == pid]) == 3

    def test_every_period_rebuilds_state(self, three_periods):
        """Period k+1 starts from uninitialized systems, so the final
        state reflects only the last period."""
        result, scenario, _ = three_periods
        last_period = max(r.period for r in result.records)
        dwh_orders = len(scenario.databases["dwh"].table("orders"))
        assert dwh_orders > 0
        periods_seen = {r.period for r in result.records}
        assert periods_seen == {0, 1, 2}

    def test_metrics_cover_all_types(self, three_periods):
        result, _, _ = three_periods
        assert result.metrics.process_ids == [
            f"P{i:02d}" for i in range(1, 16)
        ]


class TestPaperShapeClaims:
    """The qualitative claims of Section VI, pinned as assertions."""

    @pytest.fixture(scope="class")
    def reference(self):
        result, _, _ = run_benchmark(periods=3)
        return result.metrics

    def test_data_intensive_dominate_concurrent(self, reference):
        """'the large NAVG+ difference between the serialized,
        data-intensive processes and the highly concurrent processes'"""
        concurrent = [reference[p].navg_plus
                      for p in ("P01", "P02", "P04", "P08", "P10")]
        data_intensive = [reference[p].navg_plus
                          for p in ("P09", "P13", "P14")]
        assert min(data_intensive) > max(concurrent)

    def test_group_c_d_heavier_than_messages(self, reference):
        bulk = (reference["P12"].navg_plus + reference["P13"].navg_plus
                + reference["P14"].navg_plus)
        messages = (reference["P02"].navg_plus + reference["P04"].navg_plus
                    + reference["P08"].navg_plus)
        assert bulk > messages

    def test_movement_load_heavier_than_master_load(self, reference):
        """'the differences in data set sizes should be noticed' (P13 vs P12)."""
        assert reference["P13"].navg_plus > reference["P12"].navg_plus


class TestEngineComparison:
    @pytest.fixture(scope="class")
    def both(self):
        interp, _, _ = run_benchmark(MtmInterpreterEngine, periods=2)
        federated, _, _ = run_benchmark(FederatedEngine, periods=2)
        return interp.metrics, federated.metrics

    def test_both_engines_functionally_correct(self):
        for engine_cls in (MtmInterpreterEngine, FederatedEngine):
            result, _, _ = run_benchmark(engine_cls, periods=1)
            assert result.verification.ok, engine_cls.__name__

    def test_federated_pays_xml_premium_on_message_types(self, both):
        """System A's concurrent (XML) processes are disproportionately
        expensive: its proprietary XML functions bypass the optimizer."""
        interp, federated = both
        for pid in ("P04", "P08", "P10"):
            assert federated[pid].navg_plus > interp[pid].navg_plus, pid

    def test_federated_relational_bulk_competitive(self, both):
        """Relational bulk work is optimizer-covered on the federation:
        the premium there must be far smaller than on message types."""
        interp, federated = both
        message_ratio = federated["P04"].navg_plus / interp["P04"].navg_plus
        bulk_ratio = federated["P11"].navg_plus / interp["P11"].navg_plus
        assert bulk_ratio < message_ratio

    def test_engine_name_recorded(self, both):
        result, _, _ = run_benchmark(FederatedEngine, periods=1)
        assert result.engine_name == "federated-dbms"


class TestScaleFactorEffects:
    def test_datasize_raises_instance_counts(self):
        small, _, _ = run_benchmark(periods=1,
                                    factors=ScaleFactors(datasize=0.05))
        large, _, _ = run_benchmark(periods=1,
                                    factors=ScaleFactors(datasize=0.1))
        assert large.total_instances > small.total_instances

    def test_datasize_raises_e1_costs(self):
        """Fig. 11: doubling d visibly affects the E1 (message) types via
        schedule pressure."""
        small, _, _ = run_benchmark(periods=2,
                                    factors=ScaleFactors(datasize=0.05))
        large, _, _ = run_benchmark(periods=2,
                                    factors=ScaleFactors(datasize=0.1))
        for pid in ("P09", "P13"):
            assert large.metrics[pid].navg > small.metrics[pid].navg, pid

    def test_time_compression_increases_pressure(self):
        """Raising t shortens intervals, reducing self-management time:
        NAVG+ (in tu) grows superlinearly."""
        relaxed, _, _ = run_benchmark(periods=2,
                                      factors=ScaleFactors(time=1.0))
        compressed, _, _ = run_benchmark(periods=2,
                                         factors=ScaleFactors(time=4.0))
        # In tu, a perfectly pressure-free system would scale exactly by t.
        for pid in ("P04", "P10"):
            assert compressed.metrics[pid].navg_plus > \
                4.0 * relaxed.metrics[pid].navg_plus * 0.99, pid

    def test_distribution_factor_runs_clean(self):
        for f in (1, 2, 3):
            result, _, _ = run_benchmark(
                periods=1, factors=ScaleFactors(distribution=f)
            )
            assert result.error_instances == 0
            assert result.verification.ok


class TestFailureInjection:
    def test_network_partition_fails_instances_not_engine(self):
        scenario = build_scenario()
        engine = MtmInterpreterEngine(scenario.registry)
        client = BenchmarkClient(scenario, engine, ScaleFactors(),
                                 periods=1, seed=5)
        scenario.network.partition("IS", "ES")
        client.run_period(0)
        errors = engine.error_records()
        assert errors  # everything touching ES failed
        assert all("partition" in r.error or "Network" in r.error
                   for r in errors)

    def test_healed_network_recovers(self):
        scenario = build_scenario()
        engine = MtmInterpreterEngine(scenario.registry)
        client = BenchmarkClient(scenario, engine, ScaleFactors(),
                                 periods=1, seed=5)
        scenario.network.partition("IS", "ES")
        client.run_period(0)
        scenario.network.heal("IS", "ES")
        engine.clear_records()
        client.monitor.clear()
        client.run_period(0)
        assert not engine.error_records()

    def test_all_sandiego_invalid_still_verifies(self):
        scenario = build_scenario()
        engine = MtmInterpreterEngine(scenario.registry)
        client = BenchmarkClient(scenario, engine, ScaleFactors(),
                                 periods=1, seed=5, sandiego_error_rate=1.0)
        result = client.run()
        assert result.verification.ok
        cdb = scenario.databases["sales_cleaning"]
        assert len(cdb.table("failed_messages")) == 53  # every P10 message
