"""Text synthesis."""

import pytest

from repro.datagen.distributions import UniformDistribution
from repro.datagen.text import TextSynthesizer


@pytest.fixture()
def text():
    return TextSynthesizer(UniformDistribution(9))


class TestNames:
    def test_proper_name_capitalized(self, text):
        name = text.proper_name()
        assert name[0].isupper()
        assert name[1:].islower()

    def test_keyed_name_format(self, text):
        assert text.keyed_name("Customer", 42) == "Customer#000000042"

    def test_keyed_name_width(self, text):
        assert text.keyed_name("P", 1, width=3) == "P#001"

    def test_phrase_word_count(self, text):
        assert len(text.phrase(5).split()) == 5

    def test_product_name_three_words(self, text):
        assert len(text.product_name().split()) == 3

    def test_street_address_shape(self, text):
        parts = text.street_address().split()
        assert parts[0].isdigit()

    def test_phone_contains_country_code(self, text):
        assert text.phone(49).startswith("+49-")

    def test_deterministic(self):
        a = TextSynthesizer(UniformDistribution(1))
        b = TextSynthesizer(UniformDistribution(1))
        assert [a.proper_name() for _ in range(5)] == [
            b.proper_name() for _ in range(5)
        ]


class TestCorruption:
    def test_corrupted_differs(self, text):
        assert text.corrupted("Customer#000000001") != "Customer#000000001"

    def test_corrupted_empty(self, text):
        assert text.corrupted("") == "??"

    def test_corruption_detectable(self, text):
        """Every corruption mode breaks the Customer#<digits> pattern."""
        import re

        pattern = re.compile(r"^Customer#\d+$")
        for _ in range(50):
            assert not pattern.match(text.corrupted("Customer#000000042"))
