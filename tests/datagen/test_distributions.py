"""Value distributions: determinism, ranges, skew (with hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.distributions import (
    ExponentialDistribution,
    NormalDistribution,
    UniformDistribution,
    ZipfDistribution,
    make_distribution,
)
from repro.errors import ScaleFactorError

ALL_FAMILIES = [
    UniformDistribution,
    ZipfDistribution,
    NormalDistribution,
    ExponentialDistribution,
]


class TestFactory:
    @pytest.mark.parametrize("f,cls", enumerate(ALL_FAMILIES))
    def test_family_selection(self, f, cls):
        assert isinstance(make_distribution(f), cls)

    def test_unknown_factor(self):
        with pytest.raises(ScaleFactorError):
            make_distribution(9)


class TestDeterminism:
    @pytest.mark.parametrize("cls", ALL_FAMILIES)
    def test_same_seed_same_stream(self, cls):
        a = [cls(seed=3).sample_unit() for _ in range(1)]
        stream1 = [cls(seed=3).sample_unit() for _ in range(1)]
        dist1, dist2 = cls(seed=5), cls(seed=5)
        assert [dist1.sample_unit() for _ in range(20)] == [
            dist2.sample_unit() for _ in range(20)
        ]

    @pytest.mark.parametrize("cls", ALL_FAMILIES)
    def test_different_seed_different_stream(self, cls):
        dist1, dist2 = cls(seed=1), cls(seed=2)
        assert [dist1.sample_unit() for _ in range(10)] != [
            dist2.sample_unit() for _ in range(10)
        ]


class TestRanges:
    @pytest.mark.parametrize("cls", ALL_FAMILIES)
    def test_unit_interval(self, cls):
        dist = cls(seed=11)
        values = [dist.sample_unit() for _ in range(500)]
        assert all(0.0 <= v < 1.0 for v in values)

    @pytest.mark.parametrize("cls", ALL_FAMILIES)
    def test_sample_int_inclusive_bounds(self, cls):
        dist = cls(seed=11)
        values = [dist.sample_int(3, 7) for _ in range(300)]
        assert all(3 <= v <= 7 for v in values)
        assert 3 in values and 7 in values or len(set(values)) > 1

    def test_sample_int_single_point(self):
        assert UniformDistribution(0).sample_int(4, 4) == 4

    def test_empty_int_domain(self):
        with pytest.raises(ScaleFactorError):
            UniformDistribution(0).sample_int(5, 4)

    def test_sample_float_range(self):
        dist = UniformDistribution(0)
        values = [dist.sample_float(1.0, 2.0) for _ in range(100)]
        assert all(1.0 <= v < 2.0 for v in values)

    def test_choice_empty_rejected(self):
        with pytest.raises(ScaleFactorError):
            UniformDistribution(0).choice([])


class TestSkew:
    def test_zipf_concentrates_on_low_keys(self):
        zipf = ZipfDistribution(seed=3)
        uniform = UniformDistribution(seed=3)
        zipf_low = sum(1 for _ in range(2000) if zipf.sample_int(1, 100) <= 10)
        unif_low = sum(1 for _ in range(2000) if uniform.sample_int(1, 100) <= 10)
        assert zipf_low > unif_low * 3

    def test_zipf_alpha_controls_skew(self):
        mild = ZipfDistribution(seed=3, alpha=0.5)
        harsh = ZipfDistribution(seed=3, alpha=2.0)
        mild_low = sum(1 for _ in range(2000) if mild.sample_int(1, 100) <= 5)
        harsh_low = sum(1 for _ in range(2000) if harsh.sample_int(1, 100) <= 5)
        assert harsh_low > mild_low

    def test_normal_centers(self):
        dist = NormalDistribution(seed=3)
        values = [dist.sample_unit() for _ in range(2000)]
        mean = sum(values) / len(values)
        assert 0.45 < mean < 0.55

    def test_exponential_head_heavy(self):
        dist = ExponentialDistribution(seed=3)
        values = [dist.sample_unit() for _ in range(2000)]
        assert sum(1 for v in values if v < 0.25) > len(values) * 0.5

    def test_zipf_param_validation(self):
        with pytest.raises(ScaleFactorError):
            ZipfDistribution(alpha=0)
        with pytest.raises(ScaleFactorError):
            ZipfDistribution(domain=0)

    def test_normal_param_validation(self):
        with pytest.raises(ScaleFactorError):
            NormalDistribution(sigma=0)

    def test_exponential_param_validation(self):
        with pytest.raises(ScaleFactorError):
            ExponentialDistribution(rate=0)


class TestShuffle:
    def test_shuffle_is_permutation(self):
        dist = UniformDistribution(5)
        items = list(range(20))
        shuffled = dist.shuffle(items)
        assert sorted(shuffled) == items
        assert items == list(range(20))  # input untouched


class TestProperties:
    @given(st.integers(0, 3), st.integers(0, 1000),
           st.integers(0, 50), st.integers(1, 50))
    @settings(max_examples=60)
    def test_sample_int_always_in_bounds(self, f, seed, lo, width):
        dist = make_distribution(f, seed)
        value = dist.sample_int(lo, lo + width)
        assert lo <= value <= lo + width
