"""Property-style tests over the data generator.

Instead of pinning example outputs, these tests assert the *invariants*
the benchmark depends on, across a grid of seeds × the four distribution
scale factors f ∈ {0, 1, 2, 3} (uniform, zipf, normal, exponential):

* cardinalities follow the datasize scale factor d exactly,
* referential closure — every generated foreign key resolves,
* value domains (quantities, discounts, prices) stay inside the
  schema's ranges no matter the distribution,
* the distribution families actually shape the data the way the paper
  uses them (zipf concentrates, normal tightens, exponential skews),
* same seed ⇒ identical bytes, different seed ⇒ different data.
"""

from __future__ import annotations

import pytest

from repro.datagen.distributions import make_distribution
from repro.datagen.generators import DataGenerator, GeneratorProfile
from repro.errors import ScaleFactorError

SEEDS = [3, 11, 42]
FACTORS = [0, 1, 2, 3]


def generator(seed: int, f: int) -> DataGenerator:
    return DataGenerator(
        seed=seed, distribution=make_distribution(f, seed=seed)
    )


@pytest.fixture(params=SEEDS, ids=lambda s: f"seed{s}")
def seed(request) -> int:
    return request.param


@pytest.fixture(params=FACTORS, ids=lambda f: f"f{f}")
def factor(request) -> int:
    return request.param


# ---------------------------------------------------------------------------
# cardinalities follow d
# ---------------------------------------------------------------------------


class TestCardinalityScaling:
    @pytest.mark.parametrize("d", [0.01, 0.02, 0.05, 0.5, 1.0, 2.0])
    def test_scaled_matches_d_exactly(self, d):
        profile = GeneratorProfile()
        assert profile.scaled(400, d) == max(1, round(400 * d))

    def test_scaled_is_monotone_in_d(self):
        profile = GeneratorProfile()
        counts = [profile.scaled(800, d) for d in (0.01, 0.1, 0.5, 1.0, 4.0)]
        assert counts == sorted(counts)

    def test_scaled_never_returns_zero(self):
        assert GeneratorProfile().scaled(400, 0.0001) == 1

    @pytest.mark.parametrize("d", [0, -0.5])
    def test_nonpositive_d_rejected(self, d):
        with pytest.raises(ScaleFactorError):
            GeneratorProfile().scaled(400, d)

    def test_generator_emits_exactly_the_requested_counts(self, seed, factor):
        gen = generator(seed, factor)
        customers = gen.customers(37)
        products, groups, lines = gen.product_dimension(23)
        orders, orderlines = gen.orders(
            41,
            customer_keys=[c["custkey"] for c in customers],
            product_keys=[p["prodkey"] for p in products],
        )
        assert len(customers) == 37
        assert len(products) == 23
        assert len(orders) == 41
        max_lines = gen.profile.max_lines_per_order
        assert 41 <= len(orderlines) <= 41 * max_lines


# ---------------------------------------------------------------------------
# referential closure
# ---------------------------------------------------------------------------


class TestForeignKeyClosure:
    def test_every_fk_resolves(self, seed, factor):
        gen = generator(seed, factor)
        customers = gen.customers(30, key_offset=1000)
        products, groups, lines = gen.product_dimension(20, key_offset=500)
        custkeys = {c["custkey"] for c in customers}
        prodkeys = {p["prodkey"] for p in products}
        orders, orderlines = gen.orders(
            50,
            customer_keys=sorted(custkeys),
            product_keys=sorted(prodkeys),
            key_offset=9000,
        )

        assert {o["custkey"] for o in orders} <= custkeys
        orderkeys = {o["orderkey"] for o in orders}
        assert {ol["orderkey"] for ol in orderlines} == orderkeys
        assert {ol["prodkey"] for ol in orderlines} <= prodkeys
        groupkeys = {g["groupkey"] for g in groups}
        assert {p["groupkey"] for p in products} <= groupkeys
        linekeys = {ln["linekey"] for ln in lines}
        assert {g["linekey"] for g in groups} <= linekeys

    def test_customers_reference_their_region_cities(self, seed, factor):
        gen = generator(seed, factor)
        for region in ("Europe", "Asia", "America"):
            city_keys = set(gen.city_keys_for_region(region))
            rows = gen.customers(25, region=region)
            assert {c["citykey"] for c in rows} <= city_keys

    def test_geography_is_closed(self, seed, factor):
        regions, nations, cities = generator(seed, factor).geography_rows()
        regionkeys = {r["regionkey"] for r in regions}
        nationkeys = {n["nationkey"] for n in nations}
        assert {n["regionkey"] for n in nations} <= regionkeys
        assert {c["nationkey"] for c in cities} <= nationkeys

    def test_duplicates_reference_their_victims(self, seed, factor):
        gen = DataGenerator(
            seed=seed,
            distribution=make_distribution(factor, seed=seed),
            profile=GeneratorProfile(duplicate_rate=0.2),
        )
        base = gen.customers(50)
        rows = gen.with_duplicates(base, "custkey")
        duplicates = [r for r in rows if "_duplicate_of" in r]
        assert len(duplicates) == int(50 * 0.2)
        original_keys = {c["custkey"] for c in base}
        for duplicate in duplicates:
            assert duplicate["_duplicate_of"] in original_keys
            assert duplicate["custkey"] not in original_keys


# ---------------------------------------------------------------------------
# value domains
# ---------------------------------------------------------------------------


class TestValueDomains:
    def test_orderline_domains_hold_for_every_distribution(
        self, seed, factor
    ):
        gen = generator(seed, factor)
        orders, orderlines = gen.orders(
            60, customer_keys=[1, 2, 3], product_keys=[10, 11, 12]
        )
        for line in orderlines:
            assert 1 <= line["quantity"] <= 50
            assert 0.0 <= line["discount"] <= 0.1
            assert line["extendedprice"] > 0.0
        for order in orders:
            assert order["totalprice"] > 0.0

    def test_totalprice_is_the_sum_of_its_lines(self, seed, factor):
        gen = generator(seed, factor)
        orders, orderlines = gen.orders(
            30, customer_keys=[1], product_keys=[10]
        )
        by_order: dict[int, float] = {}
        for line in orderlines:
            by_order[line["orderkey"]] = (
                by_order.get(line["orderkey"], 0.0) + line["extendedprice"]
            )
        for order in orders:
            assert order["totalprice"] == pytest.approx(
                by_order[order["orderkey"]], abs=0.01
            )

    def test_product_prices_in_schema_range(self, seed, factor):
        products, _, _ = generator(seed, factor).product_dimension(50)
        for product in products:
            assert 1.0 <= product["price"] <= 2000.0

    def test_distribution_samples_stay_in_bounds(self, seed, factor):
        dist = make_distribution(factor, seed=seed)
        for _ in range(500):
            assert 0.0 <= dist.sample_unit() < 1.0
        for _ in range(200):
            assert 1 <= dist.sample_int(1, 50) <= 50
            assert 2.5 <= dist.sample_float(2.5, 7.5) <= 7.5


# ---------------------------------------------------------------------------
# the families shape the data (monotonicity vs f)
# ---------------------------------------------------------------------------


def _unit_samples(f: int, seed: int, n: int = 4000) -> list[float]:
    dist = make_distribution(f, seed=seed)
    return [dist.sample_unit() for _ in range(n)]


def _mean(values) -> float:
    return sum(values) / len(values)


def _std(values) -> float:
    mu = _mean(values)
    return (sum((v - mu) ** 2 for v in values) / len(values)) ** 0.5


class TestDistributionShapes:
    def test_zipf_concentrates_on_hot_keys(self, seed):
        uniform = _unit_samples(0, seed)
        zipf = _unit_samples(1, seed)
        assert _mean(zipf) < _mean(uniform) * 0.6

    def test_zipf_reuses_keys_more_than_uniform(self, seed):
        keys = list(range(1, 201))
        uniform = make_distribution(0, seed=seed)
        zipf = make_distribution(1, seed=seed)
        unique_uniform = len({uniform.choice(keys) for _ in range(1000)})
        unique_zipf = len({zipf.choice(keys) for _ in range(1000)})
        assert unique_zipf < unique_uniform

    def test_normal_is_tighter_than_uniform(self, seed):
        assert _std(_unit_samples(2, seed)) < _std(_unit_samples(0, seed))

    def test_normal_centers_on_one_half(self, seed):
        assert _mean(_unit_samples(2, seed)) == pytest.approx(0.5, abs=0.05)

    def test_exponential_skews_low(self, seed):
        exponential = _unit_samples(3, seed)
        uniform = _unit_samples(0, seed)
        assert _mean(exponential) < _mean(uniform)
        # More than half the mass sits below the uniform median.
        below = sum(1 for v in exponential if v < 0.5)
        assert below > len(exponential) * 0.6

    def test_unknown_factor_rejected(self):
        with pytest.raises(ScaleFactorError, match="scale factor"):
            make_distribution(9)


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_same_seed_same_bytes(self, seed, factor):
        def full_output(s):
            gen = generator(s, factor)
            customers = gen.customers(20)
            products, groups, lines = gen.product_dimension(15)
            orders, orderlines = gen.orders(
                25,
                customer_keys=[c["custkey"] for c in customers],
                product_keys=[p["prodkey"] for p in products],
            )
            return repr((customers, products, groups, lines,
                         orders, orderlines))

        assert full_output(seed) == full_output(seed)

    def test_different_seeds_differ(self, factor):
        a = generator(3, factor).customers(20)
        b = generator(4, factor).customers(20)
        assert a != b
