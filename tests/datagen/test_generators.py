"""Domain data generators."""

import datetime

import pytest

from repro.datagen.distributions import ZipfDistribution
from repro.datagen.generators import GEOGRAPHY, DataGenerator, GeneratorProfile
from repro.errors import ScaleFactorError


@pytest.fixture()
def gen():
    return DataGenerator(seed=4)


class TestGeography:
    def test_keys_are_dense_and_unique(self, gen):
        regions, nations, cities = gen.geography_rows()
        assert [r["regionkey"] for r in regions] == [1, 2, 3]
        assert len({n["nationkey"] for n in nations}) == len(nations)
        assert len({c["citykey"] for c in cities}) == len(cities)

    def test_every_city_references_a_nation(self, gen):
        _, nations, cities = gen.geography_rows()
        nation_keys = {n["nationkey"] for n in nations}
        assert all(c["nationkey"] in nation_keys for c in cities)

    def test_city_keys_for_region(self, gen):
        keys = gen.city_keys_for_region("Asia")
        _, nations, cities = gen.geography_rows()
        asia_cities = [c["name"] for c in cities if c["citykey"] in keys]
        expected = [
            city for nation in GEOGRAPHY["Asia"].values() for city in nation
        ]
        assert sorted(asia_cities) == sorted(expected)

    def test_unknown_region(self, gen):
        with pytest.raises(ScaleFactorError):
            gen.city_keys_for_region("Atlantis")

    def test_geography_is_stable(self):
        a = DataGenerator(seed=1).geography_rows()
        b = DataGenerator(seed=99).geography_rows()
        assert a == b  # reference data is seed-independent


class TestCustomers:
    def test_key_offset(self, gen):
        customers = gen.customers(3, key_offset=1000)
        assert [c["custkey"] for c in customers] == [1001, 1002, 1003]

    def test_city_within_region(self, gen):
        europe_keys = set(gen.city_keys_for_region("Europe"))
        customers = gen.customers(20, region="Europe")
        assert all(c["citykey"] in europe_keys for c in customers)

    def test_name_matches_cleansing_pattern(self, gen):
        import re

        for c in gen.customers(10):
            assert re.match(r"^Customer#\d{9}$", c["name"])

    def test_deterministic(self):
        a = DataGenerator(seed=5).customers(5)
        b = DataGenerator(seed=5).customers(5)
        assert a == b


class TestProducts:
    def test_dimension_structure(self, gen):
        products, groups, lines = gen.product_dimension(30)
        assert len(lines) == 3
        assert len(groups) == 12
        line_keys = {l["linekey"] for l in lines}
        assert all(g["linekey"] in line_keys for g in groups)
        group_keys = {g["groupkey"] for g in groups}
        assert all(p["groupkey"] in group_keys for p in products)

    def test_prices_positive(self, gen):
        products, _, _ = gen.product_dimension(50)
        assert all(p["price"] > 0 for p in products)


class TestOrders:
    def test_orders_and_lines_consistent(self, gen):
        customers = gen.customers(5)
        products, _, _ = gen.product_dimension(10)
        orders, lines = gen.orders(
            20, [c["custkey"] for c in customers], [p["prodkey"] for p in products]
        )
        order_keys = {o["orderkey"] for o in orders}
        assert len(order_keys) == 20
        assert all(l["orderkey"] in order_keys for l in lines)
        assert all(l["quantity"] > 0 for l in lines)

    def test_total_price_is_line_sum(self, gen):
        customers = gen.customers(2)
        products, _, _ = gen.product_dimension(5)
        orders, lines = gen.orders(
            10, [c["custkey"] for c in customers], [p["prodkey"] for p in products]
        )
        for order in orders:
            line_sum = sum(
                l["extendedprice"] for l in lines if l["orderkey"] == order["orderkey"]
            )
            assert order["totalprice"] == pytest.approx(line_sum, abs=0.01)

    def test_dates_within_span(self, gen):
        customers = gen.customers(2)
        products, _, _ = gen.product_dimension(3)
        orders, _ = gen.orders(
            30, [c["custkey"] for c in customers],
            [p["prodkey"] for p in products], date_span_days=10,
        )
        low = datetime.date(2007, 1, 1)
        high = low + datetime.timedelta(days=9)
        assert all(low <= o["orderdate"] <= high for o in orders)

    def test_requires_keys(self, gen):
        with pytest.raises(ScaleFactorError):
            gen.orders(1, [], [1])

    def test_zipf_skews_customer_references(self):
        gen = DataGenerator(seed=2, distribution=ZipfDistribution(seed=2))
        customers = [c["custkey"] for c in gen.customers(100)]
        products, _, _ = gen.product_dimension(10)
        orders, _ = gen.orders(300, customers, [p["prodkey"] for p in products])
        hot = sum(1 for o in orders if o["custkey"] <= customers[9])
        assert hot > 300 * 0.4  # top-10 customers get a large share


class TestDirtInjection:
    def test_duplicates_marked_and_keyed(self):
        gen = DataGenerator(seed=1, profile=GeneratorProfile(duplicate_rate=0.2))
        rows = gen.customers(50)
        dirty = gen.with_duplicates(rows, "custkey")
        duplicates = [r for r in dirty if "_duplicate_of" in r]
        assert len(duplicates) == 10
        original_keys = {r["custkey"] for r in rows}
        assert all(d["custkey"] not in original_keys for d in duplicates)
        assert all(d["_duplicate_of"] in original_keys for d in duplicates)

    def test_duplicates_keep_matching_contact_data(self):
        gen = DataGenerator(seed=1, profile=GeneratorProfile(duplicate_rate=0.2))
        rows = gen.customers(50)
        by_key = {r["custkey"]: r for r in rows}
        for dup in gen.with_duplicates(rows, "custkey"):
            if "_duplicate_of" in dup:
                original = by_key[dup["_duplicate_of"]]
                assert dup["address"] == original["address"]
                assert dup["phone"] == original["phone"]

    def test_empty_input(self, gen):
        assert gen.with_duplicates([], "custkey") == []

    def test_corruption_rate(self):
        gen = DataGenerator(seed=1, profile=GeneratorProfile(corruption_rate=0.5))
        rows = gen.customers(200)
        dirty = gen.with_corruption(rows, ["name"])
        corrupted = [r for r in dirty if r.get("_corrupted")]
        assert 50 < len(corrupted) < 150

    def test_corruption_changes_named_columns_only(self):
        gen = DataGenerator(seed=1, profile=GeneratorProfile(corruption_rate=1.0))
        rows = gen.customers(5)
        dirty = gen.with_corruption(rows, ["name"])
        for original, row in zip(rows, dirty):
            assert row["_corrupted"]
            assert row["name"] != original["name"]
            assert row["address"] == original["address"]

    def test_scaled_minimum_one(self):
        profile = GeneratorProfile()
        assert profile.scaled(100, 0.001) == 1

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ScaleFactorError):
            GeneratorProfile().scaled(100, 0)
