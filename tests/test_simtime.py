"""Virtual clocks and the discrete-event scheduler."""

import pytest

from repro.simtime import EventScheduler, VirtualClock, WallClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5

    def test_advance_to_future(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        assert clock.now() == 10.0

    def test_advance_to_past_is_noop(self):
        clock = VirtualClock(start=5.0)
        clock.advance_to(1.0)
        assert clock.now() == 5.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(start=-1)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance(9)
        clock.reset()
        assert clock.now() == 0.0


class TestWallClock:
    def test_time_scale_validation(self):
        with pytest.raises(ValueError):
            WallClock(time_scale=0)

    def test_advances_monotonically(self):
        clock = WallClock(time_scale=1000.0)  # 1 tu = 1 microsecond
        first = clock.now()
        clock.advance(5.0)
        assert clock.now() >= first


class TestEventScheduler:
    def test_pops_in_deadline_order(self):
        sched = EventScheduler()
        sched.push(5.0, "late")
        sched.push(1.0, "early")
        assert sched.pop().payload == "early"
        assert sched.pop().payload == "late"

    def test_fifo_tie_break(self):
        sched = EventScheduler()
        sched.push(1.0, "first")
        sched.push(1.0, "second")
        assert [e.payload for e in sched.drain()] == ["first", "second"]

    def test_clock_advances_with_pop(self):
        sched = EventScheduler()
        sched.push(3.0, "x")
        sched.pop()
        assert sched.clock.now() == 3.0

    def test_push_after(self):
        sched = EventScheduler()
        sched.clock.advance(10.0)
        event = sched.push_after(5.0, "x")
        assert event.deadline == 15.0

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().push(-1.0, "x")

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventScheduler().pop()

    def test_peek_does_not_remove(self):
        sched = EventScheduler()
        sched.push(1.0, "x")
        assert sched.peek().payload == "x"
        assert len(sched) == 1

    def test_handler_may_push_more(self):
        sched = EventScheduler()
        sched.push(1.0, "seed")
        seen = []

        def handler(event):
            seen.append(event.payload)
            if event.payload == "seed":
                sched.push_after(1.0, "spawned")

        handled = sched.run(handler)
        assert handled == 2
        assert seen == ["seed", "spawned"]

    def test_clear(self):
        sched = EventScheduler()
        sched.push(1.0, "x")
        sched.clear()
        assert len(sched) == 0
