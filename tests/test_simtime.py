"""Virtual clocks and the discrete-event scheduler."""

import pytest

from repro.simtime import EventScheduler, HeapScheduler, VirtualClock, WallClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5

    def test_advance_to_future(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        assert clock.now() == 10.0

    def test_advance_to_past_is_noop(self):
        clock = VirtualClock(start=5.0)
        clock.advance_to(1.0)
        assert clock.now() == 5.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(start=-1)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance(9)
        clock.reset()
        assert clock.now() == 0.0


class TestWallClock:
    def test_time_scale_validation(self):
        with pytest.raises(ValueError):
            WallClock(time_scale=0)

    def test_advances_monotonically(self):
        clock = WallClock(time_scale=1000.0)  # 1 tu = 1 microsecond
        first = clock.now()
        clock.advance(5.0)
        assert clock.now() >= first


class TestEventScheduler:
    def test_pops_in_deadline_order(self):
        sched = EventScheduler()
        sched.push(5.0, "late")
        sched.push(1.0, "early")
        assert sched.pop().payload == "early"
        assert sched.pop().payload == "late"

    def test_fifo_tie_break(self):
        sched = EventScheduler()
        sched.push(1.0, "first")
        sched.push(1.0, "second")
        assert [e.payload for e in sched.drain()] == ["first", "second"]

    def test_clock_advances_with_pop(self):
        sched = EventScheduler()
        sched.push(3.0, "x")
        sched.pop()
        assert sched.clock.now() == 3.0

    def test_push_after(self):
        sched = EventScheduler()
        sched.clock.advance(10.0)
        event = sched.push_after(5.0, "x")
        assert event.deadline == 15.0

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().push(-1.0, "x")

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventScheduler().pop()

    def test_peek_does_not_remove(self):
        sched = EventScheduler()
        sched.push(1.0, "x")
        assert sched.peek().payload == "x"
        assert len(sched) == 1

    def test_handler_may_push_more(self):
        sched = EventScheduler()
        sched.push(1.0, "seed")
        seen = []

        def handler(event):
            seen.append(event.payload)
            if event.payload == "seed":
                sched.push_after(1.0, "spawned")

        handled = sched.run(handler)
        assert handled == 2
        assert seen == ["seed", "spawned"]

    def test_clear(self):
        sched = EventScheduler()
        sched.push(1.0, "x")
        sched.clear()
        assert len(sched) == 0


class TestExactDeadlineTies:
    """Regressions pinning FIFO order at equal deadlines.

    The parallel sweep executor gives every worker its own scheduler and
    clock; byte-identity with the serial run requires that equal-deadline
    dispatch order is a pure function of push order, and that draining
    always leaves the clock at the drain deadline (so relative delays
    computed afterwards cannot diverge between workers).
    """

    def test_heap_scheduler_is_the_event_scheduler(self):
        assert HeapScheduler is EventScheduler

    def test_drain_until_keeps_fifo_order_for_equal_deadlines(self):
        sched = HeapScheduler()
        for name in ("a", "b", "c"):
            sched.push(2.0, name)
        sched.push(1.0, "before")
        sched.push(3.0, "after")
        drained = [e.payload for e in sched.drain_until(2.0)]
        assert drained == ["before", "a", "b", "c"]
        assert [e.payload for e in sched.drain()] == ["after"]

    def test_drain_until_includes_boundary_pushes_in_fifo_order(self):
        """Events pushed mid-drain at exactly the boundary deadline are
        dispatched within the same drain, behind already-queued ties."""
        sched = HeapScheduler()
        sched.push(5.0, "first")
        sched.push(5.0, "second")
        seen = []
        for event in sched.drain_until(5.0):
            seen.append(event.payload)
            if event.payload == "first":
                sched.push(5.0, "spawned-at-boundary")
        assert seen == ["first", "second", "spawned-at-boundary"]

    def test_drain_until_advances_clock_to_deadline_without_events(self):
        sched = HeapScheduler()
        assert list(sched.drain_until(7.5)) == []
        assert sched.clock.now() == 7.5

    def test_drain_until_advances_clock_past_last_event(self):
        sched = HeapScheduler()
        sched.push(2.0, "x")
        list(sched.drain_until(9.0))
        assert sched.clock.now() == 9.0

    def test_push_after_anchors_at_drained_to_time(self):
        """push_after after a drain computes from the drain deadline, not
        from the last dispatched event — otherwise two schedulers that
        drained through different event prefixes would schedule the same
        relative delay at different absolute deadlines."""
        with_event = HeapScheduler()
        with_event.push(2.0, "x")
        list(with_event.drain_until(10.0))
        without_event = HeapScheduler()
        list(without_event.drain_until(10.0))
        assert (
            with_event.push_after(5.0, "y").deadline
            == without_event.push_after(5.0, "y").deadline
            == 15.0
        )

    def test_drain_until_never_moves_clock_backwards(self):
        sched = HeapScheduler()
        sched.clock.advance(20.0)
        assert list(sched.drain_until(10.0)) == []
        assert sched.clock.now() == 20.0
