"""The `repro storm` load generator: determinism, accounting, models.

Engine execution is stubbed so hundreds of virtual clients settle in
well under a second; what is under test is the generator itself — the
seeded client plans, the open/closed arrival models, the accounting
identity (submitted = accepted + rejected + errors) and the report
shape the CLI prints.
"""

import asyncio
import time

import pytest

from repro.errors import ServeError
from repro.parallel.spec import RunOutcome
from repro.serve import (
    ServeConfig,
    StormConfig,
    StormReport,
    TenantTally,
    TenantPolicy,
    run_storm,
)
from repro.serve.storm import _plan_clients


@pytest.fixture()
def fast_runs(monkeypatch):
    def fake_run_spec(spec):
        time.sleep(0.001)
        return RunOutcome(
            spec=spec, status="ok",
            landscape_digest=f"digest-{spec.seed}", wall_seconds=0.001,
        )

    monkeypatch.setattr("repro.serve.dispatch.run_spec", fake_run_spec)
    return fake_run_spec


def _serve_config(**kwargs):
    kwargs.setdefault("dispatcher", "inline")
    kwargs.setdefault("engine_slots", 4)
    return ServeConfig(**kwargs)


GENEROUS = TenantPolicy(name="default", rate=1e6, burst=1e6, max_active=10_000)


class TestClientPlans:
    def test_same_seed_same_plans(self):
        config = StormConfig(clients=50, seed=13)
        first = _plan_clients(config)
        second = _plan_clients(config)
        assert first == second

    def test_different_seed_different_plans(self):
        a = _plan_clients(StormConfig(clients=50, seed=1))
        b = _plan_clients(StormConfig(clients=50, seed=2))
        assert [p.at for p in a] != [p.at for p in b]

    def test_tenants_round_robin(self):
        plans = _plan_clients(StormConfig(clients=6, tenants=("a", "b", "c")))
        assert [p.tenant for p in plans] == ["a", "b", "c"] * 2

    def test_specs_come_from_the_pool(self):
        config = StormConfig(clients=40, distinct=3)
        pool = config.spec_pool()
        assert len(pool) == 3
        for plan in _plan_clients(config):
            assert plan.spec in pool

    def test_arrival_times_monotone(self):
        plans = _plan_clients(StormConfig(clients=30, rate=1000.0))
        ats = [p.at for p in plans]
        assert ats == sorted(ats)
        assert all(at > 0 for at in ats)


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ServeError, match="client"):
            StormConfig(clients=0)
        with pytest.raises(ServeError, match="tenant"):
            StormConfig(tenants=())
        with pytest.raises(ServeError, match="model"):
            StormConfig(model="bursty")
        with pytest.raises(ServeError, match="rate"):
            StormConfig(rate=0)
        with pytest.raises(ServeError, match="concurrency"):
            StormConfig(model="closed", concurrency=0)
        with pytest.raises(ServeError, match="pool"):
            StormConfig(distinct=0)


class TestOpenLoop:
    def test_accounting_identity_under_pressure(self, fast_runs):
        config = StormConfig(
            clients=200, tenants=("acme", "globex"), model="open",
            rate=5000.0, seed=21, distinct=2, wait_s=10.0,
        )
        report = asyncio.run(run_storm(
            config,
            serve_config=_serve_config(
                queue_capacity=4,
                default_policy=TenantPolicy(
                    name="default", rate=200.0, burst=20.0, max_active=4
                ),
            ),
        ))
        report.check()
        assert report.submitted == 200
        assert report.accepted + report.rejected + report.errors == 200
        assert report.rejected > 0  # that rate against that queue must bounce
        reasons = {
            reason
            for tally in report.tenants.values()
            for reason in tally.rejected
        }
        assert reasons <= {
            "queue-full", "tenant-quota", "rate-limited", "draining",
            "circuit-open",
        }
        # Bounded queue: the high-water mark respects the configured cap.
        assert report.healthz.get("queue_depth", 0) <= 4

    def test_unhindered_storm_completes_everything(self, fast_runs):
        config = StormConfig(
            clients=60, model="open", rate=2000.0, seed=3, distinct=2,
            wait_s=10.0,
        )
        report = asyncio.run(run_storm(
            config, serve_config=_serve_config(default_policy=GENEROUS),
        ))
        report.check()
        assert report.accepted == 60
        assert report.rejected == 0
        for tally in report.tenants.values():
            assert tally.completed == tally.accepted
            assert len(tally.latencies_s) == tally.completed


class TestClosedLoop:
    def test_sequential_population_hits_the_cache(self, fast_runs):
        config = StormConfig(
            clients=20, tenants=("solo",), model="closed", concurrency=1,
            seed=5, distinct=1, wait_s=10.0,
        )
        report = asyncio.run(run_storm(
            config, serve_config=_serve_config(default_policy=GENEROUS),
        ))
        report.check()
        tally = report.tenants["solo"]
        assert tally.completed == 20
        # One distinct spec, sequential clients: all but the first are
        # deterministic cache hits.
        assert tally.cached == 19

    def test_population_bounds_concurrency(self, fast_runs):
        config = StormConfig(
            clients=30, model="closed", concurrency=4, seed=9,
            distinct=2, wait_s=10.0,
        )
        report = asyncio.run(run_storm(
            config, serve_config=_serve_config(default_policy=GENEROUS),
        ))
        report.check()
        assert report.accepted == 30
        assert report.rejected == 0


class TestReportShape:
    def _report(self, fast_runs):
        config = StormConfig(
            clients=30, model="open", rate=2000.0, seed=17, distinct=2,
            wait_s=10.0,
        )
        return asyncio.run(run_storm(
            config, serve_config=_serve_config(default_policy=GENEROUS),
        ))

    def test_json_document(self, fast_runs):
        doc = self._report(fast_runs).to_json()
        assert doc["submitted"] == 30
        assert set(doc["tenants"]) == {"acme", "globex"}
        for tenant_doc in doc["tenants"].values():
            assert set(tenant_doc["latency_s"]) == {"p50", "p95", "p99"}
            assert "serve_share" in tenant_doc["overhead"]
            assert "throughput_per_s" in tenant_doc
        assert "healthz" in doc

    def test_text_table(self, fast_runs):
        text = self._report(fast_runs).format()
        assert "acme" in text and "globex" in text
        assert "p95 ms" in text
        assert "submitted=30" in text

    def test_server_side_reports_collected(self, fast_runs):
        report = self._report(fast_runs)
        for tenant in ("acme", "globex"):
            server_doc = report.server_reports[tenant]
            assert server_doc["tenant"] == tenant
            assert "overhead" in server_doc

    def test_check_raises_on_broken_accounting(self):
        report = StormReport(
            config=StormConfig(clients=2),
            duration_s=1.0,
            tenants={"acme": TenantTally(submitted=2, accepted=1)},
        )
        with pytest.raises(ServeError, match="accounting broken"):
            report.check()


class TestTargetedStorm:
    def test_host_without_port_is_an_error(self):
        with pytest.raises(ServeError, match="port"):
            asyncio.run(run_storm(StormConfig(clients=1), host="127.0.0.1"))
