"""The ``spec.synth`` knob at the dipbench.session/v1 serve boundary.

Synthesized workloads travel through the same translator as every other
spec field: strictly typed, strictly validated, with every knob problem
folded into the single 400 the tenant sees.  The storm generator
validates its shared knob string at config time and stamps it into
every pooled spec document.
"""

from __future__ import annotations

import pytest

from repro.errors import ServeError, TranslationError
from repro.serve import CONTRACT_V1, parse_session_request, spec_to_json
from repro.serve.storm import StormConfig


def _doc(**spec):
    return {"contract": CONTRACT_V1, "tenant": "acme", "spec": spec}


class TestTranslateSynth:
    def test_valid_knob_string_reaches_the_spec(self):
        request = parse_session_request(
            _doc(synth="sources=3,families=cdc+scd", seed=9)
        )
        assert request.spec.synth == "sources=3,families=cdc+scd"
        assert request.spec.seed == 9

    def test_empty_default_means_classic_scenario(self):
        assert parse_session_request(_doc()).spec.synth == ""

    def test_synth_must_be_a_string(self):
        with pytest.raises(TranslationError) as err:
            parse_session_request(_doc(synth=3))
        assert any(
            "spec.synth: expected str" in p for p in err.value.problems
        )

    def test_every_knob_problem_lands_in_one_400(self):
        with pytest.raises(TranslationError) as err:
            parse_session_request(
                _doc(synth="depth=99,noise=5,families=martian")
            )
        synth_problems = [
            p for p in err.value.problems if p.startswith("spec.synth:")
        ]
        text = "\n".join(synth_problems)
        assert len(synth_problems) == 3
        assert "depth" in text and "noise" in text and "martian" in text

    def test_knob_problems_fold_into_other_spec_problems(self):
        with pytest.raises(TranslationError) as err:
            parse_session_request(
                _doc(engine="quantum", synth="depth=99")
            )
        problems = err.value.problems
        assert any(p.startswith("spec.engine:") for p in problems)
        assert any(p.startswith("spec.synth:") for p in problems)

    def test_unknown_knob_rejected_not_dropped(self):
        with pytest.raises(TranslationError) as err:
            parse_session_request(_doc(synth="depht=2"))
        assert any("unknown knob" in p for p in err.value.problems)

    def test_spec_to_json_round_trips_synth(self):
        spec = parse_session_request(_doc(synth="families=cdc")).spec
        doc = spec_to_json(spec)
        assert doc["synth"] == "families=cdc"
        assert parse_session_request(
            {"contract": CONTRACT_V1, "tenant": "a", "spec": doc}
        ).spec == spec

    def test_classic_spec_json_has_no_synth_field(self):
        assert "synth" not in spec_to_json(parse_session_request(_doc()).spec)


class TestStormSynth:
    def test_pool_entries_carry_the_knobs_and_distinct_seeds(self):
        config = StormConfig(
            clients=4, distinct=3, synth="families=cdc,sources=1"
        )
        pool = config.spec_pool()
        assert len(pool) == 3
        assert all(d["synth"] == "families=cdc,sources=1" for d in pool)
        assert len({d["seed"] for d in pool}) == 3

    def test_classic_pool_has_no_synth_field(self):
        assert all("synth" not in d for d in StormConfig().spec_pool())

    def test_bad_knob_string_fails_at_config_time(self):
        with pytest.raises(ServeError) as err:
            StormConfig(synth="depth=99,bogus=1")
        assert "depth" in str(err.value)

    def test_pool_is_deterministic(self):
        a = StormConfig(synth="families=dirty").spec_pool()
        b = StormConfig(synth="families=dirty").spec_pool()
        assert a == b
