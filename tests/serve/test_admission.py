"""Admission control under a deterministic clock."""

import pytest

from repro.errors import AdmissionRejected, ServeError, UnknownTenant
from repro.serve import AdmissionController, TenantPolicy, TokenBucket


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_starts_full_and_spends_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        assert bucket.try_acquire() > 0

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == pytest.approx(0.5)
        clock.advance(0.5)  # rate 2/s -> one token back
        assert bucket.try_acquire() == 0.0

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == 2.0

    def test_wait_hint_is_time_to_next_token(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1.0, clock=clock)
        bucket.try_acquire()
        assert bucket.try_acquire() == pytest.approx(0.25)


class TestPolicies:
    def test_policy_validation(self):
        with pytest.raises(ServeError):
            TenantPolicy(name="x", rate=0)
        with pytest.raises(ServeError):
            TenantPolicy(name="x", burst=0)
        with pytest.raises(ServeError):
            TenantPolicy(name="x", max_active=0)

    def test_closed_enrollment_rejects_unknown(self):
        controller = AdmissionController(
            policies={"acme": TenantPolicy(name="acme")},
            default_policy=None,
        )
        with pytest.raises(UnknownTenant):
            controller.admit("ghost", active=0, queue_depth=0)

    def test_open_enrollment_materializes_policy(self):
        controller = AdmissionController(
            policies={}, default_policy=TenantPolicy(name="default", rate=7)
        )
        controller.admit("newcomer", active=0, queue_depth=0)
        assert controller.policies["newcomer"].rate == 7
        assert controller.policies["newcomer"].name == "newcomer"


class TestGates:
    def _controller(self, clock, **policy):
        return AdmissionController(
            policies={"acme": TenantPolicy(name="acme", **policy)},
            queue_capacity=4,
            clock=clock,
        )

    def test_queue_full_gates_first(self):
        clock = FakeClock()
        controller = self._controller(clock, max_active=1)
        # Queue full wins even when the tenant is also over quota.
        with pytest.raises(AdmissionRejected) as err:
            controller.admit("acme", active=5, queue_depth=4)
        assert err.value.reason == "queue-full"
        assert err.value.retry_after > 0

    def test_tenant_quota(self):
        clock = FakeClock()
        controller = self._controller(clock, max_active=2)
        controller.admit("acme", active=0, queue_depth=0)
        controller.admit("acme", active=1, queue_depth=1)
        with pytest.raises(AdmissionRejected) as err:
            controller.admit("acme", active=2, queue_depth=2)
        assert err.value.reason == "tenant-quota"

    def test_rate_limited_with_retry_after(self):
        clock = FakeClock()
        controller = self._controller(clock, rate=2.0, burst=1.0)
        controller.admit("acme", active=0, queue_depth=0)
        with pytest.raises(AdmissionRejected) as err:
            controller.admit("acme", active=0, queue_depth=0)
        assert err.value.reason == "rate-limited"
        assert err.value.retry_after == pytest.approx(0.5)
        clock.advance(0.5)
        controller.admit("acme", active=0, queue_depth=0)  # token refilled

    def test_rejection_consumes_no_token(self):
        clock = FakeClock()
        controller = self._controller(clock, burst=1.0, max_active=1)
        with pytest.raises(AdmissionRejected):
            controller.admit("acme", active=1, queue_depth=0)
        # The quota rejection left the bucket untouched.
        controller.admit("acme", active=0, queue_depth=0)

    def test_tenants_do_not_share_buckets(self):
        clock = FakeClock()
        controller = AdmissionController(
            policies={
                "acme": TenantPolicy(name="acme", rate=1, burst=1),
                "globex": TenantPolicy(name="globex", rate=1, burst=1),
            },
            clock=clock,
        )
        controller.admit("acme", active=0, queue_depth=0)
        controller.admit("globex", active=0, queue_depth=0)
        with pytest.raises(AdmissionRejected):
            controller.admit("acme", active=0, queue_depth=0)
