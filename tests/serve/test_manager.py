"""SessionManager: backpressure edges, breakers, drain, accounting.

Everything here runs on the inline (thread) dispatcher with a
monkeypatched ``run_spec``, so sessions execute in microseconds and the
admission/backpressure edges are exercised deterministically — the
injected clock drives token buckets and circuit breakers, not the wall.
"""

import asyncio
import time

import pytest

from repro.errors import (
    AdmissionRejected,
    CircuitOpenError,
    SessionNotFound,
    TranslationError,
)
from repro.parallel.spec import RunOutcome
from repro.serve import (
    CONTRACT_V1,
    DONE,
    FAILED,
    ServeConfig,
    SessionManager,
    TenantPolicy,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _doc(tenant="acme", **spec):
    return {"contract": CONTRACT_V1, "tenant": tenant, "spec": spec}


def _config(**kwargs):
    kwargs.setdefault("dispatcher", "inline")
    kwargs.setdefault("engine_slots", 2)
    return ServeConfig(**kwargs)


@pytest.fixture()
def fast_runs(monkeypatch):
    """Replace engine execution with an instant deterministic stand-in."""

    def fake_run_spec(spec):
        if spec.sabotage == "raise":
            return RunOutcome.failed(spec, RuntimeError("sabotaged run"))
        time.sleep(0.002)
        return RunOutcome(
            spec=spec, status="ok",
            landscape_digest=f"digest-{spec.seed}", wall_seconds=0.002,
        )

    monkeypatch.setattr("repro.serve.dispatch.run_spec", fake_run_spec)
    return fake_run_spec


def run(coroutine):
    return asyncio.run(coroutine)


class TestLifecycle:
    def test_session_travels_to_done(self, fast_runs):
        async def scenario():
            manager = SessionManager(_config())
            await manager.start()
            session = manager.submit(_doc(seed=1))
            assert await manager.wait(session, timeout=5)
            await manager.shutdown()
            return manager, session

        manager, session = run(scenario())
        assert session.state == DONE
        assert session.outcome.landscape_digest == "digest-1"
        assert not session.cached
        assert manager.state == "stopped"

    def test_deterministic_cache_serves_repeat_specs(self, fast_runs):
        async def scenario():
            manager = SessionManager(_config())
            await manager.start()
            first = manager.submit(_doc(seed=5))
            await manager.wait(first, timeout=5)
            second = manager.submit(_doc(seed=5))
            await manager.wait(second, timeout=5)
            await manager.shutdown()
            return manager, first, second

        manager, first, second = run(scenario())
        assert not first.cached and second.cached
        assert second.engine_wall_s == 0.0
        assert second.outcome is first.outcome
        assert manager.cache_hits == 1

    def test_cache_can_be_disabled(self, fast_runs):
        async def scenario():
            manager = SessionManager(_config(cache=False))
            await manager.start()
            for _ in range(2):
                session = manager.submit(_doc(seed=5))
                await manager.wait(session, timeout=5)
            await manager.shutdown()
            return manager, session

        manager, session = run(scenario())
        assert not session.cached
        assert manager.cache_hits == 0

    def test_translation_error_propagates(self, fast_runs):
        async def scenario():
            manager = SessionManager(_config())
            with pytest.raises(TranslationError):
                manager.submit({"spec": {}})
            await manager.shutdown(drain=False)
            return manager

        manager = run(scenario())
        assert manager.rejections["(untranslated)"]["bad-request"] == 1


class TestBackpressure:
    def test_queue_full_rejects_with_429_reason(self, fast_runs):
        async def scenario():
            # Workers never started: the queue only fills.
            manager = SessionManager(_config(queue_capacity=2))
            manager.submit(_doc(seed=1))
            manager.submit(_doc(seed=2))
            with pytest.raises(AdmissionRejected) as err:
                manager.submit(_doc(seed=3))
            assert err.value.reason == "queue-full"
            assert err.value.retry_after > 0
            await manager.shutdown(drain=False)
            return manager

        manager = run(scenario())
        assert manager.rejections["acme"]["queue-full"] == 1
        # Undrained shutdown failed what was still queued.
        for session in manager.store.for_tenant("acme"):
            assert session.state == FAILED
            assert session.error_type == "ServerStopped"

    def test_tenant_quota_exhaustion(self, fast_runs):
        async def scenario():
            manager = SessionManager(
                _config(tenants={
                    "acme": TenantPolicy(name="acme", max_active=2),
                })
            )
            manager.submit(_doc(seed=1))
            manager.submit(_doc(seed=2))
            with pytest.raises(AdmissionRejected) as err:
                manager.submit(_doc(seed=3))
            assert err.value.reason == "tenant-quota"
            await manager.shutdown(drain=False)
            return manager

        manager = run(scenario())
        assert manager.rejections["acme"]["tenant-quota"] == 1

    def test_quota_frees_as_sessions_finish(self, fast_runs):
        async def scenario():
            manager = SessionManager(
                _config(tenants={
                    "acme": TenantPolicy(name="acme", max_active=1),
                })
            )
            await manager.start()
            first = manager.submit(_doc(seed=1))
            await manager.wait(first, timeout=5)
            second = manager.submit(_doc(seed=2))  # quota freed: admitted
            await manager.wait(second, timeout=5)
            await manager.shutdown()
            return second

        assert run(scenario()).state == DONE

    def test_rate_limit_uses_injected_clock(self, fast_runs):
        clock = FakeClock()

        async def scenario():
            manager = SessionManager(
                _config(tenants={
                    "acme": TenantPolicy(
                        name="acme", rate=1.0, burst=2.0, max_active=50
                    ),
                }),
                clock=clock,
            )
            await manager.start()
            manager.submit(_doc(seed=1))
            manager.submit(_doc(seed=2))
            with pytest.raises(AdmissionRejected) as err:
                manager.submit(_doc(seed=3))
            assert err.value.reason == "rate-limited"
            clock.advance(1.0)  # exactly one token refills
            manager.submit(_doc(seed=4))
            await manager.shutdown()
            return manager

        manager = run(scenario())
        assert manager.rejections["acme"]["rate-limited"] == 1


class TestCircuitBreaker:
    def test_failures_open_the_tenant_breaker(self, fast_runs):
        clock = FakeClock()

        async def scenario():
            from repro.resilience import BreakerPolicy

            manager = SessionManager(
                _config(
                    breaker=BreakerPolicy(
                        failure_threshold=2, reset_timeout=5.0
                    ),
                ),
                clock=clock,
            )
            await manager.start()
            for seed in (1, 2):
                session = manager.submit(_doc(seed=seed, sabotage="raise"))
                await manager.wait(session, timeout=5)
                assert session.state == FAILED
            # Breaker open: the next submission is rejected up front.
            with pytest.raises(CircuitOpenError):
                manager.submit(_doc(seed=3))
            # A *different* tenant is unaffected (per-tenant isolation).
            ok = manager.submit(_doc(tenant="globex", seed=4))
            await manager.wait(ok, timeout=5)
            assert ok.state == DONE
            # After the reset timeout a half-open probe goes through.
            clock.advance(6.0)
            probe = manager.submit(_doc(seed=5))
            await manager.wait(probe, timeout=5)
            assert probe.state == DONE
            await manager.shutdown()
            return manager

        manager = run(scenario())
        assert manager.rejections["acme"]["circuit-open"] == 1
        assert len(manager.dead_letters) == 2
        assert manager.dead_letters.by_error_type() == {"RuntimeError": 2}

    def test_failed_sessions_reach_the_dead_letter_queue(self, fast_runs):
        async def scenario():
            manager = SessionManager(_config())
            await manager.start()
            session = manager.submit(_doc(seed=1, sabotage="raise"))
            await manager.wait(session, timeout=5)
            await manager.shutdown()
            return manager, session

        manager, session = run(scenario())
        (letter,) = manager.dead_letters.entries
        assert letter.process_id == f"acme/{session.id}"
        assert letter.stream == "serve"
        assert letter.error_type == "RuntimeError"


class TestDrain:
    def test_graceful_drain_finishes_queued_work(self, fast_runs):
        async def scenario():
            manager = SessionManager(_config(engine_slots=1))
            await manager.start()
            sessions = [manager.submit(_doc(seed=n)) for n in range(5)]
            await manager.shutdown(drain=True)
            return manager, sessions

        manager, sessions = run(scenario())
        assert all(s.state == DONE for s in sessions)
        assert manager.state == "stopped"

    def test_draining_rejects_new_submissions(self, fast_runs):
        async def scenario():
            manager = SessionManager(_config())
            await manager.start()
            await manager.shutdown(drain=True)
            with pytest.raises(AdmissionRejected) as err:
                manager.submit(_doc(seed=1))
            assert err.value.reason == "draining"
            return manager

        manager = run(scenario())
        assert manager.rejections["acme"]["draining"] == 1

    def test_shutdown_is_idempotent(self, fast_runs):
        async def scenario():
            manager = SessionManager(_config())
            await manager.start()
            await manager.shutdown()
            await manager.shutdown()

        run(scenario())


class TestIsolationAndReporting:
    def test_sessions_are_tenant_scoped(self, fast_runs):
        async def scenario():
            manager = SessionManager(_config())
            await manager.start()
            session = manager.submit(_doc(tenant="acme", seed=1))
            await manager.wait(session, timeout=5)
            await manager.shutdown()
            return manager, session

        manager, session = run(scenario())
        assert manager.store.get(session.id, "acme") is session
        with pytest.raises(SessionNotFound):
            manager.store.get(session.id, "globex")
        with pytest.raises(SessionNotFound):
            manager.store.get("s-999999", "acme")

    def test_overheads_metered_separately_from_engine(self, fast_runs):
        async def scenario():
            manager = SessionManager(_config())
            await manager.start()
            session = manager.submit(_doc(seed=1))
            await manager.wait(session, timeout=5)
            await manager.shutdown()
            return manager, session

        manager, session = run(scenario())
        assert session.engine_wall_s > 0
        assert session.serve_overhead_s >= 0
        assert session.serve_overhead_s == pytest.approx(
            session.translation_s + session.admission_s
            + session.queue_wait_s
        )
        snapshot = manager.metrics.snapshot()
        assert (
            snapshot["serve_engine_seconds{tenant=acme}.count"] == 1.0
        )
        for stage in ("translation", "admission", "queue-wait"):
            key = (
                f"serve_overhead_seconds{{stage={stage},tenant=acme}}.count"
            )
            assert snapshot[key] == 1.0

    def test_tenant_report_accounts_everything(self, fast_runs):
        async def scenario():
            manager = SessionManager(
                _config(tenants={
                    "acme": TenantPolicy(name="acme", max_active=2),
                })
            )
            await manager.start()
            first = manager.submit(_doc(seed=1))
            await manager.wait(first, timeout=5)
            repeat = manager.submit(_doc(seed=1))
            await manager.wait(repeat, timeout=5)
            failed = manager.submit(_doc(seed=2, sabotage="raise"))
            await manager.wait(failed, timeout=5)
            await manager.shutdown()
            return manager

        manager = run(scenario())
        report = manager.tenant_report("acme")
        assert report["sessions"]["total"] == 3
        assert report["sessions"]["done"] == 2
        assert report["sessions"]["failed"] == 1
        assert report["sessions"]["cached"] == 1
        assert set(report["latency_s"]) == {"p50", "p95", "p99"}
        assert report["overhead"]["engine_s"] >= 0

    def test_cluster_telemetry_reaches_healthz_and_metrics(self, monkeypatch):
        from repro.cluster import FailoverReport, ReplicationStats

        class _NoRows:
            def rows(self):
                return []

        class _ClusteredResult:
            """The slice of BenchmarkResult the serve layer reads."""

            def __init__(self):
                self.replication = ReplicationStats(
                    mode="async", hosts=3, replicas_per_db=1,
                    replica_count=11, shipped_records=120, batches=7,
                    max_lag_records=4,
                )
                self.failover_reports = [
                    FailoverReport(
                        index=0, period=0, dead_host="H1", crash_at=40.0,
                        detected_at=47.5, detection_eu=7.5, rpo_records=3,
                    ),
                ]
                self.metrics = _NoRows()

        def fake_run_spec(spec):
            if spec.sabotage == "raise":
                return RunOutcome.failed(spec, RuntimeError("sabotaged run"))
            outcome = RunOutcome(
                spec=spec, status="ok",
                landscape_digest="d", wall_seconds=0.001,
            )
            outcome.result = _ClusteredResult()
            return outcome

        monkeypatch.setattr("repro.serve.dispatch.run_spec", fake_run_spec)

        async def scenario():
            manager = SessionManager(_config())
            await manager.start()
            done = manager.submit(_doc(seed=1))
            await manager.wait(done, timeout=5)
            repeat = manager.submit(_doc(seed=1))  # cache hit
            await manager.wait(repeat, timeout=5)
            failed = manager.submit(
                _doc(tenant="globex", seed=2, sabotage="raise")
            )
            await manager.wait(failed, timeout=5)
            stats = manager.stats()
            snapshot = manager.metrics.snapshot()
            await manager.shutdown()
            return repeat, stats, snapshot

        repeat, stats, snapshot = run(scenario())
        assert repeat.cached
        # Per-endpoint breaker states, not just the state histogram.
        assert stats["breaker_states"] == {
            "acme": "closed", "globex": "closed",
        }
        assert stats["dead_letters_by_class"] == {"RuntimeError": 1}
        # The cache hit re-serves a recorded run: replication is
        # counted once, for the session that actually executed.
        assert stats["replication"] == {
            "sessions": 1,
            "shipped_records": 120,
            "max_lag_records": 4,
            "failovers": 1,
            "rpo_records": 3,
        }
        assert snapshot["cluster_replica_lag_records{tenant=acme}"] == 4.0
        assert snapshot["cluster_shipped_records_total{tenant=acme}"] == 120.0
        assert snapshot["serve_failovers_total{tenant=acme}"] == 1.0
        assert snapshot["serve_rpo_records_total{tenant=acme}"] == 3.0
        assert snapshot["serve_breaker_state{tenant=acme}"] == 0.0
        assert snapshot["serve_dead_letters_depth"] == 1.0

    def test_healthz_stats(self, fast_runs):
        async def scenario():
            manager = SessionManager(_config())
            await manager.start()
            session = manager.submit(_doc(seed=1))
            await manager.wait(session, timeout=5)
            stats = manager.stats()
            await manager.shutdown()
            return stats

        stats = run(scenario())
        assert stats["status"] == "ok"
        assert stats["sessions"] == 1
        assert stats["dispatcher"] == "inline"
        assert stats["queue_capacity"] == 64
