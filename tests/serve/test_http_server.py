"""End-to-end tests of the asyncio HTTP front end.

Each test boots a real server on a free port and talks to it through
:class:`ServeClient` — the same code path a storm's virtual clients
take.  Fast tests stub engine execution; the byte-identity test at the
bottom runs the real benchmark once and proves the served report equals
direct :func:`run_spec` execution, field for field.
"""

import asyncio
import json
import time

import pytest

from repro.parallel.spec import RunOutcome, run_spec
from repro.serve import (
    CONTRACT_V1,
    HttpServer,
    ServeClient,
    ServeConfig,
    SessionManager,
    TenantPolicy,
    parse_session_request,
)
from repro.toolsuite.monitor import Monitor


@pytest.fixture()
def fast_runs(monkeypatch):
    """Instant deterministic stand-in for engine execution."""

    def fake_run_spec(spec):
        if spec.sabotage == "raise":
            return RunOutcome.failed(spec, RuntimeError("sabotaged run"))
        time.sleep(0.002)
        return RunOutcome(
            spec=spec, status="ok",
            landscape_digest=f"digest-{spec.seed}", wall_seconds=0.002,
        )

    monkeypatch.setattr("repro.serve.dispatch.run_spec", fake_run_spec)
    return fake_run_spec


def _config(**kwargs):
    kwargs.setdefault("dispatcher", "inline")
    kwargs.setdefault("engine_slots", 2)
    return ServeConfig(**kwargs)


def _doc(tenant="acme", **spec):
    return {"contract": CONTRACT_V1, "tenant": tenant, "spec": spec}


def serve_scenario(scenario, config=None):
    """Boot a server, run ``scenario(client)``, always drain and stop."""

    async def wrapper():
        server = HttpServer(SessionManager(config or _config()))
        await server.start(host="127.0.0.1", port=0)
        try:
            return await scenario(ServeClient(server.host, server.port))
        finally:
            await server.stop(drain=True)

    return asyncio.run(wrapper())


class TestRouting:
    def test_healthz(self, fast_runs):
        async def scenario(client):
            reply = await client.healthz()
            assert reply.status == 200
            assert reply.doc["status"] == "ok"
            assert reply.doc["queue_capacity"] == 64
            assert reply.doc["dispatcher"] == "inline"
            # The cluster-era health document: per-endpoint breaker
            # states, dead-letter classes and replication aggregates
            # are always present, even with nothing served yet.
            assert reply.doc["breaker_states"] == {}
            assert reply.doc["dead_letters_by_class"] == {}
            assert reply.doc["replication"]["failovers"] == 0

        serve_scenario(scenario)

    def test_unknown_route_is_404(self, fast_runs):
        async def scenario(client):
            reply = await client.request("GET", "/nope")
            assert reply.status == 404

        serve_scenario(scenario)

    def test_wrong_method_is_405(self, fast_runs):
        async def scenario(client):
            reply = await client.request("DELETE", "/sessions")
            assert reply.status == 405

        serve_scenario(scenario)

    def test_invalid_json_body_is_400(self, fast_runs):
        async def scenario(client):
            reader, writer = await asyncio.open_connection(
                client.host, client.port
            )
            payload = (
                b"POST /sessions HTTP/1.1\r\nHost: x\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 9\r\n\r\nnot json!"
            )
            writer.write(payload)
            await writer.drain()
            status = int((await reader.readline()).split()[1])
            writer.close()
            await writer.wait_closed()
            assert status == 400

        serve_scenario(scenario)


class TestSessionFlow:
    def test_submit_wait_report(self, fast_runs):
        async def scenario(client):
            posted = await client.post_session(_doc(seed=4))
            assert posted.status == 202
            doc = posted.doc
            assert doc["contract"] == CONTRACT_V1
            assert doc["tenant"] == "acme"
            assert doc["state"] in ("queued", "running")
            status = await client.get_session(doc["id"], "acme", wait=10)
            assert status.doc["state"] == "done"
            timings = status.doc["timings"]
            assert timings["engine_wall_ms"] > 0
            assert timings["serve_overhead_ms"] >= 0
            # The stub outcome carries no engine result, so the report
            # is the minimal form; full reports are covered by the
            # byte-identity test below.
            report = await client.get_report(doc["id"], "acme", wait=10)
            assert report.status == 200
            assert report.doc["state"] == "done"
            assert report.doc["id"] == doc["id"]

        serve_scenario(scenario)

    def test_translation_problems_listed_in_400(self, fast_runs):
        async def scenario(client):
            reply = await client.post_session({
                "contract": CONTRACT_V1, "tenant": "acme",
                "spec": {"engine": "no-such-engine", "datasize": 99.0},
            })
            assert reply.status == 400
            problems = reply.doc["problems"]
            assert any("spec.engine" in p for p in problems)
            assert any("spec.datasize" in p for p in problems)

        serve_scenario(scenario)

    def test_unknown_spec_field_rejected(self, fast_runs):
        async def scenario(client):
            reply = await client.post_session({
                "contract": CONTRACT_V1, "tenant": "acme",
                "spec": {"bogus": 1},
            })
            assert reply.status == 400
            assert any("spec.bogus" in p for p in reply.doc["problems"])

        serve_scenario(scenario)

    def test_closed_enrollment_rejects_unknown_tenant(self, fast_runs):
        config = _config(
            tenants={"vip": TenantPolicy(name="vip")}, default_policy=None
        )

        async def scenario(client):
            reply = await client.post_session(_doc(tenant="stranger"))
            assert reply.status == 403
            accepted = await client.post_session(_doc(tenant="vip"))
            assert accepted.status == 202

        serve_scenario(scenario, config)

    def test_tenant_isolation_hides_foreign_sessions(self, fast_runs):
        async def scenario(client):
            posted = await client.post_session(_doc(tenant="acme"))
            session_id = posted.doc["id"]
            foreign = await client.get_session(session_id, "globex")
            assert foreign.status == 404
            own = await client.get_session(session_id, "acme", wait=10)
            assert own.status == 200

        serve_scenario(scenario)

    def test_get_without_tenant_header_is_400(self, fast_runs):
        async def scenario(client):
            posted = await client.post_session(_doc())
            reply = await client.request(
                "GET", f"/sessions/{posted.doc['id']}"
            )
            assert reply.status == 400

        serve_scenario(scenario)

    def test_report_on_unfinished_session_is_409(self, monkeypatch):
        def slow_run_spec(spec):
            time.sleep(0.5)
            return RunOutcome(spec=spec, status="ok", landscape_digest="d")

        monkeypatch.setattr("repro.serve.dispatch.run_spec", slow_run_spec)

        async def scenario(client):
            posted = await client.post_session(_doc())
            reply = await client.get_report(posted.doc["id"], "acme")
            assert reply.status == 409
            assert reply.headers["retry-after"] == "1"

        serve_scenario(scenario)


class TestBackpressureOverHttp:
    def test_queue_full_is_429_with_retry_after(self, monkeypatch):
        def slow_run_spec(spec):
            time.sleep(0.5)
            return RunOutcome(spec=spec, status="ok", landscape_digest="d")

        monkeypatch.setattr("repro.serve.dispatch.run_spec", slow_run_spec)
        config = _config(queue_capacity=1, engine_slots=1)

        async def scenario(client):
            # Slot busy with #1, #2 fills the queue, #3 must bounce.
            replies = [
                await client.post_session(_doc(seed=seed))
                for seed in range(3)
            ]
            assert replies[-1].status == 429
            assert replies[-1].doc["reason"] == "queue-full"
            assert replies[-1].retry_after >= 1

        serve_scenario(scenario, config)

    def test_circuit_open_is_503(self, fast_runs):
        config = _config(cache=False)

        async def scenario(client):
            for seed in range(3):
                posted = await client.post_session(
                    _doc(seed=seed, sabotage="raise")
                )
                await client.get_session(posted.doc["id"], "acme", wait=10)
            reply = await client.post_session(_doc(seed=99))
            assert reply.status == 503
            assert reply.doc["reason"] == "circuit-open"
            assert reply.retry_after >= 1

        serve_scenario(scenario, config)


class TestObservabilityRoutes:
    def test_metrics_exposition(self, fast_runs):
        async def scenario(client):
            posted = await client.post_session(_doc())
            await client.get_session(posted.doc["id"], "acme", wait=10)
            reply = await client.metrics()
            assert reply.status == 200
            assert "serve_sessions_total" in reply.text
            assert "serve_overhead_seconds" in reply.text
            assert "serve_engine_seconds" in reply.text

        serve_scenario(scenario)

    def test_tenant_report_route(self, fast_runs):
        async def scenario(client):
            posted = await client.post_session(_doc(tenant="acme"))
            await client.get_session(posted.doc["id"], "acme", wait=10)
            reply = await client.tenant_report("acme")
            assert reply.status == 200
            assert reply.doc["sessions"]["done"] == 1
            assert set(reply.doc["latency_s"]) == {"p50", "p95", "p99"}
            assert "serve_s" in reply.doc["overhead"]

        serve_scenario(scenario)


class TestByteIdentity:
    """The acceptance criterion: served == direct, byte for byte."""

    def test_served_report_equals_direct_run(self):
        spec_doc = {"engine": "interpreter", "datasize": 0.02, "seed": 11}
        doc = {"contract": CONTRACT_V1, "tenant": "acme", "spec": spec_doc}

        async def scenario(client):
            posted = await client.post_session(doc)
            assert posted.status == 202
            report = await client.get_report(posted.doc["id"], "acme", wait=60)
            assert report.status == 200
            return report.doc

        served = serve_scenario(scenario)
        spec = parse_session_request(doc).spec
        outcome = run_spec(spec)
        monitor = Monitor.merged([outcome])
        direct = {
            "landscape_digest": outcome.landscape_digest,
            "fingerprint": outcome.fingerprint(),
            "instances": outcome.result.total_instances,
            "errors": outcome.result.error_instances,
            "verification_ok": outcome.result.verification.ok,
            "navg_plus": {
                m.process_id: round(m.navg_plus, 6)
                for m in outcome.result.metrics.rows()
            },
            "navg_plus_total": round(outcome.navg_plus_total(), 6),
            "latency_tu": monitor.latency_percentiles(),
        }
        served_core = {k: served[k] for k in direct}
        assert (
            json.dumps(served_core, sort_keys=True)
            == json.dumps(direct, sort_keys=True)
        )
        assert served["verification_ok"] is True
