"""Contract v1 translation: strict boundary, all problems at once."""

import pytest

from repro.errors import TranslationError
from repro.parallel import RunSpec
from repro.serve import (
    CONTRACT_V1,
    parse_session_request,
    session_to_json,
    spec_to_json,
)
from repro.serve.session import Session


def _doc(**spec):
    return {"contract": CONTRACT_V1, "tenant": "acme", "spec": spec}


class TestParse:
    def test_minimal_document(self):
        request = parse_session_request(_doc())
        assert request.tenant == "acme"
        assert request.contract == CONTRACT_V1
        assert request.spec == RunSpec()

    def test_full_spec_roundtrip(self):
        request = parse_session_request(
            _doc(
                engine="federated", datasize=0.1, time=0.5, distribution=2,
                periods=3, seed=99, jitter=0.1, engine_workers=2,
                durability="wal", verify=False,
            )
        )
        spec = request.spec
        assert spec.engine == "federated"
        assert spec.datasize == 0.1
        assert spec.periods == 3
        assert spec.durability == "wal"
        assert spec.verify is False

    def test_int_widens_to_float(self):
        assert parse_session_request(_doc(time=2)).spec.time == 2.0

    def test_default_tenant_from_header(self):
        doc = {"contract": CONTRACT_V1, "spec": {}}
        assert parse_session_request(doc, default_tenant="hdr").tenant == "hdr"

    def test_body_tenant_wins_over_header(self):
        assert (
            parse_session_request(_doc(), default_tenant="hdr").tenant
            == "acme"
        )


class TestRejection:
    def test_missing_contract(self):
        with pytest.raises(TranslationError) as err:
            parse_session_request({"tenant": "acme", "spec": {}})
        assert any("contract: required" in p for p in err.value.problems)

    def test_unsupported_contract(self):
        with pytest.raises(TranslationError) as err:
            parse_session_request(
                {"contract": "dipbench.session/v9", "tenant": "a", "spec": {}}
            )
        assert any("unsupported" in p for p in err.value.problems)

    def test_missing_tenant(self):
        with pytest.raises(TranslationError) as err:
            parse_session_request({"contract": CONTRACT_V1, "spec": {}})
        assert any(p.startswith("tenant:") for p in err.value.problems)

    def test_unknown_fields_rejected_not_dropped(self):
        doc = _doc(datasize=0.05)
        doc["extra"] = 1
        doc["spec"]["dataszie"] = 0.1  # the misspelling that must fail loudly
        with pytest.raises(TranslationError) as err:
            parse_session_request(doc)
        problems = err.value.problems
        assert any("extra: unknown field" in p for p in problems)
        assert any("spec.dataszie: unknown field" in p for p in problems)

    def test_all_problems_collected_at_once(self):
        with pytest.raises(TranslationError) as err:
            parse_session_request(
                {
                    "tenant": "",
                    "spec": {"datasize": "big", "distribution": True},
                }
            )
        assert len(err.value.problems) >= 3  # contract, tenant, two spec

    def test_bool_is_not_an_int(self):
        with pytest.raises(TranslationError) as err:
            parse_session_request(_doc(seed=True))
        assert any("got bool" in p for p in err.value.problems)

    def test_type_mismatch(self):
        with pytest.raises(TranslationError) as err:
            parse_session_request(_doc(engine=3))
        assert any("spec.engine" in p for p in err.value.problems)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("engine", "warp-drive"),
            ("datasize", 0.0),
            ("datasize", 11.0),
            ("time", 0.0),
            ("distribution", 7),
            ("periods", 0),
            ("jitter", 1.0),
            ("engine_workers", 0),
            ("durability", "raid"),
            ("sabotage", "unplug"),
        ],
    )
    def test_range_validation(self, field, value):
        with pytest.raises(TranslationError) as err:
            parse_session_request(_doc(**{field: value}))
        assert any(f"spec.{field}" in p for p in err.value.problems)

    def test_non_object_body(self):
        with pytest.raises(TranslationError):
            parse_session_request([1, 2, 3])


class TestResponses:
    def test_spec_roundtrips_through_external_form(self):
        spec = RunSpec(engine="federated", datasize=0.1, seed=9)
        again = parse_session_request(
            {"contract": CONTRACT_V1, "tenant": "t",
             "spec": spec_to_json(spec)}
        ).spec
        assert again == spec

    def test_session_document_separates_overheads(self):
        session = Session(id="s-000001", tenant="acme", spec=RunSpec())
        session.translation_s = 0.001
        session.admission_s = 0.002
        session.queue_wait_s = 0.003
        session.engine_wall_s = 0.5
        doc = session_to_json(session)
        assert doc["timings"]["serve_overhead_ms"] == pytest.approx(6.0)
        assert doc["timings"]["engine_wall_ms"] == pytest.approx(500.0)
        assert "error_type" not in doc
