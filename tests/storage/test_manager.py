"""StorageManager policy tests: recording, checkpoints, group commit."""

from dataclasses import dataclass

import pytest

from repro.db.database import Database
from repro.db.schema import Column, TableSchema
from repro.errors import RecoveryError, StorageError
from repro.observability.export import export_prometheus
from repro.observability.metrics import MetricsRegistry
from repro.storage import RecoveryManager, StorageManager


@dataclass
class FakeRecord:
    completion: float


class FakeEngine:
    """Just enough engine surface for the StorageManager protocol."""

    def __init__(self, db: Database | None = None):
        self.records = []
        self.storage = None
        self._db = db
        self._runtime = {"worker_free": [0.0], "in_system": [],
                         "next_instance_id": 1}

    def durable_databases(self):
        return [self._db] if self._db is not None else []

    def runtime_state(self):
        return dict(self._runtime)

    def restore_runtime_state(self, state):
        self._runtime = dict(state)


def make_db(name="cdb"):
    db = Database(name)
    db.create_table(
        TableSchema(
            "t",
            [Column("k", "BIGINT", nullable=False), Column("v", "VARCHAR")],
            primary_key=("k",),
        )
    )
    return db


class TestConstruction:
    def test_unknown_mode_rejected(self):
        with pytest.raises(StorageError, match="unknown durability mode"):
            StorageManager(mode="raid0")

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(StorageError, match="checkpoint interval"):
            StorageManager(checkpoint_every=0)

    def test_negative_window_rejected(self):
        with pytest.raises(StorageError, match="group-commit window"):
            StorageManager(group_commit_window=-1.0)


class TestRecordingLifecycle:
    def test_writes_not_journaled_until_period_begins(self):
        storage = StorageManager(mode="wal")
        db = make_db()
        storage.attach(db)
        db.insert("t", {"k": 1})  # initialization, pre-period
        assert storage.wals["cdb"].open_size == 0

    def test_period_begin_checkpoints_then_records(self):
        storage = StorageManager(mode="wal")
        db = make_db()
        engine = FakeEngine(db)
        storage.attach_engine(engine)
        db.insert("t", {"k": 1})
        storage.begin_period(0, engine)
        assert storage.checkpoint_state is not None
        assert storage.checkpoint_state.total_rows == 1
        db.insert("t", {"k": 2})
        assert storage.wals["cdb"].open_size == 1

    def test_pause_suppresses_journaling(self):
        storage = StorageManager(mode="wal")
        db = make_db()
        engine = FakeEngine(db)
        storage.attach_engine(engine)
        storage.begin_period(0, engine)
        storage.pause()
        db.insert("t", {"k": 1})
        assert storage.wals["cdb"].open_size == 0

    def test_reattach_unknown_database_rejected(self):
        storage = StorageManager(mode="wal")
        storage.attach(make_db("known"))
        with pytest.raises(StorageError, match="unknown database"):
            storage.reattach_engine(FakeEngine(make_db("stranger")))


class TestCommitPath:
    def _ready(self, mode="wal", **kwargs):
        storage = StorageManager(mode=mode, **kwargs)
        db = make_db()
        engine = FakeEngine(db)
        storage.attach_engine(engine)
        storage.begin_period(0, engine)
        return storage, db, engine

    def test_commit_seals_open_buffer(self):
        storage, db, engine = self._ready()
        db.insert("t", {"k": 1})
        storage.commit_instance(engine, FakeRecord(completion=10.0))
        wal = storage.wals["cdb"]
        assert wal.open_size == 0
        assert wal.tail_size == 1
        assert storage.commits[0].at == 10.0

    def test_group_commit_window_amortizes_flushes(self):
        storage, db, engine = self._ready(group_commit_window=8.0)
        for at in (10.0, 12.0, 17.9, 18.0, 30.0):
            db.insert("t", {"k": at})
            storage.commit_instance(engine, FakeRecord(completion=at))
        # Windows: [10,18) covers 10/12/17.9; 18 opens [18,26); 30 opens a third.
        assert storage.commit_count == 5
        assert storage.flushes == 3

    def test_wal_mode_never_auto_checkpoints(self):
        storage, db, engine = self._ready(mode="wal", checkpoint_every=5.0)
        baseline = storage.checkpoints
        for at in (10.0, 100.0):
            db.insert("t", {"k": at})
            storage.commit_instance(engine, FakeRecord(completion=at))
        assert storage.checkpoints == baseline

    def test_snapshot_wal_checkpoints_on_cadence(self):
        storage, db, engine = self._ready(
            mode="snapshot+wal", checkpoint_every=50.0
        )
        baseline = storage.checkpoints
        db.insert("t", {"k": 1})
        storage.commit_instance(engine, FakeRecord(completion=10.0))
        assert storage.checkpoints == baseline  # before the cadence
        db.insert("t", {"k": 2})
        storage.commit_instance(engine, FakeRecord(completion=60.0))
        assert storage.checkpoints == baseline + 1
        assert storage.wal_tail_size == 0  # checkpoint truncated the tail
        assert storage.checkpoint_state.at == 60.0


class TestCrashAndMetrics:
    def test_crash_discards_open_buffers_and_pauses(self):
        storage = StorageManager(mode="wal")
        db = make_db()
        engine = FakeEngine(db)
        storage.attach_engine(engine)
        storage.begin_period(0, engine)
        db.insert("t", {"k": 1})
        storage.on_crash(engine)
        assert storage.wals["cdb"].open_size == 0
        assert not storage.recording
        assert storage.crashes == 1

    def test_recovery_without_checkpoint_rejected(self):
        storage = StorageManager(mode="wal")
        with pytest.raises(RecoveryError, match="no checkpoint"):
            RecoveryManager(storage).recover(FakeEngine())

    def test_metrics_exported_when_registry_enabled(self):
        metrics = MetricsRegistry()
        storage = StorageManager(mode="wal", metrics=metrics)
        db = make_db()
        engine = FakeEngine(db)
        storage.attach_engine(engine)
        storage.begin_period(0, engine)
        db.insert("t", {"k": 1})
        storage.commit_instance(engine, FakeRecord(completion=1.0))
        db.insert("t", {"k": 2})
        storage.on_crash(engine)
        text = export_prometheus(metrics)
        assert "storage_checkpoints_total 1" in text
        assert "storage_wal_records_total 1" in text
        assert "storage_wal_commits_total 1" in text
        assert "storage_wal_flushes_total 1" in text
        assert "storage_crashes_total 1" in text
        assert "storage_wal_discarded_total 1" in text

    def test_stats_flat_dict(self):
        storage = StorageManager(mode="snapshot+wal", checkpoint_every=50.0)
        stats = storage.stats()
        assert stats["mode"] == "snapshot+wal"
        assert stats["checkpoint_every"] == 50.0
        assert stats["crashes"] == 0
