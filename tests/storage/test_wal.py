"""WriteAheadLog unit tests: buffering, commits, LSNs, truncation."""

import pytest

from repro.errors import WalError
from repro.storage import WriteAheadLog


@pytest.fixture()
def wal():
    return WriteAheadLog("cdb")


class TestWritePath:
    def test_append_buffers_until_commit(self, wal):
        wal.append("orders", "insert", ({"k": 1},))
        assert wal.open_size == 1
        assert wal.tail_size == 0
        assert wal.committed_records() == []

    def test_commit_seals_records_in_lsn_order(self, wal):
        wal.append("orders", "insert", ({"k": 1},))
        wal.append("lines", "insert", ({"k": 1, "n": 1},))
        sealed = wal.commit(commit_id=7)
        assert sealed == 2
        records = wal.committed_records()
        assert [r.lsn for r in records] == [1, 2]
        assert all(r.commit_id == 7 for r in records)
        assert records[0].target == "orders"
        assert records[1].target == "lines"

    def test_lsns_continue_across_commits(self, wal):
        wal.append("t", "insert", ({"k": 1},))
        wal.commit(1)
        wal.append("t", "insert", ({"k": 2},))
        wal.commit(2)
        assert [r.lsn for r in wal.committed_records()] == [1, 2]
        assert [r.commit_id for r in wal.committed_records()] == [1, 2]

    def test_empty_commit_still_counts(self, wal):
        assert wal.commit(1) == 0
        assert wal.commits == 1
        assert wal.tail_size == 0

    def test_payload_rows_detached_from_caller(self, wal):
        row = {"k": 1, "v": "a"}
        wal.append("t", "insert", (row,))
        row["v"] = "mutated-after-append"
        wal.commit(1)
        (record,) = wal.committed_records()
        assert record.payload[0]["v"] == "a"


class TestCrashPath:
    def test_discard_open_drops_uncommitted_only(self, wal):
        wal.append("t", "insert", ({"k": 1},))
        wal.commit(1)
        wal.append("t", "insert", ({"k": 2},))
        dropped = wal.discard_open()
        assert dropped == 1
        assert wal.open_size == 0
        assert wal.tail_size == 1  # committed record survives
        assert wal.discarded == 1

    def test_truncate_drops_committed_tail(self, wal):
        wal.append("t", "insert", ({"k": 1},))
        wal.commit(1)
        assert wal.truncate() == 1
        assert wal.tail_size == 0
        # Lifetime counters survive truncation.
        assert wal.records_appended == 1
        assert wal.commits == 1

    def test_truncate_refused_mid_transaction(self, wal):
        wal.append("t", "insert", ({"k": 1},))
        with pytest.raises(WalError, match="uncommitted"):
            wal.truncate()
