"""End-to-end crash recovery: byte-identical convergence.

The acceptance bar of the storage subsystem, on both reference
realizations: a run that loses the engine mid-period and recovers from
snapshot+WAL must converge to the *same* final landscape state, the same
per-database I/O statistics and the same per-instance records — hence
the same NAVG+ metrics — as the fault-free run at the same seed.  And
with durability merely enabled (no crash), everything must stay
byte-identical to the plain run: the zero-overhead contract.
"""

import pytest

from repro.engine import FederatedEngine, MtmInterpreterEngine
from repro.errors import FaultSpecError
from repro.observability import Observability
from repro.resilience import FaultEvent, FaultSpec
from repro.scenario import build_scenario
from repro.storage import landscape_digest
from repro.toolsuite import BenchmarkClient, ScaleFactors

ENGINES = {
    "interpreter": MtmInterpreterEngine,
    "federated": FederatedEngine,
}


def crash_spec(at=300.0, point="commit"):
    return FaultSpec(
        name="crash",
        seed=7,
        events=(FaultEvent(at=at, kind="crash", point=point, period=0),),
    )


def run_benchmark(engine_name, durability="off", faults=None,
                  checkpoint_every=None, observability=None):
    scenario = build_scenario()
    engine = ENGINES[engine_name](scenario.registry)
    kwargs = {}
    if durability != "off":
        kwargs["durability"] = durability
        kwargs["checkpoint_every"] = checkpoint_every
    client = BenchmarkClient(
        scenario, engine, ScaleFactors(datasize=0.05),
        periods=1, seed=42, faults=faults,
        observability=observability, **kwargs,
    )
    result = client.run()
    digest = landscape_digest(scenario.all_databases.values())
    statistics = {
        name: db.statistics()
        for name, db in scenario.all_databases.items()
    }
    return client, result, digest, statistics


@pytest.fixture(scope="module")
def baseline():
    """Plain seed-42 runs of both engines, shared by every comparison."""
    return {name: run_benchmark(name) for name in ENGINES}


class TestZeroOverhead:
    @pytest.mark.parametrize("engine_name", list(ENGINES))
    def test_durability_on_fault_free_is_byte_identical(
        self, baseline, engine_name
    ):
        _, base, base_digest, base_stats = baseline[engine_name]
        _, durable, digest, stats = run_benchmark(
            engine_name, durability="snapshot+wal", checkpoint_every=50.0
        )
        assert durable.records == base.records
        assert digest == base_digest
        assert stats == base_stats


class TestCrashRecovery:
    @pytest.mark.parametrize("engine_name", list(ENGINES))
    def test_commit_point_crash_converges(self, baseline, engine_name):
        _, base, base_digest, base_stats = baseline[engine_name]
        client, crashed, digest, stats = run_benchmark(
            engine_name, durability="snapshot+wal", checkpoint_every=50.0,
            faults=crash_spec(point="commit"),
        )
        assert crashed.recoveries == 1
        assert crashed.records == base.records
        assert digest == base_digest
        assert stats == base_stats  # redo never double-counts I/O
        assert crashed.verification.ok

    @pytest.mark.parametrize("engine_name", list(ENGINES))
    def test_arrival_point_crash_converges(self, baseline, engine_name):
        _, base, base_digest, _ = baseline[engine_name]
        _, crashed, digest, _ = run_benchmark(
            engine_name, durability="snapshot+wal", checkpoint_every=50.0,
            faults=crash_spec(point="arrival"),
        )
        assert crashed.recoveries == 1
        assert crashed.records == base.records
        assert digest == base_digest

    def test_wal_only_mode_converges(self, baseline):
        """Pure WAL: one baseline checkpoint, the whole period redone."""
        _, base, base_digest, _ = baseline["interpreter"]
        client, crashed, digest, _ = run_benchmark(
            "interpreter", durability="wal", faults=crash_spec(),
        )
        assert crashed.records == base.records
        assert digest == base_digest
        # No cadence: only the per-period baseline checkpoint was taken.
        assert client.storage.checkpoints == 1

    def test_recovery_report_describes_the_redo(self, baseline):
        client, crashed, _, _ = run_benchmark(
            "interpreter", durability="snapshot+wal", checkpoint_every=50.0,
            faults=crash_spec(),
        )
        (report,) = crashed.recovery_reports
        assert report.period == 0
        assert report.databases == len(client.storage.databases)
        assert report.snapshot_rows > 0
        assert report.redo_records > 0
        assert report.recovered_to >= report.checkpoint_at
        assert report.modeled_cost > 0
        assert "recovery p0" in report.describe()

    def test_monitor_recovery_summary(self):
        client, _, _, _ = run_benchmark(
            "interpreter", durability="snapshot+wal", checkpoint_every=50.0,
            faults=crash_spec(),
        )
        summary = client.monitor.recovery_summary()
        assert summary.recoveries == 1
        assert summary.redo_records > 0
        assert summary.max_recovery_tu >= summary.mean_recovery_tu > 0
        assert "recovery:" in summary.describe()

    def test_monitor_summary_empty_without_crash(self):
        client, _, _, _ = run_benchmark("interpreter")
        summary = client.monitor.recovery_summary()
        assert summary.recoveries == 0
        assert "none" in summary.describe()

    def test_recovery_metrics_exported(self):
        observability = Observability()
        run_benchmark(
            "interpreter", durability="snapshot+wal", checkpoint_every=50.0,
            faults=crash_spec(), observability=observability,
        )
        text = observability.prometheus()
        assert "storage_crashes_total 1" in text
        assert "storage_recoveries_total 1" in text
        assert "storage_recovery_time_count 1" in text
        assert "storage_redo_records_count 1" in text
        assert "storage_checkpoints_total" in text


class TestGuards:
    def test_crash_spec_requires_durability(self):
        scenario = build_scenario()
        engine = MtmInterpreterEngine(scenario.registry)
        with pytest.raises(FaultSpecError, match="durability"):
            BenchmarkClient(
                scenario, engine, ScaleFactors(datasize=0.05),
                periods=1, seed=42, faults=crash_spec(),
            )
