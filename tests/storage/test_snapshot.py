"""Snapshot capture/restore and the landscape digest."""

import pytest

from repro.db.database import Database
from repro.db.schema import Column, TableSchema
from repro.storage import DatabaseSnapshot, database_digest, landscape_digest


def make_db():
    db = Database("cdb")
    db.create_table(
        TableSchema(
            "orders",
            [
                Column("orderkey", "BIGINT", nullable=False),
                Column("status", "VARCHAR"),
            ],
            primary_key=("orderkey",),
        )
    )
    db.table("orders").create_index("idx_status", ("status",))
    db.create_materialized_view("open_mv", lambda d: d.query("orders"))
    for k, status in ((1, "open"), (2, "done"), (3, "open")):
        db.insert("orders", {"orderkey": k, "status": status})
    return db


class TestCaptureRestore:
    def test_round_trip_restores_rows_and_indexes(self):
        db = make_db()
        db.materialized_view("open_mv").refresh(db)
        snapshot = DatabaseSnapshot.capture(db)
        assert snapshot.row_count == 3

        db.insert("orders", {"orderkey": 9, "status": "junk"})
        db.table("orders").drop_index("idx_status")
        restored = snapshot.restore_into(db)

        assert restored == 3
        assert len(db.table("orders")) == 3
        assert db.table("orders").has_index("idx_status")
        assert db.table("orders").get(9) is None
        # Index is live again, not just declared.
        assert [r["orderkey"] for r in
                db.table("orders").lookup("idx_status", ("open",))] == [1, 3]

    def test_restore_recreates_missing_tables(self):
        db = make_db()
        snapshot = DatabaseSnapshot.capture(db)
        fresh = Database("cdb")
        fresh.create_materialized_view("open_mv", lambda d: d.query("orders"))
        snapshot.restore_into(fresh)
        assert fresh.has_table("orders")
        assert len(fresh.table("orders")) == 3

    def test_populated_view_recomputed_unpopulated_invalidated(self):
        db = make_db()
        db.materialized_view("open_mv").refresh(db)
        populated = DatabaseSnapshot.capture(db)
        db.materialized_view("open_mv").invalidate()
        unpopulated = DatabaseSnapshot.capture(db)

        populated.restore_into(db)
        assert db.materialized_view("open_mv").is_populated
        assert len(db.materialized_view("open_mv").snapshot) == 3

        unpopulated.restore_into(db)
        assert not db.materialized_view("open_mv").is_populated

    def test_snapshot_rows_detached_from_live_table(self):
        db = make_db()
        snapshot = DatabaseSnapshot.capture(db)
        db.table("orders").update({"status": "mutated"})
        statuses = {r["status"] for r in snapshot.tables["orders"].rows}
        assert statuses == {"open", "done"}

    def test_capture_and_restore_do_not_touch_io_counters(self):
        db = make_db()
        before = db.statistics()
        snapshot = DatabaseSnapshot.capture(db)
        snapshot.restore_into(db)
        delta = db.statistics() - before
        assert delta.rows_read == 0
        assert delta.rows_written == 0


class TestDigest:
    def test_digest_stable_across_identical_content(self):
        assert database_digest(make_db()) == database_digest(make_db())

    def test_digest_sees_row_changes(self):
        db1, db2 = make_db(), make_db()
        db2.table("orders").update({"status": "late"},
                                   lambda row: row["orderkey"] == 1)
        assert database_digest(db1) != database_digest(db2)

    def test_digest_sees_view_population(self):
        db1, db2 = make_db(), make_db()
        db2.materialized_view("open_mv").refresh(db2)
        assert database_digest(db1) != database_digest(db2)

    def test_digesting_does_not_bump_read_counters(self):
        db = make_db()
        before = db.statistics()
        database_digest(db)
        assert (db.statistics() - before).rows_read == 0

    def test_landscape_digest_order_independent(self):
        a1, a2 = make_db(), make_db()
        b1, b2 = Database("other"), Database("other")
        assert landscape_digest([a1, b1]) == landscape_digest([b2, a2])
