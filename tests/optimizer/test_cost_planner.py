"""Property tests for the cost-based planner (``repro.optimizer.cost``).

Three properties pin the planner's contract:

* **optimality** — on statistics-covered join chains the emitted order
  minimizes the module's own cost model ``Σ (|left| + |right| + |out|)``
  over *all* permutations (brute-forced here, independently of the
  planner's search);
* **graceful degradation** — without statistics the planner reproduces
  the rule-based ``route_joins_through_indexes`` rewrite exactly, and
  without any catalog it returns the process unchanged, flagging the
  fallback either way;
* **plan invariance** — across seeded random databases and random join
  chains, executing the planned process yields exactly the rows of the
  original process (content, order and multiplicity; only the output
  relation's *column order* may differ, and these chains share one
  column set so even that is fixed).
"""

import random
from itertools import permutations

import pytest

from repro.db import Column, Database, TableSchema, col, lit
from repro.mtm.blocks import Sequence
from repro.mtm.operators import Invoke, Join
from repro.mtm.process import EventType, ProcessGroup, ProcessType
from repro.optimizer import (
    collect_statistics,
    index_catalog_of,
    plan_process,
    route_joins_through_indexes,
    selectivity,
)
from repro.scenario.processes import helpers


def make_process(steps, process_id="P90"):
    return ProcessType(
        process_id,
        ProcessGroup.B,
        "cost-planner fixture",
        EventType.E2_SCHEDULE,
        Sequence(steps, name="body"),
    )


def extract(table, output, predicate=None):
    return Invoke(
        "svc",
        helpers.query_request(table, predicate=predicate),
        output=output,
        name=f"get_{output}",
    )


def join_steps(process):
    return [op for op in process.root.steps if isinstance(op, Join)]


def run_steps(process, db):
    """Mini step-interpreter: Invoke extracts + Joins over ``db``."""
    env = {}
    for op in process.root.steps:
        if isinstance(op, Invoke):
            builder = op.request_builder
            env[op.output] = db.query(builder.table, predicate=builder.predicate)
        elif isinstance(op, Join):
            env[op.output] = env[op.left].join(
                env[op.right], on=list(op.on), how=op.how
            )
    return env


# ------------------------------------------------------------------ fixtures


def star_database(rng, fact_rows=60, dims=3, dim_keys=10):
    """A fact table with ``dims`` pk-unique dimensions (random content)."""
    db = Database("plan")
    fact_columns = [Column("orderkey", "INTEGER", nullable=False)]
    for d in range(dims):
        fact_columns.append(Column(f"fk{d}", "INTEGER"))
    fact_columns.append(Column("val", "DOUBLE"))
    db.create_table(
        TableSchema("fact", fact_columns, primary_key=("orderkey",))
    )
    for i in range(fact_rows):
        row = {"orderkey": i, "val": rng.choice([-1.0, 0.0, 2.5, 9.0])}
        for d in range(dims):
            row[f"fk{d}"] = rng.choice([None] + list(range(dim_keys)))
        db.insert("fact", row)
    for d in range(dims):
        db.create_table(
            TableSchema(
                f"dim{d}",
                [
                    Column(f"key{d}", "INTEGER", nullable=False),
                    Column(f"p{d}", "INTEGER"),
                ],
                primary_key=(f"key{d}",),
            )
        )
        for key in range(dim_keys):
            db.insert(f"dim{d}", {f"key{d}": key, f"p{d}": rng.randrange(100)})
    return db


def random_dim_predicate(rng, d):
    column = col(f"p{d}")
    kind = rng.randrange(4)
    if kind == 0:
        return None
    if kind == 1:
        return column == lit(rng.randrange(100))
    if kind == 2:
        return column > lit(rng.randrange(100))
    return (column >= lit(10)) & (column < lit(rng.randrange(11, 100)))


def star_process(rng, dims=3, hows=None):
    steps = [extract("fact", "f")]
    predicates = []
    for d in range(dims):
        predicate = random_dim_predicate(rng, d)
        predicates.append(predicate)
        steps.append(extract(f"dim{d}", f"d{d}", predicate=predicate))
    left = "f"
    for d in range(dims):
        how = hows[d] if hows else rng.choice(["inner", "inner", "left"])
        steps.append(
            Join(left, f"d{d}", f"j{d}", [(f"fk{d}", f"key{d}")], how=how)
        )
        left = f"j{d}"
    return make_process(steps)


def brute_force_best_cost(process, statistics):
    """Minimal chain cost over all join orders, via the model's formulas."""
    extracts = {}
    for op in process.root.steps:
        if isinstance(op, Invoke):
            builder = op.request_builder
            stats = statistics[builder.table]
            est = stats.rows * selectivity(stats, builder.predicate)
            extracts[op.output] = (est, stats.rows)
    base_rows = extracts["f"][0]
    joins = join_steps(process)

    def cost_of(order):
        cost, left = 0.0, base_rows
        for op in order:
            est, rows = extracts[op.right]
            fraction = est / rows if rows else 0.0
            out = left * min(1.0, fraction) if op.how == "inner" else left
            cost += left + est + out
            left = out
        return cost

    return min(cost_of(list(order)) for order in permutations(joins)), cost_of(
        joins
    )


# ---------------------------------------------------------------- optimality


@pytest.mark.parametrize("seed", range(12))
def test_planned_order_minimizes_the_cost_model(seed):
    """Property: the emitted order is brute-force optimal."""
    rng = random.Random(seed)
    db = star_database(rng)
    process = star_process(rng)
    statistics = collect_statistics(db)
    planned, report = plan_process(process, statistics=statistics)
    assert report.fallback is None

    best, original = brute_force_best_cost(process, statistics)
    # Recost the *planned* order with the original extracts: the planned
    # joins keep their right inputs, only the sequence changed.
    planned_rights = [op.right for op in join_steps(planned)]
    original_by_right = {op.right: op for op in join_steps(process)}
    reordered = make_process(
        [op for op in process.root.steps if isinstance(op, Invoke)]
        + [original_by_right[right] for right in planned_rights]
    )
    _, planned_cost = brute_force_best_cost(reordered, statistics)
    assert planned_cost == pytest.approx(best)
    if planned_cost < original - 1e-9:
        assert report.joins_reordered == 1


def test_selective_dimension_joins_first():
    """A 1-in-ndv equality extract must move to the front of the chain."""
    rng = random.Random(99)
    db = star_database(rng, fact_rows=200, dim_keys=50)
    steps = [
        extract("fact", "f"),
        extract("dim0", "d0"),  # unfiltered: 50 rows
        extract("dim1", "d1", predicate=col("p1") == lit(3)),  # ~1 row
        Join("f", "d0", "j0", [("fk0", "key0")]),
        Join("j0", "d1", "j1", [("fk1", "key1")]),
    ]
    planned, report = plan_process(
        make_process(steps), statistics=collect_statistics(db)
    )
    assert [op.right for op in join_steps(planned)] == ["d1", "d0"]
    assert report.joins_reordered == 1
    # Positional output names survive, so downstream readers are unmoved.
    assert [op.output for op in join_steps(planned)] == ["j0", "j1"]
    assert "j1" in report.estimates


def test_unsafe_chain_keeps_original_order():
    """A right side not unique on its key blocks reordering."""
    rng = random.Random(5)
    db = star_database(rng)
    # Duplicate a dim0 key: dim0 is no longer unique on key0.
    db.insert("dim0", {"key0": 100, "p0": 1})
    db.create_table(
        TableSchema(
            "dup0",
            [Column("key0", "INTEGER"), Column("q0", "INTEGER")],
        )
    )
    for key in (1, 1, 2):
        db.insert("dup0", {"key0": key, "q0": key})
    steps = [
        extract("fact", "f"),
        extract("dup0", "d0"),
        extract("dim1", "d1", predicate=col("p1") == lit(3)),
        Join("f", "d0", "j0", [("fk0", "key0")]),
        Join("j0", "d1", "j1", [("fk1", "key1")]),
    ]
    planned, report = plan_process(
        make_process(steps), statistics=collect_statistics(db)
    )
    assert [op.right for op in join_steps(planned)] == ["d0", "d1"]
    assert report.joins_reordered == 0
    assert any("order kept" in note for note in report.notes)


# ------------------------------------------------------------- degradation


def test_degrades_to_rule_based_routing_without_statistics():
    rng = random.Random(3)
    db = star_database(rng)
    process = star_process(rng, hows=["inner", "inner", "inner"])
    statistics = collect_statistics(db)
    catalog = index_catalog_of(statistics)

    planned, report = plan_process(process, index_catalog=catalog)
    routed, rule_report = route_joins_through_indexes(process, catalog)

    assert report.fallback == (
        "no statistics; degraded to rule-based index routing"
    )
    assert report.joins_reordered == 0
    assert report.joins_routed == rule_report.joins_routed
    assert [op.right for op in join_steps(planned)] == [
        op.right for op in join_steps(routed)
    ]
    assert [op.index_hint for op in join_steps(planned)] == [
        op.index_hint for op in join_steps(routed)
    ]


def test_no_catalog_is_a_flagged_no_op():
    rng = random.Random(4)
    process = star_process(rng)
    planned, report = plan_process(process)
    assert planned is process
    assert report.fallback == "no statistics or index catalog; plan unchanged"
    assert report.total_rewrites == 0


def test_cost_pass_annotates_index_hints_like_the_rule():
    """With statistics, unfiltered extracts still get the pk hint."""
    rng = random.Random(6)
    db = star_database(rng)
    process = star_process(rng, hows=["inner", "inner", "inner"])
    statistics = collect_statistics(db)
    planned, report = plan_process(process, statistics=statistics)
    hinted = {
        op.right: op.index_hint
        for op in join_steps(planned)
        if op.index_hint is not None
    }
    # Only unfiltered extracts are hintable (filtered ones are no longer
    # table-backed snapshots); each hint names the dimension's pk.
    for right, hint in hinted.items():
        d = right[1:]
        assert hint == f"dim{d}.pk"
    assert report.joins_routed == len(hinted)


# ---------------------------------------------------------- plan invariance


@pytest.mark.parametrize("seed", range(20))
def test_plan_invariance_random_queries(seed):
    """Property: planning never changes what a query returns."""
    rng = random.Random(1000 + seed)
    dims = rng.choice([2, 3])
    db = star_database(
        rng,
        fact_rows=rng.randrange(0, 80),
        dims=dims,
        dim_keys=rng.choice([4, 10, 25]),
    )
    process = star_process(rng, dims=dims)
    planned, _ = plan_process(process, statistics=collect_statistics(db))

    original_env = run_steps(process, db)
    planned_env = run_steps(planned, db)
    final = f"j{dims - 1}"
    assert set(planned_env[final].columns) == set(original_env[final].columns)
    assert planned_env[final].to_dicts() == original_env[final].to_dicts()


# ---------------------------------------------------- partition awareness


def test_statistics_capture_partition_residency():
    """Budgeted tables report partition count + resident fraction."""
    rng = random.Random(5)
    db = star_database(rng, fact_rows=120)
    plain = collect_statistics(db)
    assert plain["fact"].partitions == 1
    assert plain["fact"].resident_fraction == 1.0

    db.set_memory_budget(40, partition_rows=16)
    budgeted = collect_statistics(db)
    assert budgeted["fact"].partitions > 1
    assert 0.0 < budgeted["fact"].resident_fraction < 1.0
    # Logical statistics are untouched by the physical knob.
    assert budgeted["fact"].rows == plain["fact"].rows
    assert budgeted["fact"].distinct == plain["fact"].distinct


def test_spill_penalty_never_changes_the_logical_plan():
    """The penalty is physical: same join order with and without it."""
    rng = random.Random(7)
    resident_db = star_database(rng, fact_rows=120)
    rng = random.Random(7)
    spilled_db = star_database(rng, fact_rows=120)
    spilled_db.set_memory_budget(30, partition_rows=16)

    rng = random.Random(7)
    process = star_process(rng)
    planned_resident, report_r = plan_process(
        process, statistics=collect_statistics(resident_db)
    )
    planned_spilled, report_s = plan_process(
        process, statistics=collect_statistics(spilled_db)
    )
    assert report_r.fallback is None and report_s.fallback is None
    order_r = [op.right for op in join_steps(planned_resident)]
    order_s = [op.right for op in join_steps(planned_spilled)]
    assert order_r == order_s


def test_spill_penalty_charged_and_halved_when_copartitioned():
    """The cost model charges spilled right sides, halved when the
    right table's partition layout matches the probe side's."""
    from dataclasses import replace as dc_replace

    from repro.optimizer.cost import (
        SPILL_REACCESS_WEIGHT,
        _ChainJoin,
        _chain_cost,
    )

    rng = random.Random(11)
    db = star_database(rng, fact_rows=100)
    stats = collect_statistics(db)["dim0"]

    def step(spill_penalty):
        return _ChainJoin(
            join=Join("f", "d0", "j0", [("fk0", "key0")], how="inner"),
            right_est=float(stats.rows),
            right_rows=stats.rows,
            match_fraction=1.0,
            original_position=0,
            spill_penalty=spill_penalty,
        )

    resident = dc_replace(stats, partitions=4, resident_fraction=1.0)
    spilled = dc_replace(stats, partitions=4, resident_fraction=0.25)
    penalty = SPILL_REACCESS_WEIGHT * spilled.rows * (
        1.0 - spilled.resident_fraction
    )
    assert penalty > 0.0
    assert (
        SPILL_REACCESS_WEIGHT
        * resident.rows
        * (1.0 - resident.resident_fraction)
        == 0.0
    )
    base_cost = _chain_cost(100.0, [step(0.0)])
    assert _chain_cost(100.0, [step(penalty)]) == base_cost + penalty
    # Co-partitioned halving, as applied by the chain builder.
    assert (
        _chain_cost(100.0, [step(penalty * 0.5)])
        == base_cost + penalty / 2
    )
