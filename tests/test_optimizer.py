"""Optimizer rewrite rules: correctness and effect."""

import pytest

from repro.db import col, lit
from repro.engine import MtmInterpreterEngine, ProcessEvent
from repro.mtm import (
    EventType,
    Fork,
    Invoke,
    Join,
    ProcessGroup,
    ProcessType,
    Projection,
    Selection,
    Sequence,
    Signal,
)
from repro.mtm.process import validate_definition
from repro.optimizer import (
    merge_projections,
    optimize_process,
    parallelize_extracts,
    push_down_selections,
    route_joins_through_indexes,
)
from repro.scenario import build_processes, build_scenario
from repro.scenario.processes import helpers
from repro.toolsuite import Initializer


def extract_filter_process():
    return ProcessType(
        "P_XF", ProcessGroup.B, "extract-filter", EventType.E2_SCHEDULE,
        Sequence([
            Invoke("src", helpers.query_request("t"), output="raw"),
            Selection("raw", "narrow", col("k") > lit(5)),
            Signal(),
        ]),
    )


class TestSelectionPushdown:
    def test_fuses_extract_and_filter(self):
        optimized, report = push_down_selections(extract_filter_process())
        assert report.selections_pushed == 1
        kinds = [op.kind for op in optimized.operators()]
        assert "selection" not in kinds
        invoke = next(op for op in optimized.operators()
                      if isinstance(op, Invoke))
        assert invoke.output == "narrow"
        assert invoke.request_builder.predicate is not None

    def test_does_not_touch_filtered_extracts(self):
        process = ProcessType(
            "P_F", ProcessGroup.B, "t", EventType.E2_SCHEDULE,
            Sequence([
                Invoke("src", helpers.query_request("t", col("k") > lit(0)),
                       output="raw"),
                Selection("raw", "narrow", col("k") > lit(5)),
                Signal(),
            ]),
        )
        _, report = push_down_selections(process)
        assert report.selections_pushed == 0

    def test_requires_adjacent_pair(self):
        process = ProcessType(
            "P_G", ProcessGroup.B, "t", EventType.E2_SCHEDULE,
            Sequence([
                Invoke("src", helpers.query_request("t"), output="raw"),
                Signal(),
                Selection("raw", "narrow", col("k") > lit(5)),
            ]),
        )
        _, report = push_down_selections(process)
        assert report.selections_pushed == 0

    def test_p05_and_p06_rewritten(self):
        processes = build_processes()
        for pid, expected in (("P05", 4), ("P06", 4), ("P07", 0)):
            _, report = push_down_selections(processes[pid])
            assert report.selections_pushed == expected, pid


class TestProjectionMerge:
    def test_adjacent_renames_compose(self):
        process = ProcessType(
            "P_M", ProcessGroup.B, "t", EventType.E2_SCHEDULE,
            Sequence([
                Invoke("src", helpers.query_request("t"), output="a"),
                Projection("a", "b", {"x": "k"}),
                Projection("b", "c", {"y": "x"}),
                Signal(),
            ]),
        )
        optimized, report = merge_projections(process)
        assert report.projections_merged == 1
        projections = [op for op in optimized.operators()
                       if isinstance(op, Projection)]
        assert len(projections) == 1
        assert projections[0].mapping == {"y": "k"}
        assert projections[0].input == "a"
        assert projections[0].output == "c"

    def test_expression_projection_not_merged(self):
        process = ProcessType(
            "P_E", ProcessGroup.B, "t", EventType.E2_SCHEDULE,
            Sequence([
                Invoke("src", helpers.query_request("t"), output="a"),
                Projection("a", "b", {"x": "k"}),
                Projection("b", "c", {"y": col("x") * lit(2)}),
                Signal(),
            ]),
        )
        _, report = merge_projections(process)
        assert report.projections_merged == 0


class TestParallelization:
    def test_independent_extracts_forked(self):
        processes = build_processes()
        optimized, report = parallelize_extracts(processes["P03"])
        assert report.forks_introduced > 0
        assert any(isinstance(op, Fork) for op in optimized.operators())
        assert validate_definition(optimized,
                                   known_processes=set(processes)) == []

    def test_dependent_steps_not_forked(self):
        process = extract_filter_process()  # selection depends on extract
        optimized, report = parallelize_extracts(process)
        forked = [op for op in optimized.operators() if isinstance(op, Fork)]
        for fork in forked:
            # extract and its dependent selection never share a fork
            kinds_per_branch = [
                {o.kind for o in branch.iter_tree()} for branch in fork.branches
            ]
            assert not any(
                {"invoke", "selection"} <= kinds for kinds in kinds_per_branch
            )


class TestSemanticEquivalence:
    @pytest.mark.parametrize("pid", ["P05", "P06", "P07", "P11"])
    def test_optimized_process_produces_same_state(self, pid, small_profile):
        def run(optimize):
            scenario = build_scenario()
            Initializer(scenario, d=1.0, profile=small_profile,
                        seed=3).initialize_sources(0)
            engine = MtmInterpreterEngine(scenario.registry)
            processes = build_processes()
            if pid == "P11":
                engine.deploy(processes["P03"])
            process = processes[pid]
            if optimize:
                process, _ = optimize_process(process)
            engine.deploy(process)
            if pid == "P11":
                engine.handle_event(ProcessEvent("P03", 0.0))
            record = engine.handle_event(ProcessEvent(pid, 1000.0))
            assert record.status == "ok"
            cdb = scenario.databases["sales_cleaning"]
            return (
                sorted((r["custkey"], r["name"])
                       for r in cdb.table("customer").scan()),
                sorted(r["orderkey"] for r in cdb.table("orders").scan()),
                record.costs.total,
            )

        plain_state = run(False)
        optimized_state = run(True)
        assert plain_state[0] == optimized_state[0]
        assert plain_state[1] == optimized_state[1]

    @pytest.mark.parametrize("pid", ["P05", "P06"])
    def test_pushdown_actually_cheaper(self, pid, small_profile):
        def cost(optimize):
            scenario = build_scenario()
            Initializer(scenario, d=1.0, profile=small_profile,
                        seed=3).initialize_sources(0)
            engine = MtmInterpreterEngine(scenario.registry)
            process = build_processes()[pid]
            if optimize:
                process, _ = push_down_selections(process)
            engine.deploy(process)
            return engine.handle_event(ProcessEvent(pid, 0.0)).costs.total

        assert cost(True) < cost(False)


class TestReport:
    def test_total_rewrites(self):
        _, report = optimize_process(build_processes()["P05"])
        assert report.total_rewrites == report.selections_pushed + \
            report.projections_merged + report.forks_introduced
        assert report.notes

    def test_subprocess_flag_preserved(self):
        processes = build_processes()
        optimized, _ = optimize_process(processes["P14_S1"])
        assert optimized.subprocess_only


def extract_join_process():
    return ProcessType(
        "P_XJ", ProcessGroup.B, "extract-join", EventType.E2_SCHEDULE,
        Sequence([
            Invoke("src", helpers.query_request("orders"), output="orders"),
            Invoke("src", helpers.query_request("customer"),
                   output="customers"),
            Join("orders", "customers", "joined",
                 on=[("custkey", "custkey")]),
            Signal(),
        ]),
    )


class TestJoinRouting:
    CATALOG = {"customer": {"pk": ("custkey",)}}

    def test_routes_join_through_matching_index(self):
        optimized, report = route_joins_through_indexes(
            extract_join_process(), self.CATALOG
        )
        assert report.joins_routed == 1
        join = next(op for op in optimized.operators()
                    if isinstance(op, Join))
        assert join.index_hint == "customer.pk"
        assert any("customer.pk" in note for note in report.notes)

    def test_original_process_untouched(self):
        process = extract_join_process()
        route_joins_through_indexes(process, self.CATALOG)
        join = next(op for op in process.operators()
                    if isinstance(op, Join))
        assert join.index_hint is None

    def test_no_route_without_covering_index(self):
        optimized, report = route_joins_through_indexes(
            extract_join_process(), {"customer": {"by_city": ("citykey",)}}
        )
        assert report.joins_routed == 0
        join = next(op for op in optimized.operators()
                    if isinstance(op, Join))
        assert join.index_hint is None

    def test_no_route_when_right_is_not_an_extract(self):
        process = ProcessType(
            "P_J", ProcessGroup.B, "join-only", EventType.E2_SCHEDULE,
            Sequence([
                Invoke("src", helpers.query_request("orders"),
                       output="orders"),
                Join("orders", "somewhere_else", "joined",
                     on=[("custkey", "custkey")]),
                Signal(),
            ]),
        )
        _, report = route_joins_through_indexes(process, self.CATALOG)
        assert report.joins_routed == 0

    def test_counts_into_total_rewrites(self):
        _, report = route_joins_through_indexes(
            extract_join_process(), self.CATALOG
        )
        assert report.total_rewrites == 1

    def test_catalog_from_live_database(self):
        scenario = build_scenario()
        dwh = scenario.databases["dwh"]
        catalog = {
            name: dict(
                list(dwh.list_indexes().get(name, {}).items())
                + [("pk", schema.primary_key)]
            )
            for name, schema in (
                (t, dwh.table(t).schema) for t in ("customer", "orders")
            )
            if schema.primary_key
        }
        optimized, report = route_joins_through_indexes(
            extract_join_process(), catalog
        )
        assert report.joins_routed == 1
        join = next(op for op in optimized.operators()
                    if isinstance(op, Join))
        assert join.index_hint == "customer.pk"
