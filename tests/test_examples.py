"""The shipped examples must keep running (they are documentation)."""

import runpy
import sys
import pathlib

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "verification OK" in out
        assert "NAVG+" in out
        assert "process instances" in out

    def test_custom_process(self, capsys):
        out = run_example("custom_process.py", capsys)
        assert "status=ok" in out
        assert "store_north price_list" in out
        assert "fork:fan_out" in out

    def test_degraded_run(self, capsys):
        out = run_example("degraded_run.py", capsys)
        assert "fault spec 'basic-degraded-run'" in out
        assert "recovered=3" in out
        assert "dead letter: P04" in out
        assert "verification OK" in out

    def test_data_quality_report(self, capsys):
        out = run_example("data_quality_report.py", capsys)
        assert "quality gradient monotone: True" in out
        assert "failed-data destinations" in out

    def test_crash_recovery(self, capsys):
        out = run_example("crash_recovery.py", capsys)
        assert "1 recovery" in out
        assert "records byte-identical: True" in out
        assert "landscape digest equal: True" in out

    def test_serve_storm(self, capsys):
        out = run_example("serve_storm.py", capsys)
        assert "storm: 150 clients, 2 tenant(s)" in out
        assert "accounting: 150 submitted = " in out
        assert "server-side per-tenant report" in out
        assert "verification_ok=True" in out
        assert "serve share" in out

    def test_synth_workload(self, capsys):
        out = run_example("synth_workload.py", capsys)
        assert "spec digest:" in out
        assert "manifest digest:" in out
        assert "verification OK" in out
        assert "family" in out and "cdc" in out and "dirty" in out
        assert "conformance OK" in out

    def test_examples_exist_and_have_docstrings(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 5
        for script in scripts:
            text = script.read_text()
            assert text.startswith('"""'), script.name
            assert "__main__" in text, script.name
