"""Data-quality metrics across the integration layers."""

import pytest

from repro.engine import MtmInterpreterEngine
from repro.scenario import build_scenario
from repro.toolsuite import BenchmarkClient, ScaleFactors, measure_quality
from repro.toolsuite.quality import LayerQuality, measure_layer


@pytest.fixture(scope="module")
def finished_run():
    scenario = build_scenario()
    engine = MtmInterpreterEngine(scenario.registry)
    client = BenchmarkClient(scenario, engine, ScaleFactors(), periods=1,
                             seed=5)
    result = client.run()
    assert result.verification.ok
    return scenario


class TestLayerQuality:
    def test_index_is_mean_of_dimensions(self):
        q = LayerQuality("x", 1.0, 0.5, 1.0, 0.5)
        assert q.quality_index == pytest.approx(0.75)

    def test_empty_layer_has_zero_coverage(self):
        scenario = build_scenario()  # nothing loaded anywhere
        q = measure_layer(scenario, "staging", source_population=10)
        assert q.coverage == 0.0
        assert q.quality_index < 1.0

    def test_unknown_layer_rejected(self):
        with pytest.raises(ValueError):
            measure_layer(build_scenario(), "clouds")


class TestQualityGradient:
    def test_sources_are_dirty(self, finished_run):
        q = measure_layer(finished_run, "sources")
        assert q.conformance < 1.0  # planted corruption
        assert q.uniqueness < 1.0  # planted duplicates

    def test_staging_is_clean_after_p12(self, finished_run):
        q = measure_layer(finished_run, "staging")
        assert q.conformance == 1.0
        assert q.uniqueness == 1.0

    def test_warehouse_is_clean_and_consistent(self, finished_run):
        q = measure_layer(finished_run, "warehouse")
        assert q.conformance == 1.0
        assert q.referential_integrity == 1.0
        assert q.coverage > 0.9

    def test_quality_increases_along_the_pipeline(self, finished_run):
        """Section III: 'During this staging process, the data quality
        increases.'"""
        report = measure_quality(finished_run)
        assert report.monotone_quality
        assert report.sources.quality_index < report.staging.quality_index

    def test_report_table_renders(self, finished_run):
        table = measure_quality(finished_run).as_table()
        assert "sources" in table
        assert "warehouse" in table
        assert "index" in table
