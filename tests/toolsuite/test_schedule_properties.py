"""Property-based tests on the Table II schedule and scale factors."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.toolsuite.schedule import (
    ScaleFactors,
    build_schedule,
    deadlines_p01,
    deadlines_p04,
    deadlines_p08,
    deadlines_p10,
    instances_p01,
)

d_values = st.floats(0.01, 3.0, allow_nan=False)
periods = st.integers(0, 99)


class TestSeriesProperties:
    @given(periods, d_values)
    @settings(max_examples=100)
    def test_p01_count_matches_formula(self, k, d):
        assert instances_p01(k, d) == math.floor((100 - k) * d / 2.0) + 1

    @given(periods, d_values)
    @settings(max_examples=100)
    def test_p01_deadlines_strictly_increasing(self, k, d):
        deadlines = deadlines_p01(k, d)
        assert all(b > a for a, b in zip(deadlines, deadlines[1:]))
        assert deadlines[0] == 0.0

    @given(d_values)
    @settings(max_examples=100)
    def test_stream_b_series_sorted_and_shifted(self, d):
        p04 = deadlines_p04(d)
        p08 = deadlines_p08(d)
        p10 = deadlines_p10(d)
        assert p04[0] == 0.0
        assert p08[0] == 2000.0
        assert p10[0] == 3000.0
        for series in (p04, p08, p10):
            assert all(b > a for a, b in zip(series, series[1:]))

    @given(periods, d_values)
    @settings(max_examples=100)
    def test_monotone_in_datasize(self, k, d):
        smaller = build_schedule(k, ScaleFactors(datasize=d))
        larger = build_schedule(k, ScaleFactors(datasize=d * 2))
        assert larger.message_event_count >= smaller.message_event_count

    @given(periods)
    @settings(max_examples=100)
    def test_monotone_in_period(self, k):
        """Stream A shrinks over periods; stream B is period-invariant."""
        factors = ScaleFactors(datasize=1.0)
        now = build_schedule(k, factors)
        later = build_schedule(min(k + 1, 99), factors)
        assert len(later.p01) <= len(now.p01)
        assert len(later.p04) == len(now.p04)

    @given(d_values, st.floats(0.1, 10.0, allow_nan=False))
    @settings(max_examples=100)
    def test_time_factor_is_a_pure_rescaling(self, d, t):
        factors = ScaleFactors(datasize=d, time=t)
        deadlines_tu = deadlines_p04(d)
        engine_units = [factors.tu_to_engine(x) for x in deadlines_tu]
        back = [factors.engine_to_tu(x) for x in engine_units]
        assert back == pytest.approx(deadlines_tu)

    @given(periods, d_values)
    @settings(max_examples=50)
    def test_p02_always_after_matching_p01(self, k, d):
        """P02's m-th event (T0+2m) trails P01's m-th (T0+2(m-1))."""
        p01 = deadlines_p01(k, d)
        schedule = build_schedule(k, ScaleFactors(datasize=d))
        for a, b in zip(p01, schedule.p02):
            assert b == a + 2.0
