"""The Initializer: per-period source-data generation."""

import pytest

from repro.datagen.generators import GeneratorProfile
from repro.scenario import build_scenario
from repro.toolsuite import Initializer


@pytest.fixture()
def profile():
    return GeneratorProfile(customers_base=40, products_base=30,
                            orders_base=50, duplicate_rate=0.1,
                            corruption_rate=0.1)


class TestInitialization:
    def test_all_source_systems_populated(self, profile):
        scenario = build_scenario()
        init = Initializer(scenario, d=1.0, profile=profile)
        population = init.initialize_sources(0)
        assert len(scenario.databases["berlin_paris"].table("eu_customer")) > 0
        assert len(scenario.databases["trondheim"].table("eu_order")) > 0
        for source in ("chicago", "baltimore", "madison"):
            assert len(scenario.databases[source].table("orders")) > 0
        for ws in ("beijing", "seoul", "hongkong"):
            assert len(scenario.web_service_databases[ws].table("customer")) > 0

    def test_cdb_reference_data_seeded(self, profile):
        scenario = build_scenario()
        Initializer(scenario, profile=profile).initialize_sources(0)
        cdb = scenario.databases["sales_cleaning"]
        assert len(cdb.table("region")) == 3
        assert len(cdb.table("productline")) == 3
        assert len(cdb.table("productgroup")) == 12

    def test_targets_stay_empty(self, profile):
        scenario = build_scenario()
        Initializer(scenario, profile=profile).initialize_sources(0)
        assert len(scenario.databases["dwh"].table("orders")) == 0
        assert len(scenario.databases["dm_europe"].table("customer")) == 0
        assert len(scenario.databases["sales_cleaning"].table("customer")) == 0

    def test_datasize_scales_volume(self, profile):
        small_scenario = build_scenario()
        Initializer(small_scenario, d=0.5, profile=profile).initialize_sources(0)
        large_scenario = build_scenario()
        Initializer(large_scenario, d=1.0, profile=profile).initialize_sources(0)
        small_count = len(
            small_scenario.databases["trondheim"].table("eu_customer")
        )
        large_count = len(
            large_scenario.databases["trondheim"].table("eu_customer")
        )
        assert large_count > small_count

    def test_key_ranges_disjoint_across_regions(self, profile):
        scenario = build_scenario()
        population = Initializer(scenario, profile=profile).initialize_sources(0)
        europe = set(population.customer_keys["berlin"]) | set(
            population.customer_keys["paris"]
        ) | set(population.customer_keys["trondheim"])
        asia = set(population.customer_keys["beijing"]) | set(
            population.customer_keys["seoul"]
        )
        america = set(population.customer_keys["chicago"])
        assert not europe & asia
        assert not europe & america
        assert not asia & america

    def test_asian_overlap_exists(self, profile):
        """Beijing and Seoul must overlap for P09's UNION DISTINCT."""
        scenario = build_scenario()
        population = Initializer(scenario, profile=profile).initialize_sources(0)
        beijing = set(population.customer_keys["beijing"])
        seoul = set(population.customer_keys["seoul"])
        assert beijing & seoul

    def test_hongkong_fronts_regional_customers(self, profile):
        scenario = build_scenario()
        population = Initializer(scenario, profile=profile).initialize_sources(0)
        pool = set(population.customer_keys["beijing"]) | set(
            population.customer_keys["seoul"]
        )
        # Hongkong's customers come from the same regional pool.
        hk = set(population.customer_keys["hongkong"])
        regional = {
            c["custkey"]
            for c in scenario.web_service_databases["hongkong"]
            .table("customer").scan()
        }
        assert hk == regional

    def test_dirt_planted_in_europe(self):
        import re

        from repro.datagen.generators import GeneratorProfile

        dirty_profile = GeneratorProfile(
            customers_base=60, products_base=40, orders_base=80,
            duplicate_rate=0.2, corruption_rate=0.2,
        )
        scenario = build_scenario()
        Initializer(scenario, profile=dirty_profile, seed=3).initialize_sources(0)
        names = [
            r["cust_name"]
            for db in ("berlin_paris", "trondheim")
            for r in scenario.databases[db].table("eu_customer").scan()
        ]
        dirty = [n for n in names if not re.match(r"^Customer#\d+$", n)]
        assert dirty  # duplicates/corruption present for P12 to clean

    def test_movement_errors_planted(self):
        from repro.datagen.generators import GeneratorProfile

        dirty_profile = GeneratorProfile(
            customers_base=60, products_base=40, orders_base=120,
            duplicate_rate=0.2, corruption_rate=0.2,
        )
        scenario = build_scenario()
        Initializer(scenario, profile=dirty_profile, seed=3).initialize_sources(0)
        bad_eu = [
            r for r in scenario.databases["berlin_paris"]
            .table("eu_orderpos").scan() if r["pos_quantity"] <= 0
        ]
        bad_asia = [
            r for r in scenario.web_service_databases["beijing"]
            .table("orderline").scan() if r["quantity"] <= 0
        ]
        assert bad_eu or bad_asia  # sp_runMovementDataCleansing has work

    def test_catalog_split_between_berlin_and_paris(self, profile):
        scenario = build_scenario()
        Initializer(scenario, profile=profile).initialize_sources(0)
        rows = scenario.databases["berlin_paris"].table("eu_product").scan()
        berlin = {r["prod_id"] for r in rows if r["location"] == "Berlin"}
        paris = {r["prod_id"] for r in rows if r["location"] == "Paris"}
        assert berlin and paris
        assert not berlin & paris

    def test_uninitialize_then_reinitialize(self, profile):
        scenario = build_scenario()
        init = Initializer(scenario, profile=profile)
        init.initialize_sources(0)
        init.uninitialize_all()
        assert len(scenario.databases["trondheim"].table("eu_customer")) == 0
        init.initialize_sources(1)
        assert len(scenario.databases["trondheim"].table("eu_customer")) > 0

    def test_periods_differ_but_are_reproducible(self, profile):
        def keys(period, seed=42):
            scenario = build_scenario()
            init = Initializer(scenario, profile=profile, seed=seed)
            population = init.initialize_sources(period)
            return population.customer_keys["beijing"]

        assert keys(0) == keys(0)
        assert keys(0) != keys(1)

    def test_distribution_factor_changes_data(self, profile):
        def order_custkeys(f):
            scenario = build_scenario()
            init = Initializer(scenario, f=f, profile=profile, seed=1)
            init.initialize_sources(0)
            return [
                r["ord_customer"]
                for r in scenario.databases["trondheim"].table("eu_order").scan()
            ]

        assert order_custkeys(0) != order_custkeys(1)
