"""Client choreography, Monitor metrics/plots, verification."""

import pytest

from repro.engine import MtmInterpreterEngine
from repro.errors import BenchmarkError
from repro.scenario import build_scenario
from repro.toolsuite import BenchmarkClient, Monitor, ScaleFactors
from repro.toolsuite.verification import VerificationReport


@pytest.fixture(scope="module")
def period_result():
    """One full period at d=0.05, shared across the read-only tests."""
    scenario = build_scenario()
    engine = MtmInterpreterEngine(scenario.registry)
    client = BenchmarkClient(
        scenario, engine, ScaleFactors(datasize=0.05), periods=1, seed=5
    )
    result = client.run()
    return scenario, engine, client, result


class TestPeriodChoreography:
    def test_all_fifteen_types_executed(self, period_result):
        _, _, _, result = period_result
        executed = {r.process_id for r in result.records}
        assert executed == {f"P{i:02d}" for i in range(1, 16)}

    def test_no_failed_instances(self, period_result):
        _, _, _, result = period_result
        assert result.error_instances == 0

    def test_message_counts_match_table_2(self, period_result):
        _, _, _, result = period_result
        by_type = {}
        for record in result.records:
            by_type[record.process_id] = by_type.get(record.process_id, 0) + 1
        assert by_type["P04"] == 56  # 1100*0.05 + 1
        assert by_type["P08"] == 46
        assert by_type["P10"] == 53
        assert by_type["P03"] == 1
        assert by_type["P12"] == 1

    def test_streams_assigned(self, period_result):
        _, _, _, result = period_result
        stream_of = {r.process_id: r.stream for r in result.records}
        assert stream_of["P01"] == "A"
        assert stream_of["P04"] == "B"
        assert stream_of["P12"] == "C"
        assert stream_of["P15"] == "D"

    def test_streams_c_and_d_serialized(self, period_result):
        """C starts only after A and B completed; D after C (Fig. 7)."""
        _, _, _, result = period_result
        ab_completions = [
            r.completion for r in result.records if r.stream in ("A", "B")
        ]
        p12 = next(r for r in result.records if r.process_id == "P12")
        p13 = next(r for r in result.records if r.process_id == "P13")
        p14 = next(r for r in result.records if r.process_id == "P14")
        p15 = next(r for r in result.records if r.process_id == "P15")
        assert p12.arrival >= max(ab_completions)
        assert p13.start >= p12.completion
        assert p14.arrival >= p13.completion
        assert p15.arrival >= p14.completion

    def test_dependent_extractions_serialized(self, period_result):
        _, _, _, result = period_result
        by_id = {r.process_id: r for r in result.records
                 if r.process_id in ("P04", "P05", "P06", "P07")}
        p04_last = max(
            r.completion for r in result.records if r.process_id == "P04"
        )
        assert by_id["P05"].arrival >= p04_last
        assert by_id["P06"].arrival >= by_id["P05"].completion
        assert by_id["P07"].arrival >= by_id["P06"].completion

    def test_verification_passes(self, period_result):
        _, _, _, result = period_result
        assert result.verification.ok, result.verification.summary()

    def test_period_bounds_validated(self):
        scenario = build_scenario()
        engine = MtmInterpreterEngine(scenario.registry)
        with pytest.raises(BenchmarkError):
            BenchmarkClient(scenario, engine, periods=0)
        with pytest.raises(BenchmarkError):
            BenchmarkClient(scenario, engine, periods=101)


class TestMonitor:
    def test_metrics_in_tu(self, period_result):
        """With t=1 engine units equal tu; with t=2 the report doubles."""
        _, _, client, _ = period_result
        base = client.monitor.metrics()
        doubled = Monitor(time_scale=2.0)
        doubled.absorb(client.monitor.records)
        report = doubled.metrics()
        for pid in base.process_ids:
            assert report[pid].navg_plus == pytest.approx(
                2 * base[pid].navg_plus
            )

    def test_metrics_for_period(self, period_result):
        _, _, client, _ = period_result
        report = client.monitor.metrics_for_period(0)
        assert "P04" in report
        assert client.monitor.metrics_for_period(99).process_ids == []

    def test_metrics_for_period_applies_time_scale(self, period_result):
        """Per-period reports honour t just like the run-wide report."""
        _, _, client, _ = period_result
        base = client.monitor.metrics_for_period(0)
        doubled = Monitor(time_scale=2.0)
        doubled.absorb(client.monitor.records)
        report = doubled.metrics_for_period(0)
        for pid in base.process_ids:
            assert report[pid].navg_plus == pytest.approx(
                2 * base[pid].navg_plus
            )
            assert report[pid].navg == pytest.approx(2 * base[pid].navg)

    def test_ascii_plot_lists_all_types(self, period_result):
        _, _, client, _ = period_result
        plot = client.monitor.performance_plot()
        for i in range(1, 16):
            assert f"P{i:02d}" in plot
        assert "NAVG+" in plot

    def test_svg_plot_well_formed(self, period_result):
        _, _, client, _ = period_result
        svg = client.monitor.performance_plot_svg()
        from repro.xmlkit.doc import parse_xml

        doc = parse_xml(svg)
        # The stdlib parser expands the xmlns into the tag.
        assert doc.tag.endswith("svg")
        rects = [e for e in doc.iter() if e.tag.endswith("rect")]
        assert len(rects) == 2 * 15  # NAVG+ and NAVG bars per type

    def test_save_plot(self, period_result, tmp_path):
        _, _, client, _ = period_result
        path = tmp_path / "plot.svg"
        client.monitor.save_plot(str(path))
        assert path.read_text().startswith("<svg")

    def test_empty_monitor_plot(self):
        assert "(no data)" in Monitor().performance_plot()

    def test_clear(self):
        monitor = Monitor()
        monitor.absorb([])
        monitor.clear()
        assert monitor.records == []


class TestVerificationReport:
    def test_summary_lists_failures(self):
        report = VerificationReport()
        report.record("good_check", True)
        report.record("bad_check", False, "expected 1 got 2")
        assert not report.ok
        summary = report.summary()
        assert "FAILED" in summary
        assert "bad_check" in summary
        assert "expected 1 got 2" in summary

    def test_ok_summary(self):
        report = VerificationReport()
        report.record("only_check", True)
        assert report.ok
        assert "OK" in report.summary()

    def test_verification_detects_broken_state(self, period_result):
        """Tamper with the warehouse after the run: phase post must fail."""
        scenario, engine, client, _ = period_result
        from repro.toolsuite.verification import verify_period

        dwh = scenario.databases["dwh"]
        dwh.table("orders").insert(
            {"orderkey": 123456789, "custkey": 987654321,
             "orderdate": "2007-01-01", "status": "O",
             "priority": "5-LOW", "totalprice": 1}
        )
        report = verify_period(scenario, engine, client._last_factory)
        assert not report.ok
        assert any("integrity" in f or "partition" in f
                   for f in report.failures)
