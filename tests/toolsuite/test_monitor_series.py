"""Per-period measured series (the Fig. 8 counterpart on real runs)."""

import pytest

from repro.engine import MtmInterpreterEngine
from repro.scenario import build_scenario
from repro.toolsuite import BenchmarkClient, Monitor, ScaleFactors


@pytest.fixture(scope="module")
def multi_period_client():
    scenario = build_scenario()
    engine = MtmInterpreterEngine(scenario.registry)
    client = BenchmarkClient(
        scenario, engine, ScaleFactors(datasize=1.0), periods=3, seed=5
    )
    client.run(verify=False)
    return client


class TestPeriodSeries:
    def test_p01_instance_count_decreases(self, multi_period_client):
        """Fig. 8 left, measured: the decreasing master-data series."""
        series = multi_period_client.monitor.period_series("P01")
        periods = [p for p, _, _ in series]
        counts = [n for _, n, _ in series]
        assert periods == [0, 1, 2]
        assert counts[0] >= counts[-1]
        # At d=1.0 the formula gives floor((100-k)/2)+1 instances.
        assert counts[0] == 51
        assert counts[2] == 50

    def test_e2_types_once_per_period(self, multi_period_client):
        series = multi_period_client.monitor.period_series("P13")
        assert [n for _, n, _ in series] == [1, 1, 1]

    def test_costs_positive(self, multi_period_client):
        for _, _, navg in multi_period_client.monitor.period_series("P04"):
            assert navg > 0

    def test_unknown_type_empty(self, multi_period_client):
        assert multi_period_client.monitor.period_series("P99") == []

    def test_time_scale_applied(self, multi_period_client):
        base = multi_period_client.monitor.period_series("P04")
        scaled_monitor = Monitor(time_scale=3.0)
        scaled_monitor.absorb(multi_period_client.monitor.records)
        scaled = scaled_monitor.period_series("P04")
        for (_, _, a), (_, _, b) in zip(base, scaled):
            assert b == pytest.approx(3 * a)
