"""Phase post must actually *catch* broken integration outcomes.

Each test runs a clean period, then sabotages one aspect of the final
state and asserts the corresponding verification check fails — the
benchmark's functional-correctness net has to be load-bearing, not
decorative.
"""

import pytest

from repro.engine import MtmInterpreterEngine
from repro.scenario import build_scenario
from repro.toolsuite import BenchmarkClient, ScaleFactors
from repro.toolsuite.verification import verify_period


@pytest.fixture()
def finished():
    scenario = build_scenario()
    engine = MtmInterpreterEngine(scenario.registry)
    client = BenchmarkClient(scenario, engine, ScaleFactors(), periods=1,
                             seed=5)
    result = client.run()
    assert result.verification.ok
    return scenario, engine, client._last_factory


def failing_checks(scenario, engine, factory):
    report = verify_period(scenario, engine, factory)
    return {failure.split(":")[0] for failure in report.failures}


class TestSabotage:
    def test_lost_failed_message_detected(self, finished):
        scenario, engine, factory = finished
        cdb = scenario.databases["sales_cleaning"]
        cdb.table("failed_messages").delete()
        assert "p10_failed_message_capture" in failing_checks(
            scenario, engine, factory
        )

    def test_surviving_dirt_detected(self, finished):
        scenario, engine, factory = finished
        cdb = scenario.databases["sales_cleaning"]
        cdb.insert("customer", {
            "custkey": 999_000_001, "name": "##corrupt", "address": "x",
            "phone": "y", "citykey": 1, "segment": "Z", "integrated": True,
        })
        assert "p12_no_corrupted_master_data" in failing_checks(
            scenario, engine, factory
        )

    def test_unflagged_master_data_detected(self, finished):
        scenario, engine, factory = finished
        cdb = scenario.databases["sales_cleaning"]
        cdb.insert("customer", {
            "custkey": 999_000_002, "name": "Customer#999000002",
            "address": "unique-x", "phone": "unique-y", "citykey": 1,
            "segment": "Z", "integrated": False,
        })
        assert "p12_master_data_flagged_integrated" in failing_checks(
            scenario, engine, factory
        )

    def test_leftover_movement_delta_detected(self, finished):
        scenario, engine, factory = finished
        cdb = scenario.databases["sales_cleaning"]
        cdb.insert("orders", {
            "orderkey": 999_000_003, "custkey": 1,
            "orderdate": "2007-01-01", "status": "O",
            "priority": "5-LOW", "totalprice": 1,
        })
        assert "p13_cdb_movement_cleared" in failing_checks(
            scenario, engine, factory
        )

    def test_lost_warehouse_order_detected(self, finished):
        """Dropping a delivered order breaks the reconciliation."""
        scenario, engine, factory = finished
        dwh = scenario.databases["dwh"]
        orderkey, _ = factory.vienna_orderkeys[0]
        from repro.db.expressions import col, lit

        removed = dwh.table("orders").delete(col("orderkey") == lit(orderkey))
        if removed:  # the order survived cleansing in this seed
            fails = failing_checks(scenario, engine, factory)
            assert "vienna_orders_reconciled" in fails or \
                "p14_marts_partition_dwh_orders" in fails

    def test_stale_mdm_subscription_detected(self, finished):
        scenario, engine, factory = finished
        custkey, expected = next(iter(factory.mdm_updates.items()))
        from repro.scenario.topology import EUROPE_TRONDHEIM_THRESHOLD

        db_name = ("berlin_paris" if custkey < EUROPE_TRONDHEIM_THRESHOLD
                   else "trondheim")
        scenario.databases[db_name].table("eu_customer").update(
            {"cust_address": "STALE"},
            lambda row: row["cust_id"] == custkey,
        )
        assert "p02_subscription_applied" in failing_checks(
            scenario, engine, factory
        )

    def test_unrefreshed_mart_view_detected(self, finished):
        scenario, engine, factory = finished
        scenario.databases["dm_asia"].materialized_view("OrdersMV").invalidate()
        assert "p15_dm_asia_view_refreshed" in failing_checks(
            scenario, engine, factory
        )

    def test_missing_seoul_master_data_detected(self, finished):
        scenario, engine, factory = finished
        scenario.web_service_databases["seoul"].table("customer").truncate()
        assert "p01_seoul_master_data_present" in failing_checks(
            scenario, engine, factory
        )
