"""The Table II scheduling series and the scale factors."""

import pytest

from repro.errors import ScaleFactorError
from repro.toolsuite.schedule import (
    ScaleFactors,
    build_schedule,
    deadlines_p01,
    deadlines_p02,
    deadlines_p04,
    deadlines_p08,
    deadlines_p10,
    instances_p01,
    instances_p04,
    instances_p08,
    instances_p10,
)


class TestScaleFactors:
    def test_defaults(self):
        factors = ScaleFactors()
        assert factors.datasize == 0.05
        assert factors.time == 1.0
        assert factors.distribution == 0

    @pytest.mark.parametrize("bad", [
        {"datasize": 0}, {"datasize": -1}, {"time": 0}, {"distribution": 7},
    ])
    def test_validation(self, bad):
        with pytest.raises(ScaleFactorError):
            ScaleFactors(**bad)

    def test_time_conversion_round_trip(self):
        factors = ScaleFactors(time=2.0)
        assert factors.tu_to_engine(10.0) == 5.0
        assert factors.engine_to_tu(5.0) == 10.0

    def test_higher_t_compresses_schedule(self):
        """1 tu = 1/t: raising t shrinks inter-arrival gaps (Fig. 8 right)."""
        slow = ScaleFactors(time=0.5).tu_to_engine(2.0)
        fast = ScaleFactors(time=2.0).tu_to_engine(2.0)
        assert fast < slow


class TestInstanceCounts:
    def test_p01_decreases_with_period(self):
        """Fig. 8 left: the decreasing P01 series models realistic master
        data management."""
        d = 1.0
        counts = [instances_p01(k, d) for k in range(100)]
        assert counts[0] == 51  # floor(100*1/2)+1
        assert counts[99] == 1  # floor(1*1/2)+1
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_p01_scales_with_d(self):
        assert instances_p01(0, 0.1) < instances_p01(0, 1.0)

    def test_table_2_formulas(self):
        d = 0.05
        assert instances_p04(d) == int(1100 * d) + 1  # 56
        assert instances_p08(d) == int(900 * d) + 1  # 46
        assert instances_p10(d) == int(1050 * d) + 1  # 53

    def test_period_bounds(self):
        with pytest.raises(ScaleFactorError):
            instances_p01(100, 1.0)
        with pytest.raises(ScaleFactorError):
            instances_p01(-1, 1.0)


class TestDeadlineSeries:
    def test_p01_spacing(self):
        deadlines = deadlines_p01(0, 0.1)
        assert deadlines[0] == 0.0
        assert all(b - a == 2.0 for a, b in zip(deadlines, deadlines[1:]))

    def test_p02_interleaves_with_p01(self):
        """P01 at T0+2(m-1), P02 at T0+2m: offset by 2 tu."""
        p01 = deadlines_p01(0, 0.1)
        p02 = deadlines_p02(0, 0.1)
        assert p02[0] == 2.0
        assert len(p01) == len(p02)

    def test_p08_shifted_asian_day(self):
        assert deadlines_p08(0.05)[0] == 2000.0
        spacing = deadlines_p08(0.05)
        assert spacing[1] - spacing[0] == 3.0

    def test_p10_shifted_american_day(self):
        assert deadlines_p10(0.05)[0] == 3000.0
        spacing = deadlines_p10(0.05)
        assert spacing[1] - spacing[0] == 2.5

    def test_overlapping_business_days(self):
        """P04/P08/P10 windows overlap (core working hours, Section V)."""
        d = 0.5
        p04_end = deadlines_p04(d)[-1]
        p08_start = deadlines_p08(d)[0]
        p10_start = deadlines_p10(d)[0]
        assert p08_start > 0 and p10_start > p08_start
        p08_end = deadlines_p08(d)[-1]
        assert p08_end > p10_start  # Asia still sending when America starts


class TestStreamSchedule:
    def test_build_schedule_counts(self):
        schedule = build_schedule(0, ScaleFactors(datasize=0.05))
        assert len(schedule.p04) == 56
        assert len(schedule.p08) == 46
        assert len(schedule.p10) == 53
        assert schedule.message_event_count == sum(
            map(len, (schedule.p01, schedule.p02, schedule.p04,
                      schedule.p08, schedule.p10))
        )

    def test_series_accessor(self):
        schedule = build_schedule(0, ScaleFactors())
        assert schedule.series("P04") == schedule.p04
        with pytest.raises(ScaleFactorError):
            schedule.series("P03")  # dependent, not static

    def test_datasize_raises_message_volume(self):
        small = build_schedule(0, ScaleFactors(datasize=0.05))
        large = build_schedule(0, ScaleFactors(datasize=0.1))
        assert large.message_event_count > small.message_event_count
