"""The shared nearest-rank percentile helpers (satellite of PR 6).

One definition feeds three consumers — ``Monitor.latency_percentiles``
(instance latencies in tu), the serving layer's per-tenant reports
(session round-trips in wall seconds) and ``sweep_table``'s p95 column —
so the math is pinned down here once.
"""

import pytest

from repro.errors import BenchmarkError
from repro.toolsuite import LATENCY_POINTS, latency_percentiles, percentile
from repro.engine.base import InstanceRecord
from repro.engine.costs import CostBreakdown
from repro.toolsuite.monitor import Monitor, sweep_table
from repro.parallel import run_spec, RunSpec


class TestPercentile:
    def test_single_value_is_every_percentile(self):
        for point in (1, 50, 95, 99, 100):
            assert percentile([7.0], point) == 7.0

    def test_nearest_rank_is_an_observed_value(self):
        values = [10.0, 20.0, 30.0, 40.0]
        for point in (1, 33, 50, 77, 95, 100):
            assert percentile(values, point) in values

    def test_classic_nearest_rank_examples(self):
        # ceil(n * p / 100)-th smallest, 1-based.
        values = [15, 20, 35, 40, 50]
        assert percentile(values, 30) == 20  # ceil(1.5) = 2nd
        assert percentile(values, 40) == 20  # ceil(2.0) = 2nd
        assert percentile(values, 50) == 35  # ceil(2.5) = 3rd
        assert percentile(values, 100) == 50

    def test_order_independent(self):
        assert percentile([3, 1, 2], 50) == percentile([1, 2, 3], 50)

    def test_empty_is_zero(self):
        assert percentile([], 95) == 0.0

    def test_point_range_enforced(self):
        for bad in (0, -1, 101, 150):
            with pytest.raises(BenchmarkError, match="percentile point"):
                percentile([1.0], bad)

    def test_p100_is_max_p_small_is_min(self):
        values = list(range(1, 101))
        assert percentile(values, 100) == 100
        assert percentile(values, 1) == 1
        assert percentile(values, 95) == 95


class TestLatencyPercentiles:
    def test_default_points(self):
        doc = latency_percentiles([float(v) for v in range(1, 101)])
        assert doc == {"p50": 50.0, "p95": 95.0, "p99": 99.0}
        assert tuple(LATENCY_POINTS) == (50, 95, 99)

    def test_empty_values(self):
        assert latency_percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_custom_points(self):
        doc = latency_percentiles([1.0, 2.0, 3.0, 4.0], points=(25, 75))
        assert doc == {"p25": 1.0, "p75": 3.0}


def _record(pid, elapsed):
    return InstanceRecord(
        instance_id=0, process_id=pid, period=0, stream="A",
        arrival=0.0, start=0.0, completion=elapsed,
        costs=CostBreakdown(),
    )


class TestMonitorLatencyPercentiles:
    def test_scales_by_time_factor(self):
        monitor = Monitor(time_scale=2.0)
        monitor.absorb(
            _record("P01", elapsed) for elapsed in (10.0, 20.0, 30.0)
        )
        doc = monitor.latency_percentiles()
        assert doc["p50"] == 40.0  # 20 tu elapsed * t=2
        assert doc["p99"] == 60.0

    def test_empty_monitor(self):
        assert Monitor().latency_percentiles() == {
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_real_run_produces_positive_percentiles(self):
        outcome = run_spec(RunSpec(datasize=0.02, seed=5))
        doc = Monitor.merged([outcome]).latency_percentiles()
        assert 0 < doc["p50"] <= doc["p95"] <= doc["p99"]


class TestSweepTableP95:
    def test_p95_column_present_and_consistent(self):
        outcome = run_spec(RunSpec(datasize=0.02, seed=11))
        table = sweep_table([outcome])
        assert "p95" in table.splitlines()[0]
        monitor = Monitor.merged([outcome])
        expected = monitor.latency_percentiles()["p95"]
        assert f"{expected:>10.2f}" in table.splitlines()[2]
