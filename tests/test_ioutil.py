"""Atomic report writing (repro.ioutil, satellite of PR 6).

The contract: ``--out reports/deep/file.json`` works without a manual
``mkdir -p``, a crash or serialization failure never leaves a torn or
partial file behind, and the previous report survives a failed rewrite.
"""

import json

import pytest

from repro.cli import main
from repro.ioutil import write_json_atomic, write_text_atomic


class TestWriteTextAtomic:
    def test_creates_missing_parents(self, tmp_path):
        target = tmp_path / "a" / "b" / "c" / "report.txt"
        write_text_atomic(target, "hello\n")
        assert target.read_text() == "hello\n"

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "report.txt"
        target.write_text("old")
        write_text_atomic(target, "new")
        assert target.read_text() == "new"

    def test_no_stray_tmp_files(self, tmp_path):
        target = tmp_path / "report.txt"
        write_text_atomic(target, "content")
        assert [p.name for p in tmp_path.iterdir()] == ["report.txt"]


class TestWriteJsonAtomic:
    def test_sorted_newline_terminated(self, tmp_path):
        target = tmp_path / "doc.json"
        write_json_atomic(target, {"b": 2, "a": 1})
        text = target.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == {"a": 1, "b": 2}

    def test_unserializable_doc_keeps_previous_file(self, tmp_path):
        target = tmp_path / "doc.json"
        write_json_atomic(target, {"ok": True})
        with pytest.raises(TypeError):
            write_json_atomic(target, {"bad": object()})
        assert json.loads(target.read_text()) == {"ok": True}
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_unserializable_doc_creates_nothing(self, tmp_path):
        target = tmp_path / "deep" / "doc.json"
        with pytest.raises(TypeError):
            write_json_atomic(target, {"bad": object()})
        assert not target.exists()


class TestSweepOutIsAtomic:
    """The CLI satellite: `repro sweep --out` through the atomic path."""

    def test_out_creates_parent_dirs(self, tmp_path, capsys):
        out = tmp_path / "reports" / "nested" / "sweep.json"
        metrics = tmp_path / "metrics" / "sweep.prom"
        status = main([
            "sweep", "--grid", "d=0.02", "--seeds", "11", "--quiet",
            "--out", str(out), "--metrics-out", str(metrics),
        ])
        assert status == 0
        doc = json.loads(out.read_text())
        assert doc["points"][0]["status"] == "ok"
        assert "engine_instances_total" in metrics.read_text()

    def test_out_leaves_no_tmp_droppings(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        main(["sweep", "--grid", "d=0.02", "--seeds", "11", "--quiet",
              "--out", str(out)])
        assert [p.name for p in tmp_path.iterdir()] == ["sweep.json"]
