"""Determinism contract of the workload synthesizer (repro.synth).

The property under test: everything the synthesizer emits — manifests,
plans, ground truth, run fingerprints — is a pure function of
``(SynthSpec, seed)``.  Same inputs give byte-identical outputs, across
repeated calls and across sweep worker processes; a different seed gives
a different scenario.
"""

from __future__ import annotations

import json

import pytest

from repro.parallel import RunSpec, run_spec, run_sweep
from repro.synth import (
    SynthSpec,
    SynthSpecError,
    build_manifest,
    build_period_plan,
    knob_problems,
    manifest_digest,
    manifest_to_json,
    synthesize,
)

#: A deterministic sample of the knob space, covering every family and
#: every transform mix at least once.
SAMPLED_KNOBS = (
    "",
    "sources=3,depth=2,transform_mix=xml",
    "families=cdc,sources=1,messages=2",
    "families=scd+dirty,noise=0.4,update_ratio=0.8",
    "families=pipeline+cdc,fan_out=3,transform_mix=balanced",
    "sources=4,depth=3,rounds=3,scale=0.5,mix=balanced",
)


# ---------------------------------------------------------------------------
# SynthSpec identity: parse / to_string / digest
# ---------------------------------------------------------------------------


class TestSpecIdentity:
    @pytest.mark.parametrize("knobs", SAMPLED_KNOBS)
    def test_to_string_parse_round_trip(self, knobs):
        spec = SynthSpec.parse(knobs).resolve(42)
        assert SynthSpec.parse(spec.to_string()) == spec

    @pytest.mark.parametrize("knobs", SAMPLED_KNOBS)
    def test_digest_is_stable_and_seed_sensitive(self, knobs):
        a = SynthSpec.parse(knobs).resolve(42)
        b = SynthSpec.parse(knobs).resolve(42)
        assert a.digest() == b.digest()
        assert a.digest() != SynthSpec.parse(knobs).resolve(43).digest()

    def test_digest_differs_per_knob(self):
        base = SynthSpec().resolve(42)
        assert base.digest() != SynthSpec(depth=2).resolve(42).digest()
        assert base.digest() != SynthSpec(noise=0.3).resolve(42).digest()
        assert (
            base.digest()
            != SynthSpec(families=("cdc",)).resolve(42).digest()
        )

    def test_aliases_parse_to_the_same_spec(self):
        assert SynthSpec.parse("fanout=3,mix=xml,msgs=5") == SynthSpec.parse(
            "fan_out=3,transform_mix=xml,messages=5"
        )

    def test_families_are_canonically_ordered(self):
        spec = SynthSpec.parse("families=dirty+cdc+pipeline")
        assert spec.families == ("pipeline", "cdc", "dirty")

    def test_explicit_seed_survives_resolve(self):
        assert SynthSpec.parse("seed=7").resolve(42).seed == 7

    def test_parse_reports_every_lexical_problem_at_once(self):
        with pytest.raises(SynthSpecError) as err:
            SynthSpec.parse("bogus=1,noise=abc")
        text = "\n".join(err.value.problems)
        assert "bogus" in text and "noise" in text
        assert len(err.value.problems) == 2

    def test_parse_reports_every_range_problem_at_once(self):
        with pytest.raises(SynthSpecError) as err:
            SynthSpec.parse("depth=99,noise=5,families=martian")
        text = "\n".join(err.value.problems)
        assert "depth" in text and "noise" in text and "martian" in text
        assert len(err.value.problems) == 3

    def test_knob_problems_is_the_non_raising_twin(self):
        assert knob_problems("") == []
        assert knob_problems("depth=2") == []
        assert len(knob_problems("depth=99,families=martian")) == 2


# ---------------------------------------------------------------------------
# plans and manifests: byte identity per (spec, seed)
# ---------------------------------------------------------------------------


class TestPlanDeterminism:
    @pytest.mark.parametrize("knobs", SAMPLED_KNOBS)
    def test_period_plans_are_reproducible(self, knobs):
        spec = SynthSpec.parse(knobs).resolve(42)
        for f in (0, 1):
            for period in (0, 1):
                a = build_period_plan(spec, f, period)
                b = build_period_plan(spec, f, period)
                assert a == b

    def test_distribution_changes_values_not_volumes(self):
        spec = SynthSpec().resolve(42)
        uniform = build_period_plan(spec, 0, 0)
        zipf = build_period_plan(spec, 1, 0)
        # Rate decisions ride a uniform coin, so dirtiness volume is a
        # property of the knobs alone — value skew must not degrade it.
        assert uniform.message_count() == zipf.message_count()
        for i in uniform.duplicate_pairs:
            assert len(uniform.duplicate_pairs[i]) == len(
                zipf.duplicate_pairs[i]
            )

    def test_different_periods_differ(self):
        spec = SynthSpec().resolve(42)
        assert build_period_plan(spec, 0, 0) != build_period_plan(spec, 0, 1)


class TestManifestDeterminism:
    @pytest.mark.parametrize("knobs", SAMPLED_KNOBS)
    def test_manifests_are_byte_identical(self, knobs):
        spec = SynthSpec.parse(knobs).resolve(42)
        a = build_manifest(synthesize(spec, f=1), periods=2)
        b = build_manifest(synthesize(spec, f=1), periods=2)
        assert manifest_to_json(a) == manifest_to_json(b)
        assert manifest_digest(a) == manifest_digest(b)

    @pytest.mark.parametrize("knobs", SAMPLED_KNOBS)
    def test_different_seeds_give_different_manifests(self, knobs):
        at42 = SynthSpec.parse(knobs).resolve(42)
        at43 = SynthSpec.parse(knobs).resolve(43)
        assert manifest_digest(
            build_manifest(synthesize(at42))
        ) != manifest_digest(build_manifest(synthesize(at43)))

    def test_manifest_is_plain_json(self):
        manifest = build_manifest(synthesize(SynthSpec().resolve(42)))
        assert json.loads(manifest_to_json(manifest)) == manifest
        assert manifest["format"] == "dipbench.synth/v1"

    def test_manifest_covers_every_process_and_database(self):
        workload = synthesize(SynthSpec().resolve(42))
        manifest = build_manifest(workload)
        assert set(manifest["processes"]) == set(workload.processes)
        assert set(manifest["databases"]) == set(
            workload.scenario.databases
        )


# ---------------------------------------------------------------------------
# run fingerprints: repeated runs and sweep workers
# ---------------------------------------------------------------------------

SYNTH_SPEC = dict(periods=2, seed=11, synth="families=cdc+dirty,sources=2")


class TestRunFingerprints:
    def test_repeated_runs_are_byte_identical(self):
        first = run_spec(RunSpec(**SYNTH_SPEC))
        second = run_spec(RunSpec(**SYNTH_SPEC))
        assert first.ok and first.result.verification.ok
        assert first.fingerprint() == second.fingerprint()
        assert first.landscape_digest == second.landscape_digest
        assert first.result.records == second.result.records

    def test_seed_reaches_the_synthesizer(self):
        at11 = run_spec(RunSpec(**SYNTH_SPEC))
        at12 = run_spec(RunSpec(**dict(SYNTH_SPEC, seed=12)))
        assert at11.landscape_digest != at12.landscape_digest

    def test_sweep_workers_reproduce_the_serial_bytes(self):
        grid = [
            RunSpec(**SYNTH_SPEC),
            RunSpec(**dict(SYNTH_SPEC, seed=12)),
            RunSpec(**dict(SYNTH_SPEC, synth="families=scd,sources=1")),
        ]
        serial = run_sweep(grid, workers=1)
        parallel = run_sweep(grid, workers=3)
        assert serial.fingerprint() == parallel.fingerprint()
        assert serial.to_json() == parallel.to_json()
        assert parallel.ok

    def test_synth_label_and_json_carry_the_knobs(self):
        outcome = run_spec(RunSpec(**SYNTH_SPEC))
        assert "synth=families=cdc+dirty,sources=2" in outcome.spec.label
        assert outcome.to_json()["synth"] == SYNTH_SPEC["synth"]

    def test_classic_spec_stays_untouched(self):
        spec = RunSpec(datasize=0.02, seed=11)
        assert "synth" not in spec.label
        assert "synth" not in run_spec(spec).to_json()
