"""Differential conformance of synthesized workloads across engines.

Every generated scenario must mean the same thing to every engine:
identical landscape digests, identical per-process status multisets,
and exact verification passing everywhere.  The sampled specs cover
each of the new process families (cdc, scd, dirty) as well as the
pipeline DAG knobs, and the generated data itself is property-checked
for FK closure and value-domain membership.
"""

from __future__ import annotations

import pytest

from repro.engine import ENGINES
from repro.synth import (
    SynthSpec,
    run_differential,
    synthesize,
)
from repro.synth.runner import SynthClient
from repro.synth.schema import ORDER_STATUS, SEGMENTS, TXN_KINDS

#: ≥6 sampled points of the knob space; each new family appears alone
#: at least once and in combination at least once.  The paired ``f``
#: exercises every skew distribution across the sample.
CONFORMANCE_SAMPLE = (
    ("sources=1,families=pipeline,depth=2,transform_mix=xml", 0),
    ("families=cdc,sources=2,messages=2", 1),
    ("families=scd,sources=2,update_ratio=0.9", 2),
    ("families=dirty,sources=3,noise=0.4", 3),
    ("families=cdc+scd,sources=2,rounds=1", 1),
    ("depth=1,transform_mix=balanced,noise=0.3", 2),
)


class TestDifferentialConformance:
    @pytest.mark.parametrize("knobs,f", CONFORMANCE_SAMPLE)
    def test_all_engines_agree(self, knobs, f):
        spec = SynthSpec.parse(knobs).resolve(17)
        report = run_differential(spec, f=f, periods=1)
        assert report.ok, report.summary()
        assert len(report.outcomes) == len(ENGINES)
        digests = {o.digest for o in report.outcomes}
        assert len(digests) == 1

    def test_unresolved_spec_is_rejected(self):
        with pytest.raises(ValueError, match="resolved"):
            run_differential(SynthSpec())

    def test_divergence_would_be_reported(self):
        # Different seeds are different scenarios; pretending they are
        # the same grid point must trip every comparison the bridge does.
        a = run_differential(
            SynthSpec(families=("cdc",), sources=1).resolve(1),
            engines=["interpreter"],
        )
        b = run_differential(
            SynthSpec(families=("cdc",), sources=1).resolve(2),
            engines=["interpreter"],
        )
        assert a.outcomes[0].digest != b.outcomes[0].digest


# ---------------------------------------------------------------------------
# property checks over the generated landscape
# ---------------------------------------------------------------------------


def _run_workload(knobs: str, f: int = 1, periods: int = 1):
    spec = SynthSpec.parse(knobs).resolve(17)
    workload = synthesize(spec, f=f)
    engine = ENGINES["interpreter"](
        workload.scenario.registry, worker_count=4
    )
    result = SynthClient(workload, engine, periods=periods).run()
    assert result.verification.ok, result.verification.summary()
    return workload


class TestGeneratedDataProperties:
    @pytest.fixture(scope="class")
    def workload(self):
        return _run_workload("sources=3,noise=0.3", f=1)

    def test_fk_closure_in_every_database(self, workload):
        for name, db in workload.scenario.all_databases.items():
            assert db.check_integrity() == [], name

    def test_fk_declarations_cover_the_schema(self, workload):
        # Source orders/txns reference their source's customer table;
        # the SCD history references the current dimension.
        for i in range(workload.spec.sources):
            db = workload.source_db(i)
            child_fks = [
                fk
                for table_name in db.table_names
                for fk in db.table(table_name).schema.foreign_keys
            ]
            assert child_fks, f"src{i} declares no foreign keys"
        hub = workload.scenario.database("synth_hub")
        hist_fks = hub.table("dim_customer_hist").schema.foreign_keys
        assert any(
            fk.parent_table == "dim_customer" for fk in hist_fks
        )

    def test_value_domains_hold_everywhere(self, workload):
        truth = {d.index: d for d in workload.dialects}
        for i in range(workload.spec.sources):
            db = workload.source_db(i)
            dialect = truth[i]
            customers = db.table(dialect.table_names["customer"])
            seg = dialect.column_maps["customer"]["segment"]
            for row in customers:
                assert row[seg] in SEGMENTS
            orders = db.table(dialect.table_names["orders"])
            status = dialect.column_maps["orders"]["status"]
            amount = dialect.column_maps["orders"]["amount"]
            for row in orders:
                assert row[status] in ORDER_STATUS
                # SYU validates amounts; invalid rows are filtered out.
                assert row[amount] > 0
            txns = db.table(dialect.table_names["txn"])
            kind = dialect.column_maps["txn"]["kind"]
            for row in txns:
                assert row[kind] in TXN_KINDS

    def test_hub_amounts_survive_validation(self, workload):
        hub = workload.scenario.database("synth_hub")
        for row in hub.table("orders_hub"):
            assert row["amount"] > 0
            assert row["status"] in ORDER_STATUS

    def test_scd_history_versions_are_dense(self, workload):
        hub = workload.scenario.database("synth_hub")
        versions: dict[int, list[int]] = {}
        current: dict[int, int] = {}
        for row in hub.table("dim_customer_hist"):
            versions.setdefault(row["custkey"], []).append(row["version"])
            if row["current"] == 1:
                current[row["custkey"]] = current.get(row["custkey"], 0) + 1
        for custkey, vs in versions.items():
            assert sorted(vs) == list(range(1, len(vs) + 1)), custkey
            assert current.get(custkey) == 1, custkey

    def test_golden_table_blocks_are_unique(self, workload):
        hub = workload.scenario.database("synth_hub")
        blocks = [
            (row["address"], row["phone"])
            for row in hub.table("golden_customer")
        ]
        assert len(blocks) == len(set(blocks))
