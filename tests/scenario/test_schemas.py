"""The scenario's relational schemas (Figs. 2 and 3, Section III.B)."""

import pytest

from repro.scenario import schemas


class TestEuropeSchema:
    def test_tables(self):
        names = {t.name for t in schemas.europe_tables()}
        assert names == {"eu_customer", "eu_product", "eu_order", "eu_orderpos"}

    def test_location_discriminator_everywhere(self):
        """Berlin and Paris share one database; every table needs the
        location column the P05/P06 selections filter on."""
        for table in schemas.europe_tables():
            assert table.has_column("location")
            assert not table.column("location").nullable

    def test_normalized_order_positions(self):
        orderpos = next(
            t for t in schemas.europe_tables() if t.name == "eu_orderpos"
        )
        assert orderpos.primary_key == ("ord_id", "pos_nr")


class TestTpchSchema:
    def test_tpch_naming_convention(self):
        """Region America 'follows exactly the normalized TPC-H schema'."""
        for table in schemas.tpch_tables():
            prefix = {"customer": "c_", "orders": "o_",
                      "lineitem": "l_", "part": "p_"}[table.name]
            assert all(c.name.startswith(prefix) for c in table.columns)

    def test_lineitem_composite_key(self):
        lineitem = next(t for t in schemas.tpch_tables() if t.name == "lineitem")
        assert lineitem.primary_key == ("l_orderkey", "l_linenumber")


class TestSnowflake:
    def test_cdb_has_staging_extras(self):
        cdb = {t.name: t for t in schemas.cdb_tables()}
        assert cdb["customer"].has_column("integrated")
        assert "failed_messages" in cdb

    def test_dwh_is_clean(self):
        dwh = {t.name: t for t in schemas.dwh_tables()}
        assert not dwh["customer"].has_column("integrated")
        assert "failed_messages" not in dwh

    def test_snowflake_dimension_chain(self):
        """Fig. 3: product -> productgroup -> productline and
        city -> nation -> region."""
        dwh = {t.name: t for t in schemas.dwh_tables()}
        fk_map = {
            t.name: {fk.parent_table for fk in t.foreign_keys}
            for t in dwh.values()
        }
        assert "productgroup" in fk_map["product"]
        assert "productline" in fk_map["productgroup"]
        assert "nation" in fk_map["city"]
        assert "region" in fk_map["nation"]
        assert "city" in fk_map["customer"]
        assert "customer" in fk_map["orders"]
        assert "orders" in fk_map["orderline"]

    def test_cdb_orders_have_no_customer_fk(self):
        """Staging loads movement data child-first; the FK is deferred
        to the warehouse."""
        cdb = {t.name: t for t in schemas.cdb_tables()}
        assert not any(
            fk.parent_table == "customer" for fk in cdb["orders"].foreign_keys
        )


class TestDataMartVariants:
    def test_europe_fully_denormalized(self):
        tables = {t.name for t in schemas.datamart_tables("europe")}
        assert "dim_product" in tables and "dim_location" in tables
        assert "productgroup" not in tables and "nation" not in tables

    def test_asia_product_only(self):
        tables = {t.name for t in schemas.datamart_tables("asia")}
        assert "dim_product" in tables
        assert "dim_location" not in tables
        assert {"region", "nation", "city"} <= tables

    def test_united_states_location_only(self):
        tables = {t.name for t in schemas.datamart_tables("united_states")}
        assert "dim_location" in tables
        assert "dim_product" not in tables
        assert {"product", "productgroup", "productline"} <= tables

    def test_unknown_mart(self):
        with pytest.raises(ValueError):
            schemas.datamart_tables("moon")

    def test_all_marts_carry_movement_tables(self):
        for mart in ("europe", "asia", "united_states"):
            names = {t.name for t in schemas.datamart_tables(mart)}
            assert {"orders", "orderline", "customer"} <= names


class TestAsiaTypes:
    def test_types_cover_all_tables(self):
        asia_names = {t.name for t in schemas.asia_tables()}
        assert set(schemas.ASIA_TYPES) == asia_names

    def test_types_cover_all_columns(self):
        for table in schemas.asia_tables():
            declared = set(schemas.ASIA_TYPES[table.name])
            assert declared == set(table.column_names)
