"""Topology (Fig. 1), message factories, stored procedures."""

import pytest

from repro.db.expressions import col, lit
from repro.scenario import PROCESS_TABLE, build_processes, build_scenario
from repro.scenario.messages import MessageFactory, Population
from repro.scenario.procedures import (
    sp_run_master_data_cleansing,
    sp_run_movement_data_cleansing,
)
from repro.scenario.topology import KEY_RANGES
from repro.scenario.xmlschemas import (
    beijing_schema,
    hongkong_schema,
    mdm_schema,
    sandiego_schema,
    vienna_schema,
)


class TestTopology:
    def test_three_hosts(self, scenario):
        assert scenario.network.hosts == ["CS", "ES", "IS"]

    def test_eleven_database_instances(self, scenario):
        """The paper's ES ran one DBMS with eleven database instances."""
        assert len(scenario.databases) == 11

    def test_three_web_services(self, scenario):
        assert sorted(scenario.web_service_databases) == [
            "beijing", "hongkong", "seoul",
        ]

    def test_all_endpoints_registered(self, scenario):
        expected = set(scenario.databases) | set(scenario.web_service_databases)
        assert set(scenario.registry.service_names) == expected

    def test_all_endpoints_on_es(self, scenario):
        for name in scenario.registry.service_names:
            assert scenario.registry.lookup(name).host == "ES"

    def test_dialects_differ_between_beijing_and_seoul(self, scenario):
        beijing = scenario.registry.lookup("beijing")
        seoul = scenario.registry.lookup("seoul")
        assert beijing.result_tag != seoul.result_tag

    def test_uninitialize_empties_everything(self, initialized):
        scenario, _ = initialized
        scenario.uninitialize()
        for name, db in scenario.all_databases.items():
            for table_name in db.table_names:
                assert len(db.table(table_name)) == 0, (name, table_name)

    def test_database_accessor_covers_web_services(self, scenario):
        assert scenario.database("beijing").name == "beijing_store"
        assert scenario.database("dwh").name == "dwh"


class TestProcessTable:
    def test_fifteen_types(self):
        assert len(PROCESS_TABLE) == 15
        assert [row[1] for row in PROCESS_TABLE] == [
            f"P{i:02d}" for i in range(1, 16)
        ]

    def test_group_sizes_match_table_1(self):
        groups = [row[0] for row in PROCESS_TABLE]
        assert groups.count("A") == 3
        assert groups.count("B") == 8
        assert groups.count("C") == 2
        assert groups.count("D") == 2

    def test_build_processes_covers_table_plus_subprocesses(self):
        processes = build_processes()
        table_ids = {row[1] for row in PROCESS_TABLE}
        assert table_ids <= set(processes)
        subs = set(processes) - table_ids
        assert subs == {"P14_S1", "P14_S2", "P14_S3", "P14_S4"}
        assert all(processes[s].subprocess_only for s in subs)

    def test_groups_assigned_correctly(self):
        processes = build_processes()
        for group, pid, _ in PROCESS_TABLE:
            assert processes[pid].group.name == group, pid


class TestMessageFactory:
    def test_messages_conform_to_their_schemas(self, factory):
        assert vienna_schema().is_valid(factory.vienna_order().xml())
        assert mdm_schema().is_valid(factory.mdm_customer_update().xml())
        assert hongkong_schema().is_valid(factory.hongkong_order().xml())
        assert beijing_schema().is_valid(factory.beijing_master_data().xml())

    def test_clean_sandiego_conforms(self, initialized):
        _, population = initialized
        clean = MessageFactory(population, seed=1, error_rate=0.0)
        for _ in range(10):
            assert sandiego_schema().is_valid(clean.sandiego_order().xml())
        assert clean.sandiego_invalid == 0

    def test_dirty_sandiego_violates(self, initialized):
        _, population = initialized
        dirty = MessageFactory(population, seed=1, error_rate=1.0)
        for _ in range(10):
            assert not sandiego_schema().is_valid(dirty.sandiego_order().xml())
        assert dirty.sandiego_invalid == 10

    def test_order_keys_unique_across_messages(self, factory):
        keys = set()
        for _ in range(20):
            keys.add(int(factory.vienna_order().xml().find("Kopf")
                         .child_text("Auftrag")))
            keys.add(int(factory.hongkong_order().xml().child_text("Id")))
        assert len(keys) == 40

    def test_key_ranges_respected(self, factory):
        vienna_key = int(
            factory.vienna_order().xml().find("Kopf").child_text("Auftrag")
        )
        assert vienna_key > KEY_RANGES["vienna_orders"]
        hk_key = int(factory.hongkong_order().xml().child_text("Id"))
        assert hk_key > KEY_RANGES["hongkong_orders"]

    def test_population_guard(self):
        empty = Population()
        with pytest.raises(ValueError):
            empty.customers_of("berlin")

    def test_deterministic_with_seed(self, initialized):
        _, population = initialized
        a = MessageFactory(population, seed=9)
        b = MessageFactory(population, seed=9)
        from repro.xmlkit.doc import serialize_xml

        assert serialize_xml(a.vienna_order().xml()) == serialize_xml(
            b.vienna_order().xml()
        )


class TestProcedures:
    def test_master_cleansing_report(self, initialized):
        scenario, _ = initialized
        cdb = scenario.databases["sales_cleaning"]
        cdb.insert("customer", {"custkey": 1, "name": "Customer#000000001",
                                "address": "a", "phone": "p",
                                "citykey": 1, "segment": "X",
                                "integrated": False})
        cdb.insert("customer", {"custkey": 2, "name": "XXbroken",
                                "address": "b", "phone": "q",
                                "citykey": 1, "segment": "X",
                                "integrated": False})
        cdb.insert("customer", {"custkey": 3, "name": "Customer#000000003",
                                "address": "a", "phone": "p",  # duplicate of 1
                                "citykey": 1, "segment": "X",
                                "integrated": False})
        report = sp_run_master_data_cleansing(cdb)
        assert report["customer_errors"] == 1
        assert report["customer_duplicates"] == 1
        survivors = {c["custkey"] for c in cdb.table("customer").scan()}
        assert survivors == {1}

    def test_movement_cleansing_removes_orphans(self, initialized):
        scenario, _ = initialized
        cdb = scenario.databases["sales_cleaning"]
        cdb.insert("customer", {"custkey": 1, "name": "Customer#000000001",
                                "address": "a", "phone": "p",
                                "citykey": 1, "segment": "X",
                                "integrated": False})
        cdb.insert("product", {"prodkey": 1, "name": "widget", "brand": "B",
                               "price": 5, "groupkey": 1})
        cdb.insert("orders", {"orderkey": 1, "custkey": 1,
                              "orderdate": "2007-01-01", "status": "O",
                              "priority": "5-LOW", "totalprice": 5})
        cdb.insert("orders", {"orderkey": 2, "custkey": 99,  # orphan
                              "orderdate": "2007-01-01", "status": "O",
                              "priority": "5-LOW", "totalprice": 5})
        cdb.insert("orderline", {"orderkey": 1, "linenumber": 1, "prodkey": 1,
                                 "quantity": 1, "extendedprice": 5,
                                 "discount": 0})
        cdb.insert("orderline", {"orderkey": 1, "linenumber": 2, "prodkey": 77,
                                 "quantity": 1, "extendedprice": 5,
                                 "discount": 0})  # bad product
        report = sp_run_movement_data_cleansing(cdb)
        assert report["orphan_orders"] == 1
        assert report["bad_orderlines"] == 1

    def test_mark_integrated(self, initialized):
        scenario, _ = initialized
        cdb = scenario.databases["sales_cleaning"]
        cdb.insert("customer", {"custkey": 1, "name": "Customer#000000001",
                                "address": "a", "phone": "p",
                                "citykey": 1, "segment": "X",
                                "integrated": False})
        marked = cdb.call_procedure("sp_markMasterDataIntegrated")
        assert marked == 1
        assert cdb.table("customer").get(1)["integrated"] is True

    def test_clear_movement_data(self, initialized):
        scenario, _ = initialized
        cdb = scenario.databases["sales_cleaning"]
        cdb.insert("orders", {"orderkey": 1, "custkey": 1,
                              "orderdate": "2007-01-01", "status": "O",
                              "priority": "5-LOW", "totalprice": 5})
        result = cdb.call_procedure("sp_clearMovementData")
        assert result == {"orders": 1, "orderlines": 0}
        assert len(cdb.table("orders")) == 0
