"""Group A processes executed end-to-end on an initialized scenario."""

import pytest

from repro.engine import ProcessEvent


class TestP01:
    def test_master_data_reaches_seoul(self, initialized, engine, factory):
        scenario, _ = initialized
        seoul = scenario.web_service_databases["seoul"]
        seoul.table("customer").truncate()
        message = factory.beijing_master_data(batch_size=4)
        record = engine.handle_event(
            ProcessEvent("P01", 0.0, message=message, stream="A")
        )
        assert record.status == "ok"
        assert len(seoul.table("customer")) == 4

    def test_translated_fields_survive(self, initialized, engine, factory):
        scenario, _ = initialized
        seoul = scenario.web_service_databases["seoul"]
        seoul.table("customer").truncate()
        message = factory.beijing_master_data(batch_size=1)
        record_el = message.xml().find("CustomerRec")
        custkey = int(record_el.attributes["custkey"])
        name = record_el.child_text("CName")
        engine.handle_event(ProcessEvent("P01", 0.0, message=message, stream="A"))
        stored = seoul.table("customer").get(custkey)
        assert stored is not None
        assert stored["name"] == name

    def test_charges_xml_work(self, initialized, engine, factory):
        record = engine.handle_event(
            ProcessEvent("P01", 0.0, message=factory.beijing_master_data())
        )
        assert record.costs.processing > 0
        assert record.costs.communication > 0


class TestP02:
    def _route(self, engine, factory, custkey):
        message = factory.mdm_customer_update()
        kunde = message.xml().find("Kunde")
        kunde.attributes["nr"] = str(custkey)
        return engine.handle_event(
            ProcessEvent("P02", 0.0, message=message, stream="A")
        )

    def test_berlin_route(self, initialized, engine, factory):
        scenario, population = initialized
        custkey = population.customer_keys["berlin"][0]
        record = self._route(engine, factory, custkey)
        assert record.status == "ok"
        db = scenario.databases["berlin_paris"]
        stored = db.table("eu_customer").get(custkey)
        assert stored["location"] == "Berlin"

    def test_paris_route(self, initialized, engine, factory):
        scenario, population = initialized
        custkey = population.customer_keys["paris"][0]
        self._route(engine, factory, custkey)
        db = scenario.databases["berlin_paris"]
        assert db.table("eu_customer").get(custkey)["location"] == "Paris"

    def test_trondheim_route(self, initialized, engine, factory):
        scenario, population = initialized
        custkey = population.customer_keys["trondheim"][0]
        self._route(engine, factory, custkey)
        db = scenario.databases["trondheim"]
        assert db.table("eu_customer").get(custkey)["location"] == "Trondheim"

    def test_upsert_semantics(self, initialized, engine, factory):
        """Replaying a master data change must not duplicate the customer."""
        scenario, population = initialized
        custkey = population.customer_keys["berlin"][0]
        before = len(scenario.databases["berlin_paris"].table("eu_customer"))
        self._route(engine, factory, custkey)
        self._route(engine, factory, custkey)
        after = len(scenario.databases["berlin_paris"].table("eu_customer"))
        assert after == before


class TestP03:
    def test_consolidation_into_us_eastcoast(self, initialized, engine):
        scenario, _ = initialized
        record = engine.handle_event(ProcessEvent("P03", 0.0, stream="A"))
        assert record.status == "ok"
        local_cdb = scenario.databases["us_eastcoast"]
        assert len(local_cdb.table("orders")) > 0
        assert len(local_cdb.table("customer")) > 0
        assert len(local_cdb.table("part")) > 0
        assert len(local_cdb.table("lineitem")) > 0

    def test_union_distinct_dedups_shared_keys(self, initialized, engine):
        """Chicago/Baltimore/Madison hold overlapping populations; the
        consolidated result must be duplicate-free."""
        scenario, _ = initialized
        engine.handle_event(ProcessEvent("P03", 0.0, stream="A"))
        local_cdb = scenario.databases["us_eastcoast"]
        keys = [r["c_custkey"] for r in local_cdb.table("customer").scan()]
        assert len(keys) == len(set(keys))
        source_total = sum(
            len(scenario.databases[s].table("customer"))
            for s in ("chicago", "baltimore", "madison")
        )
        assert len(keys) < source_total  # overlap existed and was merged

    def test_consolidates_union_of_sources(self, initialized, engine):
        scenario, _ = initialized
        engine.handle_event(ProcessEvent("P03", 0.0, stream="A"))
        local = {
            r["c_custkey"]
            for r in scenario.databases["us_eastcoast"].table("customer").scan()
        }
        expected = set()
        for source in ("chicago", "baltimore", "madison"):
            expected |= {
                r["c_custkey"]
                for r in scenario.databases[source].table("customer").scan()
            }
        assert local == expected
