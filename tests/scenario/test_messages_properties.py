"""Property-based tests on the message factories (hypothesis over seeds)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenario.messages import MessageFactory, Population
from repro.scenario.xmlschemas import (
    beijing_schema,
    cdb_order_schema,
    hongkong_schema,
    hongkong_to_cdb_stylesheet,
    mdm_schema,
    sandiego_schema,
    sandiego_to_cdb_stylesheet,
    vienna_schema,
    vienna_to_cdb_stylesheet,
)


@pytest.fixture(scope="module")
def population():
    pop = Population()
    pop.customer_keys = {
        "berlin": list(range(1, 21)),
        "paris": list(range(500_001, 500_021)),
        "trondheim": list(range(1_000_001, 1_000_021)),
        "beijing": list(range(2_000_001, 2_000_031)),
        "seoul": list(range(2_000_011, 2_000_041)),
        "hongkong": list(range(2_000_001, 2_000_021)),
        "chicago": list(range(4_000_001, 4_000_031)),
        "sandiego": list(range(4_000_001, 4_000_031)),
    }
    pop.product_keys = list(range(1, 31))
    pop.city_keys = {"europe": [1, 2, 3], "asia": [10, 11],
                     "america": [20, 21]}
    return pop


class TestSchemaConformanceAcrossSeeds:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_vienna_valid_and_translatable(self, seed, population):
        factory = MessageFactory(population, seed=seed)
        message = factory.vienna_order()
        assert vienna_schema().validate(message.xml()) == []
        translated = vienna_to_cdb_stylesheet().transform(message.xml())
        assert cdb_order_schema().validate(translated) == []

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_hongkong_valid_and_translatable(self, seed, population):
        factory = MessageFactory(population, seed=seed)
        message = factory.hongkong_order()
        assert hongkong_schema().validate(message.xml()) == []
        translated = hongkong_to_cdb_stylesheet().transform(message.xml())
        assert cdb_order_schema().validate(translated) == []

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_mdm_and_beijing_valid(self, seed, population):
        factory = MessageFactory(population, seed=seed)
        assert mdm_schema().validate(factory.mdm_customer_update().xml()) == []
        assert beijing_schema().validate(
            factory.beijing_master_data(batch_size=3).xml()
        ) == []

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_clean_sandiego_always_valid(self, seed, population):
        factory = MessageFactory(population, seed=seed, error_rate=0.0)
        message = factory.sandiego_order()
        assert sandiego_schema().validate(message.xml()) == []
        translated = sandiego_to_cdb_stylesheet().transform(message.xml())
        assert cdb_order_schema().validate(translated) == []

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_dirty_sandiego_always_invalid(self, seed, population):
        """Every corruption mode must actually violate the schema —
        otherwise P10's failed-message accounting drifts."""
        factory = MessageFactory(population, seed=seed, error_rate=1.0)
        message = factory.sandiego_order()
        assert sandiego_schema().validate(message.xml())
        assert factory.sandiego_invalid == 1

    @given(seed=st.integers(0, 10_000), rate=st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_error_accounting_consistent(self, seed, rate, population):
        factory = MessageFactory(population, seed=seed, error_rate=rate)
        invalid = 0
        for _ in range(10):
            message = factory.sandiego_order()
            if sandiego_schema().validate(message.xml()):
                invalid += 1
        assert invalid == factory.sandiego_invalid
        assert factory.sandiego_sent == 10
        assert len(factory.sandiego_valid_orderkeys) == 10 - invalid
