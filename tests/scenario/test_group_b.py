"""Group B processes: data consolidation into the CDB."""

import pytest

from repro.engine import ProcessEvent
from repro.xmlkit.xpath import xpath_text


@pytest.fixture()
def cdb(initialized):
    scenario, _ = initialized
    return scenario.databases["sales_cleaning"]


class TestP04:
    def test_order_and_enriched_customer_loaded(self, initialized, engine,
                                                factory, cdb):
        message = factory.vienna_order()
        orderkey = int(xpath_text(message.xml(), "//Auftrag"))
        custkey = int(xpath_text(message.xml(), "//Kunde"))
        record = engine.handle_event(
            ProcessEvent("P04", 0.0, message=message, stream="B")
        )
        assert record.status == "ok"
        order = cdb.table("orders").get(orderkey)
        assert order is not None
        assert order["custkey"] == custkey
        assert cdb.table("customer").get(custkey) is not None
        assert len(cdb.table("orderline")) > 0

    def test_total_price_computed_from_lines(self, initialized, engine,
                                             factory, cdb):
        message = factory.vienna_order()
        orderkey = int(xpath_text(message.xml(), "//Auftrag"))
        engine.handle_event(ProcessEvent("P04", 0.0, message=message, stream="B"))
        order = cdb.table("orders").get(orderkey)
        line_sum = sum(
            l["extendedprice"]
            for l in cdb.table("orderline").scan()
            if l["orderkey"] == orderkey
        )
        assert order["totalprice"] == line_sum

    def test_enrichment_marks_customer_unintegrated(self, initialized, engine,
                                                    factory, cdb):
        message = factory.vienna_order()
        custkey = int(xpath_text(message.xml(), "//Kunde"))
        engine.handle_event(ProcessEvent("P04", 0.0, message=message, stream="B"))
        assert cdb.table("customer").get(custkey)["integrated"] is False


class TestEuropeanExtractions:
    def test_p05_loads_berlin_only(self, initialized, engine, factory, cdb):
        scenario, population = initialized
        record = engine.handle_event(ProcessEvent("P05", 0.0, stream="B"))
        assert record.status == "ok"
        berlin = set(population.customer_keys["berlin"])
        loaded = {r["custkey"] for r in cdb.table("customer").scan()}
        assert berlin <= loaded
        paris = set(population.customer_keys["paris"])
        assert not (paris & loaded)

    def test_p06_adds_paris(self, initialized, engine, factory, cdb):
        _, population = initialized
        engine.handle_event(ProcessEvent("P05", 0.0, stream="B"))
        engine.handle_event(ProcessEvent("P06", 1000.0, stream="B"))
        loaded = {r["custkey"] for r in cdb.table("customer").scan()}
        assert set(population.customer_keys["paris"]) <= loaded

    def test_p07_trondheim(self, initialized, engine, factory, cdb):
        _, population = initialized
        engine.handle_event(ProcessEvent("P07", 0.0, stream="B"))
        loaded = {r["custkey"] for r in cdb.table("customer").scan()}
        assert set(population.customer_keys["trondheim"]) <= loaded

    def test_schema_mapping_renames_attributes(self, initialized, engine, cdb):
        engine.handle_event(ProcessEvent("P05", 0.0, stream="B"))
        columns = cdb.table("orders").schema.column_names
        assert "orderkey" in columns  # canonical, not ord_id
        assert len(cdb.table("orders")) > 0

    def test_movement_data_carried_along(self, initialized, engine, cdb):
        engine.handle_event(ProcessEvent("P05", 0.0, stream="B"))
        assert len(cdb.table("orders")) > 0
        assert len(cdb.table("orderline")) > 0
        assert len(cdb.table("product")) > 0


class TestP08:
    def test_hongkong_order_loaded(self, initialized, engine, factory, cdb):
        message = factory.hongkong_order()
        orderkey = int(xpath_text(message.xml(), "/HKOrder/Id"))
        record = engine.handle_event(
            ProcessEvent("P08", 0.0, message=message, stream="B")
        )
        assert record.status == "ok"
        assert cdb.table("orders").get(orderkey) is not None

    def test_semantic_value_mapping(self, initialized, engine, factory, cdb):
        message = factory.hongkong_order()
        orderkey = int(xpath_text(message.xml(), "/HKOrder/Id"))
        hk_status = xpath_text(message.xml(), "/HKOrder/Stat")
        engine.handle_event(ProcessEvent("P08", 0.0, message=message, stream="B"))
        stored = cdb.table("orders").get(orderkey)
        assert stored["status"] == {"OPEN": "O", "FILLED": "F", "PENDING": "P"}[hk_status]


class TestP09:
    def test_asian_tables_merged_into_cdb(self, initialized, engine, cdb):
        scenario, population = initialized
        record = engine.handle_event(ProcessEvent("P09", 0.0, stream="B"))
        assert record.status == "ok"
        loaded = {r["custkey"] for r in cdb.table("customer").scan()}
        expected = set(population.customer_keys["beijing"]) | set(
            population.customer_keys["seoul"]
        )
        assert expected <= loaded

    def test_union_distinct_no_duplicates(self, initialized, engine, cdb):
        engine.handle_event(ProcessEvent("P09", 0.0, stream="B"))
        keys = [r["orderkey"] for r in cdb.table("orders").scan()]
        assert len(keys) == len(set(keys))

    def test_xml_work_dominates(self, initialized, engine):
        """P09 moves large XML result sets: the costliest group-B extract."""
        p09 = engine.handle_event(ProcessEvent("P09", 0.0, stream="B"))
        engine.reset_workers()
        p11 = engine.handle_event(ProcessEvent("P11", 10_000.0, stream="B"))
        assert p09.costs.processing > p11.costs.processing


class TestP10:
    def test_valid_message_loaded(self, initialized, engine, cdb):
        _, population = initialized
        from repro.scenario.messages import MessageFactory

        clean_factory = MessageFactory(population, seed=1, error_rate=0.0)
        message = clean_factory.sandiego_order()
        orderkey = int(message.xml().attributes["key"])
        record = engine.handle_event(
            ProcessEvent("P10", 0.0, message=message, stream="B")
        )
        assert record.status == "ok"
        assert cdb.table("orders").get(orderkey) is not None
        assert len(cdb.table("failed_messages")) == 0

    def test_invalid_message_routed_to_failed_data(self, initialized, engine,
                                                   cdb):
        _, population = initialized
        from repro.scenario.messages import MessageFactory

        dirty_factory = MessageFactory(population, seed=1, error_rate=1.0)
        message = dirty_factory.sandiego_order()
        record = engine.handle_event(
            ProcessEvent("P10", 0.0, message=message, stream="B")
        )
        assert record.status == "ok"  # the *instance* succeeds
        assert record.validation_failures == 1
        assert len(cdb.table("failed_messages")) == 1
        assert len(cdb.table("orders")) == 0  # nothing loaded
        failed = cdb.table("failed_messages").scan()[0]
        assert failed["source"] == "san_diego"
        assert failed["reason"]
        assert "<SDOrder" in failed["msg"]

    def test_mixed_stream(self, initialized, engine, cdb, factory):
        outcomes = []
        for _ in range(20):
            message = factory.sandiego_order()
            engine.handle_event(ProcessEvent("P10", 0.0, message=message,
                                             stream="B"))
        assert len(cdb.table("failed_messages")) == factory.sandiego_invalid
        loaded = len(cdb.table("orders"))
        assert loaded == factory.sandiego_sent - factory.sandiego_invalid


class TestP11:
    def test_two_phase_consolidation(self, initialized, engine, cdb):
        scenario, _ = initialized
        engine.handle_event(ProcessEvent("P03", 0.0, stream="A"))
        record = engine.handle_event(ProcessEvent("P11", 1000.0, stream="B"))
        assert record.status == "ok"
        local = scenario.databases["us_eastcoast"]
        assert len(cdb.table("orders")) == len(local.table("orders"))
        cdb_customers = {r["custkey"] for r in cdb.table("customer").scan()}
        local_customers = {
            r["c_custkey"] for r in local.table("customer").scan()
        }
        assert local_customers <= cdb_customers

    def test_schema_mapping_to_canonical(self, initialized, engine, cdb):
        engine.handle_event(ProcessEvent("P03", 0.0, stream="A"))
        engine.handle_event(ProcessEvent("P11", 1000.0, stream="B"))
        products = cdb.table("product").scan()
        assert products  # p_partkey -> prodkey etc.
        assert all("prodkey" in p for p in products)
