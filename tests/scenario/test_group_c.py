"""Group C: the data-intensive warehouse loads (P12, P13)."""

import re

import pytest

from repro.engine import ProcessEvent

_NAME_RE = re.compile(r"^Customer#\d+$")


@pytest.fixture()
def staged(initialized, engine):
    """Scenario with the CDB staged: Europe + Asia + America consolidated."""
    scenario, population = initialized
    engine.handle_event(ProcessEvent("P03", 0.0, stream="A"))
    for pid, at in (("P05", 100.0), ("P06", 200.0), ("P07", 300.0),
                    ("P09", 400.0), ("P11", 500.0)):
        record = engine.handle_event(ProcessEvent(pid, at, stream="B"))
        assert record.status == "ok"
    return scenario, population


class TestP12:
    def test_cleansing_removes_dirt(self, staged, engine):
        scenario, _ = staged
        cdb = scenario.databases["sales_cleaning"]
        dirty_before = [
            c for c in cdb.table("customer").scan()
            if not _NAME_RE.match(c["name"] or "")
        ]
        assert dirty_before  # the Initializer really planted dirt
        record = engine.handle_event(ProcessEvent("P12", 1000.0, stream="C"))
        assert record.status == "ok"
        dirty_after = [
            c for c in cdb.table("customer").scan()
            if not _NAME_RE.match(c["name"] or "")
        ]
        assert not dirty_after

    def test_duplicates_eliminated(self, staged, engine):
        scenario, _ = staged
        cdb = scenario.databases["sales_cleaning"]
        engine.handle_event(ProcessEvent("P12", 1000.0, stream="C"))
        pairs = [(c["address"], c["phone"]) for c in cdb.table("customer").scan()]
        assert len(pairs) == len(set(pairs))

    def test_clean_master_data_loaded_into_dwh(self, staged, engine):
        scenario, _ = staged
        dwh = scenario.databases["dwh"]
        engine.handle_event(ProcessEvent("P12", 1000.0, stream="C"))
        assert len(dwh.table("customer")) > 0
        assert len(dwh.table("product")) > 0
        assert len(dwh.table("region")) == 3
        assert len(dwh.table("nation")) > 0
        assert dwh.check_integrity() == []

    def test_flagged_not_removed(self, staged, engine):
        """Master data is flagged as integrated but stays in the CDB."""
        scenario, _ = staged
        cdb = scenario.databases["sales_cleaning"]
        before = len(cdb.table("customer"))
        engine.handle_event(ProcessEvent("P12", 1000.0, stream="C"))
        customers = cdb.table("customer").scan()
        assert customers  # not physically removed (minus cleansing losses)
        assert all(c["integrated"] for c in customers)

    def test_second_run_loads_only_delta(self, staged, engine):
        scenario, _ = staged
        dwh = scenario.databases["dwh"]
        engine.handle_event(ProcessEvent("P12", 1000.0, stream="C"))
        count_first = len(dwh.table("customer"))
        engine.reset_workers()
        record = engine.handle_event(ProcessEvent("P12", 50_000.0, stream="C"))
        assert record.status == "ok"
        assert len(dwh.table("customer")) == count_first


class TestP13:
    def _run_c(self, engine):
        engine.handle_event(ProcessEvent("P12", 1000.0, stream="C"))
        return engine.handle_event(ProcessEvent("P13", 1010.0, stream="C"))

    def test_movement_data_moves_to_dwh(self, staged, engine):
        scenario, _ = staged
        cdb = scenario.databases["sales_cleaning"]
        dwh = scenario.databases["dwh"]
        staged_orders = len(cdb.table("orders"))
        assert staged_orders > 0
        record = self._run_c(engine)
        assert record.status == "ok"
        assert len(dwh.table("orders")) > 0
        # Delta determination: the CDB movement tables are cleared.
        assert len(cdb.table("orders")) == 0
        assert len(cdb.table("orderline")) == 0

    def test_orphans_cleansed_not_loaded(self, staged, engine):
        scenario, _ = staged
        cdb = scenario.databases["sales_cleaning"]
        # Plant an orphan order referencing a non-existent customer.
        cdb.table("orders").insert(
            {"orderkey": 999_999_999, "custkey": 888_888_888,
             "orderdate": "2007-01-01", "status": "O",
             "priority": "5-LOW", "totalprice": 1}
        )
        self._run_c(engine)
        dwh = scenario.databases["dwh"]
        assert dwh.table("orders").get(999_999_999) is None
        assert dwh.check_integrity() == []

    def test_orders_mv_refreshed(self, staged, engine):
        scenario, _ = staged
        dwh = scenario.databases["dwh"]
        view = dwh.materialized_view("OrdersMV")
        assert not view.is_populated
        self._run_c(engine)
        assert view.is_populated
        assert view.refresh_count == 1
        assert len(view.snapshot) > 0

    def test_mv_aggregates_revenue_per_nation_year(self, staged, engine):
        scenario, _ = staged
        self._run_c(engine)
        snapshot = scenario.databases["dwh"].materialized_view("OrdersMV").snapshot
        assert set(snapshot.columns) == {
            "nation_name", "orderyear", "order_count", "revenue",
        }
        total = sum(row["order_count"] for row in snapshot)
        assert total == len(scenario.databases["dwh"].table("orders"))

    def test_data_intensity_exceeds_message_processes(self, staged, engine,
                                                      factory):
        """'At this point, the differences in data set sizes should be
        noticed': P13 must cost far more than a single P04 message."""
        record_p13 = self._run_c(engine)
        engine.reset_workers()
        record_p04 = engine.handle_event(
            ProcessEvent("P04", 100_000.0, message=factory.vienna_order(),
                         stream="B")
        )
        assert record_p13.costs.total > 5 * record_p04.costs.total
