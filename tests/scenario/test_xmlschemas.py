"""Message schemas and STX translations of the scenario."""

import pytest

from repro.scenario import xmlschemas as xs
from repro.xmlkit.doc import parse_xml


VIENNA = """<ViennaOrder>
  <Kopf><Auftrag>7</Auftrag><Kunde>11</Kunde><Datum>2007-05-05</Datum>
    <Status>OFFEN</Status><Prioritaet>EILIG</Prioritaet></Kopf>
  <Positionen>
    <Position nr="1"><Artikel>3</Artikel><Menge>5</Menge><Preis>10.00</Preis></Position>
    <Position nr="2"><Artikel>4</Artikel><Menge>1</Menge><Preis>2.50</Preis>
      <Rabatt>0.05</Rabatt></Position>
  </Positionen>
</ViennaOrder>"""

SANDIEGO = """<SDOrder key="88" customer="4600001">
  <Placed>2007-02-02</Placed><State>O</State><Total>5.00</Total>
  <Lines><Line no="1" part="4"><Qty>1</Qty><Amount>5.00</Amount></Line></Lines>
</SDOrder>"""

HONGKONG = """<HKOrder><Id>500001</Id><Cust>2400002</Cust>
  <Date>2007-03-09</Date><Stat>OPEN</Stat><Prio>H</Prio><Sum>99.50</Sum>
  <Items><Item><No>1</No><Prod>17</Prod><Qty>2</Qty><Value>99.50</Value></Item></Items>
</HKOrder>"""

MDM = """<MDMCustomerMessage><Kunde nr="42"><Name>Customer#000000042</Name>
  <Anschrift><Strasse>12 Foo St</Strasse><Stadtschluessel>3</Stadtschluessel></Anschrift>
  <Telefon>+49-1</Telefon><Segment>BUILDING</Segment></Kunde></MDMCustomerMessage>"""

BEIJING = """<BeijingMasterData>
  <CustomerRec custkey="2000001" citykey="10"><CName>Customer#002000001</CName>
    <CAddr>8 Bar Ave</CAddr><CPhone>+86-1</CPhone><CSeg>MACHINERY</CSeg></CustomerRec>
  <CustomerRec custkey="2000002"><CName>Customer#002000002</CName>
    <CAddr>9 Baz Ave</CAddr></CustomerRec>
</BeijingMasterData>"""


class TestSchemasAcceptTheirMessages:
    @pytest.mark.parametrize(
        "schema_fn,text",
        [
            (xs.vienna_schema, VIENNA),
            (xs.sandiego_schema, SANDIEGO),
            (xs.hongkong_schema, HONGKONG),
            (xs.mdm_schema, MDM),
            (xs.beijing_schema, BEIJING),
        ],
    )
    def test_valid(self, schema_fn, text):
        assert schema_fn().validate(parse_xml(text)) == []

    def test_sandiego_rejects_missing_customer(self):
        broken = parse_xml(SANDIEGO.replace(' customer="4600001"', ""))
        assert xs.sandiego_schema().validate(broken)

    def test_sandiego_rejects_bad_decimal(self):
        broken = parse_xml(SANDIEGO.replace("5.00</Total>", "5,00</Total>"))
        assert xs.sandiego_schema().validate(broken)


class TestViennaTranslation:
    def test_structure_and_semantics(self):
        out = xs.vienna_to_cdb_stylesheet().transform(parse_xml(VIENNA))
        assert out.tag == "CdbOrder"
        assert out.find("Kopf") is None  # the head block is unwrapped
        assert out.child_text("Orderkey") == "7"
        assert out.child_text("Orderdate") == "2007-05-05"
        assert out.child_text("Status") == "O"  # OFFEN -> O
        assert out.child_text("Priority") == "1-URGENT"  # EILIG
        lines = out.find("Lines").find_all("Line")
        assert len(lines) == 2
        assert lines[0].child_text("Linenumber") == "1"
        assert lines[0].child_text("Prodkey") == "3"
        assert lines[1].child_text("Discount") == "0.05"

    def test_conforms_to_cdb_schema(self):
        out = xs.vienna_to_cdb_stylesheet().transform(parse_xml(VIENNA))
        assert xs.cdb_order_schema().validate(out) == []


class TestHongkongTranslation:
    def test_value_maps(self):
        out = xs.hongkong_to_cdb_stylesheet().transform(parse_xml(HONGKONG))
        assert out.child_text("Status") == "O"
        assert out.child_text("Priority") == "2-HIGH"
        assert out.child_text("Orderkey") == "500001"

    def test_conforms_to_cdb_schema(self):
        out = xs.hongkong_to_cdb_stylesheet().transform(parse_xml(HONGKONG))
        assert xs.cdb_order_schema().validate(out) == []


class TestSanDiegoTranslation:
    def test_attribute_promotion(self):
        out = xs.sandiego_to_cdb_stylesheet().transform(parse_xml(SANDIEGO))
        assert out.child_text("Orderkey") == "88"
        assert out.child_text("Custkey") == "4600001"
        line = out.find("Lines").find("Line")
        assert line.child_text("Linenumber") == "1"
        assert line.child_text("Prodkey") == "4"

    def test_conforms_to_cdb_schema(self):
        out = xs.sandiego_to_cdb_stylesheet().transform(parse_xml(SANDIEGO))
        assert xs.cdb_order_schema().validate(out) == []


class TestMdmTranslation:
    def test_flattening(self):
        out = xs.mdm_to_europe_stylesheet().transform(parse_xml(MDM))
        assert out.tag == "EuropeCustomer"
        assert out.child_text("Custkey") == "42"
        assert out.child_text("Address") == "12 Foo St"
        assert out.child_text("Citykey") == "3"
        assert out.child_text("Phone") == "+49-1"
        assert out.find("Anschrift") is None

    def test_conforms_to_europe_schema(self):
        out = xs.mdm_to_europe_stylesheet().transform(parse_xml(MDM))
        assert xs.europe_customer_schema().validate(out) == []


class TestBeijingSeoulTranslation:
    def test_translation_produces_valid_seoul(self):
        out = xs.beijing_to_seoul_stylesheet().transform(parse_xml(BEIJING))
        assert out.tag == "SeoulMasterData"
        assert xs.seoul_schema().validate(out) == []

    def test_attribute_promotion_and_optional_fields(self):
        out = xs.beijing_to_seoul_stylesheet().transform(parse_xml(BEIJING))
        first, second = out.find_all("Customer")
        assert first.child_text("Custkey") == "2000001"
        assert first.child_text("Citykey") == "10"
        assert second.child_text("Custkey") == "2000002"
        assert second.find("Citykey") is None
        assert second.find("Phone") is None

    def test_field_renames(self):
        out = xs.beijing_to_seoul_stylesheet().transform(parse_xml(BEIJING))
        first = out.find("Customer")
        assert first.child_text("Name") == "Customer#002000001"
        assert first.child_text("Address") == "8 Bar Ave"
        assert first.child_text("Segment") == "MACHINERY"


class TestResultSetDialects:
    def test_beijing_dialect_translation(self):
        doc = parse_xml(
            "<BJData table='customer'><Tuple><custkey>1</custkey></Tuple></BJData>"
        )
        out = xs.beijing_resultset_stylesheet().transform(doc)
        assert out.tag == "ResultSet"
        assert out.children[0].tag == "Row"
        assert out.attributes["table"] == "customer"

    def test_seoul_dialect_translation(self):
        doc = parse_xml(
            "<SeoulRS table='orders'><Record><orderkey>5</orderkey></Record></SeoulRS>"
        )
        out = xs.seoul_resultset_stylesheet().transform(doc)
        assert out.tag == "ResultSet"
        assert out.children[0].tag == "Row"
