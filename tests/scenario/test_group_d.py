"""Group D: the parallel data-mart refresh (P14 + subprocesses, P15)."""

import pytest

from repro.engine import ProcessEvent

MARTS = ("dm_europe", "dm_united_states", "dm_asia")


@pytest.fixture()
def warehoused(initialized, engine):
    """Scenario with the DWH loaded (streams A, B, C executed)."""
    scenario, population = initialized
    engine.handle_event(ProcessEvent("P03", 0.0, stream="A"))
    for pid, at in (("P05", 100.0), ("P06", 200.0), ("P07", 300.0),
                    ("P09", 400.0), ("P11", 500.0)):
        engine.handle_event(ProcessEvent(pid, at, stream="B"))
    engine.handle_event(ProcessEvent("P12", 1000.0, stream="C"))
    engine.handle_event(ProcessEvent("P13", 1010.0, stream="C"))
    return scenario, population


class TestP14:
    def test_marts_loaded(self, warehoused, engine):
        scenario, _ = warehoused
        record = engine.handle_event(ProcessEvent("P14", 2000.0, stream="D"))
        assert record.status == "ok"
        for mart in MARTS:
            db = scenario.databases[mart]
            assert len(db.table("customer")) > 0, mart
            assert len(db.table("orders")) > 0, mart

    def test_marts_partition_the_warehouse(self, warehoused, engine):
        scenario, _ = warehoused
        engine.handle_event(ProcessEvent("P14", 2000.0, stream="D"))
        dwh_orders = len(scenario.databases["dwh"].table("orders"))
        mart_orders = sum(
            len(scenario.databases[m].table("orders")) for m in MARTS
        )
        assert mart_orders == dwh_orders
        # Customers partition too (every customer has exactly one region).
        dwh_customers = len(scenario.databases["dwh"].table("customer"))
        mart_customers = sum(
            len(scenario.databases[m].table("customer")) for m in MARTS
        )
        assert mart_customers == dwh_customers

    def test_denormalization_variants(self, warehoused, engine):
        scenario, _ = warehoused
        engine.handle_event(ProcessEvent("P14", 2000.0, stream="D"))
        europe = scenario.databases["dm_europe"]
        assert len(europe.table("dim_product")) > 0
        assert len(europe.table("dim_location")) > 0
        us = scenario.databases["dm_united_states"]
        assert len(us.table("dim_location")) > 0
        assert len(us.table("product")) > 0  # normalized product dim
        asia = scenario.databases["dm_asia"]
        assert len(asia.table("dim_product")) > 0
        assert len(asia.table("city")) > 0  # normalized location dim

    def test_location_dims_partitioned_by_region(self, warehoused, engine):
        scenario, _ = warehoused
        engine.handle_event(ProcessEvent("P14", 2000.0, stream="D"))
        europe_locations = scenario.databases["dm_europe"].table("dim_location")
        assert all(
            r["region_name"] == "Europe" for r in europe_locations.scan()
        )
        us_locations = scenario.databases["dm_united_states"].table("dim_location")
        assert all(
            r["region_name"] == "America" for r in us_locations.scan()
        )

    def test_denormalized_product_carries_group_and_line(self, warehoused,
                                                         engine):
        scenario, _ = warehoused
        engine.handle_event(ProcessEvent("P14", 2000.0, stream="D"))
        products = scenario.databases["dm_europe"].table("dim_product").scan()
        assert all(p["group_name"] and p["line_name"] for p in products)

    def test_mart_referential_integrity(self, warehoused, engine):
        scenario, _ = warehoused
        engine.handle_event(ProcessEvent("P14", 2000.0, stream="D"))
        for mart in MARTS:
            assert scenario.databases[mart].check_integrity() == [], mart

    def test_subprocess_costs_folded_into_p14(self, warehoused, engine):
        record = engine.handle_event(ProcessEvent("P14", 2000.0, stream="D"))
        assert record.operators_executed > 50  # main + 4 subprocesses
        assert len(engine.records_for("P14")) == 1
        assert not engine.records_for("P14_S1")  # children have no records


class TestP15:
    def test_views_refreshed_in_parallel(self, warehoused, engine):
        scenario, _ = warehoused
        engine.handle_event(ProcessEvent("P14", 2000.0, stream="D"))
        record = engine.handle_event(ProcessEvent("P15", 3000.0, stream="D"))
        assert record.status == "ok"
        for mart in MARTS:
            view = scenario.databases[mart].materialized_view("OrdersMV")
            assert view.is_populated, mart
            assert len(view.snapshot) > 0

    def test_mart_view_aggregates_by_segment(self, warehoused, engine):
        scenario, _ = warehoused
        engine.handle_event(ProcessEvent("P14", 2000.0, stream="D"))
        engine.handle_event(ProcessEvent("P15", 3000.0, stream="D"))
        snapshot = (
            scenario.databases["dm_europe"].materialized_view("OrdersMV").snapshot
        )
        assert set(snapshot.columns) == {"segment", "order_count", "revenue"}
        total = sum(r["order_count"] for r in snapshot)
        assert total == len(scenario.databases["dm_europe"].table("orders"))

    def test_parallel_cheaper_than_serial_refresh(self, warehoused):
        """The fork makes P15 cost roughly one refresh, not three."""
        scenario, _ = warehoused
        from repro.engine import MtmInterpreterEngine
        from repro.scenario import build_processes

        parallel = MtmInterpreterEngine(scenario.registry,
                                        parallel_efficiency=1.0)
        serial = MtmInterpreterEngine(scenario.registry,
                                      parallel_efficiency=0.0)
        for engine in (parallel, serial):
            engine.deploy_all(build_processes().values())
        parallel.handle_event(ProcessEvent("P14", 0.0, stream="D"))
        cost_parallel = parallel.handle_event(
            ProcessEvent("P15", 10_000.0, stream="D")
        ).costs
        cost_serial = serial.handle_event(
            ProcessEvent("P15", 20_000.0, stream="D")
        ).costs
        assert cost_parallel.communication < cost_serial.communication
