"""Tracer: span hierarchy, time offsets, null tracer, span exporters."""

import json

import pytest

from repro.observability import (
    NullTracer,
    Observability,
    Tracer,
    export_chrome_trace,
    export_spans_jsonl,
)


class TestSpans:
    def test_begin_end_records_interval(self):
        tracer = Tracer()
        span = tracer.begin("work", start=1.0, kind="instance")
        span.end(4.0)
        assert span.finished
        assert span.duration == pytest.approx(3.0)
        assert span.status == "ok"

    def test_stack_parenting(self):
        tracer = Tracer()
        outer = tracer.begin("outer", start=0.0)
        inner = tracer.begin("inner", start=1.0)
        assert inner.parent_id == outer.span_id
        inner.end(2.0)
        assert tracer.current is outer
        outer.end(3.0)
        assert tracer.current is None

    def test_record_does_not_activate(self):
        tracer = Tracer()
        outer = tracer.begin("outer", start=0.0)
        child = tracer.record("child", 0.5, 1.0)
        assert child.parent_id == outer.span_id
        assert tracer.current is outer

    def test_use_parent_reparents(self):
        tracer = Tracer()
        a = tracer.begin("a", start=0.0, activate=False)
        with tracer.use_parent(a):
            child = tracer.record("c", 0.0, 1.0)
        assert child.parent_id == a.span_id
        assert tracer.current is None

    def test_time_offset_shifts_both_ends(self):
        tracer = Tracer()
        tracer.time_offset = 100.0
        span = tracer.record("x", 1.0, 2.0)
        assert span.start_time == pytest.approx(101.0)
        assert span.end_time == pytest.approx(102.0)

    def test_error_status(self):
        tracer = Tracer()
        span = tracer.begin("x", start=0.0)
        span.end(1.0, status="error", error="boom")
        assert span.status == "error"
        assert span.error == "boom"

    def test_negative_duration_clamped(self):
        tracer = Tracer()
        span = tracer.record("x", 5.0, 4.0)
        assert span.duration == 0.0

    def test_finished_spans_sorted_by_start(self):
        tracer = Tracer()
        tracer.record("late", 5.0, 6.0)
        tracer.record("early", 1.0, 2.0)
        assert [s.name for s in tracer.finished_spans()] == ["early", "late"]


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        span = tracer.begin("x", start=0.0)
        span.end(1.0)
        tracer.record("y", 0.0, 1.0)
        with tracer.use_parent(span):
            pass
        assert list(tracer.spans) == []
        assert not tracer.enabled
        assert tracer.current is None

    def test_disabled_bundle_uses_nulls(self):
        obs = Observability.disabled()
        assert not obs.enabled
        assert obs.spans_jsonl() == ""
        assert json.loads(obs.chrome_trace())["traceEvents"] == []


class TestJsonlExport:
    def test_one_object_per_line(self):
        tracer = Tracer()
        tracer.record("a", 0.0, 1.0, kind="instance")
        tracer.record("b", 1.0, 2.0, kind="operator")
        lines = export_spans_jsonl(tracer).strip().split("\n")
        rows = [json.loads(line) for line in lines]
        assert [r["name"] for r in rows] == ["a", "b"]
        assert rows[0]["kind"] == "instance"

    def test_unfinished_spans_excluded(self):
        tracer = Tracer()
        tracer.begin("open", start=0.0)
        assert export_spans_jsonl(tracer) == ""


class TestChromeExport:
    def test_valid_json_with_monotone_ts(self):
        tracer = Tracer()
        run = tracer.begin("run", start=0.0, kind="run")
        tracer.record("i1", 0.0, 2.0, kind="instance",
                      attributes={"stream": "A"})
        tracer.record("i2", 1.0, 3.0, kind="instance",
                      attributes={"stream": "B"})
        run.end(3.0)
        doc = json.loads(export_chrome_trace(tracer))
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 3
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)
        assert all(e["dur"] >= 0 for e in events)

    def test_stream_lanes_are_stable_tids(self):
        tracer = Tracer()
        tracer.record("i1", 0.0, 1.0, kind="instance",
                      attributes={"stream": "A"})
        tracer.record("i2", 0.0, 1.0, kind="instance",
                      attributes={"stream": "D"})
        doc = json.loads(export_chrome_trace(tracer))
        events = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert events["i1"]["tid"] != events["i2"]["tid"]

    def test_children_inherit_stream_lane(self):
        tracer = Tracer()
        parent = tracer.record("inst", 0.0, 2.0, kind="instance",
                               attributes={"stream": "B"})
        tracer.record("op", 0.0, 1.0, kind="operator", parent=parent)
        doc = json.loads(export_chrome_trace(tracer))
        events = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert events["op"]["tid"] == events["inst"]["tid"]

    def test_status_and_error_exported_in_args(self):
        tracer = Tracer()
        tracer.record("bad", 0.0, 1.0, status="error", error="boom")
        doc = json.loads(export_chrome_trace(tracer))
        event = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert event["args"]["status"] == "error"
        assert event["args"]["error"] == "boom"
