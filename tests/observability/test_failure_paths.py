"""Failure paths feeding the spans: partitions, healing, seeded jitter."""

import pytest

from repro.engine import MtmInterpreterEngine
from repro.observability import Observability
from repro.scenario import build_scenario
from repro.toolsuite import BenchmarkClient, ScaleFactors


def _traced_client(scenario, observability, seed=5):
    engine = MtmInterpreterEngine(scenario.registry)
    return BenchmarkClient(
        scenario, engine, ScaleFactors(datasize=0.02), periods=1, seed=seed,
        observability=observability,
    )


class TestPartitionedNetwork:
    def test_error_record_and_error_status_span(self):
        observability = Observability()
        scenario = build_scenario(seed=5)
        client = _traced_client(scenario, observability)
        scenario.network.partition("IS", "ES")
        records = client.run_period(0)

        error_records = [r for r in records if r.status != "ok"]
        assert error_records  # everything touching ES failed
        error_spans = [
            s for s in observability.tracer.spans_of_kind("instance")
            if s.status == "error"
        ]
        assert len(error_spans) == len(error_records)
        assert all("partition" in s.error or "Network" in s.error
                   for s in error_spans)
        # Failed instances executed no operators, so no children beyond
        # queue-wait/management are laid out under their spans.
        error_ids = {s.span_id for s in error_spans}
        child_kinds = {
            s.kind for s in observability.tracer.spans
            if s.parent_id in error_ids
        }
        assert "operator" not in child_kinds

    def test_partition_errors_counted(self):
        observability = Observability()
        scenario = build_scenario(seed=5)
        client = _traced_client(scenario, observability)
        scenario.network.partition("IS", "ES")
        client.run_period(0)
        snapshot = observability.metrics.snapshot()
        assert snapshot["network_partition_errors_total"] > 0

    def test_heal_restores_clean_runs_and_spans(self):
        observability = Observability()
        scenario = build_scenario(seed=5)
        client = _traced_client(scenario, observability)
        scenario.network.partition("IS", "ES")
        client.run_period(0)
        scenario.network.heal("IS", "ES")
        client.engine.clear_records()
        client.monitor.clear()
        observability.tracer.clear()
        client._trace_offset = 0.0
        records = client.run_period(0)
        assert all(r.status == "ok" for r in records)
        spans = observability.tracer.spans_of_kind("instance")
        assert spans
        assert all(s.status == "ok" for s in spans)


class TestJitterReproducibility:
    def _trace_fingerprint(self, seed):
        observability = Observability()
        scenario = build_scenario(jitter=0.3, seed=seed)
        client = _traced_client(scenario, observability, seed=seed)
        client.run_period(0)
        return [
            (s.name, s.kind, round(s.start_time, 9), round(s.end_time, 9))
            for s in observability.tracer.finished_spans()
        ], observability.prometheus()

    def test_fixed_seed_reproducible_across_runs(self):
        spans_a, metrics_a = self._trace_fingerprint(seed=9)
        spans_b, metrics_b = self._trace_fingerprint(seed=9)
        assert spans_a == spans_b
        assert metrics_a == metrics_b

    def test_different_seed_differs(self):
        spans_a, _ = self._trace_fingerprint(seed=9)
        spans_b, _ = self._trace_fingerprint(seed=10)
        assert spans_a != spans_b
