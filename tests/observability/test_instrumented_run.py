"""Instrumented benchmark runs: span coverage, consistency, zero overhead."""

import json

import pytest

from repro.engine import FederatedEngine, MtmInterpreterEngine
from repro.observability import Observability
from repro.scenario import build_scenario
from repro.toolsuite import BenchmarkClient, ScaleFactors


@pytest.fixture(scope="module")
def traced_run():
    """One traced two-period interpreter run shared by read-only tests."""
    observability = Observability()
    scenario = build_scenario(seed=42)
    engine = MtmInterpreterEngine(scenario.registry)
    client = BenchmarkClient(
        scenario, engine, ScaleFactors(datasize=0.02), periods=2, seed=42,
        observability=observability,
    )
    result = client.run()
    return observability, client, result


class TestSpanCoverage:
    def test_every_instance_has_a_span(self, traced_run):
        observability, _, result = traced_run
        instance_spans = observability.tracer.spans_of_kind("instance")
        # Acceptance: >= 95% coverage; we get one span per instance.
        assert len(instance_spans) == result.total_instances

    def test_span_tree_run_period_stream_instance(self, traced_run):
        observability, _, result = traced_run
        tracer = observability.tracer
        by_id = {s.span_id: s for s in tracer.spans}
        runs = tracer.spans_of_kind("run")
        assert len(runs) == 1
        periods = tracer.spans_of_kind("period")
        assert len(periods) == result.periods
        assert all(p.parent_id == runs[0].span_id for p in periods)
        streams = tracer.spans_of_kind("stream")
        assert len(streams) == 4 * result.periods
        assert all(by_id[s.parent_id].kind == "period" for s in streams)
        for span in tracer.spans_of_kind("instance"):
            parent = by_id[span.parent_id]
            assert parent.kind == "stream"
            assert parent.name == span.attributes["stream"]

    def test_interpreter_instances_have_operator_and_network_children(
        self, traced_run
    ):
        observability, _, _ = traced_run
        tracer = observability.tracer
        instance_ids = {
            s.span_id for s in tracer.spans_of_kind("instance")
        }
        op_parents = {
            s.parent_id for s in tracer.spans_of_kind("operator")
        }
        # Every operator span hangs off an instance span, and nearly
        # every instance has operator children.
        assert op_parents <= instance_ids
        assert len(op_parents) >= 0.95 * len(instance_ids)
        assert tracer.spans_of_kind("network")

    def test_all_spans_finished(self, traced_run):
        observability, _, _ = traced_run
        assert all(s.finished for s in observability.tracer.spans)

    def test_children_contained_in_parents(self, traced_run):
        observability, _, _ = traced_run
        spans = observability.tracer.spans
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]
            assert span.start_time >= parent.start_time - 1e-9
            assert span.end_time <= parent.end_time + 1e-9


class TestChromeTraceOutput:
    def test_validates_as_json_with_consistent_ts_dur(self, traced_run):
        observability, _, _ = traced_run
        doc = json.loads(observability.chrome_trace())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert events
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)
        assert all(e["dur"] >= 0 for e in events)
        assert all(e["ts"] >= 0 for e in events)

    def test_periods_do_not_overlap_on_the_timeline(self, traced_run):
        observability, _, _ = traced_run
        periods = sorted(
            observability.tracer.spans_of_kind("period"),
            key=lambda s: s.start_time,
        )
        for earlier, later in zip(periods, periods[1:]):
            assert later.start_time >= earlier.end_time - 1e-9


class TestMetricsSideOfTheRun:
    def test_registry_saw_instances_and_transfers(self, traced_run):
        observability, _, result = traced_run
        snapshot = observability.metrics.snapshot()
        instance_total = sum(
            v for k, v in snapshot.items()
            if k.startswith("engine_instances_total")
        )
        assert instance_total == result.total_instances
        assert snapshot["network_transfers_total"] > 0
        assert snapshot["client_periods_total"] == result.periods
        assert snapshot["initializer_periods_total"] == result.periods

    def test_prometheus_dump_mentions_core_series(self, traced_run):
        observability, _, _ = traced_run
        text = observability.prometheus()
        assert "engine_instances_total" in text
        assert "engine_queue_wait_bucket" in text
        assert "network_payload_units_bucket" in text
        assert "scheduler_events_dispatched_total" in text


class TestZeroOverheadDefault:
    def test_default_run_identical_to_traced_run(self):
        """NullTracer default changes no benchmark numbers."""

        def run(observability):
            scenario = build_scenario(seed=42)
            engine = MtmInterpreterEngine(scenario.registry)
            client = BenchmarkClient(
                scenario, engine, ScaleFactors(datasize=0.02),
                periods=1, seed=42, observability=observability,
            )
            client.run()
            return client.monitor.export_dat()

        assert run(None) == run(Observability())

    def test_federated_default_run_untraced(self):
        scenario = build_scenario(seed=3)
        engine = FederatedEngine(scenario.registry)
        client = BenchmarkClient(
            scenario, engine, ScaleFactors(datasize=0.02), periods=1, seed=3
        )
        client.run()
        assert not client.observability.enabled
        assert list(client.observability.tracer.spans) == []


class TestFederatedTracing:
    def test_federated_engine_also_produces_operator_spans(self):
        observability = Observability()
        scenario = build_scenario(seed=11)
        engine = FederatedEngine(scenario.registry)
        client = BenchmarkClient(
            scenario, engine, ScaleFactors(datasize=0.02), periods=1,
            seed=11, observability=observability,
        )
        result = client.run()
        tracer = observability.tracer
        assert len(tracer.spans_of_kind("instance")) == result.total_instances
        assert tracer.spans_of_kind("operator")
