"""MetricsRegistry: counters, gauges, histograms, labels, exporters."""

import pytest

from repro.observability import (
    Counter,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    ObservabilityError,
    export_prometheus,
)


class TestCounter:
    def test_inc_defaults_to_one(self):
        reg = MetricsRegistry()
        counter = reg.counter("hits")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_is_monotonic(self):
        counter = MetricsRegistry().counter("hits")
        with pytest.raises(ObservabilityError):
            counter.inc(-1.0)

    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("hits") is reg.counter("hits")

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", labels={"p": "P01"}).inc()
        reg.counter("hits", labels={"p": "P02"}).inc(5)
        assert reg.counter("hits", labels={"p": "P01"}).value == 1
        assert reg.counter("hits", labels={"p": "P02"}).value == 5

    def test_type_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ObservabilityError):
            reg.gauge("x")


class TestGauge:
    def test_set_and_move(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3.0

    def test_set_max_keeps_high_water_mark(self):
        gauge = MetricsRegistry().gauge("peak")
        gauge.set_max(5)
        gauge.set_max(3)
        assert gauge.value == 5.0


class TestHistogram:
    def test_bucketing(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        # 0.5 and 1.0 land in le=1.0; 5.0 in le=10.0; 100.0 in +Inf.
        assert hist.counts == [2, 1, 1]
        assert hist.cumulative_counts() == [2, 3, 4]
        assert hist.count == 4
        assert hist.sum == pytest.approx(106.5)
        assert hist.mean == pytest.approx(106.5 / 4)

    def test_buckets_must_increase(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ObservabilityError):
            MetricsRegistry().histogram("h", buckets=())


class TestRegistry:
    def test_snapshot_is_flat_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(2)
        reg.histogram("c", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap == {"a": 2.0, "b": 1.0, "c.sum": 0.5, "c.count": 1.0}

    def test_collect_order_stable(self):
        reg = MetricsRegistry()
        reg.counter("z")
        reg.counter("a", labels={"k": "2"})
        reg.counter("a", labels={"k": "1"})
        names = [(i.name, i.labels) for i in reg.collect()]
        assert names == [
            ("a", (("k", "1"),)),
            ("a", (("k", "2"),)),
            ("z", ()),
        ]


class TestNullRegistry:
    def test_everything_is_a_noop(self):
        reg = NullMetricsRegistry()
        reg.counter("x").inc()
        reg.gauge("y").set(3)
        reg.histogram("z").observe(1.0)
        assert reg.collect() == []
        assert reg.snapshot() == {}
        assert not reg.enabled


class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("hits", help="total hits", labels={"p": "P01"}).inc(3)
        reg.gauge("depth").set(1.5)
        text = export_prometheus(reg)
        assert "# HELP hits total hits" in text
        assert "# TYPE hits counter" in text
        assert 'hits{p="P01"} 3' in text
        assert "depth 1.5" in text

    def test_histogram_exposition_is_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=(1.0, 5.0))
        for value in (0.5, 2.0, 9.0):
            hist.observe(value)
        text = export_prometheus(reg)
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="5"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 11.5" in text
        assert "lat_count 3" in text

    def test_deterministic_output(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b", labels={"x": "1"}).inc()
            reg.counter("a").inc(2)
            return export_prometheus(reg)

        assert build() == build()
