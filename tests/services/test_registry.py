"""Service registry routing and cost accounting."""

import pytest

from repro.db import Column, Database, TableSchema
from repro.errors import EndpointNotFound
from repro.services import (
    DatabaseService,
    Envelope,
    Link,
    Network,
    ServiceRegistry,
)


@pytest.fixture()
def setup():
    net = Network(default_link=Link(latency=1.0, bandwidth=10.0))
    net.add_host("IS")
    registry = ServiceRegistry(net)
    db = Database("remote")
    db.create_table(
        TableSchema("t", [Column("k", "BIGINT", nullable=False)],
                    primary_key=("k",))
    )
    registry.register(DatabaseService("remote", "ES", db))
    return net, registry, db


class TestRouting:
    def test_register_adds_host(self, setup):
        net, registry, _ = setup
        assert net.has_host("ES")

    def test_lookup_unknown(self, setup):
        _, registry, _ = setup
        with pytest.raises(EndpointNotFound):
            registry.lookup("ghost")

    def test_service_names(self, setup):
        _, registry, _ = setup
        assert registry.service_names == ["remote"]

    def test_call_round_trip(self, setup):
        _, registry, db = setup
        outcome = registry.call(
            "IS", "remote", Envelope.update_request("t", [{"k": 1}])
        )
        assert outcome.response.body == 1
        assert len(db.table("t")) == 1


class TestCostAccounting:
    def test_both_legs_charged(self, setup):
        _, registry, _ = setup
        outcome = registry.call(
            "IS", "remote", Envelope.update_request("t", [{"k": i} for i in range(10)])
        )
        # outbound: 1 + 10/10 = 2.0; inbound: 1 + 1/10 = 1.1
        assert outcome.communication_cost == pytest.approx(3.1)

    def test_query_response_size_dominates(self, setup):
        _, registry, db = setup
        db.insert_many("t", [{"k": i} for i in range(100)])
        outcome = registry.call("IS", "remote", Envelope.query_request("t"))
        # outbound 1 + 1/10; inbound 1 + 100/10
        assert outcome.communication_cost == pytest.approx(12.1)

    def test_external_cost_included(self, setup):
        _, registry, db = setup
        db.insert_many("t", [{"k": i} for i in range(20)])
        db.create_procedure("scan", lambda d: len(d.table("t").scan()))
        outcome = registry.call("IS", "remote", Envelope.execute_request("scan"))
        transfer_only = 1 + 1 / 10 + 1 + 1 / 10
        assert outcome.communication_cost > transfer_only

    def test_calls_made_counter(self, setup):
        _, registry, _ = setup
        registry.call("IS", "remote", Envelope.query_request("t"))
        assert registry.calls_made == 1


class TestResilienceGates:
    def test_unavailable_endpoint_raises(self, setup):
        from repro.errors import EndpointUnavailableError

        _, registry, db = setup
        registry.lookup("remote").available = False
        with pytest.raises(EndpointUnavailableError, match="remote"):
            registry.call(
                "IS", "remote", Envelope.update_request("t", [{"k": 1}])
            )
        assert len(db.table("t")) == 0  # the call never reached the service
        registry.lookup("remote").available = True
        registry.call("IS", "remote", Envelope.update_request("t", [{"k": 1}]))
        assert len(db.table("t")) == 1

    def test_breaker_board_gates_and_records(self, setup):
        from repro.errors import CircuitOpenError, EndpointUnavailableError
        from repro.resilience import BreakerPolicy, CircuitBreakerBoard

        _, registry, db = setup
        registry.breakers = CircuitBreakerBoard(
            BreakerPolicy(failure_threshold=2, reset_timeout=100.0)
        )
        registry.lookup("remote").available = False
        for _ in range(2):
            with pytest.raises(EndpointUnavailableError):
                registry.call(
                    "IS", "remote", Envelope.update_request("t", [{"k": 1}])
                )
        # Threshold reached: the breaker now fails fast even though the
        # endpoint came back.
        registry.lookup("remote").available = True
        with pytest.raises(CircuitOpenError):
            registry.call(
                "IS", "remote", Envelope.update_request("t", [{"k": 1}])
            )
        assert len(db.table("t")) == 0

    def test_breaker_success_path_records(self, setup):
        from repro.resilience import CircuitBreakerBoard

        _, registry, _ = setup
        registry.breakers = CircuitBreakerBoard()
        registry.call("IS", "remote", Envelope.update_request("t", [{"k": 1}]))
        breaker = registry.breakers.breaker("remote")
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0
