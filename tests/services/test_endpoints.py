"""Service endpoints: database and web-service operations."""

import pytest

from repro.db import Column, Database, TableSchema, col, lit
from repro.db.relation import Relation
from repro.errors import OperationNotSupported, ServiceError
from repro.services.endpoints import DatabaseService, Envelope, WebService
from repro.xmlkit.convert import rows_to_resultset
from repro.xmlkit.doc import XmlElement


@pytest.fixture()
def db():
    database = Database("src")
    database.create_table(
        TableSchema(
            "t",
            [Column("k", "BIGINT", nullable=False), Column("v", "VARCHAR")],
            primary_key=("k",),
        )
    )
    database.insert_many("t", [{"k": i, "v": f"v{i}"} for i in range(5)])
    return database


@pytest.fixture()
def dbs(db):
    return DatabaseService("src", "ES", db)


class TestEnvelopeBuilders:
    def test_for_relation_counts_rows(self):
        rel = Relation(("a",), [{"a": 1}, {"a": 2}])
        assert Envelope.for_relation("result", rel).payload_units == 2.0

    def test_for_xml_counts_elements(self):
        doc = XmlElement("a", children=[XmlElement("b"), XmlElement("c")])
        assert Envelope.for_xml("x", doc).payload_units == 3.0

    def test_update_request_payload(self):
        env = Envelope.update_request("t", [{"k": 1}, {"k": 2}])
        assert env.payload_units == 2.0
        assert env.body["mode"] == "insert"


class TestDatabaseService:
    def test_query_full_table(self, dbs):
        resp = dbs.handle(Envelope.query_request("t"))
        assert len(resp.body) == 5
        assert resp.payload_units == 5.0

    def test_query_with_predicate(self, dbs):
        resp = dbs.handle(Envelope.query_request("t", col("k") > lit(2)))
        assert len(resp.body) == 2

    def test_query_with_columns(self, dbs):
        resp = dbs.handle(Envelope.query_request("t", columns=("v",)))
        assert resp.body.columns == ("v",)

    def test_update_insert(self, dbs, db):
        resp = dbs.handle(Envelope.update_request("t", [{"k": 100}]))
        assert resp.body == 1
        assert len(db.table("t")) == 6

    def test_update_upsert(self, dbs, db):
        dbs.handle(Envelope.update_request("t", [{"k": 1, "v": "new"}], "upsert"))
        assert db.table("t").get(1)["v"] == "new"

    def test_update_accepts_relation_body(self, dbs, db):
        rel = Relation(("k", "v"), [{"k": 50, "v": "r"}])
        dbs.handle(Envelope.update_request("t", rel))
        assert db.table("t").get(50)["v"] == "r"

    def test_update_bad_mode(self, dbs):
        with pytest.raises(ServiceError):
            dbs.handle(Envelope.update_request("t", [], mode="merge"))

    def test_execute_procedure_reports_external_cost(self, dbs, db):
        db.create_procedure("touch", lambda d: len(d.table("t").scan()))
        resp = dbs.handle(Envelope.execute_request("touch"))
        assert resp.body == 5
        assert resp.external_cost > 0

    def test_unknown_operation(self, dbs):
        with pytest.raises(OperationNotSupported):
            dbs.handle(Envelope("subscribe", {}))

    def test_call_count(self, dbs):
        dbs.handle(Envelope.query_request("t"))
        dbs.handle(Envelope.query_request("t"))
        assert dbs.call_count == 2


class TestWebService:
    @pytest.fixture()
    def ws(self, db):
        return WebService(
            "beijing", "ES", db,
            types={"t": {"k": "BIGINT", "v": "VARCHAR"}},
            result_tag="BJData", row_tag="Tuple",
        )

    def test_query_returns_dialect(self, ws):
        resp = ws.handle(Envelope("query", {"table": "t"}, 1.0))
        assert resp.body.tag == "BJData"
        assert resp.body.children[0].tag == "Tuple"
        assert resp.body.attributes["table"] == "t"

    def test_update_accepts_own_dialect(self, ws, db):
        doc = rows_to_resultset(("k", "v"), [{"k": 9, "v": "x"}], "t")
        doc.tag = "BJData"
        doc.children[0].tag = "Tuple"
        resp = ws.handle(Envelope.for_xml("update", doc))
        assert resp.body == 1
        assert db.table("t").get(9)["v"] == "x"

    def test_update_accepts_canonical(self, ws, db):
        doc = rows_to_resultset(("k", "v"), [{"k": 8, "v": "y"}], "t")
        ws.handle(Envelope.for_xml("update", doc))
        assert db.table("t").get(8)["v"] == "y"

    def test_update_rejects_foreign_dialect(self, ws):
        doc = XmlElement("SomethingElse", {"table": "t"})
        with pytest.raises(ServiceError):
            ws.handle(Envelope.for_xml("update", doc))

    def test_update_requires_table_attribute(self, ws):
        doc = XmlElement("BJData")
        with pytest.raises(ServiceError):
            ws.handle(Envelope.for_xml("update", doc))

    def test_update_retypes_values(self, ws, db):
        doc = rows_to_resultset(("k", "v"), [{"k": "77", "v": "s"}], "t")
        ws.handle(Envelope.for_xml("update", doc))
        assert db.table("t").get(77) is not None  # "77" became int 77

    def test_types_fall_back_to_table_schema(self, db):
        ws = WebService("plain", "ES", db)
        doc = rows_to_resultset(("k", "v"), [{"k": "3", "v": "z"}], "t")
        ws.handle(Envelope.for_xml("update", doc))
        assert db.table("t").get(3)["v"] == "z"

    def test_round_trip_through_dialect(self, ws, db):
        """query → update must be lossless (the P01 message path)."""
        before = sorted(r["k"] for r in db.table("t").scan())
        resp = ws.handle(Envelope("query", {"table": "t"}, 1.0))
        ws.handle(Envelope.for_xml("update", resp.body))
        after = sorted(r["k"] for r in db.table("t").scan())
        assert before == after
