"""Network model: links, costs, jitter, partitions."""

import pytest

from repro.errors import NetworkError
from repro.services.network import Link, Network


@pytest.fixture()
def net():
    network = Network(default_link=Link(latency=2.0, bandwidth=100.0))
    network.add_host("ES")
    network.add_host("IS")
    return network


class TestLink:
    def test_negative_latency_rejected(self):
        with pytest.raises(NetworkError):
            Link(latency=-1, bandwidth=1)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(NetworkError):
            Link(latency=0, bandwidth=0)


class TestTransferCost:
    def test_cost_formula(self, net):
        assert net.transfer_cost("ES", "IS", 100.0) == pytest.approx(3.0)

    def test_zero_payload_costs_latency(self, net):
        assert net.transfer_cost("ES", "IS", 0.0) == pytest.approx(2.0)

    def test_same_host_is_free(self, net):
        assert net.transfer_cost("ES", "ES", 1000.0) == 0.0

    def test_unknown_host(self, net):
        with pytest.raises(NetworkError):
            net.transfer_cost("ES", "ghost", 1.0)

    def test_negative_payload(self, net):
        with pytest.raises(NetworkError):
            net.transfer_cost("ES", "IS", -1.0)

    def test_custom_link_overrides_default(self, net):
        net.set_link("ES", "IS", Link(latency=10.0, bandwidth=1.0))
        assert net.transfer_cost("ES", "IS", 5.0) == pytest.approx(15.0)

    def test_symmetric_link(self, net):
        net.set_link("ES", "IS", Link(latency=10.0, bandwidth=1.0))
        assert net.transfer_cost("IS", "ES", 0.0) == pytest.approx(10.0)

    def test_asymmetric_link(self, net):
        net.set_link("ES", "IS", Link(latency=9.0, bandwidth=1.0), symmetric=False)
        assert net.transfer_cost("IS", "ES", 0.0) == pytest.approx(2.0)

    def test_statistics(self, net):
        net.transfer_cost("ES", "IS", 10.0)
        net.transfer_cost("ES", "IS", 5.0)
        assert net.transfer_count == 2
        assert net.payload_units_total == 15.0

    def test_same_host_not_counted_in_statistics(self, net):
        net.transfer_cost("ES", "ES", 1000.0)
        assert net.transfer_count == 0
        assert net.payload_units_total == 0.0
        net.transfer_cost("ES", "IS", 10.0)
        net.transfer_cost("IS", "IS", 5.0)
        assert net.transfer_count == 1
        assert net.payload_units_total == 10.0


class TestJitter:
    def test_jitter_bounds(self):
        net = Network(default_link=Link(2.0, 100.0), jitter=0.5, seed=1)
        net.add_host("A")
        net.add_host("B")
        base = 2.0 + 100.0 / 100.0
        costs = [net.transfer_cost("A", "B", 100.0) for _ in range(200)]
        assert all(base * 0.5 <= c <= base * 1.5 for c in costs)
        assert len(set(costs)) > 1  # actually varies

    def test_jitter_deterministic_per_seed(self):
        def run(seed):
            net = Network(jitter=0.3, seed=seed)
            net.add_host("A")
            net.add_host("B")
            return [net.transfer_cost("A", "B", 10.0) for _ in range(5)]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_invalid_jitter(self):
        with pytest.raises(NetworkError):
            Network(jitter=1.0)


class TestPartitions:
    def test_partition_blocks_transfers(self, net):
        net.partition("ES", "IS")
        with pytest.raises(NetworkError, match="partition"):
            net.transfer_cost("ES", "IS", 1.0)

    def test_partition_is_symmetric_by_default(self, net):
        net.partition("ES", "IS")
        with pytest.raises(NetworkError):
            net.transfer_cost("IS", "ES", 1.0)

    def test_heal(self, net):
        net.partition("ES", "IS")
        net.heal("ES", "IS")
        assert net.transfer_cost("ES", "IS", 0.0) > 0

    def test_one_way_partition(self, net):
        net.partition("ES", "IS", symmetric=False)
        assert net.transfer_cost("IS", "ES", 0.0) > 0
        with pytest.raises(NetworkError):
            net.transfer_cost("ES", "IS", 0.0)

    def test_heal_restores_prior_link_cost(self, net):
        net.set_link("ES", "IS", Link(latency=10.0, bandwidth=1.0))
        before = net.transfer_cost("ES", "IS", 5.0)
        net.partition("ES", "IS")
        net.heal("ES", "IS")
        assert net.transfer_cost("ES", "IS", 5.0) == pytest.approx(before)

    def test_same_host_transfers_unaffected_by_partition(self, net):
        net.partition("ES", "IS")
        assert net.transfer_cost("ES", "ES", 1000.0) == 0.0
        assert net.transfer_cost("IS", "IS", 1000.0) == 0.0

    def test_is_partitioned(self, net):
        assert not net.is_partitioned("ES", "IS")
        net.partition("ES", "IS")
        assert net.is_partitioned("ES", "IS")
        assert net.is_partitioned("IS", "ES")
        net.heal("ES", "IS")
        assert not net.is_partitioned("ES", "IS")


class TestDegradation:
    def test_degrade_multiplies_cost(self, net):
        base = net.transfer_cost("ES", "IS", 100.0)
        net.degrade("ES", "IS", 2.5)
        assert net.transfer_cost("ES", "IS", 100.0) == pytest.approx(2.5 * base)

    def test_degrade_is_symmetric_by_default(self, net):
        base = net.transfer_cost("IS", "ES", 100.0)
        net.degrade("ES", "IS", 2.0)
        assert net.transfer_cost("IS", "ES", 100.0) == pytest.approx(2.0 * base)

    def test_one_way_degrade(self, net):
        base = net.transfer_cost("IS", "ES", 100.0)
        net.degrade("ES", "IS", 4.0, symmetric=False)
        assert net.transfer_cost("IS", "ES", 100.0) == pytest.approx(base)
        assert net.transfer_cost("ES", "IS", 100.0) == pytest.approx(4.0 * base)

    def test_restore_link_clears_degradation(self, net):
        base = net.transfer_cost("ES", "IS", 100.0)
        net.degrade("ES", "IS", 3.0)
        net.restore_link("ES", "IS")
        assert net.transfer_cost("ES", "IS", 100.0) == pytest.approx(base)
        assert net.degradation("ES", "IS") == 1.0

    def test_degrade_replaces_not_stacks(self, net):
        base = net.transfer_cost("ES", "IS", 100.0)
        net.degrade("ES", "IS", 2.0)
        net.degrade("ES", "IS", 3.0)
        assert net.transfer_cost("ES", "IS", 100.0) == pytest.approx(3.0 * base)

    def test_factor_below_one_rejected(self, net):
        with pytest.raises(NetworkError):
            net.degrade("ES", "IS", 0.5)

    def test_degraded_transfer_still_counted(self, net):
        net.degrade("ES", "IS", 2.0)
        net.transfer_cost("ES", "IS", 10.0)
        assert net.transfer_count == 1
        assert net.payload_units_total == 10.0
