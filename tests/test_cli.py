"""The command-line front-end."""

import json

import pytest

from repro.cli import main


class TestProcessesCommand:
    def test_lists_table_1(self, capsys):
        assert main(["processes"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 16):
            assert f"P{i:02d}" in out
        assert "P14_S1" in out

    def test_shows_event_types(self, capsys):
        main(["processes"])
        out = capsys.readouterr().out
        assert "E1" in out and "E2" in out


class TestValidateCommand:
    def test_all_valid(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "INVALID" not in out
        assert out.count("ok") >= 19


class TestScheduleCommand:
    def test_prints_series(self, capsys):
        assert main(["schedule", "--period", "0", "--datasize", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "P04: n=  56" in out
        assert "P10" in out

    def test_time_factor_compresses(self, capsys):
        main(["schedule", "--period", "0", "--time", "2"])
        out = capsys.readouterr().out
        assert "1000.0" in out  # P08's 2000 tu shift at t=2


class TestRunCommand:
    def test_run_one_period(self, capsys, tmp_path):
        plot = tmp_path / "plot.svg"
        report = tmp_path / "report.txt"
        status = main([
            "run", "--periods", "1", "--quiet", "--seed", "3",
            "--plot", str(plot), "--report", str(report),
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "verification OK" in out
        assert "NAVG+" in out
        assert plot.read_text().startswith("<svg")
        assert "P04" in report.read_text()

    def test_run_federated(self, capsys):
        status = main([
            "run", "--periods", "1", "--engine", "federated", "--quiet",
        ])
        assert status == 0
        assert "federated" in capsys.readouterr().out

    def test_ascii_plot_by_default(self, capsys):
        main(["run", "--periods", "1"])
        out = capsys.readouterr().out
        assert "DIPBench Performance Plot" in out

    def test_bad_distribution_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--distribution", "9"])

    def test_run_trace_and_metrics_out(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.prom"
        status = main([
            "run", "--periods", "1", "--datasize", "0.02", "--quiet",
            "--trace-out", str(trace), "--metrics-out", str(metrics),
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        assert "engine_instances_total" in metrics.read_text()


class TestTraceCommand:
    def test_writes_chrome_trace(self, capsys, tmp_path):
        out_file = tmp_path / "trace.json"
        status = main([
            "trace", "--periods", "1", "--datasize", "0.02",
            "--out", str(out_file),
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "spans" in out
        doc = json.loads(out_file.read_text())
        names = {e.get("name") for e in doc["traceEvents"]}
        assert "run" in names

    def test_writes_jsonl(self, tmp_path):
        out_file = tmp_path / "spans.jsonl"
        status = main([
            "trace", "--periods", "1", "--datasize", "0.02",
            "--out", str(out_file), "--format", "jsonl",
        ])
        assert status == 0
        rows = [json.loads(line)
                for line in out_file.read_text().splitlines()]
        assert any(r["kind"] == "instance" for r in rows)

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["fly"])


class TestFaultsCommand:
    def test_valid_spec_described(self, capsys):
        assert main(["faults", "examples/faults_basic.json"]) == 0
        out = capsys.readouterr().out
        assert "basic-degraded-run" in out
        assert "partition" in out and "heal" in out
        assert "spec is valid" in out

    def test_invalid_reference_rejected(self, capsys, tmp_path):
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps({
            "name": "bad", "seed": 1,
            "events": [{"at": 1.0, "kind": "outage", "service": "ghost"}],
        }))
        assert main(["faults", str(spec)]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out
        assert "unknown service 'ghost'" in out

    def test_unreadable_spec_rejected(self, capsys, tmp_path):
        assert main(["faults", str(tmp_path / "missing.json")]) == 1
        assert "cannot load" in capsys.readouterr().err


class TestRunWithFaults:
    def test_degraded_run_reports_resilience(self, capsys, tmp_path):
        metrics = tmp_path / "metrics.prom"
        status = main([
            "run", "--periods", "2", "--quiet",
            "--faults", "examples/faults_basic.json",
            "--metrics-out", str(metrics),
        ])
        assert status == 0  # clean final period: verification passes
        out = capsys.readouterr().out
        assert "resilience:" in out
        assert "recovered=3" in out
        assert "dead letters:" in out
        assert "XsdValidationError" in out
        prom = metrics.read_text()
        assert "resilience_recovered_total" in prom
        assert "resilience_dead_letters_total" in prom

    def test_bad_spec_file_exits_2(self, capsys, tmp_path):
        assert main([
            "run", "--periods", "1", "--quiet",
            "--faults", str(tmp_path / "missing.json"),
        ]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_unknown_target_exits_2(self, capsys, tmp_path):
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps({
            "name": "bad", "seed": 1,
            "events": [{"at": 1.0, "kind": "partition",
                        "src": "XX", "dst": "IS"}],
        }))
        assert main([
            "run", "--periods", "1", "--quiet", "--faults", str(spec),
        ]) == 2
        assert "invalid fault spec" in capsys.readouterr().err


class TestRunDurability:
    def test_run_with_durability_prints_storage_line(self, capsys):
        status = main([
            "run", "--periods", "1", "--quiet",
            "--durability", "snapshot+wal", "--checkpoint-every", "50",
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "durability: mode=snapshot+wal" in out
        assert "recovery: none" in out

    def test_crash_spec_without_durability_exits_2(self, capsys, tmp_path):
        spec = tmp_path / "crash.json"
        spec.write_text(json.dumps({
            "name": "crash", "seed": 7,
            "events": [{"at": 300.0, "kind": "crash",
                        "point": "commit", "period": 0}],
        }))
        assert main([
            "run", "--periods", "1", "--quiet", "--faults", str(spec),
        ]) == 2
        assert "invalid fault spec" in capsys.readouterr().err


class TestSweepCommand:
    def test_parallel_sweep_matches_serial_byte_for_byte(
        self, capsys, tmp_path
    ):
        serial_out = tmp_path / "serial.json"
        parallel_out = tmp_path / "parallel.json"
        base = ["sweep", "--grid", "d=0.02", "--seeds", "11,12", "--quiet"]
        assert main(base + ["--workers", "1", "--out", str(serial_out)]) == 0
        assert main(
            base + ["--workers", "4", "--out", str(parallel_out)]
        ) == 0
        assert serial_out.read_bytes() == parallel_out.read_bytes()
        out = capsys.readouterr().out
        fingerprints = {
            line.split()[-1]
            for line in out.splitlines()
            if line.startswith("sweep fingerprint:")
        }
        assert len(fingerprints) == 1

    def test_table_lists_every_grid_point(self, capsys):
        status = main([
            "sweep", "--grid", "d=0.02", "--seeds", "11",
            "--engines", "interpreter,federated",
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "interpreter" in out and "federated" in out
        assert "2 grid points" in out

    def test_merged_metrics_written(self, tmp_path):
        metrics = tmp_path / "sweep.prom"
        assert main([
            "sweep", "--grid", "d=0.02", "--seeds", "11,12",
            "--workers", "2", "--quiet", "--metrics-out", str(metrics),
        ]) == 0
        assert "engine_instances_total" in metrics.read_text()

    def test_json_document_shape(self, tmp_path):
        out_file = tmp_path / "sweep.json"
        assert main([
            "sweep", "--grid", "d=0.02", "--seeds", "11", "--quiet",
            "--out", str(out_file),
        ]) == 0
        doc = json.loads(out_file.read_text())
        assert doc["fingerprint"]
        (point,) = doc["points"]
        assert point["status"] == "ok"
        assert point["verification_ok"] is True
        assert point["navg_plus"]

    def test_bad_grid_axis_exits_2(self, capsys):
        assert main(["sweep", "--grid", "q=1"]) == 2
        assert "bad grid axis" in capsys.readouterr().err

    def test_unknown_engine_exits_2(self, capsys):
        assert main(["sweep", "--engines", "quantum"]) == 2
        assert "unknown engines" in capsys.readouterr().err

    def test_missing_fault_spec_exits_2(self, capsys, tmp_path):
        assert main([
            "sweep", "--faults", str(tmp_path / "missing.json"),
        ]) == 2
        assert "cannot load" in capsys.readouterr().err


class TestRecoverCommand:
    def test_converges_and_exits_zero(self, capsys, tmp_path):
        metrics = tmp_path / "metrics.prom"
        status = main([
            "recover", "--engine", "interpreter",
            "--crash-at", "300", "--metrics-out", str(metrics),
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "recoveries=1" in out
        assert "records byte-identical: yes" in out
        assert "landscape digest equal: yes" in out
        assert "CONVERGED" in out
        text = metrics.read_text()
        assert "storage_recoveries_total 1" in text

    def test_crash_outside_period_diverges(self, capsys):
        # Far beyond the period horizon: the fault never fires, no
        # recovery happens, and the command refuses to claim convergence.
        status = main(["recover", "--crash-at", "999999"])
        assert status == 1
        assert "no recovery" in capsys.readouterr().out

    def test_example_crash_spec_loads(self, capsys):
        status = main([
            "recover", "--faults", "examples/faults_crash.json",
        ])
        assert status == 0
        assert "CONVERGED" in capsys.readouterr().out

    def test_parallel_jobs_still_converge(self, capsys):
        status = main([
            "recover", "--crash-at", "300", "--jobs", "2",
            "--datasize", "0.02",
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "jobs=2" in out
        assert "CONVERGED" in out


class TestParseTenantPolicies:
    def test_full_syntax(self):
        from repro.cli import _parse_tenant_policies

        policies = _parse_tenant_policies(
            ["acme:rate=20:burst=5:active=4", "globex"]
        )
        assert policies["acme"].rate == 20.0
        assert policies["acme"].burst == 5.0
        assert policies["acme"].max_active == 4
        assert policies["globex"].name == "globex"

    def test_unknown_knob_rejected(self):
        from repro.cli import _parse_tenant_policies
        from repro.errors import ServeError

        with pytest.raises(ServeError, match="unknown tenant policy knob"):
            _parse_tenant_policies(["acme:speed=9"])

    def test_bad_value_rejected(self):
        from repro.cli import _parse_tenant_policies
        from repro.errors import ServeError

        with pytest.raises(ServeError, match="bad value"):
            _parse_tenant_policies(["acme:rate=fast"])


class TestServeCommand:
    def test_bad_tenant_policy_exits_2(self, capsys):
        assert main(["serve", "--tenant", "acme:speed=9"]) == 2
        assert "unknown tenant policy knob" in capsys.readouterr().err


class TestStormCommand:
    def test_small_selfhosted_storm(self, capsys, tmp_path):
        out = tmp_path / "reports" / "storm.json"
        status = main([
            "storm", "--clients", "40", "--tenants", "acme,globex",
            "--rate", "2000", "--seed", "7", "--distinct", "1",
            "--datasize", "0.02", "--slots", "2", "--out", str(out),
        ])
        assert status == 0
        printed = capsys.readouterr().out
        assert "accounting: 40 submitted" in printed
        doc = json.loads(out.read_text())
        assert doc["submitted"] == 40
        assert doc["submitted"] == (
            doc["accepted"] + doc["rejected"] + doc["errors"]
        )
        assert set(doc["tenants"]) == {"acme", "globex"}

    def test_host_without_port_exits_2(self, capsys):
        assert main(["storm", "--host", "127.0.0.1"]) == 2
        assert "--host needs --port" in capsys.readouterr().err

    def test_bad_model_knob_exits_2(self, capsys):
        assert main(["storm", "--clients", "0"]) == 2
        assert "client" in capsys.readouterr().err
