"""The EAI-server realization (the paper's announced future work)."""

import pytest

from repro.engine import EaiEngine, FederatedEngine, MtmInterpreterEngine
from repro.engine.eai import EAI_COSTS
from repro.engine.costs import FEDERATED_COSTS
from repro.scenario import build_scenario
from repro.toolsuite import BenchmarkClient, ScaleFactors


class TestEaiProfile:
    def test_mirror_image_of_federated(self):
        """The EAI server is native where the federation is foreign and
        vice versa."""
        assert EAI_COSTS.xml_unit < FEDERATED_COSTS.xml_unit
        assert EAI_COSTS.relational_unit > FEDERATED_COSTS.relational_unit
        assert EAI_COSTS.receive_overhead == 0.0

    def test_defaults_favor_concurrency(self):
        scenario = build_scenario()
        engine = EaiEngine(scenario.registry)
        assert engine.worker_count == 8
        assert engine.engine_name == "eai-server"


class TestEaiBenchmark:
    @pytest.fixture(scope="class")
    def three_way(self):
        results = {}
        for name, cls in (("interpreter", MtmInterpreterEngine),
                          ("federated", FederatedEngine),
                          ("eai", EaiEngine)):
            scenario = build_scenario()
            engine = cls(scenario.registry)
            client = BenchmarkClient(
                scenario, engine, ScaleFactors(datasize=0.05),
                periods=2, seed=5,
            )
            results[name] = client.run()
        return results

    def test_functionally_identical(self, three_way):
        for name, result in three_way.items():
            assert result.error_instances == 0, name
            assert result.verification.ok, name

    def test_eai_wins_on_message_types(self, three_way):
        """Native message handling: the EAI server beats the federated
        DBMS on every E1 (message-driven) process type."""
        for pid in ("P01", "P04", "P08", "P10"):
            assert (
                three_way["eai"].metrics[pid].navg_plus
                < three_way["federated"].metrics[pid].navg_plus
            ), pid

    def test_federated_wins_on_relational_bulk(self, three_way):
        """Optimizer-covered set processing: the federation beats the
        EAI server on the relational bulk loads."""
        for pid in ("P11", "P12", "P13"):
            assert (
                three_way["federated"].metrics[pid].navg_plus
                < three_way["eai"].metrics[pid].navg_plus
            ), pid

    def test_each_realization_has_a_niche(self, three_way):
        """No engine dominates everywhere — the benchmark's raison
        d'être: comparability exposes trade-offs, not a single winner."""
        wins = {name: 0 for name in three_way}
        pids = three_way["eai"].metrics.process_ids
        for pid in pids:
            best = min(three_way, key=lambda n: three_way[n].metrics[pid].navg_plus)
            wins[best] += 1
        assert sum(1 for count in wins.values() if count > 0) >= 2
