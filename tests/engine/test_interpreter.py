"""The MTM interpreter engine end-to-end on small processes."""

import pytest

from repro.db import Column, Database, TableSchema, col, lit
from repro.engine import MtmInterpreterEngine, ProcessEvent
from repro.mtm import (
    Assign,
    EventType,
    Invoke,
    Message,
    ProcessGroup,
    ProcessType,
    Receive,
    Sequence,
    Signal,
    Subprocess,
)
from repro.services import DatabaseService, Envelope, Network, ServiceRegistry


@pytest.fixture()
def world():
    net = Network()
    net.add_host("IS")
    registry = ServiceRegistry(net)
    db = Database("target")
    db.create_table(
        TableSchema("t", [Column("k", "BIGINT", nullable=False)],
                    primary_key=("k",))
    )
    registry.register(DatabaseService("target", "ES", db))
    return registry, db


class TestExecution:
    def test_e1_message_flows_to_target(self, world):
        registry, db = world
        process = ProcessType(
            "P_IN", ProcessGroup.B, "t", EventType.E1_MESSAGE,
            Sequence([
                Receive("msg"),
                Invoke(
                    "target",
                    lambda c: Envelope.update_request(
                        "t", [{"k": c.get("msg").payload}]
                    ),
                ),
                Signal(),
            ]),
        )
        engine = MtmInterpreterEngine(registry)
        engine.deploy(process)
        record = engine.handle_event(
            ProcessEvent("P_IN", 0.0, message=Message(41))
        )
        assert record.status == "ok"
        assert db.table("t").get(41) is not None
        assert record.costs.communication > 0
        assert record.costs.processing > 0

    def test_trace_collection(self, world):
        registry, _ = world
        engine = MtmInterpreterEngine(registry, trace=True)
        engine.deploy(
            ProcessType("P_T", ProcessGroup.A, "t", EventType.E2_SCHEDULE,
                        Sequence([Signal(name="end")]))
        )
        engine.handle_event(ProcessEvent("P_T", 0.0))
        assert engine.traces == [("P_T", ["sequence:sequence", "signal:end"])]


class TestSubprocesses:
    def test_child_costs_fold_into_parent(self, world):
        registry, _ = world
        child = ProcessType(
            "CHILD", ProcessGroup.D, "t", EventType.E2_SCHEDULE,
            Sequence([Signal(), Signal(), Signal()]),
            subprocess_only=True,
        )
        parent = ProcessType(
            "PARENT", ProcessGroup.D, "t", EventType.E2_SCHEDULE,
            Sequence([Subprocess("CHILD"), Signal()]),
        )
        solo = ProcessType(
            "SOLO", ProcessGroup.D, "t", EventType.E2_SCHEDULE,
            Sequence([Signal()]),
        )
        engine = MtmInterpreterEngine(registry)
        engine.deploy_all([child, parent, solo])
        parent_record = engine.handle_event(ProcessEvent("PARENT", 0.0))
        solo_record = engine.handle_event(ProcessEvent("SOLO", 1000.0))
        assert parent_record.costs.processing > solo_record.costs.processing

    def test_child_result_binds_to_output(self, world):
        registry, _ = world
        child = ProcessType(
            "CHILD", ProcessGroup.D, "t", EventType.E2_SCHEDULE,
            Sequence([Assign("__out", 99)]),
            subprocess_only=True,
        )
        results = []
        parent = ProcessType(
            "PARENT", ProcessGroup.D, "t", EventType.E2_SCHEDULE,
            Sequence([
                Subprocess("CHILD", output="got"),
                Assign("check", lambda c: results.append(c.get("got").payload)),
            ]),
        )
        engine = MtmInterpreterEngine(registry)
        engine.deploy_all([child, parent])
        engine.handle_event(ProcessEvent("PARENT", 0.0))
        assert results == [99]

    def test_child_variables_isolated_from_parent(self, world):
        registry, _ = world
        observations = []
        child = ProcessType(
            "CHILD", ProcessGroup.D, "t", EventType.E2_SCHEDULE,
            Sequence([
                Assign("probe", lambda c: observations.append(c.has("secret"))),
            ]),
            subprocess_only=True,
        )
        parent = ProcessType(
            "PARENT", ProcessGroup.D, "t", EventType.E2_SCHEDULE,
            Sequence([Assign("secret", 1), Subprocess("CHILD"), Signal()]),
        )
        engine = MtmInterpreterEngine(registry)
        engine.deploy_all([child, parent])
        engine.handle_event(ProcessEvent("PARENT", 0.0))
        assert observations == [False]

    def test_input_message_passed_to_child(self, world):
        registry, _ = world
        received = []
        child = ProcessType(
            "CHILD", ProcessGroup.D, "t", EventType.E2_SCHEDULE,
            Sequence([
                Receive("in_msg"),
                Assign("x", lambda c: received.append(c.get("in_msg").payload)),
            ]),
            subprocess_only=True,
        )
        parent = ProcessType(
            "PARENT", ProcessGroup.D, "t", EventType.E2_SCHEDULE,
            Sequence([
                Assign("data", "hello"),
                Subprocess("CHILD", input="data"),
            ]),
        )
        engine = MtmInterpreterEngine(registry)
        engine.deploy_all([child, parent])
        engine.handle_event(ProcessEvent("PARENT", 0.0))
        assert received == ["hello"]
