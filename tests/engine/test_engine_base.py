"""Engine base: deployment, worker queue, event handling."""

import pytest

from repro.db import Database
from repro.engine import MtmInterpreterEngine, ProcessEvent
from repro.engine.costs import CostParameters
from repro.errors import DeploymentError, EngineError
from repro.mtm import (
    Assign,
    EventType,
    Message,
    ProcessGroup,
    ProcessType,
    Receive,
    Sequence,
    Signal,
    Subprocess,
)
from repro.services import Network, ServiceRegistry


def fresh_registry():
    net = Network()
    net.add_host("IS")
    return ServiceRegistry(net)


def simple_e2(pid="PX", steps=1):
    return ProcessType(
        pid, ProcessGroup.B, "test", EventType.E2_SCHEDULE,
        Sequence([Signal() for _ in range(steps)]),
    )


def simple_e1(pid="PY"):
    return ProcessType(
        pid, ProcessGroup.B, "test", EventType.E1_MESSAGE,
        Sequence([Receive("m"), Signal()]),
    )


class TestDeployment:
    def test_deploy_and_list(self):
        engine = MtmInterpreterEngine(fresh_registry())
        engine.deploy(simple_e2("PA"))
        engine.deploy(simple_e1("PB"))
        assert engine.deployed_ids == ["PA", "PB"]

    def test_duplicate_deploy_rejected(self):
        engine = MtmInterpreterEngine(fresh_registry())
        engine.deploy(simple_e2())
        with pytest.raises(DeploymentError):
            engine.deploy(simple_e2())

    def test_unknown_process_event(self):
        engine = MtmInterpreterEngine(fresh_registry())
        with pytest.raises(DeploymentError):
            engine.handle_event(ProcessEvent("GHOST", 0.0))

    def test_deploy_all_checks_subprocess_closure(self):
        engine = MtmInterpreterEngine(fresh_registry())
        parent = ProcessType(
            "PP", ProcessGroup.D, "t", EventType.E2_SCHEDULE,
            Sequence([Subprocess("MISSING")]),
        )
        with pytest.raises(DeploymentError, match="MISSING"):
            engine.deploy_all([parent])

    def test_forward_subprocess_reference_allowed(self):
        engine = MtmInterpreterEngine(fresh_registry())
        parent = ProcessType(
            "PP", ProcessGroup.D, "t", EventType.E2_SCHEDULE,
            Sequence([Subprocess("CHILD")]),
        )
        child = ProcessType(
            "CHILD", ProcessGroup.D, "t", EventType.E2_SCHEDULE,
            Sequence([Signal()]), subprocess_only=True,
        )
        engine.deploy_all([parent, child])  # no error
        assert engine.deployed_ids == ["CHILD", "PP"]

    def test_invalid_definition_rejected_at_deploy(self):
        engine = MtmInterpreterEngine(fresh_registry())
        bad = ProcessType(
            "PB", ProcessGroup.B, "t", EventType.E1_MESSAGE,
            Sequence([Signal()]),
        )
        with pytest.raises(Exception):
            engine.deploy(bad)

    def test_worker_count_validated(self):
        with pytest.raises(EngineError):
            MtmInterpreterEngine(fresh_registry(), worker_count=0)

    def test_parallel_efficiency_validated(self):
        with pytest.raises(EngineError):
            MtmInterpreterEngine(fresh_registry(), parallel_efficiency=1.5)


class TestEventHandling:
    def test_event_type_mismatch(self):
        engine = MtmInterpreterEngine(fresh_registry())
        engine.deploy(simple_e2("PA"))
        with pytest.raises(EngineError):
            engine.handle_event(ProcessEvent("PA", 0.0, message=Message(1)))

    def test_e1_event_without_message_rejected(self):
        engine = MtmInterpreterEngine(fresh_registry())
        engine.deploy(simple_e1("PB"))
        with pytest.raises(EngineError):
            engine.handle_event(ProcessEvent("PB", 0.0))

    def test_record_fields(self):
        engine = MtmInterpreterEngine(fresh_registry())
        engine.deploy(simple_e2("PA"))
        record = engine.handle_event(
            ProcessEvent("PA", 5.0, period=3, stream="B")
        )
        assert record.process_id == "PA"
        assert record.arrival == 5.0
        assert record.period == 3
        assert record.stream == "B"
        assert record.status == "ok"
        assert record.completion > record.start >= record.arrival
        assert record.normalized_cost == record.costs.total

    def test_failed_instance_recorded_not_raised(self):
        engine = MtmInterpreterEngine(fresh_registry())
        boom = ProcessType(
            "PF", ProcessGroup.B, "t", EventType.E2_SCHEDULE,
            Sequence([Assign("x", lambda c: 1 / 0)]),
        )
        engine.deploy(boom)
        record = engine.handle_event(ProcessEvent("PF", 0.0))
        assert record.status == "error"
        assert "ZeroDivisionError" in record.error
        assert engine.error_records() == [record]

    def test_inbound_message_delivery_charged(self):
        """E1 messages travel ES -> IS: that transfer lands in C_c."""
        net = Network()
        net.add_host("IS")
        net.add_host("ES")
        engine = MtmInterpreterEngine(ServiceRegistry(net))
        engine.deploy(simple_e1("PB"))
        record = engine.handle_event(
            ProcessEvent("PB", 0.0, message=Message("payload"))
        )
        assert record.costs.communication > 0

    def test_no_source_host_no_inbound_charge(self):
        net = Network()
        net.add_host("IS")  # no ES registered
        engine = MtmInterpreterEngine(ServiceRegistry(net))
        engine.deploy(simple_e1("PB"))
        record = engine.handle_event(
            ProcessEvent("PB", 0.0, message=Message("payload"))
        )
        assert record.costs.communication == 0.0

    def test_records_for(self):
        engine = MtmInterpreterEngine(fresh_registry())
        engine.deploy(simple_e2("PA"))
        engine.deploy(simple_e2("PB"))
        engine.handle_event(ProcessEvent("PA", 0.0))
        engine.handle_event(ProcessEvent("PB", 0.0))
        assert len(engine.records_for("PA")) == 1

    def test_clear_records(self):
        engine = MtmInterpreterEngine(fresh_registry())
        engine.deploy(simple_e2("PA"))
        engine.handle_event(ProcessEvent("PA", 0.0))
        engine.clear_records()
        assert engine.records == []


class TestWorkerQueue:
    def _engine(self, workers):
        engine = MtmInterpreterEngine(
            fresh_registry(),
            worker_count=workers,
            costs=CostParameters(control_unit=10.0, plan_cost=0.0,
                                 reorg_per_queued=0.0),
        )
        engine.deploy(simple_e2("PA", steps=1))  # 10 units service time
        return engine

    def test_single_worker_serializes(self):
        engine = self._engine(1)
        first = engine.handle_event(ProcessEvent("PA", 0.0))
        second = engine.handle_event(ProcessEvent("PA", 0.0))
        assert first.wait == 0.0
        assert second.start == pytest.approx(first.completion)
        assert second.wait > 0

    def test_two_workers_run_concurrently(self):
        engine = self._engine(2)
        engine.handle_event(ProcessEvent("PA", 0.0))
        second = engine.handle_event(ProcessEvent("PA", 0.0))
        assert second.wait == 0.0

    def test_queue_length_feeds_management_cost(self):
        engine = MtmInterpreterEngine(
            fresh_registry(),
            worker_count=1,
            costs=CostParameters(control_unit=10.0, plan_cost=1.0,
                                 reorg_per_queued=5.0),
        )
        engine.deploy(simple_e2("PA"))
        first = engine.handle_event(ProcessEvent("PA", 0.0))
        second = engine.handle_event(ProcessEvent("PA", 0.0))
        assert second.costs.management > first.costs.management
        assert second.queue_length_at_arrival == 1

    def test_idle_gap_resets_queue(self):
        engine = self._engine(1)
        first = engine.handle_event(ProcessEvent("PA", 0.0))
        late = engine.handle_event(
            ProcessEvent("PA", first.completion + 100.0)
        )
        assert late.wait == 0.0
        assert late.queue_length_at_arrival == 0

    def test_reset_workers(self):
        engine = self._engine(1)
        engine.handle_event(ProcessEvent("PA", 0.0))
        engine.reset_workers()
        record = engine.handle_event(ProcessEvent("PA", 0.0))
        assert record.wait == 0.0
