"""The federated DBMS realization (Fig. 9)."""

import pytest

from repro.db import Column, Database, TableSchema
from repro.engine import FederatedEngine, MtmInterpreterEngine, ProcessEvent
from repro.mtm import (
    EventType,
    Invoke,
    Message,
    ProcessGroup,
    ProcessType,
    Receive,
    Sequence,
    Signal,
)
from repro.services import DatabaseService, Envelope, Network, ServiceRegistry
from repro.xmlkit.doc import parse_xml


@pytest.fixture()
def world():
    net = Network()
    net.add_host("IS")
    registry = ServiceRegistry(net)
    db = Database("target")
    db.create_table(
        TableSchema("t", [Column("k", "BIGINT", nullable=False)],
                    primary_key=("k",))
    )
    registry.register(DatabaseService("target", "ES", db))
    return registry, db


def e1_process(pid="P_M"):
    return ProcessType(
        pid, ProcessGroup.B, "msg", EventType.E1_MESSAGE,
        Sequence([
            Receive("msg"),
            Invoke(
                "target",
                lambda c: Envelope.update_request(
                    "t", [{"k": int(c.get("msg").xml().child_text("K"))}]
                ),
            ),
            Signal(),
        ]),
    )


def e2_process(pid="P_S"):
    return ProcessType(
        pid, ProcessGroup.C, "scheduled", EventType.E2_SCHEDULE,
        Sequence([
            Invoke("target", lambda c: Envelope.update_request("t", [{"k": 7}])),
            Signal(),
        ]),
    )


class TestFig9Realization:
    def test_e1_deploys_queue_table_and_trigger(self, world):
        registry, _ = world
        engine = FederatedEngine(registry)
        engine.deploy(e1_process())
        assert engine.internal_db.has_table("P_M_Queue")
        schema = engine.internal_db.table("P_M_Queue").schema
        assert schema.column("tid").sql_type == "BIGINT"
        assert schema.column("msg").sql_type == "CLOB"
        engine.internal_db.trigger("trg_P_M")  # exists

    def test_e2_deploys_stored_procedure(self, world):
        registry, _ = world
        engine = FederatedEngine(registry)
        engine.deploy(e2_process())
        assert engine.internal_db.has_procedure("P_S")

    def test_message_round_trips_through_clob(self, world):
        registry, db = world
        engine = FederatedEngine(registry)
        engine.deploy(e1_process())
        message = Message(parse_xml("<M><K>5</K></M>"), "msg")
        record = engine.handle_event(ProcessEvent("P_M", 0.0, message=message))
        assert record.status == "ok"
        assert db.table("t").get(5) is not None
        # The CLOB physically sits in the queue table.
        queued = engine.internal_db.table("P_M_Queue").scan()
        assert len(queued) == 1
        assert "<K>5</K>" in queued[0]["msg"]
        assert engine.queue_depth("P_M") == 1

    def test_e2_runs_via_procedure(self, world):
        registry, db = world
        engine = FederatedEngine(registry)
        engine.deploy(e2_process())
        record = engine.handle_event(ProcessEvent("P_S", 0.0))
        assert record.status == "ok"
        assert db.table("t").get(7) is not None
        assert engine.internal_db._procedures["P_S"].call_count == 1


class TestCostProfile:
    def test_receive_overhead_charged_for_messages(self, world):
        registry, _ = world
        engine = FederatedEngine(registry)
        engine.deploy(e1_process())
        engine.deploy(e2_process())
        e1_record = engine.handle_event(
            ProcessEvent("P_M", 0.0, message=Message(parse_xml("<M><K>1</K></M>")))
        )
        engine.reset_workers()
        e2_record = engine.handle_event(ProcessEvent("P_S", 10_000.0))
        assert e1_record.costs.management > e2_record.costs.management

    def test_xml_heavier_than_interpreter(self, world):
        """The paper's central observation about System A: message-driven
        (XML) processes cost disproportionately more on the federated
        realization, while relational work stays cheap."""
        registry, _ = world
        fed, interp = FederatedEngine(registry), MtmInterpreterEngine(registry)
        for engine in (fed, interp):
            engine.deploy(e1_process())
        message = Message(parse_xml("<M><K>2</K></M>"))
        fed_cost = fed.handle_event(
            ProcessEvent("P_M", 0.0, message=message)
        ).costs
        interp_cost = interp.handle_event(
            ProcessEvent("P_M", 0.0, message=message.copy())
        ).costs
        assert fed_cost.processing > interp_cost.processing
        assert fed_cost.management > interp_cost.management

    def test_trigger_outside_execution_rejected(self, world):
        registry, _ = world
        engine = FederatedEngine(registry)
        engine.deploy(e1_process())
        from repro.errors import EngineError

        with pytest.raises(EngineError):
            engine.internal_db.insert(
                "P_M_Queue", {"tid": 999, "msg": "<M><K>1</K></M>"}
            )
