"""The ETL-tool realization (the paper's announced future work)."""

import pytest

from repro.engine import EaiEngine, EtlEngine, FederatedEngine
from repro.engine.eai import EAI_COSTS, ETL_COSTS
from repro.scenario import build_scenario
from repro.toolsuite import BenchmarkClient, ScaleFactors


class TestEtlProfile:
    def test_bulk_native_message_hostile(self):
        assert ETL_COSTS.relational_unit < EAI_COSTS.relational_unit
        assert ETL_COSTS.plan_cost > EAI_COSTS.plan_cost  # job startup
        assert ETL_COSTS.receive_overhead > 0

    def test_defaults(self):
        scenario = build_scenario()
        engine = EtlEngine(scenario.registry)
        assert engine.engine_name == "etl-tool"
        assert engine.worker_count == 2


class TestEtlBenchmark:
    @pytest.fixture(scope="class")
    def pair(self):
        results = {}
        for name, cls in (("etl", EtlEngine), ("eai", EaiEngine)):
            scenario = build_scenario()
            engine = cls(scenario.registry)
            client = BenchmarkClient(
                scenario, engine, ScaleFactors(datasize=0.05),
                periods=2, seed=5,
            )
            results[name] = client.run()
        return results

    def test_functionally_correct(self, pair):
        for name, result in pair.items():
            assert result.error_instances == 0, name
            assert result.verification.ok, name

    def test_etl_wins_the_bulk_loads(self, pair):
        """Its purpose-built path: the scheduled warehouse loads."""
        for pid in ("P11", "P12", "P13"):
            assert (
                pair["etl"].metrics[pid].navg_plus
                < pair["eai"].metrics[pid].navg_plus
            ), pid

    def test_etl_loses_the_message_types(self, pair):
        """The anti-pattern: per-message job startup and pickup."""
        for pid in ("P04", "P08", "P10"):
            assert (
                pair["etl"].metrics[pid].navg_plus
                > pair["eai"].metrics[pid].navg_plus
            ), pid

    def test_message_pickup_charged_to_management(self, pair):
        etl_metrics = pair["etl"].metrics
        assert (
            etl_metrics["P04"].management_mean
            > pair["eai"].metrics["P04"].management_mean
        )
