"""Property-based tests on the engine's virtual-time queueing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import MtmInterpreterEngine, ProcessEvent
from repro.engine.costs import CostParameters
from repro.mtm import EventType, ProcessGroup, ProcessType, Sequence, Signal
from repro.services import Network, ServiceRegistry


def make_engine(workers: int, service_units: float = 5.0):
    net = Network()
    net.add_host("IS")
    engine = MtmInterpreterEngine(
        ServiceRegistry(net),
        worker_count=workers,
        costs=CostParameters(
            control_unit=service_units, plan_cost=0.0, reorg_per_queued=0.0
        ),
    )
    engine.deploy(
        ProcessType("PX", ProcessGroup.B, "t", EventType.E2_SCHEDULE,
                    Sequence([Signal()]))
    )
    return engine


arrivals_strategy = st.lists(
    st.floats(0.0, 500.0, allow_nan=False), min_size=1, max_size=40
).map(sorted)


class TestQueueInvariants:
    @given(arrivals_strategy, st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_causality(self, arrivals, workers):
        """completion > start >= arrival for every instance."""
        engine = make_engine(workers)
        for at in arrivals:
            record = engine.handle_event(ProcessEvent("PX", at))
            assert record.start >= record.arrival
            assert record.completion > record.start

    @given(arrivals_strategy, st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_bounded_concurrency(self, arrivals, workers):
        """At no point do more than ``workers`` instances overlap in
        service."""
        engine = make_engine(workers)
        records = [engine.handle_event(ProcessEvent("PX", at))
                   for at in arrivals]
        boundaries = sorted(
            {r.start for r in records} | {r.completion for r in records}
        )
        for left, right in zip(boundaries, boundaries[1:]):
            mid = (left + right) / 2
            active = sum(
                1 for r in records if r.start <= mid < r.completion
            )
            assert active <= workers

    @given(arrivals_strategy)
    @settings(max_examples=60, deadline=None)
    def test_single_worker_fifo(self, arrivals):
        """One worker: services never overlap and run in arrival order."""
        engine = make_engine(1)
        records = [engine.handle_event(ProcessEvent("PX", at))
                   for at in arrivals]
        for earlier, later in zip(records, records[1:]):
            assert later.start >= earlier.completion

    @given(arrivals_strategy, st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_work_conservation(self, arrivals, workers):
        """Total busy time equals the sum of service times."""
        engine = make_engine(workers, service_units=5.0)
        records = [engine.handle_event(ProcessEvent("PX", at))
                   for at in arrivals]
        total_service = sum(r.completion - r.start for r in records)
        assert total_service == pytest.approx(5.0 * len(arrivals))

    @given(arrivals_strategy)
    @settings(max_examples=40, deadline=None)
    def test_more_workers_never_slower(self, arrivals):
        """Adding workers can only reduce (or keep) each completion."""
        slow = make_engine(1)
        fast = make_engine(4)
        slow_records = [slow.handle_event(ProcessEvent("PX", at))
                        for at in arrivals]
        fast_records = [fast.handle_event(ProcessEvent("PX", at))
                        for at in arrivals]
        for a, b in zip(fast_records, slow_records):
            assert a.completion <= b.completion + 1e-9


class TestManagementCostMonotonicity:
    @given(st.integers(2, 30))
    @settings(max_examples=30, deadline=None)
    def test_burst_arrivals_raise_management_costs(self, burst):
        """A simultaneous burst: later admissions see a longer queue and
        pay at least as much C_m (up to the cap)."""
        net = Network()
        net.add_host("IS")
        engine = MtmInterpreterEngine(
            ServiceRegistry(net),
            worker_count=1,
            costs=CostParameters(control_unit=10.0, plan_cost=1.0,
                                 reorg_per_queued=0.5),
        )
        engine.deploy(
            ProcessType("PX", ProcessGroup.B, "t", EventType.E2_SCHEDULE,
                        Sequence([Signal()]))
        )
        records = [engine.handle_event(ProcessEvent("PX", 0.0))
                   for _ in range(burst)]
        managements = [r.costs.management for r in records]
        assert all(b >= a for a, b in zip(managements, managements[1:]))
        assert managements[-1] > managements[0]
