"""Extensibility: a complete third-party engine in a few lines.

Documents (and pins) the extension seam described in
docs/architecture.md: subclassing IntegrationEngine with one method is
enough to run the full benchmark and get comparable NAVG+ metrics.
"""

import pytest

from repro.engine import IntegrationEngine
from repro.engine.costs import CostBreakdown, CostParameters
from repro.mtm.context import ExecutionContext
from repro.scenario import build_scenario
from repro.toolsuite import BenchmarkClient, ScaleFactors


class FlatRateEngine(IntegrationEngine):
    """A deliberately naive engine: executes the MTM tree but charges a
    flat rate per operator instead of pricing work units — the kind of
    engine a vendor might enter into the benchmark."""

    engine_name = "flat-rate"

    def __init__(self, registry, flat_rate: float = 0.8, **kwargs):
        super().__init__(registry, costs=CostParameters(), **kwargs)
        self.flat_rate = flat_rate

    def _execute_instance(self, process, event, queue_length):
        context = ExecutionContext(
            self.registry, self.host, subprocess_runner=self._run_subprocess
        )
        context.parallel_efficiency = self.parallel_efficiency
        if event.message is not None:
            context.set("__in", event.message)
        process.root._run(context)
        costs = CostBreakdown(
            communication=context.communication_cost,
            management=self.cost_parameters.management_cost(queue_length),
            processing=self.flat_rate * context.operators_executed,
        )
        return costs, context.operators_executed, len(context.validation_failures)

    def _run_subprocess(self, process_id, message, parent):
        child = self.process_type(process_id)
        saved = parent.variables
        parent.variables = {}
        if message is not None:
            parent.variables["__in"] = message
        try:
            child.root._run(parent)
            return parent.variables.get("__out")
        finally:
            parent.variables = saved


class TestCustomEngine:
    @pytest.fixture(scope="class")
    def result(self):
        scenario = build_scenario()
        engine = FlatRateEngine(scenario.registry)
        client = BenchmarkClient(
            scenario, engine, ScaleFactors(datasize=0.05), periods=1, seed=5
        )
        return client.run()

    def test_full_benchmark_runs(self, result):
        assert result.engine_name == "flat-rate"
        assert result.error_instances == 0

    def test_verification_passes(self, result):
        """A third engine must still integrate the data correctly."""
        assert result.verification.ok, result.verification.summary()

    def test_metrics_comparable(self, result):
        assert result.metrics.process_ids == [
            f"P{i:02d}" for i in range(1, 16)
        ]
        # Flat-rate pricing flattens the spread: P13's many rows no longer
        # dominate a message type by orders of magnitude.
        p13 = result.metrics["P13"].navg_plus
        p04 = result.metrics["P04"].navg_plus
        assert p13 / p04 < 20
