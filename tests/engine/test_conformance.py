"""Differential conformance: every engine variant vs the interpreter.

The benchmark's independence claim (Section III) only holds if the
engine variants are *interchangeable implementations of the same
processes*: at the same seed and scale factors they must leave the
landscape in a byte-identical state, run the same instances to the
same statuses, move the same number of rows and messages, and pass the
same verification checks.  Costs may differ — that is the quantity the
benchmark measures — so the conformance surface deliberately excludes
them.

One run per engine (module-scoped), then pairwise differential
assertions against the interpreter baseline, parametrized over all 15
process types of Table I.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import pytest

from repro.engine import ENGINES
from repro.parallel import RunSpec
from repro.scenario.processes import PROCESS_TABLE
from repro.storage import landscape_digest
from repro.toolsuite.client import BenchmarkClient, BenchmarkResult

BASELINE = "interpreter"
VARIANTS = sorted(set(ENGINES) - {BASELINE})

#: All 15 process types of Table I (P14 subprocesses report under P14).
PROCESS_IDS = [process_id for _, process_id, _ in PROCESS_TABLE]

SPEC = RunSpec(engine=BASELINE, datasize=0.02, time=1.0, seed=11)


def _family(process_id: str) -> str:
    """P14_S1/P14_S2/... report under their parent process type."""
    return process_id.split("_")[0]


@dataclass
class Capture:
    """Everything on the conformance surface from one engine run."""

    engine: str
    result: BenchmarkResult
    digest: str
    table_rows: dict[str, int]
    transfers: int

    @property
    def instances_per_process(self) -> Counter:
        return Counter(_family(r.process_id) for r in self.result.records)

    @property
    def statuses_per_process(self) -> Counter:
        return Counter(
            (_family(r.process_id), r.status) for r in self.result.records
        )

    @property
    def instance_identities(self) -> list[tuple]:
        """Order, stream, period and status of every instance — not costs."""
        return [
            (r.process_id, r.period, r.stream, r.status, r.error_type)
            for r in self.result.records
        ]


def _run(engine: str) -> Capture:
    client = BenchmarkClient.from_spec(SPEC.with_engine(engine))
    result = client.run()
    table_rows = {
        f"{name}.{table}": len(db.table(table))
        for name, db in sorted(client.scenario.all_databases.items())
        for table in db.table_names
    }
    return Capture(
        engine=engine,
        result=result,
        digest=landscape_digest(client.scenario.all_databases.values()),
        table_rows=table_rows,
        transfers=client.scenario.network.transfer_count,
    )


@pytest.fixture(scope="module")
def captures() -> dict[str, Capture]:
    return {engine: _run(engine) for engine in ENGINES}


@pytest.fixture(scope="module")
def baseline(captures) -> Capture:
    return captures[BASELINE]


class TestBaselineIsMeaningful:
    """Guards against a vacuous conformance pass."""

    def test_every_process_type_actually_ran(self, baseline):
        ran = baseline.instances_per_process
        for process_id in PROCESS_IDS:
            assert ran[process_id] > 0, f"{process_id} never ran"

    def test_landscape_is_populated(self, baseline):
        assert sum(baseline.table_rows.values()) > 0
        assert baseline.transfers > 0

    def test_verification_passed(self, baseline):
        assert baseline.result.verification.ok
        assert len(baseline.result.verification.checks) > 0


@pytest.mark.parametrize("variant", VARIANTS)
class TestEngineConformance:
    def test_landscape_digest_identical(self, captures, baseline, variant):
        assert captures[variant].digest == baseline.digest

    def test_per_table_row_counts_identical(
        self, captures, baseline, variant
    ):
        assert captures[variant].table_rows == baseline.table_rows

    def test_network_message_counts_identical(
        self, captures, baseline, variant
    ):
        assert captures[variant].transfers == baseline.transfers

    def test_instance_sequence_identical(self, captures, baseline, variant):
        assert (
            captures[variant].instance_identities
            == baseline.instance_identities
        )

    def test_verification_checks_identical(
        self, captures, baseline, variant
    ):
        ours = captures[variant].result.verification
        theirs = baseline.result.verification
        assert ours.checks == theirs.checks
        assert ours.failures == theirs.failures
        assert ours.ok and theirs.ok


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("process_id", PROCESS_IDS)
class TestPerProcessConformance:
    def test_instance_count_matches(
        self, captures, baseline, variant, process_id
    ):
        assert (
            captures[variant].instances_per_process[process_id]
            == baseline.instances_per_process[process_id]
        )

    def test_status_mix_matches(
        self, captures, baseline, variant, process_id
    ):
        def mix(capture):
            return {
                status: n
                for (pid, status), n in capture.statuses_per_process.items()
                if pid == process_id
            }

        assert mix(captures[variant]) == mix(baseline)
