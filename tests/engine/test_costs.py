"""Cost model parameters and breakdowns."""

import pytest

from repro.engine.costs import (
    CostBreakdown,
    CostParameters,
    FEDERATED_COSTS,
    INTERPRETER_COSTS,
)
from repro.errors import EngineError


class TestCostParameters:
    def test_processing_cost_prices_each_kind(self):
        params = CostParameters(relational_unit=1.0, xml_unit=2.0,
                                control_unit=3.0)
        cost = params.processing_cost(
            {"relational": 2.0, "xml": 3.0, "control": 1.0}
        )
        assert cost == pytest.approx(2 + 6 + 3)

    def test_unknown_kind_rejected(self):
        with pytest.raises(EngineError):
            CostParameters().processing_cost({"quantum": 1.0})

    def test_management_grows_with_queue(self):
        params = CostParameters(plan_cost=1.0, reorg_per_queued=0.5)
        assert params.management_cost(0) == 1.0
        assert params.management_cost(4) == 3.0

    def test_negative_queue_rejected(self):
        with pytest.raises(EngineError):
            CostParameters().management_cost(-1)

    def test_federated_profile_penalizes_xml(self):
        """The paper's observation: relational ops are optimizer-covered,
        XML functions are not."""
        assert FEDERATED_COSTS.xml_unit > INTERPRETER_COSTS.xml_unit
        assert FEDERATED_COSTS.relational_unit < INTERPRETER_COSTS.relational_unit
        assert FEDERATED_COSTS.receive_overhead > 0
        assert INTERPRETER_COSTS.receive_overhead == 0


class TestCostBreakdown:
    def test_total(self):
        b = CostBreakdown(1.0, 2.0, 3.0)
        assert b.total == 6.0

    def test_addition(self):
        a = CostBreakdown(1, 1, 1)
        b = CostBreakdown(2, 2, 2)
        assert (a + b).total == 9

    def test_scaled(self):
        assert CostBreakdown(1, 2, 3).scaled(2.0).total == 12.0
