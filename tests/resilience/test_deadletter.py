"""Dead-letter queue: record conversion, accounting, metrics."""

from repro.engine.base import InstanceRecord
from repro.engine.costs import CostBreakdown
from repro.observability.metrics import MetricsRegistry
from repro.resilience import DeadLetter, DeadLetterQueue


def make_record(process_id="P04", error_type="XsdValidationError", **kwargs):
    defaults = dict(
        instance_id=1, process_id=process_id, period=0, stream="B",
        arrival=10.0, start=10.0, completion=12.0, costs=CostBreakdown(),
        status="dead-letter",
        error=f"{error_type}: boom",
        error_type=error_type,
        error_violations=("root: missing attribute",),
        attempts=4,
        fault_types=("NetworkError", error_type),
    )
    defaults.update(kwargs)
    return InstanceRecord(**defaults)


class TestDeadLetter:
    def test_from_record_keeps_structure(self):
        letter = DeadLetter.from_record(make_record())
        assert letter.process_id == "P04"
        assert letter.error_type == "XsdValidationError"
        assert letter.violations == ("root: missing attribute",)
        assert letter.attempts == 4
        assert letter.fault_types == ("NetworkError", "XsdValidationError")
        assert letter.time == 12.0


class TestDeadLetterQueue:
    def test_push_iter_len(self):
        queue = DeadLetterQueue()
        queue.push(DeadLetter.from_record(make_record()))
        queue.push(DeadLetter.from_record(
            make_record(process_id="P08", error_type="CircuitOpenError")
        ))
        assert len(queue) == 2
        assert [l.process_id for l in queue] == ["P04", "P08"]

    def test_by_error_type_and_for_process(self):
        queue = DeadLetterQueue()
        queue.push(DeadLetter.from_record(make_record()))
        queue.push(DeadLetter.from_record(make_record()))
        queue.push(DeadLetter.from_record(
            make_record(process_id="P08", error_type="CircuitOpenError")
        ))
        assert queue.by_error_type() == {
            "XsdValidationError": 2, "CircuitOpenError": 1,
        }
        assert len(queue.for_process("P04")) == 2
        assert len(queue.for_process("P10")) == 0

    def test_clear(self):
        queue = DeadLetterQueue()
        queue.push(DeadLetter.from_record(make_record()))
        queue.clear()
        assert len(queue) == 0

    def test_metrics_counter(self):
        registry = MetricsRegistry()
        queue = DeadLetterQueue(metrics=registry)
        queue.push(DeadLetter.from_record(make_record()))
        counter = registry.counter(
            "resilience_dead_letters_total",
            labels={"process": "P04", "error_type": "XsdValidationError"},
        )
        assert counter.value == 1.0
