"""Circuit breakers: state machine, half-open probing, board gating."""

import pytest

from repro.errors import CircuitOpenError, ResilienceError
from repro.observability.metrics import MetricsRegistry
from repro.resilience import BreakerPolicy, CircuitBreaker, CircuitBreakerBoard
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN


@pytest.fixture()
def breaker():
    return CircuitBreaker(
        "dwh",
        BreakerPolicy(failure_threshold=3, reset_timeout=10.0,
                      half_open_probes=1),
    )


class TestBreakerPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"reset_timeout": 0.0},
            {"half_open_probes": 0},
        ],
    )
    def test_invalid_knobs(self, kwargs):
        with pytest.raises(ResilienceError):
            BreakerPolicy(**kwargs)


class TestStateMachine:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == CLOSED
        assert breaker.allow(0.0)

    def test_opens_after_threshold_consecutive_failures(self, breaker):
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        assert breaker.state == CLOSED
        breaker.record_failure(3.0)
        assert breaker.state == OPEN
        assert breaker.opened_at == 3.0
        assert not breaker.allow(4.0)

    def test_success_resets_failure_count(self, breaker):
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        breaker.record_success(3.0)
        breaker.record_failure(4.0)
        breaker.record_failure(5.0)
        assert breaker.state == CLOSED

    def test_half_open_after_reset_timeout(self, breaker):
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(t)
        assert not breaker.allow(12.9)  # 3.0 + 10.0 not yet reached
        assert breaker.allow(13.0)      # probe passes
        assert breaker.state == HALF_OPEN

    def test_half_open_probe_budget(self, breaker):
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(t)
        assert breaker.allow(13.0)
        assert not breaker.allow(13.1)  # only one probe allowed

    def test_probe_success_closes(self, breaker):
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(t)
        assert breaker.allow(13.0)
        breaker.record_success(13.5)
        assert breaker.state == CLOSED
        assert breaker.allow(13.6)

    def test_probe_failure_reopens(self, breaker):
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(t)
        assert breaker.allow(13.0)
        breaker.record_failure(13.5)
        assert breaker.state == OPEN
        assert breaker.opened_at == 13.5
        assert not breaker.allow(14.0)

    def test_transitions_recorded_and_open_time(self, breaker):
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(t)
        breaker.allow(13.0)
        breaker.record_success(13.0)
        assert [state for _, state in breaker.transitions] == [
            OPEN, HALF_OPEN, CLOSED,
        ]
        assert breaker.time_in_open == pytest.approx(10.0)


class TestBoard:
    def test_breaker_get_or_create(self):
        board = CircuitBreakerBoard()
        assert board.breaker("a") is board.breaker("a")
        assert board.breaker("a") is not board.breaker("b")

    def test_before_call_raises_when_open(self):
        registry = MetricsRegistry()
        board = CircuitBreakerBoard(
            BreakerPolicy(failure_threshold=1, reset_timeout=100.0),
            metrics=registry,
        )
        board.now = 1.0
        board.record_failure("dwh")
        board.now = 2.0
        with pytest.raises(CircuitOpenError, match="dwh"):
            board.before_call("dwh")
        rejections = registry.counter(
            "circuit_rejections_total", labels={"service": "dwh"}
        )
        assert rejections.value == 1.0

    def test_closed_breaker_passes(self):
        board = CircuitBreakerBoard()
        board.before_call("dwh")  # no raise

    def test_reset_clears_state(self):
        board = CircuitBreakerBoard(BreakerPolicy(failure_threshold=1))
        board.now = 5.0
        board.record_failure("dwh")
        assert board.state_counts() == {OPEN: 1}
        board.reset()
        assert board.state_counts() == {}
        assert board.now == 0.0
        board.before_call("dwh")  # fresh breaker, closed again

    def test_transition_metrics(self):
        registry = MetricsRegistry()
        board = CircuitBreakerBoard(
            BreakerPolicy(failure_threshold=1, reset_timeout=5.0),
            metrics=registry,
        )
        board.now = 1.0
        board.record_failure("dwh")
        board.now = 7.0
        board.before_call("dwh")  # half-open probe
        board.record_success("dwh")
        for state in (OPEN, HALF_OPEN, CLOSED):
            counter = registry.counter(
                "circuit_transitions_total",
                labels={"service": "dwh", "to": state},
            )
            assert counter.value == 1.0
        open_time = registry.counter(
            "circuit_open_time_total", labels={"service": "dwh"}
        )
        assert open_time.value == pytest.approx(6.0)
