"""Retry policy: backoff math, jitter bounds, failure classification."""

import random

import pytest

from repro.errors import (
    AttemptTimeout,
    CircuitOpenError,
    EndpointUnavailableError,
    NetworkError,
    ResilienceError,
    TransientEngineFault,
    XsdValidationError,
)
from repro.observability.metrics import MetricsRegistry
from repro.resilience import (
    DeadLetterQueue,
    ResilienceContext,
    RetryPolicy,
    is_retryable,
)


class TestRetryPolicyValidation:
    def test_defaults_valid(self):
        RetryPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
            {"timeout": 0.0},
        ],
    )
    def test_invalid_knobs(self, kwargs):
        with pytest.raises(ResilienceError):
            RetryPolicy(**kwargs)


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_delay=4.0, multiplier=2.0,
                             max_delay=64.0, jitter=0.0)
        rng = random.Random(0)
        assert [policy.delay(n, rng) for n in (1, 2, 3, 4)] == [
            4.0, 8.0, 16.0, 32.0,
        ]

    def test_capped_at_max_delay(self):
        policy = RetryPolicy(base_delay=4.0, multiplier=2.0,
                             max_delay=10.0, jitter=0.0)
        assert policy.delay(5, random.Random(0)) == 10.0

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay=8.0, multiplier=1.0, jitter=0.25)
        rng = random.Random(1)
        delays = [policy.delay(1, rng) for _ in range(200)]
        assert all(6.0 <= d <= 10.0 for d in delays)
        assert len(set(delays)) > 1

    def test_jitter_deterministic_per_seed(self):
        policy = RetryPolicy()

        def run(seed):
            rng = random.Random(seed)
            return [policy.delay(n, rng) for n in (1, 2, 3)]

        assert run(4) == run(4)
        assert run(4) != run(5)


class TestClassification:
    @pytest.mark.parametrize(
        "exc",
        [
            NetworkError("x"),
            EndpointUnavailableError("x"),
            TransientEngineFault("x"),
            CircuitOpenError("x"),
            AttemptTimeout("x"),
        ],
    )
    def test_transient_errors_retry(self, exc):
        assert is_retryable(exc)

    @pytest.mark.parametrize(
        "exc",
        [
            XsdValidationError("x", violations=["v"]),
            ValueError("x"),
            RuntimeError("x"),
        ],
    )
    def test_poison_errors_do_not_retry(self, exc):
        assert not is_retryable(exc)


class TestResilienceContext:
    def test_next_delay_deterministic_per_seed(self):
        def delays(seed):
            context = ResilienceContext(policy=RetryPolicy(), seed=seed)
            return [context.next_delay(n) for n in (1, 2, 3)]

        assert delays(7) == delays(7)
        assert delays(7) != delays(8)

    def test_observe_retry_emits_metrics(self):
        registry = MetricsRegistry()
        context = ResilienceContext(metrics=registry, seed=0)
        context.observe_retry("P04", 4.5)
        counter = registry.counter(
            "resilience_retries_total", labels={"process": "P04"}
        )
        assert counter.value == 1.0

    def test_account_routes_dead_letters(self):
        from repro.engine.base import InstanceRecord
        from repro.engine.costs import CostBreakdown

        queue = DeadLetterQueue()
        context = ResilienceContext(dead_letters=queue, seed=0)
        record = InstanceRecord(
            instance_id=1, process_id="P04", period=0, stream="B",
            arrival=1.0, start=1.0, completion=1.0, costs=CostBreakdown(),
            status="dead-letter", error="XsdValidationError: bad",
            error_type="XsdValidationError",
            error_violations=("missing attribute",), attempts=2,
            fault_types=("XsdValidationError",),
        )
        context.account(record, mttr=None)
        assert len(queue) == 1
        letter = next(iter(queue))
        assert letter.error_type == "XsdValidationError"
        assert letter.violations == ("missing attribute",)

    def test_account_counts_recoveries(self):
        from repro.engine.base import InstanceRecord
        from repro.engine.costs import CostBreakdown

        registry = MetricsRegistry()
        context = ResilienceContext(metrics=registry, seed=0)
        record = InstanceRecord(
            instance_id=2, process_id="P08", period=0, stream="B",
            arrival=1.0, start=5.0, completion=6.0, costs=CostBreakdown(),
            status="ok", attempts=3,
        )
        assert record.recovered and record.retries == 2
        context.account(record, mttr=4.0)
        counter = registry.counter(
            "resilience_recovered_total", labels={"process": "P08"}
        )
        assert counter.value == 1.0
