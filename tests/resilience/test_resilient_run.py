"""End-to-end degraded runs: recovery, determinism, byte-identity.

The canned spec mirrors ``examples/faults_basic.json`` (and the example
file itself is loaded to keep it honest): one partition, one link
degradation, one endpoint outage, transient engine faults and a poison
message, all pinned to period 0 of a seed-42 run.
"""

import os

import pytest

from repro.engine import MtmInterpreterEngine
from repro.observability import Observability
from repro.resilience import FaultSpec, RetryPolicy
from repro.scenario import build_scenario
from repro.toolsuite import BenchmarkClient, ScaleFactors

EXAMPLE_SPEC = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "faults_basic.json"
)


def run_benchmark(faults=None, resilience=None, periods=1, seed=42):
    scenario = build_scenario()
    engine = MtmInterpreterEngine(scenario.registry)
    observability = Observability()
    client = BenchmarkClient(
        scenario, engine, ScaleFactors(datasize=0.05),
        periods=periods, seed=seed, observability=observability,
        faults=faults, resilience=resilience,
    )
    result = client.run()
    return client, result, observability


@pytest.fixture(scope="module")
def degraded():
    """One period under the canned example spec, shared by read-only tests."""
    spec = FaultSpec.load(EXAMPLE_SPEC)
    return run_benchmark(faults=spec, resilience=RetryPolicy())


class TestDegradedRun:
    def test_run_completes_with_recoveries(self, degraded):
        _, result, _ = degraded
        assert result.total_instances > 150
        assert result.recovered_instances >= 2
        assert result.total_retries >= result.recovered_instances

    def test_poison_message_dead_lettered_with_structure(self, degraded):
        _, result, _ = degraded
        poisoned = [
            l for l in result.dead_letters
            if l.error_type == "XsdValidationError"
        ]
        assert poisoned
        assert poisoned[0].process_id == "P04"
        assert poisoned[0].violations  # XSD detail survives dead-lettering
        assert poisoned[0].attempts == 1  # poison is not retried

    def test_verification_reports_only_dead_lettered_data(self, degraded):
        """Data checks see exactly the loss the dead-letter queue explains.

        The two P08 orders the open breaker dead-lettered never reached
        the warehouse, and phase-post reconciliation reports precisely
        them — degraded data completeness is visible, not silent.  (A
        follow-up clean period passes verification again; the CI smoke
        run covers that.)
        """
        _, result, _ = degraded
        dead_by_process = {}
        for letter in result.dead_letters:
            dead_by_process[letter.process_id] = (
                dead_by_process.get(letter.process_id, 0) + 1
            )
        assert dead_by_process  # the spec produced dead letters
        # P04 ingests Vienna orders, P08 Hongkong orders; each missing
        # count equals what was dead-lettered for that feed.
        feed_of = {"P04": "vienna", "P08": "hongkong"}
        expected = {
            f"{feed_of[pid]}_orders_reconciled": count
            for pid, count in dead_by_process.items()
        }
        assert len(result.verification.failures) == len(expected)
        for failure in result.verification.failures:
            name, _, detail = failure.partition(": ")
            assert name in expected
            assert detail.startswith(f"{expected[name]}/")

    def test_monitor_summary_matches_result(self, degraded):
        client, result, _ = degraded
        summary = client.monitor.resilience_summary()
        assert summary.degraded
        assert summary.recovered == result.recovered_instances
        assert summary.dead_lettered == len(result.dead_letters)
        assert summary.total == result.total_instances
        assert "recovered=" in summary.describe()

    def test_recovery_metrics_exported(self, degraded):
        _, _, observability = degraded
        text = observability.prometheus()
        assert "resilience_recovered_total" in text
        assert "resilience_retries_total" in text
        assert "faults_injected_total" in text
        assert "resilience_dead_letters_total" in text

    def test_degraded_instance_spans_annotated(self, degraded):
        _, _, observability = degraded
        retried = [
            s for s in observability.tracer.spans_of_kind("instance")
            if s.attributes.get("attempts", 1) > 1
        ]
        assert retried


class TestDeterminism:
    def test_same_seed_same_spec_identical_results(self, degraded):
        _, first, first_obs = degraded
        spec = FaultSpec.load(EXAMPLE_SPEC)
        _, second, second_obs = run_benchmark(
            faults=spec, resilience=RetryPolicy()
        )
        assert first.records == second.records
        assert first.dead_letters == second.dead_letters
        assert first_obs.prometheus() == second_obs.prometheus()

    def test_empty_spec_byte_identical_to_plain_run(self):
        _, plain, plain_obs = run_benchmark()
        empty = FaultSpec(name="empty", seed=42, events=())
        _, guarded, guarded_obs = run_benchmark(
            faults=empty, resilience=RetryPolicy()
        )
        assert plain.records == guarded.records
        assert guarded.recovered_instances == 0
        assert len(guarded.dead_letters) == 0
        assert plain_obs.prometheus() == guarded_obs.prometheus()


class TestClientBoundary:
    def test_engine_exception_recorded_and_period_continues(self):
        scenario = build_scenario()
        engine = MtmInterpreterEngine(scenario.registry)
        original = engine.handle_event

        def explode_on_p04(event):
            if event.process_id == "P04" and event.deadline > 50.0:
                raise RuntimeError("engine blew up mid-period")
            return original(event)

        engine.handle_event = explode_on_p04
        client = BenchmarkClient(
            scenario, engine, ScaleFactors(datasize=0.05),
            periods=1, seed=42,
        )
        result = client.run()  # must not abort the period
        failed = [r for r in result.records if r.status == "error"]
        assert failed
        assert all(r.process_id == "P04" for r in failed)
        assert failed[0].error_type == "RuntimeError"
        assert "engine blew up" in failed[0].error
        # The rest of the period still executed: other streams completed.
        executed = {r.process_id for r in result.records}
        assert {"P08", "P10", "P12", "P15"} <= executed
