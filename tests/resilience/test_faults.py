"""Fault specs: validation, JSON round-trips, timelines, corruption."""

import random

import pytest

from repro.errors import FaultSpecError
from repro.resilience import FAULT_KINDS, FaultEvent, FaultSpec, corrupt_document
from repro.xmlkit.doc import XmlElement


class TestFaultEventValidation:
    def test_unknown_kind(self):
        problems = FaultEvent(at=1.0, kind="meteor").validate()
        assert problems and "unknown kind" in problems[0]

    def test_link_kinds_need_hosts(self):
        for kind in ("partition", "heal", "degrade", "restore_link"):
            assert FaultEvent(at=0.0, kind=kind).validate()
            assert not FaultEvent(
                at=0.0, kind=kind, src="A", dst="B"
            ).validate()

    def test_service_kinds_need_service(self):
        assert FaultEvent(at=0.0, kind="outage").validate()
        assert not FaultEvent(at=0.0, kind="outage", service="dwh").validate()

    def test_process_kinds_need_process(self):
        assert FaultEvent(at=0.0, kind="corrupt").validate()
        assert not FaultEvent(
            at=0.0, kind="engine_fault", process="P04"
        ).validate()

    def test_negative_time(self):
        problems = FaultEvent(
            at=-1.0, kind="outage", service="dwh"
        ).validate()
        assert any("time must be >= 0" in p for p in problems)

    def test_count_below_one(self):
        problems = FaultEvent(
            at=0.0, kind="corrupt", process="P04", count=0
        ).validate()
        assert any("count must be >= 1" in p for p in problems)

    def test_degrade_factor_below_one(self):
        problems = FaultEvent(
            at=0.0, kind="degrade", src="A", dst="B", factor=0.5
        ).validate()
        assert any("factor must be >= 1" in p for p in problems)

    def test_duration_only_on_recoverable_kinds(self):
        problems = FaultEvent(
            at=0.0, kind="engine_fault", process="P04", duration=5.0
        ).validate()
        assert any("duration only applies" in p for p in problems)

    def test_nonpositive_duration(self):
        problems = FaultEvent(
            at=0.0, kind="outage", service="dwh", duration=0.0
        ).validate()
        assert any("duration must be > 0" in p for p in problems)


class TestRecoveryExpansion:
    def test_partition_heals(self):
        event = FaultEvent(
            at=10.0, kind="partition", src="A", dst="B", duration=5.0
        )
        recovery = event.recovery()
        assert recovery.kind == "heal"
        assert recovery.at == 15.0
        assert recovery.duration is None
        assert (recovery.src, recovery.dst) == ("A", "B")

    def test_degrade_restores_link(self):
        recovery = FaultEvent(
            at=0.0, kind="degrade", src="A", dst="B", duration=2.0
        ).recovery()
        assert recovery.kind == "restore_link"

    def test_outage_restores(self):
        recovery = FaultEvent(
            at=0.0, kind="outage", service="dwh", duration=2.0
        ).recovery()
        assert recovery.kind == "restore"

    def test_no_duration_no_recovery(self):
        assert FaultEvent(
            at=0.0, kind="partition", src="A", dst="B"
        ).recovery() is None


class TestTimeline:
    def _spec(self):
        return FaultSpec(
            name="t",
            seed=1,
            events=(
                FaultEvent(at=30.0, kind="outage", service="dwh",
                           duration=10.0, period=0),
                FaultEvent(at=5.0, kind="partition", src="A", dst="B"),
                FaultEvent(at=5.0, kind="corrupt", process="P04", period=1),
            ),
        )

    def test_period_pinning(self):
        spec = self._spec()
        kinds_p0 = [e.kind for e in spec.timeline(0)]
        kinds_p1 = [e.kind for e in spec.timeline(1)]
        # outage+restore only in period 0, corrupt only in period 1,
        # the unpinned partition recurs in both.
        assert kinds_p0 == ["partition", "outage", "restore"]
        assert kinds_p1 == ["partition", "corrupt"]

    def test_timeline_sorted_with_stable_ties(self):
        spec = self._spec()
        times = [e.at for e in spec.timeline(1)]
        assert times == sorted(times)
        # Tie at t=5: declaration order preserved.
        assert [e.kind for e in spec.timeline(1)] == ["partition", "corrupt"]

    def test_recovery_expanded_at_right_time(self):
        restore = [e for e in self._spec().timeline(0) if e.kind == "restore"]
        assert restore and restore[0].at == 40.0


class TestJsonRoundTrip:
    def test_round_trip(self):
        spec = FaultSpec(
            name="rt",
            seed=9,
            events=(
                FaultEvent(at=1.0, kind="partition", src="A", dst="B",
                           duration=2.0, period=0),
                FaultEvent(at=3.0, kind="degrade", src="A", dst="B",
                           factor=3.0),
                FaultEvent(at=4.0, kind="corrupt", process="P04", count=2),
            ),
        )
        assert FaultSpec.from_json(spec.to_json()) == spec

    def test_load_dump_round_trip(self, tmp_path):
        spec = FaultSpec(
            name="file", seed=3,
            events=(FaultEvent(at=1.0, kind="outage", service="dwh"),),
        )
        path = str(tmp_path / "spec.json")
        spec.dump(path)
        assert FaultSpec.load(path) == spec

    def test_unknown_event_key_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown keys"):
            FaultEvent.from_dict({"at": 1.0, "kind": "outage", "sevrice": "x"})

    def test_missing_at_or_kind_rejected(self):
        with pytest.raises(FaultSpecError, match="'at' and 'kind'"):
            FaultEvent.from_dict({"kind": "outage"})

    def test_events_must_be_list(self):
        with pytest.raises(FaultSpecError, match="must be a list"):
            FaultSpec.from_dict({"events": "nope"})

    def test_invalid_json_rejected(self):
        with pytest.raises(FaultSpecError, match="not valid JSON"):
            FaultSpec.from_json("{nope")

    def test_describe_lists_expanded_events(self):
        spec = FaultSpec(
            name="d", seed=0,
            events=(FaultEvent(at=1.0, kind="outage", service="dwh",
                               duration=4.0),),
        )
        text = spec.describe()
        assert "'d'" in text and "outage" in text and "restore" in text


class TestSpecCrossValidation:
    def test_unknown_host_service_process(self):
        spec = FaultSpec(events=(
            FaultEvent(at=0.0, kind="partition", src="XX", dst="IS"),
            FaultEvent(at=0.0, kind="outage", service="ghost"),
            FaultEvent(at=0.0, kind="corrupt", process="P99"),
        ))
        problems = spec.validate(
            hosts=["IS", "ES"], services=["dwh"], processes=["P04"]
        )
        text = "\n".join(problems)
        assert "unknown host 'XX'" in text
        assert "unknown service 'ghost'" in text
        assert "unknown process 'P99'" in text

    def test_valid_spec_no_problems(self):
        spec = FaultSpec(events=(
            FaultEvent(at=0.0, kind="partition", src="IS", dst="ES"),
        ))
        assert spec.validate(hosts=["IS", "ES"]) == []


class TestCorruptDocument:
    def _doc(self, **attributes):
        root = XmlElement("Order", attributes=dict(attributes))
        root.add(XmlElement("Line", text="1"))
        return root

    def test_drops_attribute_or_appends_element(self):
        doc = self._doc(id="1", status="new")
        mutation = corrupt_document(doc, random.Random(0))
        assert ("dropped root attribute" in mutation
                or "__Corrupted__" in mutation)

    def test_without_attributes_always_appends(self):
        doc = self._doc()
        mutation = corrupt_document(doc, random.Random(0))
        assert "__Corrupted__" in mutation
        assert any(c.tag == "__Corrupted__" for c in doc.children)

    def test_deterministic_per_seed(self):
        m1 = corrupt_document(self._doc(id="1"), random.Random(5))
        m2 = corrupt_document(self._doc(id="1"), random.Random(5))
        assert m1 == m2


def test_fault_kinds_exported():
    assert set(FAULT_KINDS) == {
        "partition", "heal", "degrade", "restore_link",
        "outage", "restore", "engine_fault", "corrupt", "crash",
    }
