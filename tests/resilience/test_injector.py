"""FaultInjector: timed application, period lifecycle, corruption hooks."""

import pytest

from repro.errors import NetworkError
from repro.resilience import FaultEvent, FaultInjector, FaultSpec
from repro.scenario import build_scenario
from repro.scenario.messages import MessageFactory
from repro.scenario.xmlschemas import message_schemas
from repro.datagen.generators import GeneratorProfile
from repro.toolsuite import Initializer


@pytest.fixture()
def scenario():
    return build_scenario()


def make_injector(scenario, *events, seed=0):
    spec = FaultSpec(name="t", seed=seed, events=tuple(events))
    return FaultInjector(spec, registry=scenario.registry,
                         schemas=message_schemas())


class TestTimedApplication:
    def test_partition_applies_at_scheduled_time(self, scenario):
        injector = make_injector(
            scenario,
            FaultEvent(at=10.0, kind="partition", src="IS", dst="ES"),
        )
        injector.begin_period(0)
        injector.advance_to(9.9)
        assert not scenario.network.is_partitioned("IS", "ES")
        injector.advance_to(10.0)
        assert scenario.network.is_partitioned("IS", "ES")
        with pytest.raises(NetworkError):
            scenario.network.transfer_cost("IS", "ES", 1.0)

    def test_duration_heals_automatically(self, scenario):
        injector = make_injector(
            scenario,
            FaultEvent(at=10.0, kind="partition", src="IS", dst="ES",
                       duration=5.0),
        )
        injector.begin_period(0)
        injector.advance_to(12.0)
        assert scenario.network.is_partitioned("IS", "ES")
        injector.advance_to(15.0)
        assert not scenario.network.is_partitioned("IS", "ES")
        assert scenario.network.transfer_cost("IS", "ES", 1.0) > 0

    def test_degrade_multiplies_and_restores(self, scenario):
        base = scenario.network.transfer_cost("IS", "ES", 10.0)
        injector = make_injector(
            scenario,
            FaultEvent(at=1.0, kind="degrade", src="IS", dst="ES",
                       factor=3.0, duration=4.0),
        )
        injector.begin_period(0)
        injector.advance_to(1.0)
        assert scenario.network.transfer_cost("IS", "ES", 10.0) == (
            pytest.approx(3.0 * base)
        )
        injector.advance_to(5.0)
        assert scenario.network.transfer_cost("IS", "ES", 10.0) == (
            pytest.approx(base)
        )

    def test_outage_flips_endpoint_availability(self, scenario):
        injector = make_injector(
            scenario,
            FaultEvent(at=2.0, kind="outage", service="dwh", duration=3.0),
        )
        injector.begin_period(0)
        endpoint = scenario.registry.lookup("dwh")
        assert endpoint.available
        injector.advance_to(2.0)
        assert not endpoint.available
        injector.advance_to(5.0)
        assert endpoint.available

    def test_metrics_count_injections(self, scenario):
        from repro.observability.metrics import MetricsRegistry

        registry = MetricsRegistry()
        spec = FaultSpec(events=(
            FaultEvent(at=1.0, kind="outage", service="dwh", duration=1.0),
        ))
        injector = FaultInjector(spec, registry=scenario.registry,
                                 metrics=registry)
        injector.begin_period(0)
        injector.advance_to(3.0)
        for kind in ("outage", "restore"):
            counter = registry.counter(
                "faults_injected_total", labels={"kind": kind}
            )
            assert counter.value == 1.0


class TestPeriodLifecycle:
    def test_end_period_heals_everything(self, scenario):
        injector = make_injector(
            scenario,
            FaultEvent(at=1.0, kind="partition", src="IS", dst="ES"),
            FaultEvent(at=1.0, kind="degrade", src="CS", dst="IS", factor=2.0),
            FaultEvent(at=1.0, kind="outage", service="dwh"),
        )
        injector.begin_period(0)
        injector.advance_to(1.0)
        injector.end_period()
        assert not scenario.network.is_partitioned("IS", "ES")
        assert scenario.network.degradation("CS", "IS") == 1.0
        assert scenario.registry.lookup("dwh").available

    def test_period_pinned_events_skip_other_periods(self, scenario):
        injector = make_injector(
            scenario,
            FaultEvent(at=1.0, kind="partition", src="IS", dst="ES",
                       period=0),
        )
        injector.begin_period(1)
        injector.advance_to(100.0)
        assert not scenario.network.is_partitioned("IS", "ES")
        injector.begin_period(0)
        injector.advance_to(1.0)
        assert scenario.network.is_partitioned("IS", "ES")

    def test_unpinned_events_recur_every_period(self, scenario):
        injector = make_injector(
            scenario,
            FaultEvent(at=1.0, kind="outage", service="dwh", duration=1.0),
        )
        for period in (0, 1):
            injector.begin_period(period)
            injector.advance_to(1.5)
            assert not scenario.registry.lookup("dwh").available
            injector.end_period()
            assert scenario.registry.lookup("dwh").available


class TestEngineHooks:
    def test_engine_fault_consumed_count_times(self, scenario):
        injector = make_injector(
            scenario,
            FaultEvent(at=0.0, kind="engine_fault", process="P10", count=2),
        )
        injector.begin_period(0)
        injector.advance_to(0.0)
        assert injector.take_engine_fault("P10")
        assert injector.take_engine_fault("P10")
        assert not injector.take_engine_fault("P10")
        assert not injector.take_engine_fault("P04")


class TestCorruption:
    @pytest.fixture()
    def factory(self, scenario):
        initializer = Initializer(
            scenario, d=1.0, f=0, seed=7,
            profile=GeneratorProfile(
                customers_base=40, products_base=20, orders_base=40,
            ),
        )
        population = initializer.initialize_sources(0)
        return MessageFactory(population, seed=3)

    def test_corrupt_marks_message_and_registers_schema(self, scenario, factory):
        injector = make_injector(
            scenario,
            FaultEvent(at=0.0, kind="corrupt", process="P04", count=1),
        )
        injector.begin_period(0)
        injector.advance_to(0.0)
        message = factory.vienna_order()
        assert injector.maybe_corrupt("P04", message)
        assert injector.was_corrupted(message)
        assert "corrupted" in message.headers
        schema = injector.corruption_schema(message)
        assert schema is not None
        assert schema.validate(message.xml())  # real violations

    def test_count_exhausts(self, scenario, factory):
        injector = make_injector(
            scenario,
            FaultEvent(at=0.0, kind="corrupt", process="P04", count=1),
        )
        injector.begin_period(0)
        injector.advance_to(0.0)
        first = factory.vienna_order()
        second = factory.vienna_order()
        assert injector.maybe_corrupt("P04", first)
        assert not injector.maybe_corrupt("P04", second)
        assert not injector.was_corrupted(second)

    def test_deterministic_mutation_per_seed(self, scenario, factory):
        def mutate(seed):
            injector = make_injector(
                scenario,
                FaultEvent(at=0.0, kind="corrupt", process="P04", count=1),
                seed=seed,
            )
            injector.begin_period(0)
            injector.advance_to(0.0)
            message = factory.vienna_order()
            injector.maybe_corrupt("P04", message)
            return message.headers["corrupted"]

        assert mutate(1) == mutate(1)
