"""Timeline consistency validation of fault specs.

A spec that schedules overlapping same-kind faults on one endpoint, a
degradation of a severed link, or a crash inside an active partition of
the engine host describes a physically impossible experiment — it must
be rejected up front, with an error naming both offending events.
"""

import pytest

from repro.engine import ENGINES
from repro.errors import FaultSpecError
from repro.resilience import FaultEvent, FaultSpec
from repro.scenario import build_scenario
from repro.toolsuite import BenchmarkClient


def _client_with(events):
    scenario = build_scenario(seed=3)
    engine = ENGINES["interpreter"](scenario.registry)
    return BenchmarkClient(
        scenario,
        engine,
        periods=1,
        seed=3,
        faults=FaultSpec(name="t", events=tuple(events)),
        durability="wal",
    )


class TestOverlappingSameKind:
    def test_overlapping_outages_rejected(self):
        spec = FaultSpec(events=(
            FaultEvent(at=10.0, kind="outage", service="svc", duration=50.0),
            FaultEvent(at=30.0, kind="outage", service="svc", duration=10.0),
        ))
        problems = spec.timeline_problems()
        assert len(problems) == 1
        # The error names both offending events.
        assert "t=    10.0" in problems[0]
        assert "t=    30.0" in problems[0]
        assert "overlapping outage" in problems[0]

    def test_overlapping_partitions_rejected_direction_insensitive(self):
        spec = FaultSpec(events=(
            FaultEvent(at=5.0, kind="partition", src="ES", dst="CS",
                       duration=100.0),
            FaultEvent(at=50.0, kind="partition", src="CS", dst="ES",
                       duration=10.0),
        ))
        assert any(
            "overlapping partition" in p for p in spec.timeline_problems()
        )

    def test_unrecovered_fault_is_open_ended(self):
        # No duration and no explicit restore: the window runs to period
        # end, so a later same-endpoint fault overlaps it.
        spec = FaultSpec(events=(
            FaultEvent(at=10.0, kind="outage", service="svc"),
            FaultEvent(at=500.0, kind="outage", service="svc"),
        ))
        assert spec.timeline_problems()

    def test_explicit_recovery_closes_the_window(self):
        spec = FaultSpec(events=(
            FaultEvent(at=10.0, kind="outage", service="svc"),
            FaultEvent(at=40.0, kind="restore", service="svc"),
            FaultEvent(at=40.0, kind="outage", service="svc", duration=5.0),
        ))
        assert spec.timeline_problems() == []

    def test_sequential_faults_are_fine(self):
        spec = FaultSpec(events=(
            FaultEvent(at=10.0, kind="outage", service="svc", duration=20.0),
            FaultEvent(at=30.0, kind="outage", service="svc", duration=10.0),
            FaultEvent(at=10.0, kind="outage", service="other",
                       duration=100.0),
        ))
        assert spec.timeline_problems() == []


class TestContradictoryKinds:
    def test_degrade_inside_partition_rejected(self):
        spec = FaultSpec(events=(
            FaultEvent(at=10.0, kind="partition", src="ES", dst="IS",
                       duration=40.0),
            FaultEvent(at=20.0, kind="degrade", src="IS", dst="ES",
                       factor=3.0, duration=5.0),
        ))
        problems = spec.timeline_problems()
        assert len(problems) == 1
        assert "cannot degrade a partitioned link" in problems[0]

    def test_partition_starting_inside_degrade_rejected(self):
        # Either order is contradictory: the overlap matters, not which
        # fault struck first.
        spec = FaultSpec(events=(
            FaultEvent(at=10.0, kind="degrade", src="ES", dst="IS",
                       factor=2.0, duration=40.0),
            FaultEvent(at=20.0, kind="partition", src="ES", dst="IS",
                       duration=5.0),
        ))
        assert any(
            "cannot degrade a partitioned link" in p
            for p in spec.timeline_problems()
        )

    def test_degrade_on_a_different_link_is_fine(self):
        spec = FaultSpec(events=(
            FaultEvent(at=10.0, kind="partition", src="ES", dst="CS",
                       duration=40.0),
            FaultEvent(at=20.0, kind="degrade", src="ES", dst="IS",
                       factor=3.0, duration=5.0),
        ))
        assert spec.timeline_problems() == []


class TestCrashInsidePartition:
    def test_crash_during_engine_host_partition_rejected(self):
        spec = FaultSpec(events=(
            FaultEvent(at=10.0, kind="partition", src="ES", dst="IS",
                       duration=40.0),
            FaultEvent(at=20.0, kind="crash", point="arrival"),
        ))
        problems = spec.timeline_problems()
        assert len(problems) == 1
        assert "crash during an active partition" in problems[0]

    def test_crash_after_the_partition_heals_is_fine(self):
        spec = FaultSpec(events=(
            FaultEvent(at=10.0, kind="partition", src="ES", dst="IS",
                       duration=40.0),
            FaultEvent(at=60.0, kind="crash", point="commit"),
        ))
        assert spec.timeline_problems() == []

    def test_crash_during_non_engine_partition_is_fine(self):
        spec = FaultSpec(events=(
            FaultEvent(at=10.0, kind="partition", src="ES", dst="CS",
                       duration=40.0),
            FaultEvent(at=20.0, kind="crash", point="arrival"),
        ))
        assert spec.timeline_problems() == []


class TestPeriodScoping:
    def test_different_periods_do_not_conflict(self):
        spec = FaultSpec(events=(
            FaultEvent(at=10.0, kind="outage", service="svc",
                       duration=50.0, period=0),
            FaultEvent(at=30.0, kind="outage", service="svc",
                       duration=10.0, period=1),
        ))
        assert spec.timeline_problems() == []

    def test_every_period_event_conflicts_with_pinned_one(self):
        # period=None recurs in every period, so it overlaps the
        # period-1 pinned event too.
        spec = FaultSpec(events=(
            FaultEvent(at=10.0, kind="outage", service="svc",
                       duration=50.0),
            FaultEvent(at=30.0, kind="outage", service="svc",
                       duration=10.0, period=1),
        ))
        assert spec.timeline_problems()


class TestValidateIntegration:
    def test_validate_surfaces_timeline_problems(self):
        spec = FaultSpec(events=(
            FaultEvent(at=10.0, kind="partition", src="ES", dst="IS",
                       duration=40.0),
            FaultEvent(at=20.0, kind="crash", point="arrival"),
        ))
        assert any(
            "crash during an active partition" in p for p in spec.validate()
        )

    def test_client_rejects_contradictory_spec(self):
        with pytest.raises(FaultSpecError) as err:
            _client_with((
                FaultEvent(at=10.0, kind="outage",
                           service="beijing",
                           duration=50.0),
                FaultEvent(at=30.0, kind="outage",
                           service="beijing",
                           duration=10.0),
            ))
        assert "overlapping outage" in str(err.value)

    def test_client_accepts_consistent_spec(self):
        client = _client_with((
            FaultEvent(at=10.0, kind="outage",
                       service="beijing", duration=20.0),
            FaultEvent(at=100.0, kind="crash", point="commit"),
        ))
        assert client.resilience is not None
