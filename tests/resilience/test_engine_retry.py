"""The engine's retry loop: backoff admission, recovery, dead-lettering."""

import pytest

from repro.engine import MtmInterpreterEngine, ProcessEvent
from repro.errors import NetworkError
from repro.mtm import (
    Assign,
    EventType,
    ProcessGroup,
    ProcessType,
    Sequence,
    Signal,
)
from repro.resilience import (
    DeadLetterQueue,
    FaultEvent,
    FaultInjector,
    FaultSpec,
    ResilienceContext,
    RetryPolicy,
)
from repro.services import Network, ServiceRegistry


def fresh_registry():
    net = Network()
    net.add_host("IS")
    return ServiceRegistry(net)


def simple_e2(pid="PX"):
    return ProcessType(
        pid, ProcessGroup.B, "test", EventType.E2_SCHEDULE,
        Sequence([Signal()]),
    )


def make_context(registry, *events, max_attempts=4, timeout=None):
    spec = FaultSpec(name="t", seed=1, events=tuple(events))
    return ResilienceContext(
        policy=RetryPolicy(
            max_attempts=max_attempts, base_delay=4.0, multiplier=2.0,
            jitter=0.0, timeout=timeout,
        ),
        injector=FaultInjector(spec, registry=registry),
        dead_letters=DeadLetterQueue(),
        seed=1,
    )


def start_period(context):
    context.begin_period(0)


class TestTransientRecovery:
    def test_one_injected_fault_recovers_on_second_attempt(self):
        engine = MtmInterpreterEngine(fresh_registry())
        context = make_context(
            engine.registry,
            FaultEvent(at=0.0, kind="engine_fault", process="PX", count=1),
        )
        engine.resilience = context
        start_period(context)
        engine.deploy(simple_e2("PX"))
        record = engine.handle_event(ProcessEvent("PX", 10.0))
        assert record.status == "ok"
        assert record.attempts == 2
        assert record.recovered and record.retries == 1
        assert record.fault_types == ("TransientEngineFault",)
        assert record.arrival == 10.0  # deadline preserved
        assert record.start >= 14.0    # admitted only after the backoff
        assert engine.recovered_records() == [record]

    def test_retry_exhaustion_dead_letters(self):
        engine = MtmInterpreterEngine(fresh_registry())
        context = make_context(
            engine.registry,
            FaultEvent(at=0.0, kind="engine_fault", process="PX", count=99),
            max_attempts=3,
        )
        engine.resilience = context
        start_period(context)
        engine.deploy(simple_e2("PX"))
        record = engine.handle_event(ProcessEvent("PX", 0.0))
        assert record.status == "dead-letter"
        assert record.attempts == 3
        assert record.error_type == "TransientEngineFault"
        assert record.fault_types == ("TransientEngineFault",) * 3
        assert len(context.dead_letters) == 1
        assert engine.dead_letter_records() == [record]

    def test_process_level_transient_failure_retries(self):
        engine = MtmInterpreterEngine(fresh_registry())
        context = make_context(engine.registry)
        engine.resilience = context
        start_period(context)
        attempts_seen = []

        def flaky(ctx):
            attempts_seen.append(ctx.attempt)
            if ctx.attempt == 1:
                raise NetworkError("transient glitch")
            return 1

        engine.deploy(ProcessType(
            "PF", ProcessGroup.B, "t", EventType.E2_SCHEDULE,
            Sequence([Assign("x", flaky), Signal()]),
        ))
        record = engine.handle_event(ProcessEvent("PF", 0.0))
        assert record.status == "ok"
        assert record.attempts == 2
        assert attempts_seen == [1, 2]  # context exposes the attempt number


class TestPoisonHandling:
    def test_non_retryable_dead_letters_immediately(self):
        engine = MtmInterpreterEngine(fresh_registry())
        context = make_context(engine.registry)
        engine.resilience = context
        start_period(context)
        engine.deploy(ProcessType(
            "PP", ProcessGroup.B, "t", EventType.E2_SCHEDULE,
            Sequence([Assign("x", lambda c: 1 / 0)]),
        ))
        record = engine.handle_event(ProcessEvent("PP", 0.0))
        assert record.status == "dead-letter"
        assert record.attempts == 1  # poison is never retried
        assert record.error_type == "ZeroDivisionError"
        letter = next(iter(context.dead_letters))
        assert letter.error_type == "ZeroDivisionError"

    def test_attempt_timeout_is_retryable(self):
        engine = MtmInterpreterEngine(fresh_registry())
        context = make_context(engine.registry, timeout=0.0001)
        engine.resilience = context
        start_period(context)
        engine.deploy(simple_e2("PT"))
        record = engine.handle_event(ProcessEvent("PT", 0.0))
        # Every attempt exceeds the budget, so the instance retries its
        # way into the dead-letter queue with a timeout classification.
        assert record.status == "dead-letter"
        assert record.attempts == 4
        assert record.error_type == "AttemptTimeout"


class TestLegacyPathUnchanged:
    def test_without_resilience_errors_keep_legacy_status(self):
        engine = MtmInterpreterEngine(fresh_registry())
        engine.deploy(ProcessType(
            "PE", ProcessGroup.B, "t", EventType.E2_SCHEDULE,
            Sequence([Assign("x", lambda c: 1 / 0)]),
        ))
        record = engine.handle_event(ProcessEvent("PE", 0.0))
        assert record.status == "error"
        assert record.attempts == 1
        assert record.error_type == "ZeroDivisionError"
