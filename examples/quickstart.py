"""Quickstart: run DIPBench end-to-end in under a minute.

Builds the Fig. 1 system landscape, deploys the 15 benchmark process
types on the MTM interpreter engine, runs a few benchmark periods at the
paper's reference configuration (d = 0.05, t = 1.0, uniform data),
verifies the integrated data, and prints the NAVG+ metrics and the
performance plot.

Run with::

    python examples/quickstart.py
"""

from repro import (
    BenchmarkClient,
    MtmInterpreterEngine,
    ScaleFactors,
    build_scenario,
)


def main() -> None:
    # 1. The system landscape: 11 databases + 3 web services on host ES,
    #    wired through a simulated network to the integration host IS.
    scenario = build_scenario(latency=1.0, bandwidth=200.0, jitter=0.1)

    # 2. The system under test.
    engine = MtmInterpreterEngine(scenario.registry, worker_count=4)

    # 3. The toolsuite client: phases pre -> work (N periods) -> post.
    client = BenchmarkClient(
        scenario,
        engine,
        ScaleFactors(datasize=0.05, time=1.0, distribution=0),
        periods=3,
        seed=42,
    )
    result = client.run()

    # 4. Phase post: functional verification of the integrated data.
    print(result.verification.summary())
    print()

    # 5. The performance metrics (NAVG+ per process type, in tu).
    print(result.metrics.as_table())
    print()
    print(client.monitor.performance_plot(width=56))

    print()
    print(
        f"executed {result.total_instances} process instances over "
        f"{result.periods} periods on the {result.engine_name} engine "
        f"({result.error_instances} failures)"
    )


if __name__ == "__main__":
    main()
