"""Benchmark-as-a-service: a two-tenant `repro storm` end to end.

Boots the serving layer in-process (the same `HttpServer` behind
``python -m repro serve``), then drives a seeded storm of virtual
clients from two tenants against it — more clients than the per-tenant
quotas admit, so the run demonstrates the whole serving story at once:

* token-bucket admission and concurrency quotas rejecting the overflow
  with 429s (every rejection accounted by reason),
* admitted sessions executing on worker slots, repeat specs served
  from the deterministic result cache,
* per-tenant p50/p95/p99 round-trip latency and throughput,
* serving-layer overhead (translation + admission + queue wait)
  metered separately from engine time.

Run it::

    PYTHONPATH=src python examples/serve_storm.py
"""

import asyncio

from repro.serve import ServeConfig, StormConfig, TenantPolicy, run_storm


def main() -> None:
    storm = StormConfig(
        clients=150,
        tenants=("acme", "globex"),
        model="open",
        rate=500.0,     # seeded Poisson arrivals per second
        seed=7,
        distinct=2,     # two distinct specs -> repeats are cache hits
        datasize=0.02,
        time=1.0,
    )
    server = ServeConfig(
        engine_slots=2,
        queue_capacity=32,
        default_policy=TenantPolicy(
            name="default", rate=400.0, burst=40.0, max_active=8
        ),
    )
    report = asyncio.run(run_storm(storm, serve_config=server))
    report.check()  # submitted = accepted + rejected + errors, always

    print(report.format())
    print()
    print(
        f"accounting: {report.submitted} submitted = {report.accepted} "
        f"accepted + {report.rejected} rejected + {report.errors} errors"
    )
    print()
    print("server-side per-tenant report")
    for tenant in storm.tenants:
        server_doc = report.server_reports.get(tenant, {})
        if not server_doc:
            continue
        sessions = server_doc["sessions"]
        overhead = server_doc["overhead"]
        engine_pct = server_doc["engine_latency_tu"]
        print(
            f"  {tenant}: done={sessions['done']} "
            f"cached={sessions['cached']} "
            f"navg_plus_total={server_doc['navg_plus_total']:.2f} tu  "
            f"verification_ok={server_doc['verification_ok']}"
        )
        print(
            f"    engine instance latency (tu): "
            f"p50={engine_pct['p50']:.1f} p95={engine_pct['p95']:.1f} "
            f"p99={engine_pct['p99']:.1f}"
        )
        print(
            f"    overhead split: serve={overhead['serve_s']:.3f}s "
            f"engine={overhead['engine_s']:.3f}s "
            f"(serve share {overhead['serve_share'] * 100:.1f}%)"
        )


if __name__ == "__main__":
    main()
