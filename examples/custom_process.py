"""Building your own integration process with the MTM API.

DIPBench's process types are ordinary MTM definitions — this example
builds a *new* one from scratch: a replication process that receives
product-price-update messages, validates them, translates the partner's
dialect into the house schema, and fans the update out to two regional
databases in parallel.

It demonstrates the full public surface a benchmark user touches:
schemas, endpoints, XSD validation, STX translation, the operator
algebra, static process validation and the engine's cost breakdown.

Run with::

    python examples/custom_process.py
"""

from repro.db import Column, Database, TableSchema
from repro.engine import MtmInterpreterEngine, ProcessEvent
from repro.mtm import (
    EventType,
    ExtractField,
    Fork,
    Invoke,
    Message,
    ProcessGroup,
    ProcessType,
    Receive,
    Sequence,
    Signal,
    Translation,
    Validate,
)
from repro.mtm.process import assert_valid_definition
from repro.services import DatabaseService, Envelope, Network, ServiceRegistry
from repro.xmlkit import (
    RenameRule,
    Stylesheet,
    XsdAttribute,
    XsdChild,
    XsdElement,
    XsdSchema,
    parse_xml,
)

# --------------------------------------------------------------- the landscape


def build_world():
    network = Network()
    network.add_host("IS")
    registry = ServiceRegistry(network)
    for name in ("store_north", "store_south"):
        db = Database(name)
        db.create_table(
            TableSchema(
                "price_list",
                [
                    Column("prodkey", "BIGINT", nullable=False),
                    Column("price", "DECIMAL"),
                ],
                primary_key=("prodkey",),
            )
        )
        registry.register(DatabaseService(name, "ES", db))
    return registry


# --------------------------------------------------------- the partner dialect

#: What the partner sends: <PriceUpdate item="7"><NewPrice>19.90</NewPrice>…
PARTNER_SCHEMA = XsdSchema(
    "partner_price_update",
    XsdElement(
        "PriceUpdate",
        attributes=(XsdAttribute("item", "integer", required=True),),
        children=(XsdChild(XsdElement("NewPrice", content="decimal")),),
    ),
)

#: Translate the partner dialect into the house vocabulary.
PARTNER_TO_HOUSE = Stylesheet(
    "partner_to_house",
    [
        RenameRule("/PriceUpdate", "HousePriceUpdate", {"item": "prodkey"}),
        RenameRule("//NewPrice", "Price"),
    ],
)


# ------------------------------------------------------------------ the process


def upsert_request(store: str):
    def build(context):
        doc = context.get("msg2").xml()
        row = {
            "prodkey": int(doc.attributes["prodkey"]),
            "price": doc.child_text("Price"),
        }
        return Envelope.update_request("price_list", [row], mode="upsert")

    return build


def build_price_replication() -> ProcessType:
    return ProcessType(
        "PRICE_REPL",
        ProcessGroup.A,
        "replicate partner price updates to both stores",
        EventType.E1_MESSAGE,
        Sequence(
            [
                Receive("msg1", expected_type="price_update"),
                Validate("msg1", PARTNER_SCHEMA),
                Translation("msg1", "msg2", PARTNER_TO_HOUSE),
                ExtractField("msg2", "key", "/HousePriceUpdate/@prodkey",
                             convert=int),
                Fork(
                    [
                        Invoke("store_north", upsert_request("store_north"),
                               name="replicate_north"),
                        Invoke("store_south", upsert_request("store_south"),
                               name="replicate_south"),
                    ],
                    name="fan_out",
                ),
                Signal(),
            ],
            name="price_replication",
        ),
    )


def main() -> None:
    registry = build_world()
    process = build_price_replication()
    assert_valid_definition(process)  # static checks before deployment

    engine = MtmInterpreterEngine(registry, trace=True)
    engine.deploy(process)

    updates = [
        '<PriceUpdate item="7"><NewPrice>19.90</NewPrice></PriceUpdate>',
        '<PriceUpdate item="8"><NewPrice>5.25</NewPrice></PriceUpdate>',
        '<PriceUpdate item="7"><NewPrice>18.00</NewPrice></PriceUpdate>',
    ]
    for at, text in enumerate(updates):
        message = Message(parse_xml(text), "price_update")
        record = engine.handle_event(
            ProcessEvent("PRICE_REPL", float(at), message=message)
        )
        print(
            f"t={record.arrival:>4.1f}  status={record.status}  "
            f"C_c={record.costs.communication:.2f} "
            f"C_m={record.costs.management:.2f} "
            f"C_p={record.costs.processing:.2f}"
        )

    north = registry.lookup("store_north").database
    south = registry.lookup("store_south").database
    print("\nstore_north price_list:", north.table("price_list").scan())
    print("store_south price_list:", south.table("price_list").scan())
    assert north.table("price_list").get(7)["price"] == south.table(
        "price_list"
    ).get(7)["price"]
    print("\nexecution trace of the last instance:")
    for line in engine.traces[-1][1]:
        print("  ", line)


if __name__ == "__main__":
    main()
