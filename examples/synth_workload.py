"""Synthesized workloads: generate a scenario from knobs and run it.

DIPBench fixes one landscape and 15 process types; ``repro.synth`` turns
the workload itself into a parameterized generator.  This example
synthesizes an integration scenario from an explicit knob string —
heterogeneous source dialects, a consolidation DAG, CDC replication off
change feeds, type-1/type-2 slowly-changing-dimension maintenance, and
an Alaska-style dirty-data dedup task with exact generated ground truth
— runs it on one engine, verifies every generated table against the
plan, and then proves the scenario means the same thing to all four
engines (differential conformance).

Run with::

    python examples/synth_workload.py
"""

from repro.engine import ENGINES
from repro.synth import (
    SynthSpec,
    build_manifest,
    manifest_digest,
    run_differential,
    synthesize,
)
from repro.synth.families import label_process
from repro.synth.runner import SynthClient
from repro.toolsuite import ScaleFactors


def main() -> None:
    # 1. The knob space: every scenario is a pure function of
    #    (spec, seed).  Same knobs + seed => byte-identical scenario.
    spec = SynthSpec.parse(
        "sources=3,depth=2,transform_mix=balanced,noise=0.3,"
        "families=pipeline+cdc+scd+dirty"
    ).resolve(42)
    print(f"spec digest: {spec.digest()[:16]}…")

    # 2. Synthesis: schemas per source dialect, process graphs, message
    #    plans and ground truth.  The manifest digest is the *output*
    #    identity of the determinism contract.
    workload = synthesize(spec, f=1)  # f=1: zipf-skewed values
    manifest = build_manifest(workload, periods=2)
    print(f"manifest digest: {manifest_digest(manifest)[:16]}…")
    print(f"databases: {', '.join(sorted(workload.scenario.databases))}")
    print("processes: " + ", ".join(
        label_process(pid) for pid in sorted(workload.processes)
    ))
    print()

    # 3. Run it like any benchmark workload — the engines execute the
    #    generated process definitions unchanged.
    engine = ENGINES["etl"](workload.scenario.registry, worker_count=4)
    client = SynthClient(
        workload, engine, ScaleFactors(time=1.0, distribution=1), periods=2
    )
    result = client.run()
    print(
        f"executed {result.total_instances} instances over "
        f"{result.periods} periods on {result.engine_name} "
        f"({result.error_instances} failures)"
    )
    print(result.verification.summary())
    print()

    # 4. Costs report per synthesized process family, not raw P-ids.
    print(client.monitor.family_table())
    print()

    # 5. Differential conformance: the same spec on all four engines
    #    must integrate to identical landscape digests.
    report = run_differential(spec, f=1, periods=1)
    print(report.summary())
    for outcome in report.outcomes:
        print(
            f"  {outcome.engine:<12} digest={outcome.digest[:12]} "
            f"verification={'ok' if outcome.verification_ok else 'FAILED'}"
        )


if __name__ == "__main__":
    main()
