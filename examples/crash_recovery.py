"""Crash recovery: kill the engine mid-period, redo from snapshot+WAL.

Runs the benchmark twice at the same seed: once fault-free, once with a
hard engine crash at t=300 in period 0 and durability enabled
(``snapshot+wal``, checkpoint every 50 tu).  The crash wipes the
engine's volatile state — in-flight instance, worker heaps, instance
records, and (on the federated engine) the whole in-memory federation
catalog.  Recovery restores the latest checkpoint, replays the
committed WAL tail and resumes the schedule; because the recovery-time
model stays out of the virtual-time schedule, the recovered run
converges *byte-identically*: same final landscape digest, same
per-instance records, same NAVG+ table.

Run with::

    python examples/crash_recovery.py
"""

import os

from repro import (
    BenchmarkClient,
    MtmInterpreterEngine,
    ScaleFactors,
    build_scenario,
)
from repro.resilience import FaultSpec
from repro.storage import landscape_digest

SPEC_PATH = os.path.join(os.path.dirname(__file__), "faults_crash.json")


def execute(faults: FaultSpec | None):
    scenario = build_scenario()
    client = BenchmarkClient(
        scenario,
        MtmInterpreterEngine(scenario.registry),
        ScaleFactors(datasize=0.05),
        periods=1,
        seed=42,
        faults=faults,
        **(
            {"durability": "snapshot+wal", "checkpoint_every": 50.0}
            if faults is not None
            else {}
        ),
    )
    result = client.run()
    return client, result, landscape_digest(scenario.all_databases.values())


def main() -> None:
    # 1. The fault-free baseline.
    _, base, base_digest = execute(faults=None)
    print(f"baseline: {base.total_instances} instances, "
          f"verification {'OK' if base.verification.ok else 'FAILED'}")

    # 2. The crash run: same seed, durability on, one mid-period kill.
    spec = FaultSpec.load(SPEC_PATH)
    print(spec.describe())
    print()
    client, crashed, digest = execute(faults=spec)
    print(f"crash run: {crashed.total_instances} instances, "
          f"{crashed.recoveries} recovery")
    for report in crashed.recovery_reports:
        print(f"  {report.describe()}")
    print(f"  {client.monitor.recovery_summary().describe()}")
    stats = client.storage.stats()
    print(f"  wal: {stats['wal_records']} records in {stats['commits']} "
          f"commits ({stats['flushes']} group-commit flushes), "
          f"{stats['checkpoints']} checkpoints")
    print()

    # 3. Byte-identical convergence — the storage subsystem's contract.
    print(f"records byte-identical: {crashed.records == base.records}")
    print(f"landscape digest equal: {digest == base_digest}")


if __name__ == "__main__":
    main()
