"""Exploring the three-dimensional scale space (Section V).

Sweeps each scale factor independently and prints how the benchmark
reacts:

* datasize d — more messages per period and larger data sets,
* time t — the same schedule compressed into less time (more overlap,
  more self-management pressure),
* distribution f — uniform vs skewed source data.

Run with::

    python examples/scale_factor_study.py
"""

from repro import (
    BenchmarkClient,
    MtmInterpreterEngine,
    ScaleFactors,
    build_scenario,
)


def run(factors: ScaleFactors, periods: int = 2):
    scenario = build_scenario()
    engine = MtmInterpreterEngine(scenario.registry)
    client = BenchmarkClient(scenario, engine, factors, periods=periods,
                             seed=7)
    result = client.run()
    assert result.verification.ok
    return result


def sweep_datasize() -> None:
    print("datasize sweep (t=1.0, uniform)")
    print(f"{'d':>6}{'instances':>11}{'P04 NAVG+':>12}{'P13 NAVG+':>12}")
    for d in (0.02, 0.05, 0.1):
        result = run(ScaleFactors(datasize=d))
        print(
            f"{d:>6}{result.total_instances:>11}"
            f"{result.metrics['P04'].navg_plus:>12.1f}"
            f"{result.metrics['P13'].navg_plus:>12.1f}"
        )
    print()


def sweep_time() -> None:
    print("time sweep (d=0.05, uniform) — NAVG+ reported in tu")
    print(f"{'t':>6}{'P04 NAVG+':>12}{'P10 NAVG+':>12}")
    for t in (0.5, 1.0, 2.0, 4.0):
        result = run(ScaleFactors(datasize=0.05, time=t))
        print(
            f"{t:>6}{result.metrics['P04'].navg_plus:>12.1f}"
            f"{result.metrics['P10'].navg_plus:>12.1f}"
        )
    print("(a pressure-free system would scale NAVG+ exactly linearly in t;")
    print(" the super-linear excess is the queueing/self-management effect)")
    print()


def sweep_distribution() -> None:
    print("distribution sweep (d=0.05, t=1.0)")
    names = {0: "uniform", 1: "zipf", 2: "normal", 3: "exponential"}
    print(f"{'f':>14}{'P09 NAVG+':>12}{'P12 NAVG+':>12}{'errors':>8}")
    for f, name in names.items():
        result = run(ScaleFactors(datasize=0.05, distribution=f))
        print(
            f"{name:>14}{result.metrics['P09'].navg_plus:>12.1f}"
            f"{result.metrics['P12'].navg_plus:>12.1f}"
            f"{result.error_instances:>8}"
        )
    print()


def main() -> None:
    sweep_datasize()
    sweep_time()
    sweep_distribution()


if __name__ == "__main__":
    main()
