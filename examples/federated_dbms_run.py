"""The paper's reference-implementation experiment (Section VI).

Reproduces the two published runs of the federated DBMS realization
("System A"): d = 0.05 (Fig. 10) and d = 0.1 (Fig. 11), both at
t = 1.0 with uniform data, and writes the performance plots next to
this script as SVG files.

The federated engine realizes the processes exactly as Fig. 9 describes:
message-stream types as queue tables with AFTER INSERT triggers,
time-event types as stored procedures — you can inspect the deployed
catalog afterwards.

Run with::

    python examples/federated_dbms_run.py
"""

import pathlib

from repro import BenchmarkClient, FederatedEngine, ScaleFactors, build_scenario

OUT_DIR = pathlib.Path(__file__).parent


def run_experiment(datasize: float, periods: int = 3):
    scenario = build_scenario(jitter=0.2)  # the paper used a wireless LAN
    engine = FederatedEngine(scenario.registry)
    client = BenchmarkClient(
        scenario,
        engine,
        ScaleFactors(datasize=datasize, time=1.0),
        periods=periods,
        seed=42,
    )
    result = client.run()
    return result, client, engine


def main() -> None:
    for datasize, figure in ((0.05, "fig10"), (0.1, "fig11")):
        result, client, engine = run_experiment(datasize)
        title = (
            f"DIPBench Performance Plot [sfTime=1.0, sfDatasize={datasize}]"
        )
        print()
        print(client.monitor.performance_plot(title=title, width=52))
        svg_path = OUT_DIR / f"{figure}_federated_d{datasize}.svg"
        client.monitor.save_plot(str(svg_path), title)
        print(f"(plot written to {svg_path})")

        # A peek at the Fig. 9 realization: the queue tables that
        # received this run's messages.
        depths = {
            pid: engine.queue_depth(pid)
            for pid in ("P01", "P02", "P04", "P08", "P10")
        }
        print(f"queue-table depths after the run: {depths}")
        assert result.verification.ok, result.verification.summary()


if __name__ == "__main__":
    main()
