"""Measuring data quality across the integration layers.

Beyond raw performance, DIPBench's scenario is about *data quality*: the
staging area consolidates and cleans, the warehouse holds only verified
data.  This example runs one benchmark period and prints the quality
gradient — conformance, uniqueness, referential integrity and coverage
per layer — plus the concrete dirt the cleansing procedures removed.

Run with::

    python examples/data_quality_report.py
"""

from repro import (
    BenchmarkClient,
    MtmInterpreterEngine,
    ScaleFactors,
    build_scenario,
)
from repro.toolsuite import measure_quality


def main() -> None:
    scenario = build_scenario()
    engine = MtmInterpreterEngine(scenario.registry)
    client = BenchmarkClient(
        scenario, engine, ScaleFactors(datasize=0.05), periods=1, seed=42
    )

    # Peek at the dirt *before* the run: initialize one period's sources
    # manually and count non-conforming master data.
    population = client.initializer.initialize_sources(0)
    quality_before = measure_quality(scenario)
    print("before the integration run:")
    print(quality_before.as_table())
    print()

    result = client.run()
    assert result.verification.ok

    quality_after = measure_quality(scenario)
    print("after streams A/B (consolidation), C (cleansing + warehouse "
          "load) and D (mart refresh):")
    print(quality_after.as_table())
    print()
    print(f"quality gradient monotone: {quality_after.monotone_quality}")

    cdb = scenario.databases["sales_cleaning"]
    failed = cdb.table("failed_messages").scan()
    print(f"\nSan Diego messages routed to failed-data destinations: "
          f"{len(failed)}")
    for row in failed[:3]:
        print(f"  failkey={row['failkey']}: {row['reason'][:70]}")


if __name__ == "__main__":
    main()
