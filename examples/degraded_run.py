"""Degraded run: the benchmark under deterministic fault injection.

Loads the canned fault spec (``examples/faults_basic.json``) — a network
partition, a link degradation, an endpoint outage, transient engine
faults and one poison message, all pinned to period 0 — and runs two
benchmark periods with retry/backoff, circuit breakers and a dead-letter
queue enabled. Period 0 degrades and recovers; period 1 is clean, so
phase-post verification passes.

Run with::

    python examples/degraded_run.py
"""

import os

from repro import (
    BenchmarkClient,
    MtmInterpreterEngine,
    ScaleFactors,
    build_scenario,
)
from repro.resilience import FaultSpec, RetryPolicy

SPEC_PATH = os.path.join(os.path.dirname(__file__), "faults_basic.json")


def main() -> None:
    # 1. The fault schedule: seeded, virtual-time, reproducible.
    spec = FaultSpec.load(SPEC_PATH)
    print(spec.describe())
    print()

    # 2. A normal benchmark client, plus the fault spec and a retry policy.
    scenario = build_scenario()
    client = BenchmarkClient(
        scenario,
        MtmInterpreterEngine(scenario.registry),
        ScaleFactors(datasize=0.05, time=1.0, distribution=0),
        periods=2,
        seed=42,
        faults=spec,
        resilience=RetryPolicy(max_attempts=4),
    )
    result = client.run()

    # 3. What survived, what retried, what was quarantined.
    print(client.monitor.resilience_summary().describe())
    print()
    for letter in result.dead_letters:
        print(
            f"dead letter: {letter.process_id} period={letter.period} "
            f"t={letter.time:.1f} attempts={letter.attempts} {letter.error}"
        )

    # 4. Verification still passes: the final period ran on a healed
    #    landscape, and quarantined poison is the designed outcome.
    print()
    print(result.verification.summary())


if __name__ == "__main__":
    main()
