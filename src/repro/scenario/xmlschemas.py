"""XML message schemas and the STX translations between them.

The scenario's message-driven sources each speak their own deep-structured
XML dialect (Section III.B); the exact XSDs live in the unavailable full
specification [25], so the shapes below are derived from the paper's
anchors: Vienna and San Diego send order messages, MDM_Europe publishes
customer master data, Hongkong sends order data, and Beijing/Seoul
exchange customer master data in two different dialects (XSD_Beijing is
attribute-heavy, XSD_Seoul is element-structured) so the P01 STX
translation has real restructuring to do.
"""

from __future__ import annotations

from repro.xmlkit.doc import XmlElement
from repro.xmlkit.stx import (
    RenameRule,
    Stylesheet,
    TemplateRule,
    UnwrapRule,
    ValueRule,
)
from repro.xmlkit.xsd import XsdAttribute, XsdChild, XsdElement, XsdSchema

# ------------------------------------------------------------- Vienna (orders)

def vienna_schema() -> XsdSchema:
    """``<ViennaOrder>``: deep-structured order message of application Vienna."""
    position = XsdElement(
        "Position",
        attributes=(XsdAttribute("nr", "integer", required=True),),
        children=(
            XsdChild(XsdElement("Artikel", content="integer")),
            XsdChild(XsdElement("Menge", content="integer")),
            XsdChild(XsdElement("Preis", content="decimal")),
            XsdChild(XsdElement("Rabatt", content="decimal"), 0, 1),
        ),
    )
    head = XsdElement(
        "Kopf",
        children=(
            XsdChild(XsdElement("Auftrag", content="integer")),
            XsdChild(XsdElement("Kunde", content="integer")),
            XsdChild(XsdElement("Datum", content="date")),
            XsdChild(XsdElement("Status", content="string")),
            XsdChild(XsdElement("Prioritaet", content="string"), 0, 1),
        ),
    )
    root = XsdElement(
        "ViennaOrder",
        children=(
            XsdChild(head),
            XsdChild(XsdElement("Positionen", children=(XsdChild(position, 1, None),))),
        ),
    )
    return XsdSchema("XSD_Vienna", root)


# --------------------------------------------------------- San Diego (orders)

def sandiego_schema() -> XsdSchema:
    """``<SDOrder>``: San Diego's order message (the error-prone source).

    P10 validates every inbound message against this schema; the client
    injects violations (missing keys, non-numeric amounts, bogus children)
    at a configurable rate.
    """
    line = XsdElement(
        "Line",
        attributes=(
            XsdAttribute("no", "integer", required=True),
            XsdAttribute("part", "integer", required=True),
        ),
        children=(
            XsdChild(XsdElement("Qty", content="integer")),
            XsdChild(XsdElement("Amount", content="decimal")),
            XsdChild(XsdElement("Discount", content="decimal"), 0, 1),
        ),
    )
    root = XsdElement(
        "SDOrder",
        attributes=(
            XsdAttribute("key", "integer", required=True),
            XsdAttribute("customer", "integer", required=True),
        ),
        children=(
            XsdChild(XsdElement("Placed", content="date")),
            XsdChild(XsdElement("State", content="string")),
            XsdChild(XsdElement("Priority", content="string"), 0, 1),
            XsdChild(XsdElement("Total", content="decimal")),
            XsdChild(XsdElement("Lines", children=(XsdChild(line, 1, None),))),
        ),
    )
    return XsdSchema("XSD_SanDiego", root)


# ------------------------------------------------------- MDM Europe (customers)

def mdm_schema() -> XsdSchema:
    """``<MDMCustomerMessage>``: MDM_Europe's master-data publication."""
    address = XsdElement(
        "Anschrift",
        children=(
            XsdChild(XsdElement("Strasse", content="string")),
            XsdChild(XsdElement("Stadtschluessel", content="integer")),
        ),
    )
    customer = XsdElement(
        "Kunde",
        attributes=(XsdAttribute("nr", "integer", required=True),),
        children=(
            XsdChild(XsdElement("Name", content="string")),
            XsdChild(address),
            XsdChild(XsdElement("Telefon", content="string"), 0, 1),
            XsdChild(XsdElement("Segment", content="string"), 0, 1),
        ),
    )
    root = XsdElement("MDMCustomerMessage", children=(XsdChild(customer),))
    return XsdSchema("XSD_MDM_Europe", root)


def europe_customer_schema() -> XsdSchema:
    """The flat Europe-schema customer message P02 produces before routing."""
    root = XsdElement(
        "EuropeCustomer",
        children=(
            XsdChild(XsdElement("Custkey", content="integer")),
            XsdChild(XsdElement("Name", content="string")),
            XsdChild(XsdElement("Address", content="string")),
            XsdChild(XsdElement("Citykey", content="integer")),
            XsdChild(XsdElement("Phone", content="string"), 0, 1),
            XsdChild(XsdElement("Segment", content="string"), 0, 1),
        ),
    )
    return XsdSchema("XSD_EuropeCustomer", root)


# ------------------------------------------------------------ Hongkong (orders)

def hongkong_schema() -> XsdSchema:
    """``<HKOrder>``: Hongkong's business-transaction message (P08)."""
    item = XsdElement(
        "Item",
        children=(
            XsdChild(XsdElement("No", content="integer")),
            XsdChild(XsdElement("Prod", content="integer")),
            XsdChild(XsdElement("Qty", content="integer")),
            XsdChild(XsdElement("Value", content="decimal")),
            XsdChild(XsdElement("Disc", content="decimal"), 0, 1),
        ),
    )
    root = XsdElement(
        "HKOrder",
        children=(
            XsdChild(XsdElement("Id", content="integer")),
            XsdChild(XsdElement("Cust", content="integer")),
            XsdChild(XsdElement("Date", content="date")),
            XsdChild(XsdElement("Stat", content="string")),
            XsdChild(XsdElement("Prio", content="string"), 0, 1),
            XsdChild(XsdElement("Sum", content="decimal")),
            XsdChild(XsdElement("Items", children=(XsdChild(item, 1, None),))),
        ),
    )
    return XsdSchema("XSD_Hongkong", root)


# ----------------------------------------- Beijing / Seoul master data (P01)

def beijing_schema() -> XsdSchema:
    """XSD_Beijing: attribute-heavy customer master-data records."""
    record = XsdElement(
        "CustomerRec",
        attributes=(
            XsdAttribute("custkey", "integer", required=True),
            XsdAttribute("citykey", "integer"),
        ),
        children=(
            XsdChild(XsdElement("CName", content="string")),
            XsdChild(XsdElement("CAddr", content="string")),
            XsdChild(XsdElement("CPhone", content="string"), 0, 1),
            XsdChild(XsdElement("CSeg", content="string"), 0, 1),
        ),
    )
    root = XsdElement(
        "BeijingMasterData", children=(XsdChild(record, 1, None),)
    )
    return XsdSchema("XSD_Beijing", root)


def seoul_schema() -> XsdSchema:
    """XSD_Seoul: element-structured customer master-data records."""
    customer = XsdElement(
        "Customer",
        children=(
            XsdChild(XsdElement("Custkey", content="integer")),
            XsdChild(XsdElement("Citykey", content="integer"), 0, 1),
            XsdChild(XsdElement("Name", content="string")),
            XsdChild(XsdElement("Address", content="string")),
            XsdChild(XsdElement("Phone", content="string"), 0, 1),
            XsdChild(XsdElement("Segment", content="string"), 0, 1),
        ),
    )
    root = XsdElement("SeoulMasterData", children=(XsdChild(customer, 1, None),))
    return XsdSchema("XSD_Seoul", root)


# ------------------------------------------------------------ STX stylesheets

def beijing_to_seoul_stylesheet() -> Stylesheet:
    """The P01 translation: XSD_Beijing → XSD_Seoul.

    Restructures attributes into elements (custkey/citykey become child
    elements) and renames the per-field tags.
    """

    def build_customer(tag: str, attrs: dict[str, str]) -> XmlElement:
        element = XmlElement("Customer")
        element.add_text_child("Custkey", attrs["custkey"])
        if "citykey" in attrs:
            element.add_text_child("Citykey", attrs["citykey"])
        return element

    return Stylesheet(
        "stx_beijing_to_seoul",
        [
            RenameRule("/BeijingMasterData", "SeoulMasterData"),
            TemplateRule("//CustomerRec", build_customer),
            RenameRule("//CName", "Name"),
            RenameRule("//CAddr", "Address"),
            RenameRule("//CPhone", "Phone"),
            RenameRule("//CSeg", "Segment"),
        ],
    )


def mdm_to_europe_stylesheet() -> Stylesheet:
    """The P02 translation: MDM message → Europe customer message.

    Unwraps the message envelope, turns the ``Kunde`` attribute ``nr``
    into a ``Custkey`` element, and flattens the nested ``Anschrift``
    (address) block — the structural heterogeneity Section III.B calls
    "deep-structured XML schemas".
    """

    def build_customer(tag: str, attrs: dict[str, str]) -> XmlElement:
        element = XmlElement("EuropeCustomer")
        element.add_text_child("Custkey", attrs["nr"])
        return element

    return Stylesheet(
        "stx_mdm_to_europe",
        [
            UnwrapRule("/MDMCustomerMessage"),
            TemplateRule("//Kunde", build_customer),
            UnwrapRule("//Anschrift"),
            RenameRule("//Anschrift/Strasse", "Address"),
            RenameRule("//Anschrift/Stadtschluessel", "Citykey"),
            RenameRule("//Telefon", "Phone"),
        ],
    )


def hongkong_to_cdb_stylesheet() -> Stylesheet:
    """The P08 translation: HKOrder → the CDB's canonical order message."""
    return Stylesheet(
        "stx_hongkong_to_cdb",
        [
            RenameRule("/HKOrder", "CdbOrder"),
            RenameRule("/HKOrder/Id", "Orderkey"),
            RenameRule("/HKOrder/Cust", "Custkey"),
            RenameRule("/HKOrder/Date", "Orderdate"),
            ValueRule(
                "/HKOrder/Stat",
                to="Status",
                # Semantic heterogeneity: Hongkong's order states.
                value_map={"OPEN": "O", "FILLED": "F", "PENDING": "P"},
            ),
            ValueRule(
                "/HKOrder/Prio",
                to="Priority",
                value_map={
                    "U": "1-URGENT",
                    "H": "2-HIGH",
                    "M": "3-MEDIUM",
                    "N": "4-NOT SPECIFIED",
                    "L": "5-LOW",
                },
            ),
            RenameRule("/HKOrder/Sum", "Totalprice"),
            RenameRule("/HKOrder/Items", "Lines"),
            RenameRule("//Item", "Line"),
            RenameRule("//Item/No", "Linenumber"),
            RenameRule("//Item/Prod", "Prodkey"),
            RenameRule("//Item/Qty", "Quantity"),
            RenameRule("//Item/Value", "Extendedprice"),
            RenameRule("//Item/Disc", "Discount"),
        ],
    )


def sandiego_to_cdb_stylesheet() -> Stylesheet:
    """The P10 translation: SDOrder → the CDB's canonical order message."""

    def build_order(tag: str, attrs: dict[str, str]) -> XmlElement:
        element = XmlElement("CdbOrder")
        element.add_text_child("Orderkey", attrs["key"])
        element.add_text_child("Custkey", attrs["customer"])
        return element

    def build_line(tag: str, attrs: dict[str, str]) -> XmlElement:
        element = XmlElement("Line")
        element.add_text_child("Linenumber", attrs["no"])
        element.add_text_child("Prodkey", attrs["part"])
        return element

    return Stylesheet(
        "stx_sandiego_to_cdb",
        [
            TemplateRule("/SDOrder", build_order),
            RenameRule("/SDOrder/Placed", "Orderdate"),
            RenameRule("/SDOrder/State", "Status"),
            RenameRule("/SDOrder/Priority", "Priority"),
            RenameRule("/SDOrder/Total", "Totalprice"),
            RenameRule("/SDOrder/Lines", "Lines"),
            TemplateRule("//Lines/Line", build_line),
            RenameRule("//Qty", "Quantity"),
            RenameRule("//Amount", "Extendedprice"),
            RenameRule("//Discount", "Discount"),
        ],
    )


def vienna_to_cdb_stylesheet() -> Stylesheet:
    """The P04 translation: ViennaOrder → the CDB's canonical order message."""

    def build_position(tag: str, attrs: dict[str, str]) -> XmlElement:
        element = XmlElement("Line")
        element.add_text_child("Linenumber", attrs["nr"])
        return element

    return Stylesheet(
        "stx_vienna_to_cdb",
        [
            RenameRule("/ViennaOrder", "CdbOrder"),
            UnwrapRule("//Kopf"),
            RenameRule("//Kopf/Auftrag", "Orderkey"),
            RenameRule("//Kopf/Kunde", "Custkey"),
            RenameRule("//Kopf/Datum", "Orderdate"),
            ValueRule(
                "//Kopf/Status",
                to="Status",
                value_map={"OFFEN": "O", "FERTIG": "F", "TEIL": "P"},
            ),
            ValueRule(
                "//Kopf/Prioritaet",
                to="Priority",
                value_map={
                    "EILIG": "1-URGENT",
                    "HOCH": "2-HIGH",
                    "MITTEL": "3-MEDIUM",
                    "OFFEN": "4-NOT SPECIFIED",
                    "NIEDRIG": "5-LOW",
                },
            ),
            RenameRule("//Positionen", "Lines"),
            TemplateRule("//Position", build_position),
            RenameRule("//Position/Artikel", "Prodkey"),
            RenameRule("//Position/Menge", "Quantity"),
            RenameRule("//Position/Preis", "Extendedprice"),
            RenameRule("//Position/Rabatt", "Discount"),
        ],
    )


def beijing_resultset_stylesheet() -> Stylesheet:
    """P09 stylesheet #1: Beijing's ``<BJData>/<Tuple>`` dialect → canonical."""
    return Stylesheet(
        "stx_beijing_resultset",
        [
            RenameRule("/BJData", "ResultSet"),
            RenameRule("/BJData/Tuple", "Row"),
        ],
    )


def seoul_resultset_stylesheet() -> Stylesheet:
    """P09 stylesheet #2: Seoul's ``<SeoulRS>/<Record>`` dialect → canonical."""
    return Stylesheet(
        "stx_seoul_resultset",
        [
            RenameRule("/SeoulRS", "ResultSet"),
            RenameRule("/SeoulRS/Record", "Row"),
        ],
    )


#: The canonical order-message schema everything is translated into.
def cdb_order_schema() -> XsdSchema:
    line = XsdElement(
        "Line",
        children=(
            XsdChild(XsdElement("Linenumber", content="integer")),
            XsdChild(XsdElement("Prodkey", content="integer")),
            XsdChild(XsdElement("Quantity", content="integer")),
            XsdChild(XsdElement("Extendedprice", content="decimal")),
            XsdChild(XsdElement("Discount", content="decimal"), 0, 1),
        ),
    )
    root = XsdElement(
        "CdbOrder",
        children=(
            XsdChild(XsdElement("Orderkey", content="integer")),
            XsdChild(XsdElement("Custkey", content="integer")),
            XsdChild(XsdElement("Orderdate", content="date")),
            XsdChild(XsdElement("Status", content="string")),
            XsdChild(XsdElement("Priority", content="string"), 0, 1),
            XsdChild(XsdElement("Totalprice", content="decimal"), 0, 1),
            XsdChild(XsdElement("Lines", children=(XsdChild(line, 1, None),))),
        ),
    )
    return XsdSchema("XSD_CdbOrder", root)


# ----------------------------------------------------- inbound message schemas


def message_schemas() -> dict[str, "XsdSchema"]:
    """Inbound XSD per E1 message type.

    The resilience layer's fault injector uses this map to validate
    messages it corrupted, so poison messages fail with a real
    ``XsdValidationError`` (violations preserved) at delivery time.
    """
    return {
        "vienna_order": vienna_schema(),
        "mdm_customer": mdm_schema(),
        "beijing_master": beijing_schema(),
        "hongkong_order": hongkong_schema(),
        "sandiego_order": sandiego_schema(),
    }
