"""Group D — Data Mart Update (P14 with its subprocesses, P15).

P14 is the scenario's showcase of intra-process parallelism: a main
process invokes subprocess P14_S1 (load everything from the DWH and
return it), then three concurrent threads each run a selection and invoke
a mart-specific subprocess realizing the DWH→DM schema mapping and load.
P15 refreshes the marts' materialized views, again in parallel.
"""

from __future__ import annotations

from typing import Callable

from repro.db.expressions import col, lit
from repro.mtm.blocks import Fork, Sequence, Subprocess
from repro.mtm.context import ExecutionContext
from repro.mtm.message import Message
from repro.mtm.operators import Assign, Invoke, Join, Projection, Selection, Signal
from repro.mtm.process import EventType, ProcessGroup, ProcessType
from repro.scenario.processes import helpers

#: (mart subprocess id, service name, region filter, product denorm?, location denorm?)
_MARTS = [
    ("P14_S2", "dm_europe", "Europe", True, True),
    ("P14_S3", "dm_united_states", "America", False, True),
    ("P14_S4", "dm_asia", "Asia", True, False),
]



def _unpack(bundle_var: str, key: str) -> Callable[[ExecutionContext], Message]:
    """Assign-callable pulling one relation out of a bundle message."""

    def value(context: ExecutionContext) -> Message:
        return Message(context.get(bundle_var).payload[key])

    return value


def build_p14_s1() -> ProcessType:
    """P14_S1: load all master and movement data from the DWH, return it."""
    extracts = []
    for table in (
        "customer",
        "city",
        "nation",
        "region",
        "product",
        "productgroup",
        "productline",
        "orders",
        "orderline",
    ):
        extracts.append(
            Invoke(
                "dwh",
                helpers.query_request(table),
                output=f"{table}_raw",
                name=f"extract_{table}",
            )
        )

    def bundle(context: ExecutionContext) -> Message:
        return Message(
            {
                "customer_denorm": context.get("customer_denorm").relation(),
                "orders": context.get("orders_raw").relation(),
                "orderline": context.get("orderline_raw").relation(),
                "product": context.get("product_raw").relation(),
                "productgroup": context.get("productgroup_raw").relation(),
                "productline": context.get("productline_raw").relation(),
                "product_denorm": context.get("product_denorm").relation(),
                "region": context.get("region_raw").relation(),
                "nation": context.get("nation_raw").relation(),
                "city": context.get("city_raw").relation(),
                "location_denorm": context.get("location_denorm").relation(),
            },
            "dwh_bundle",
        )

    return ProcessType(
        "P14_S1",
        ProcessGroup.D,
        "Load all master and movement data from the DWH",
        EventType.E2_SCHEDULE,
        Sequence(
            [
                *extracts,
                # Prefix the geography names so joins stay collision-free.
                Projection(
                    "city_raw",
                    "city_p",
                    {"citykey": "citykey", "city_name": "name", "nationkey": "nationkey"},
                    name="prefix_city",
                ),
                Projection(
                    "nation_raw",
                    "nation_p",
                    {"nationkey": "nationkey", "nation_name": "name", "regionkey": "regionkey"},
                    name="prefix_nation",
                ),
                Projection(
                    "region_raw",
                    "region_p",
                    {"regionkey": "regionkey", "region_name": "name"},
                    name="prefix_region",
                ),
                Join("city_p", "nation_p", "city_nation", on=[("nationkey", "nationkey")]),
                Join(
                    "city_nation",
                    "region_p",
                    "location_all",
                    on=[("regionkey", "regionkey")],
                ),
                Projection(
                    "location_all",
                    "location_denorm",
                    {
                        "citykey": "citykey",
                        "city_name": "city_name",
                        "nation_name": "nation_name",
                        "region_name": "region_name",
                    },
                    name="shape_location_denorm",
                ),
                Join(
                    "customer_raw",
                    "location_denorm",
                    "customer_denorm",
                    on=[("citykey", "citykey")],
                ),
                # Denormalize the product dimension the same way.
                Projection(
                    "productgroup_raw",
                    "group_p",
                    {"groupkey": "groupkey", "group_name": "name", "linekey": "linekey"},
                    name="prefix_group",
                ),
                Projection(
                    "productline_raw",
                    "line_p",
                    {"linekey": "linekey", "line_name": "name"},
                    name="prefix_line",
                ),
                Join("product_raw", "group_p", "product_g", on=[("groupkey", "groupkey")]),
                Join("product_g", "line_p", "product_gl", on=[("linekey", "linekey")]),
                Projection(
                    "product_gl",
                    "product_denorm",
                    {
                        "prodkey": "prodkey",
                        "name": "name",
                        "brand": "brand",
                        "price": "price",
                        "group_name": "group_name",
                        "line_name": "line_name",
                    },
                    name="shape_product_denorm",
                ),
                Assign("__out", bundle, name="return_bundle"),
            ],
            name="p14_s1",
        ),
        subprocess_only=True,
    )


def build_mart_subprocess(
    process_id: str,
    service: str,
    region: str,
    denorm_product: bool,
    denorm_location: bool,
) -> ProcessType:
    """P14_S2/S3/S4: DWH→DM schema mapping and load for one data mart."""
    steps = [
        Assign("bundle", lambda ctx: ctx.get("__in"), name="bind_input"),
        Assign("customers", _unpack("bundle", "customer_denorm")),
        Assign("orders_all", _unpack("bundle", "orders")),
        Assign("orderline_all", _unpack("bundle", "orderline")),
        # Movement data of this mart: orders of the mart's customers.
        Join(
            "orders_all",
            "customers",
            "orders_joined",
            on=[("custkey", "custkey")],
            name="orders_of_region",
        ),
        Projection(
            "orders_joined",
            "orders_mart",
            {name: name for name in helpers.ORDER_COLUMNS},
            name="shape_orders",
        ),
        Join(
            "orderline_all",
            "orders_mart",
            "lines_joined",
            on=[("orderkey", "orderkey")],
            name="lines_of_region",
        ),
        Projection(
            "lines_joined",
            "lines_mart",
            {name: name for name in helpers.ORDERLINE_COLUMNS},
            name="shape_lines",
        ),
        Projection(
            "customers",
            "customers_mart",
            {
                "custkey": "custkey",
                "name": "name",
                "citykey": "citykey",
                "segment": "segment",
            },
            name="shape_customers",
        ),
        Invoke(
            service,
            helpers.insert_request("customer", "customers_mart", mode="upsert"),
            name="load_customer",
        ),
    ]
    if denorm_product:
        steps.append(Assign("dim_product", _unpack("bundle", "product_denorm")))
        steps.append(
            Invoke(
                service,
                helpers.insert_request("dim_product", "dim_product", mode="upsert"),
                name="load_dim_product",
            )
        )
    else:
        for table in ("product", "productgroup", "productline"):
            steps.append(Assign(f"norm_{table}", _unpack("bundle", table)))
            steps.append(
                Invoke(
                    service,
                    helpers.insert_request(table, f"norm_{table}", mode="upsert"),
                    name=f"load_{table}",
                )
            )
    if denorm_location:
        steps.append(Assign("loc_all", _unpack("bundle", "location_denorm")))
        steps.append(
            Selection(
                "loc_all",
                "dim_location",
                col("region_name") == lit(region),
                name="partition_location",
            )
        )
        steps.append(
            Invoke(
                service,
                helpers.insert_request("dim_location", "dim_location", mode="upsert"),
                name="load_dim_location",
            )
        )
    else:
        for table in ("region", "nation", "city"):
            steps.append(Assign(f"norm_{table}", _unpack("bundle", table)))
            steps.append(
                Invoke(
                    service,
                    helpers.insert_request(table, f"norm_{table}", mode="upsert"),
                    name=f"load_{table}",
                )
            )
    steps.extend(
        [
            Invoke(
                service,
                helpers.insert_request("orders", "orders_mart", mode="upsert"),
                name="load_orders",
            ),
            Invoke(
                service,
                helpers.insert_request("orderline", "lines_mart", mode="upsert"),
                name="load_orderline",
            ),
            Signal(),
        ]
    )
    return ProcessType(
        process_id,
        ProcessGroup.D,
        f"Schema mapping and load for data mart {service}",
        EventType.E2_SCHEDULE,
        Sequence(steps, name=process_id.lower()),
        subprocess_only=True,
    )


def build_p14() -> ProcessType:
    """P14: refresh all data marts (Fig. 1's P14 with four subprocesses)."""

    branches = []
    for process_id, service, region, _, __ in _MARTS:
        mart = service.removeprefix("dm_")
        cust_var = f"cust_{mart}"
        filtered_var = f"cust_{mart}_f"
        bundle_var = f"bundle_{mart}"

        def make_bundle(filtered: str) -> Callable[[ExecutionContext], Message]:
            def value(context: ExecutionContext) -> Message:
                base = dict(context.get("dwhdata").payload)
                base["customer_denorm"] = context.get(filtered).relation()
                return Message(base, "dm_bundle")

            return value

        branches.append(
            Sequence(
                [
                    Assign(cust_var, _unpack("dwhdata", "customer_denorm")),
                    Selection(
                        cust_var,
                        filtered_var,
                        col("region_name") == lit(region),
                        name=f"select_{mart}",
                    ),
                    Assign(bundle_var, make_bundle(filtered_var)),
                    Subprocess(process_id, input=bundle_var),
                ],
                name=f"thread_{mart}",
            )
        )

    return ProcessType(
        "P14",
        ProcessGroup.D,
        "Refreshing data mart data",
        EventType.E2_SCHEDULE,
        Sequence(
            [
                Subprocess("P14_S1", output="dwhdata", name="load_dwh_bundle"),
                Fork(branches, name="mart_threads"),
                Signal(),
            ],
            name="p14",
        ),
    )


def build_p14_subprocesses() -> list[ProcessType]:
    subs = [build_p14_s1()]
    for process_id, service, region, denorm_product, denorm_location in _MARTS:
        subs.append(
            build_mart_subprocess(
                process_id, service, region, denorm_product, denorm_location
            )
        )
    return subs


def build_p15() -> ProcessType:
    """P15: refresh the marts' materialized views — no dependencies
    between the physical marts, so the three refreshes run in parallel."""
    return ProcessType(
        "P15",
        ProcessGroup.D,
        "Refreshing data mart materialized views",
        EventType.E2_SCHEDULE,
        Sequence(
            [
                Fork(
                    [
                        Invoke(
                            service,
                            helpers.execute_request("sp_refreshViews"),
                            name=f"refresh_{service}",
                        )
                        for _, service, _, _, _ in _MARTS
                    ],
                    name="parallel_refresh",
                ),
                Signal(),
            ],
            name="p15",
        ),
    )
