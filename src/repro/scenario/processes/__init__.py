"""The 15 benchmark process types of Table I, plus the P14 subprocesses.

====== ===== ================================================  =====
group  id    description (Table I)                             event
====== ===== ================================================  =====
A      P01   Master data exchange Asia                         E1
A      P02   Master data subscription Europe                   E1
A      P03   Local data consolidation America                  E2
B      P04   Receive messages from Vienna                      E1
B      P05   Extract data from Berlin                          E2
B      P06   Extract data from Paris                           E2
B      P07   Extract data from Trondheim                       E2
B      P08   Receive messages from Hongkong                    E1
B      P09   Extract wrapped data from Beijing and Seoul       E2
B      P10   Receive error-prone messages from San Diego       E1
B      P11   Extract data from CDB America                     E2
C      P12   Bulk-loading data warehouse master data           E2
C      P13   Bulk-loading data warehouse movement data         E2
D      P14   Refreshing data mart data                         E2
D      P15   Refreshing data mart materialized views           E2
====== ===== ================================================  =====

:func:`build_processes` returns every deployable process type (P01–P15
and the P14 subprocess family) as engine-agnostic MTM definitions.  The
modeled flows are intentionally *suboptimal* exactly where the paper says
so ("we explicitly point out that the modeled processes are suboptimal") —
e.g. P05/P06 extract full tables and filter in the process, which is what
:mod:`repro.optimizer` later improves in the ablation benchmarks.
"""

from __future__ import annotations

from repro.mtm.process import ProcessType
from repro.scenario.processes.group_a import build_p01, build_p02, build_p03
from repro.scenario.processes.group_b import (
    build_p04,
    build_p05,
    build_p06,
    build_p07,
    build_p08,
    build_p09,
    build_p10,
    build_p11,
)
from repro.scenario.processes.group_c import build_p12, build_p13
from repro.scenario.processes.group_d import (
    build_p14,
    build_p14_subprocesses,
    build_p15,
)

#: Table I, as data: (group, id, description).
PROCESS_TABLE: list[tuple[str, str, str]] = [
    ("A", "P01", "Master data exchange Asia"),
    ("A", "P02", "Master data subscription Europe"),
    ("A", "P03", "Local data consolidation America"),
    ("B", "P04", "Receive messages from Vienna"),
    ("B", "P05", "Extract data from Berlin"),
    ("B", "P06", "Extract data from Paris"),
    ("B", "P07", "Extract data from Trondheim"),
    ("B", "P08", "Receive messages from Hongkong"),
    ("B", "P09", "Extract wrapped data from Beijing and Seoul"),
    ("B", "P10", "Receive error-prone messages from San Diego"),
    ("B", "P11", "Extract data from CDB America"),
    ("C", "P12", "Bulk-loading data warehouse master data"),
    ("C", "P13", "Bulk-loading data warehouse movement data"),
    ("D", "P14", "Refreshing data mart data"),
    ("D", "P15", "Refreshing data mart materialized views"),
]


def build_processes() -> dict[str, ProcessType]:
    """Every deployable process type, keyed by process id."""
    processes = [
        build_p01(),
        build_p02(),
        build_p03(),
        build_p04(),
        build_p05(),
        build_p06(),
        build_p07(),
        build_p08(),
        build_p09(),
        build_p10(),
        build_p11(),
        build_p12(),
        build_p13(),
        build_p14(),
        build_p15(),
    ]
    processes.extend(build_p14_subprocesses())
    return {p.process_id: p for p in processes}


__all__ = ["PROCESS_TABLE", "build_processes"]
