"""Group B — Data Consolidation (P04–P11).

Everything flowing *into* the global consolidated database
Sales_Cleaning: the message-driven feeds (Vienna P04, Hongkong P08,
San Diego P10), the scheduled European extractions (P05–P07), the
wrapped Asian extraction with UNION DISTINCT (P09) and the American
two-phase hand-over (P11).
"""

from __future__ import annotations

import hashlib

from repro.db.expressions import col, lit
from repro.mtm.blocks import Sequence, Switch, SwitchCase
from repro.mtm.context import ExecutionContext
from repro.mtm.message import Message
from repro.mtm.operators import (
    Assign,
    Convert,
    ExtractField,
    Invoke,
    Projection,
    Receive,
    Selection,
    Signal,
    Translation,
    Union,
    Validate,
)
from repro.mtm.process import EventType, ProcessGroup, ProcessType
from repro.services.endpoints import Envelope
from repro.scenario.processes import helpers
from repro.scenario.schemas import ASIA_TYPES
from repro.scenario.topology import EUROPE_TRONDHEIM_THRESHOLD
from repro.scenario.xmlschemas import (
    beijing_resultset_stylesheet,
    hongkong_to_cdb_stylesheet,
    sandiego_schema,
    sandiego_to_cdb_stylesheet,
    seoul_resultset_stylesheet,
    vienna_to_cdb_stylesheet,
)
from repro.xmlkit.doc import serialize_xml

def _failed_message_key(clob: str) -> int:
    """Content-addressed primary key for a failed message.

    A global sequence would make the landscape state depend on how many
    failed messages any *earlier* run in the same process produced — and
    on whether an instance was re-executed after a crash.  Hashing the
    serialized document keys each failure by *what* failed, which is
    stable across runs, processes and crash-recovery re-execution.
    """
    digest = hashlib.sha256(clob.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _load_order_steps(prefix: str, message_var: str) -> list:
    """Split a CdbOrder message into relations and load them into the CDB."""
    order_value, lines_value = helpers.extract_cdb_order(
        message_var, f"{prefix}_order", f"{prefix}_lines"
    )
    return [
        Assign(f"{prefix}_order", order_value, name=f"{prefix}_split_order"),
        Assign(f"{prefix}_lines", lines_value, name=f"{prefix}_split_lines"),
        Invoke(
            "sales_cleaning",
            helpers.insert_request("orders", f"{prefix}_order", mode="upsert"),
            name=f"{prefix}_load_order",
        ),
        Invoke(
            "sales_cleaning",
            helpers.insert_request("orderline", f"{prefix}_lines", mode="upsert"),
            name=f"{prefix}_load_lines",
        ),
    ]


# ------------------------------------------------------------------------ P04

def build_p04() -> ProcessType:
    """P04: receive Vienna messages, enrich with master data, load.

    The inbound deep-structured ViennaOrder is translated to the
    standardized CdbOrder shape; the referenced customer's master data is
    extracted from the owning European source system (routed by Custkey)
    and upserted into the CDB alongside the order — the "enrichment with
    extracted master data".
    """

    def custkey(context: ExecutionContext) -> int:
        return context.get("custkey").payload

    def customer_query(service_table_location: str):
        def build(context: ExecutionContext) -> Envelope:
            key = context.get("custkey").payload
            return Envelope.query_request(
                "eu_customer", col("cust_id") == lit(key)
            )

        return build

    return ProcessType(
        "P04",
        ProcessGroup.B,
        "Receive messages from Vienna",
        EventType.E1_MESSAGE,
        Sequence(
            [
                Receive("msg1", expected_type="vienna_order"),
                Translation("msg1", "msg2", vienna_to_cdb_stylesheet()),
                ExtractField("msg2", "custkey", "//Custkey", convert=int),
                Switch(
                    [
                        SwitchCase(
                            lambda ctx: custkey(ctx) < EUROPE_TRONDHEIM_THRESHOLD,
                            Invoke(
                                "berlin_paris",
                                customer_query("berlin_paris"),
                                output="msg4",
                                name="enrich_from_berlin_paris",
                            ),
                            label="berlin_paris",
                        ),
                    ],
                    otherwise=Invoke(
                        "trondheim",
                        customer_query("trondheim"),
                        output="msg4",
                        name="enrich_from_trondheim",
                    ),
                    name="route_enrichment",
                ),
                Projection(
                    "msg4", "msg5", helpers.EU_CUSTOMER_TO_CDB, name="map_customer"
                ),
                Invoke(
                    "sales_cleaning",
                    helpers.insert_request("customer", "msg5", mode="upsert"),
                    name="load_customer",
                ),
                *_load_order_steps("p04", "msg2"),
                Signal(),
            ],
            name="p04",
        ),
    )


# ------------------------------------------------------------------- P05–P07

def _build_europe_extraction(
    process_id: str, description: str, service: str, location: str | None
) -> ProcessType:
    """P05/P06/P07: extract one European location and load it into the CDB.

    Deliberately suboptimal, as specified: the full tables are extracted
    and the location filter runs as a Selection *inside* the process
    (P05/P06); the optimizer ablation pushes it into the source query.
    """
    tables = [
        ("eu_customer", helpers.EU_CUSTOMER_TO_CDB, "customer", "upsert"),
        ("eu_product", helpers.EU_PRODUCT_TO_CDB, "product", "upsert"),
        ("eu_order", helpers.EU_ORDER_TO_CDB, "orders", "upsert"),
        ("eu_orderpos", helpers.EU_ORDERPOS_TO_CDB, "orderline", "upsert"),
    ]
    steps = []
    for source_table, mapping, target_table, mode in tables:
        raw = f"{source_table}_raw"
        filtered = f"{source_table}_filtered"
        mapped = f"{source_table}_mapped"
        steps.append(
            Invoke(
                service,
                helpers.query_request(source_table),
                output=raw,
                name=f"extract_{source_table}",
            )
        )
        if location is not None:
            steps.append(
                Selection(
                    raw,
                    filtered,
                    col("location") == lit(location),
                    name=f"filter_{source_table}",
                )
            )
        else:
            filtered = raw
        steps.append(
            Projection(filtered, mapped, mapping, name=f"map_{source_table}")
        )
        steps.append(
            Invoke(
                "sales_cleaning",
                helpers.insert_request(target_table, mapped, mode=mode),
                name=f"load_{target_table}",
            )
        )
    steps.append(Signal())
    return ProcessType(
        process_id,
        ProcessGroup.B,
        description,
        EventType.E2_SCHEDULE,
        Sequence(steps, name=process_id.lower()),
    )


def build_p05() -> ProcessType:
    return _build_europe_extraction(
        "P05", "Extract data from Berlin", "berlin_paris", "Berlin"
    )


def build_p06() -> ProcessType:
    return _build_europe_extraction(
        "P06", "Extract data from Paris", "berlin_paris", "Paris"
    )


def build_p07() -> ProcessType:
    return _build_europe_extraction(
        "P07", "Extract data from Trondheim", "trondheim", None
    )


# ------------------------------------------------------------------------ P08

def build_p08() -> ProcessType:
    """P08: receive Hongkong messages, translate, load into the CDB."""
    return ProcessType(
        "P08",
        ProcessGroup.B,
        "Receive messages from Hongkong",
        EventType.E1_MESSAGE,
        Sequence(
            [
                Receive("msg1", expected_type="hongkong_order"),
                Translation("msg1", "msg2", hongkong_to_cdb_stylesheet()),
                *_load_order_steps("p08", "msg2"),
                Signal(),
            ],
            name="p08",
        ),
    )


# ------------------------------------------------------------------------ P09

_P09_TABLES: list[tuple[str, tuple[str, ...]]] = [
    ("customer", ("custkey",)),
    ("product", ("prodkey",)),
    ("orders", ("orderkey",)),
    ("orderline", ("orderkey", "linenumber")),
]


def build_p09() -> ProcessType:
    """P09: extract wrapped data from Beijing and Seoul.

    Large XML result sets are extracted from both web services; each
    service's dialect is translated to the canonical result-set shape by
    its own STX stylesheet ("two different STX style sheets"); a keyed
    UNION DISTINCT merges the overlapping populations; the result is
    loaded into the CDB.
    """
    stylesheets = {
        "beijing": beijing_resultset_stylesheet(),
        "seoul": seoul_resultset_stylesheet(),
    }
    steps = []
    for table, keys in _P09_TABLES:
        merged_inputs = []
        for service in ("beijing", "seoul"):
            raw = f"{table}_{service}_raw"
            canonical = f"{table}_{service}_canonical"
            relation_var = f"{table}_{service}"
            steps.append(
                Invoke(
                    service,
                    helpers.ws_query_request(table),
                    output=raw,
                    work_kind="xml",
                    name=f"extract_{table}_{service}",
                )
            )
            steps.append(
                Translation(
                    raw, canonical, stylesheets[service],
                    name=f"translate_{table}_{service}",
                )
            )
            steps.append(
                Convert(
                    canonical,
                    relation_var,
                    "xml_to_relation",
                    columns=list(ASIA_TYPES[table]),
                    types=ASIA_TYPES[table],
                    name=f"convert_{table}_{service}",
                )
            )
            merged_inputs.append(relation_var)
        merged = f"{table}_merged"
        steps.append(
            Union(merged_inputs, merged, distinct_key=keys, name=f"union_{table}")
        )
        if table == "customer":
            mapped = f"{table}_mapped"
            steps.append(
                Projection(
                    merged, mapped, helpers.ASIA_CUSTOMER_TO_CDB,
                    name="map_customer",
                )
            )
            merged = mapped
        steps.append(
            Invoke(
                "sales_cleaning",
                helpers.insert_request(table, merged, mode="upsert"),
                name=f"load_{table}",
            )
        )
    steps.append(Signal())
    return ProcessType(
        "P09",
        ProcessGroup.B,
        "Extract wrapped data from Beijing and Seoul",
        EventType.E2_SCHEDULE,
        Sequence(steps, name="p09"),
    )


# ------------------------------------------------------------------------ P10

def build_p10() -> ProcessType:
    """P10: receive error-prone messages from San Diego.

    Messages are validated first; failures are inserted into the CDB's
    failed-data destination and the instance ends.  Valid messages are
    translated to the CDB schema and loaded.
    """

    def failed_insert_request(context: ExecutionContext) -> Envelope:
        document = context.get("msg1").xml()
        reasons = (
            "; ".join(context.validation_failures[-1][:3])
            if context.validation_failures
            else "unknown"
        )
        clob = serialize_xml(document)
        row = {
            "failkey": _failed_message_key(clob),
            "source": "san_diego",
            "reason": reasons[:200],
            "msg": clob,
        }
        return Envelope.update_request("failed_messages", [row])

    return ProcessType(
        "P10",
        ProcessGroup.B,
        "Receive error-prone messages from San Diego",
        EventType.E1_MESSAGE,
        Sequence(
            [
                Receive("msg1", expected_type="sandiego_order"),
                Validate(
                    "msg1",
                    sandiego_schema(),
                    on_fail=Invoke(
                        "sales_cleaning",
                        failed_insert_request,
                        work_kind="xml",
                        name="store_failed_message",
                    ),
                    name="validate_sandiego",
                ),
                Translation("msg1", "msg2", sandiego_to_cdb_stylesheet()),
                *_load_order_steps("p10", "msg2"),
                Signal(),
            ],
            name="p10",
        ),
    )


# ------------------------------------------------------------------------ P11

_P11_TABLES = [
    ("customer", helpers.TPCH_CUSTOMER_TO_CDB, "customer", "upsert"),
    ("part", helpers.TPCH_PART_TO_CDB, "product", "upsert"),
    ("orders", helpers.TPCH_ORDERS_TO_CDB, "orders", "upsert"),
    ("lineitem", helpers.TPCH_LINEITEM_TO_CDB, "orderline", "upsert"),
]


def build_p11() -> ProcessType:
    """P11: extract all US_Eastcoast data and load it into the global CDB,
    with "several projections … realizing a simple schema mapping"."""
    steps = []
    for source_table, mapping, target_table, mode in _P11_TABLES:
        raw = f"{source_table}_raw"
        mapped = f"{source_table}_mapped"
        steps.append(
            Invoke(
                "us_eastcoast",
                helpers.query_request(source_table),
                output=raw,
                name=f"extract_{source_table}",
            )
        )
        steps.append(
            Projection(raw, mapped, mapping, name=f"map_{source_table}")
        )
        steps.append(
            Invoke(
                "sales_cleaning",
                helpers.insert_request(target_table, mapped, mode=mode),
                name=f"load_{target_table}",
            )
        )
    steps.append(Signal())
    return ProcessType(
        "P11",
        ProcessGroup.B,
        "Extract data from CDB America",
        EventType.E2_SCHEDULE,
        Sequence(steps, name="p11"),
    )
