"""Shared building blocks for the process definitions.

Mostly: converting between the canonical CdbOrder message shape and
relational rows, the projection mappings implementing the schema mappings
of Sections III–IV, and request-builder closures for INVOKE operators.
"""

from __future__ import annotations

import datetime
from decimal import Decimal
from typing import Any, Callable

from repro.db.expressions import Expression, col, lit
from repro.db.relation import Relation
from repro.mtm.context import ExecutionContext
from repro.mtm.message import Message
from repro.services.endpoints import Envelope
from repro.xmlkit.doc import XmlElement

ORDER_COLUMNS = ("orderkey", "custkey", "orderdate", "status", "priority", "totalprice")
ORDERLINE_COLUMNS = (
    "orderkey",
    "linenumber",
    "prodkey",
    "quantity",
    "extendedprice",
    "discount",
)


def _text(element: XmlElement, tag: str) -> str | None:
    """Child text, searching one nested level (Head blocks)."""
    direct = element.child_text(tag)
    if direct is not None:
        return direct
    for child in element.children:
        nested = child.child_text(tag)
        if nested is not None:
            return nested
    return None


def cdb_order_to_rows(document: XmlElement) -> tuple[dict, list[dict]]:
    """Parse a canonical ``<CdbOrder>`` message into order + line rows."""
    orderkey = int(_text(document, "Orderkey"))
    order = {
        "orderkey": orderkey,
        "custkey": int(_text(document, "Custkey")),
        "orderdate": datetime.date.fromisoformat(_text(document, "Orderdate")),
        "status": _text(document, "Status"),
        "priority": _text(document, "Priority"),
        "totalprice": None,
    }
    total_text = _text(document, "Totalprice")
    lines: list[dict] = []
    computed_total = Decimal("0")
    lines_parent = document.find("Lines")
    for line in (lines_parent.find_all("Line") if lines_parent else []):
        extended = Decimal(line.child_text("Extendedprice") or "0")
        computed_total += extended
        discount_text = line.child_text("Discount")
        lines.append(
            {
                "orderkey": orderkey,
                "linenumber": int(line.child_text("Linenumber")),
                "prodkey": int(line.child_text("Prodkey")),
                "quantity": int(line.child_text("Quantity")),
                "extendedprice": extended,
                "discount": Decimal(discount_text) if discount_text else None,
            }
        )
    order["totalprice"] = Decimal(total_text) if total_text else computed_total
    return order, lines


def extract_cdb_order(input_var: str, order_var: str, lines_var: str):
    """Assign-callables splitting a CdbOrder message into two relations."""

    def order_value(context: ExecutionContext) -> Message:
        order, _ = cdb_order_to_rows(context.get(input_var).xml())
        return Message(Relation(ORDER_COLUMNS, [order]))

    def lines_value(context: ExecutionContext) -> Message:
        _, lines = cdb_order_to_rows(context.get(input_var).xml())
        return Message(Relation(ORDERLINE_COLUMNS, lines))

    return order_value, lines_value


# ----------------------------------------------------------- request builders

def insert_request(table: str, input_var: str, mode: str = "insert"):
    """Request builder: update <table> with the relation bound to input_var."""

    def build(context: ExecutionContext) -> Envelope:
        return Envelope.update_request(
            table, context.get(input_var).relation(), mode=mode
        )

    # Introspection metadata consumed by the optimizer's rewrite rules.
    build.kind = "update"
    build.table = table
    build.input_var = input_var
    build.mode = mode
    return build


def query_request(
    table: str,
    predicate: Expression | None = None,
    columns: tuple[str, ...] | None = None,
):
    """Request builder: query <table> (optionally filtered/projected)."""

    def build(context: ExecutionContext) -> Envelope:
        return Envelope.query_request(table, predicate, columns)

    build.kind = "query"
    build.table = table
    build.predicate = predicate
    build.columns = columns
    return build


def ws_query_request(table: str):
    """Request builder for web services: body is ``{"table": ...}``."""

    def build(context: ExecutionContext) -> Envelope:
        return Envelope("query", {"table": table}, payload_units=1.0)

    return build


def execute_request(procedure: str, **params: Any):
    """Request builder: call a stored procedure."""

    def build(context: ExecutionContext) -> Envelope:
        return Envelope.execute_request(procedure, **params)

    return build


# -------------------------------------------------------- projection mappings

#: Europe source schema -> canonical CDB customer (with staging flag).
EU_CUSTOMER_TO_CDB: dict[str, str | Expression] = {
    "custkey": "cust_id",
    "name": "cust_name",
    "address": "cust_address",
    "phone": "cust_phone",
    "citykey": "cust_city",
    "segment": "cust_segment",
    "integrated": lit(False),
}

EU_PRODUCT_TO_CDB: dict[str, str] = {
    "prodkey": "prod_id",
    "name": "prod_name",
    "brand": "prod_brand",
    "price": "prod_price",
    "groupkey": "prod_group",
}

EU_ORDER_TO_CDB: dict[str, str] = {
    "orderkey": "ord_id",
    "custkey": "ord_customer",
    "orderdate": "ord_date",
    "status": "ord_state",
    "priority": "ord_priority",
    "totalprice": "ord_total",
}

EU_ORDERPOS_TO_CDB: dict[str, str] = {
    "orderkey": "ord_id",
    "linenumber": "pos_nr",
    "prodkey": "pos_product",
    "quantity": "pos_quantity",
    "extendedprice": "pos_price",
    "discount": "pos_discount",
}

#: TPC-H America schema -> canonical CDB shapes (P11's "simple schema
#: mapping" realized by "several projections").
TPCH_CUSTOMER_TO_CDB: dict[str, str | Expression] = {
    "custkey": "c_custkey",
    "name": "c_name",
    "address": "c_address",
    "phone": "c_phone",
    "citykey": "c_citykey",
    "segment": "c_mktsegment",
    "integrated": lit(False),
}

TPCH_PART_TO_CDB: dict[str, str] = {
    "prodkey": "p_partkey",
    "name": "p_name",
    "brand": "p_brand",
    "price": "p_retailprice",
    "groupkey": "p_groupkey",
}

TPCH_ORDERS_TO_CDB: dict[str, str] = {
    "orderkey": "o_orderkey",
    "custkey": "o_custkey",
    "orderdate": "o_orderdate",
    "status": "o_orderstatus",
    "priority": "o_orderpriority",
    "totalprice": "o_totalprice",
}

TPCH_LINEITEM_TO_CDB: dict[str, str] = {
    "orderkey": "l_orderkey",
    "linenumber": "l_linenumber",
    "prodkey": "l_partkey",
    "quantity": "l_quantity",
    "extendedprice": "l_extendedprice",
    "discount": "l_discount",
}

#: Asia result sets -> canonical CDB customer (adds the staging flag).
ASIA_CUSTOMER_TO_CDB: dict[str, str | Expression] = {
    "custkey": "custkey",
    "name": "name",
    "address": "address",
    "phone": "phone",
    "citykey": "citykey",
    "segment": "segment",
    "integrated": lit(False),
}
