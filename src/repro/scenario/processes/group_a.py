"""Group A — Source System Management (P01, P02, P03).

These processes keep the *source* systems consistent with each other:
master data exchange inside region Asia, master data subscription inside
region Europe, and the two-phase local consolidation of region America.
"""

from __future__ import annotations

from repro.mtm.blocks import Sequence, Switch, SwitchCase
from repro.mtm.context import ExecutionContext
from repro.mtm.operators import (
    ExtractField,
    Invoke,
    Receive,
    Signal,
    Translation,
    Union,
)
from repro.mtm.process import EventType, ProcessGroup, ProcessType
from repro.services.endpoints import Envelope
from repro.scenario.processes import helpers
from repro.scenario.topology import (
    EUROPE_PARIS_THRESHOLD,
    EUROPE_TRONDHEIM_THRESHOLD,
)
from repro.scenario.xmlschemas import (
    beijing_to_seoul_stylesheet,
    mdm_to_europe_stylesheet,
)
from repro.xmlkit.doc import XmlElement


def build_p01() -> ProcessType:
    """P01: master data exchange Asia.

    An XML message conforming to XSD_Beijing is received, translated to
    XSD_Seoul with the given STX stylesheet, and sent on.  (The paper
    says "finally sent to Beijing", which contradicts the translation
    direction; we read it as the obvious erratum and send the
    Seoul-shaped message to the Seoul web service.)
    """

    def seoul_update_request(context: ExecutionContext) -> Envelope:
        # Pack the SeoulMasterData message into the generic result-set
        # shape the web service's update operation consumes.
        seoul_doc = context.get("msg2").xml()
        resultset = XmlElement("ResultSet", {"table": "customer"})
        for customer in seoul_doc.find_all("Customer"):
            row = resultset.add(XmlElement("Row"))
            for field, column in (
                ("Custkey", "custkey"),
                ("Name", "name"),
                ("Address", "address"),
                ("Phone", "phone"),
                ("Citykey", "citykey"),
                ("Segment", "segment"),
            ):
                value = customer.child_text(field)
                if value is not None:
                    row.add_text_child(column, value)
        return Envelope.for_xml("update", resultset)

    return ProcessType(
        "P01",
        ProcessGroup.A,
        "Master data exchange Asia",
        EventType.E1_MESSAGE,
        Sequence(
            [
                Receive("msg1", expected_type="beijing_master"),
                Translation("msg1", "msg2", beijing_to_seoul_stylesheet()),
                Invoke(
                    "seoul",
                    seoul_update_request,
                    work_kind="xml",
                    name="send_to_seoul",
                ),
                Signal(),
            ],
            name="p01",
        ),
    )


def _europe_upsert_request(location: str):
    """Build the eu_customer upsert for one routed MDM message."""

    def build(context: ExecutionContext) -> Envelope:
        doc = context.get("msg2").xml()
        row = {
            "cust_id": int(doc.child_text("Custkey")),
            "cust_name": doc.child_text("Name"),
            "cust_address": doc.child_text("Address"),
            "cust_phone": doc.child_text("Phone"),
            "cust_city": int(doc.child_text("Citykey")),
            "cust_segment": doc.child_text("Segment"),
            "location": location,
        }
        return Envelope.update_request("eu_customer", [row], mode="upsert")

    return build


def build_p02() -> ProcessType:
    """P02: master data subscription Europe (Fig. 4).

    The MDM message is translated to the Europe schema; a SWITCH
    evaluates the Custkey and routes the update to Berlin, Paris or
    Trondheim.
    """

    def custkey(context: ExecutionContext) -> int:
        return context.get("custkey").payload

    return ProcessType(
        "P02",
        ProcessGroup.A,
        "Master data subscription Europe",
        EventType.E1_MESSAGE,
        Sequence(
            [
                Receive("msg1", expected_type="mdm_customer"),
                Translation("msg1", "msg2", mdm_to_europe_stylesheet()),
                ExtractField(
                    "msg2", "custkey", "/EuropeCustomer/Custkey", convert=int
                ),
                Switch(
                    [
                        SwitchCase(
                            lambda ctx: custkey(ctx) < EUROPE_PARIS_THRESHOLD,
                            Invoke(
                                "berlin_paris",
                                _europe_upsert_request("Berlin"),
                                work_kind="xml",
                                name="update_berlin",
                            ),
                            label="berlin",
                        ),
                        SwitchCase(
                            lambda ctx: custkey(ctx) < EUROPE_TRONDHEIM_THRESHOLD,
                            Invoke(
                                "berlin_paris",
                                _europe_upsert_request("Paris"),
                                work_kind="xml",
                                name="update_paris",
                            ),
                            label="paris",
                        ),
                    ],
                    otherwise=Invoke(
                        "trondheim",
                        _europe_upsert_request("Trondheim"),
                        work_kind="xml",
                        name="update_trondheim",
                    ),
                    name="route_by_custkey",
                ),
                Signal(),
            ],
            name="p02",
        ),
    )


#: The three America sources P03 consolidates, with their UNION keys
#: (Fig. 5: "UNION_DISTINCT, Ordkey / Custkey / Prodkey").
_P03_TABLES: list[tuple[str, tuple[str, ...]]] = [
    ("orders", ("o_orderkey",)),
    ("customer", ("c_custkey",)),
    ("part", ("p_partkey",)),
    ("lineitem", ("l_orderkey", "l_linenumber")),
]

_P03_SOURCES = ("chicago", "baltimore", "madison")


def build_p03() -> ProcessType:
    """P03: local data consolidation America (Fig. 5).

    Extracts the datasets from Chicago, Baltimore and Madison, runs a
    UNION DISTINCT per table and loads the result into the local
    consolidated database US_Eastcoast.  (We also carry ``lineitem``
    through the same pipeline — the paper's Fig. 5 unions only Orders,
    Customer and Part, but order positions are needed downstream for the
    movement data to stay referentially intact; DESIGN.md records the
    deviation.)
    """
    steps = []
    for table, keys in _P03_TABLES:
        source_vars = []
        for source in _P03_SOURCES:
            var = f"{table}_{source}"
            source_vars.append(var)
            steps.append(
                Invoke(
                    source,
                    helpers.query_request(table),
                    output=var,
                    name=f"extract_{table}_{source}",
                )
            )
        steps.append(
            Union(
                source_vars,
                f"{table}_merged",
                distinct_key=keys,
                name=f"union_{table}",
            )
        )
        steps.append(
            Invoke(
                "us_eastcoast",
                helpers.insert_request(table, f"{table}_merged", mode="upsert"),
                name=f"load_{table}",
            )
        )
    steps.append(Signal())
    return ProcessType(
        "P03",
        ProcessGroup.A,
        "Local data consolidation America",
        EventType.E2_SCHEDULE,
        Sequence(steps, name="p03"),
    )
