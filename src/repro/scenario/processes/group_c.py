"""Group C — Data Warehouse Update (P12, P13): the data-intensive loads."""

from __future__ import annotations

from repro.db.expressions import UnaryOp, col, lit
from repro.mtm.blocks import Sequence
from repro.mtm.operators import Invoke, Projection, Signal, ValidateRows
from repro.mtm.process import EventType, ProcessGroup, ProcessType
from repro.scenario.processes import helpers

#: Dimension tables copied verbatim from the staging area to the DWH so
#: the warehouse's snowflake stays referentially complete.
_DIMENSION_TABLES = ("region", "nation", "city", "productline", "productgroup")


def build_p12() -> ProcessType:
    """P12: bulk-loading data warehouse master data.

    Invokes ``sp_runMasterDataCleansing``, extracts the clean master data
    from the CDB, validates it, loads it into the DWH, and finally flags
    the CDB master data as integrated (not physically removed).
    """
    steps = [
        Invoke(
            "sales_cleaning",
            helpers.execute_request("sp_runMasterDataCleansing"),
            name="run_master_cleansing",
        ),
    ]
    for table in _DIMENSION_TABLES:
        raw = f"{table}_raw"
        steps.append(
            Invoke(
                "sales_cleaning",
                helpers.query_request(table),
                output=raw,
                name=f"extract_{table}",
            )
        )
        steps.append(
            Invoke(
                "dwh",
                helpers.insert_request(table, raw, mode="upsert"),
                name=f"load_{table}",
            )
        )
    steps.extend(
        [
            # Customers: only the not-yet-integrated delta.
            Invoke(
                "sales_cleaning",
                helpers.query_request(
                    "customer", col("integrated") == lit(False)
                ),
                output="customer_raw",
                name="extract_customer_delta",
            ),
            ValidateRows(
                "customer_raw",
                {
                    "custkey_positive": col("custkey") > lit(0),
                    "name_present": UnaryOp("IS NOT NULL", col("name")),
                    "citykey_present": UnaryOp("IS NOT NULL", col("citykey")),
                },
                name="validate_customer",
            ),
            Projection(
                "customer_raw",
                "customer_clean",
                {
                    "custkey": "custkey",
                    "name": "name",
                    "address": "address",
                    "phone": "phone",
                    "citykey": "citykey",
                    "segment": "segment",
                },
                name="drop_staging_flag",
            ),
            Invoke(
                "dwh",
                helpers.insert_request("customer", "customer_clean", mode="upsert"),
                name="load_customer",
            ),
            # Products: full upsert (no staging flag on products).
            Invoke(
                "sales_cleaning",
                helpers.query_request("product"),
                output="product_raw",
                name="extract_product",
            ),
            ValidateRows(
                "product_raw",
                {"price_positive": col("price") > lit(0)},
                name="validate_product",
            ),
            Invoke(
                "dwh",
                helpers.insert_request("product", "product_raw", mode="upsert"),
                name="load_product",
            ),
            # Flag instead of delete (Section IV.C).
            Invoke(
                "sales_cleaning",
                helpers.execute_request("sp_markMasterDataIntegrated"),
                name="mark_integrated",
            ),
            Signal(),
        ]
    )
    return ProcessType(
        "P12",
        ProcessGroup.C,
        "Bulk-loading data warehouse master data",
        EventType.E2_SCHEDULE,
        Sequence(steps, name="p12"),
    )


def build_p13() -> ProcessType:
    """P13: bulk-loading data warehouse movement data.

    Mirrors P12 for movement data ("the differences in data set sizes
    should be noticed"), then two final invocations: refresh OrdersMV and
    remove the loaded movement data from the CDB.
    """
    return ProcessType(
        "P13",
        ProcessGroup.C,
        "Bulk-loading data warehouse movement data",
        EventType.E2_SCHEDULE,
        Sequence(
            [
                Invoke(
                    "sales_cleaning",
                    helpers.execute_request("sp_runMovementDataCleansing"),
                    name="run_movement_cleansing",
                ),
                Invoke(
                    "sales_cleaning",
                    helpers.query_request("orders"),
                    output="orders_raw",
                    name="extract_orders",
                ),
                ValidateRows(
                    "orders_raw",
                    {
                        "orderkey_positive": col("orderkey") > lit(0),
                        "custkey_positive": col("custkey") > lit(0),
                    },
                    name="validate_orders",
                ),
                Invoke(
                    "dwh",
                    helpers.insert_request("orders", "orders_raw", mode="upsert"),
                    name="load_orders",
                ),
                Invoke(
                    "sales_cleaning",
                    helpers.query_request("orderline"),
                    output="orderline_raw",
                    name="extract_orderline",
                ),
                ValidateRows(
                    "orderline_raw",
                    {"quantity_positive": col("quantity") > lit(0)},
                    name="validate_orderline",
                ),
                Invoke(
                    "dwh",
                    helpers.insert_request(
                        "orderline", "orderline_raw", mode="upsert"
                    ),
                    name="load_orderline",
                ),
                Invoke(
                    "dwh",
                    helpers.execute_request("sp_refreshOrdersMV"),
                    name="refresh_orders_mv",
                ),
                Invoke(
                    "sales_cleaning",
                    helpers.execute_request("sp_clearMovementData"),
                    name="clear_movement_data",
                ),
                Signal(),
            ],
            name="p13",
        ),
    )
