"""Stored procedures and materialized views of the scenario.

The consolidated database owns the two cleansing procedures invoked by
P12/P13 (``sp_runMasterDataCleansing`` / ``sp_runMovementDataCleansing``);
the data warehouse owns ``OrdersMV`` and its refresh procedure (P13); each
data mart owns a revenue view refreshed by P15.

Cleansing semantics (the full spec [25] is unavailable; the rules below
are the obvious reading of "eliminate master data duplicates and
error-prone master data" / "eliminate the movement data errors" given the
dirt our generators inject):

* master data — a customer whose name violates the ``Customer#<digits>``
  pattern is error-prone and removed; customers sharing (address, phone)
  are duplicates, the lowest custkey survives; products with non-positive
  prices or corrupted names are removed;
* movement data — orders referencing a missing customer, orderlines
  referencing a missing order or product, and lines with non-positive
  quantities are removed (orphan elimination before the FK-checked
  warehouse load).
"""

from __future__ import annotations

import re
from typing import Mapping

from repro.db.active import ViewJoin, ViewQuery
from repro.db.database import Database
from repro.db.expressions import col, func, lit
from repro.db.relation import Relation

_CUSTOMER_NAME_RE = re.compile(r"^Customer#\d+$")


def _clean_name(name: object) -> bool:
    return isinstance(name, str) and bool(_CUSTOMER_NAME_RE.match(name))


def sp_run_master_data_cleansing(db: Database) -> dict[str, int]:
    """Eliminate duplicates and error-prone master data in the CDB (P12)."""
    customer = db.table("customer")

    removed_errors = customer.delete(lambda row: not _clean_name(row["name"]))

    # Duplicate elimination: same (address, phone) -> keep lowest custkey.
    best: dict[tuple, int] = {}
    for row in customer.scan():
        key = (row["address"], row["phone"])
        if key not in best or row["custkey"] < best[key]:
            best[key] = row["custkey"]
    survivors = set(best.values())
    removed_duplicates = customer.delete(
        lambda row: row["custkey"] not in survivors
    )

    product = db.table("product")
    removed_products = product.delete(
        lambda row: (row["price"] is None or row["price"] <= 0)
        or ("##" in (row["name"] or ""))
    )
    return {
        "customer_errors": removed_errors,
        "customer_duplicates": removed_duplicates,
        "product_errors": removed_products,
    }


def sp_run_movement_data_cleansing(db: Database) -> dict[str, int]:
    """Eliminate movement-data errors in the CDB (P13)."""
    valid_customers = {row["custkey"] for row in db.table("customer").scan()}
    orders = db.table("orders")
    removed_orphan_orders = orders.delete(
        lambda row: row["custkey"] not in valid_customers
    )

    valid_orders = {row["orderkey"] for row in orders.scan()}
    valid_products = {row["prodkey"] for row in db.table("product").scan()}
    orderline = db.table("orderline")
    removed_lines = orderline.delete(
        lambda row: row["orderkey"] not in valid_orders
        or row["prodkey"] not in valid_products
        or (row["quantity"] is not None and row["quantity"] <= 0)
    )
    return {
        "orphan_orders": removed_orphan_orders,
        "bad_orderlines": removed_lines,
    }


def sp_mark_master_data_integrated(db: Database) -> int:
    """Flag CDB master data as integrated "but not physically removed" (P12)."""
    return db.table("customer").update(
        {"integrated": True}, col("integrated") == lit(False)
    )


def sp_clear_movement_data(db: Database) -> dict[str, int]:
    """Remove loaded movement data from the CDB "for simple delta
    determination in the following integration processes" (P13)."""
    lines = db.table("orderline").truncate()
    orders = db.table("orders").truncate()
    return {"orders": orders, "orderlines": lines}


def orders_mv_query() -> ViewQuery:
    """OrdersMV (Fig. 3) as a declarative :class:`ViewQuery`.

    Same query as :func:`orders_mv_definition`, but in the declarative
    form the database can maintain incrementally: P03 appends order
    facts between refreshes, so sp_refreshOrdersMV (P13) folds only the
    new rows into the aggregate instead of recomputing the view.
    Built fresh per database so compiled-expression cache hits stay
    deterministic per run.
    """
    return ViewQuery(
        fact_table="orders",
        joins=(
            ViewJoin(
                table="customer",
                on=(("custkey", "custkey"),),
                columns=(("custkey", "custkey"), ("citykey", "citykey")),
            ),
            ViewJoin(
                table="city",
                on=(("citykey", "citykey"),),
                columns=(("citykey", "citykey"), ("nationkey", "nationkey")),
            ),
            ViewJoin(
                table="nation",
                on=(("nationkey", "nationkey"),),
                columns=(("nationkey", "nationkey"), ("nation_name", "name")),
            ),
        ),
        extend=(("orderyear", func("YEAR", col("orderdate"))),),
        group_keys=("nation_name", "orderyear"),
        aggregates=(
            ("order_count", ("COUNT", None)),
            ("revenue", ("SUM", "totalprice")),
        ),
    )


def mart_revenue_view_query() -> ViewQuery:
    """Per-mart OrdersMV (P09/P15 shape) as a :class:`ViewQuery`."""
    return ViewQuery(
        fact_table="orders",
        joins=(
            ViewJoin(
                table="customer",
                on=(("custkey", "custkey"),),
                columns=(("custkey", "custkey"), ("segment", "segment")),
            ),
        ),
        group_keys=("segment",),
        aggregates=(
            ("order_count", ("COUNT", None)),
            ("revenue", ("SUM", "totalprice")),
        ),
    )


def orders_mv_definition(db: Database) -> Relation:
    """OrdersMV as an opaque callable (naive reference for equivalence tests)."""
    orders = db.query("orders")
    customer = db.query("customer").keep("custkey", "citykey")
    city = db.query("city").project({"citykey": "citykey", "nationkey": "nationkey"})
    nation = db.query("nation").project(
        {"nationkey": "nationkey", "nation_name": "name"}
    )
    joined = (
        orders.join(customer, on=[("custkey", "custkey")])
        .join(city, on=[("citykey", "citykey")])
        .join(nation, on=[("nationkey", "nationkey")])
        .extend("orderyear", func("YEAR", col("orderdate")))
    )
    return joined.group_by(
        ("nation_name", "orderyear"),
        {
            "order_count": ("COUNT", None),
            "revenue": ("SUM", "totalprice"),
        },
    )


def mart_revenue_view_definition(db: Database) -> Relation:
    """Per-mart OrdersMV as an opaque callable (naive reference)."""
    orders = db.query("orders")
    customer = db.query("customer").keep("custkey", "segment")
    joined = orders.join(customer, on=[("custkey", "custkey")])
    return joined.group_by(
        ("segment",),
        {
            "order_count": ("COUNT", None),
            "revenue": ("SUM", "totalprice"),
        },
    )


def install_procedures(
    cdb: Database, dwh: Database, marts: Mapping[str, Database]
) -> None:
    """Install every procedure and materialized view of the scenario."""
    cdb.create_procedure(
        "sp_runMasterDataCleansing",
        sp_run_master_data_cleansing,
        "eliminate master data duplicates and error-prone master data (P12)",
    )
    cdb.create_procedure(
        "sp_runMovementDataCleansing",
        sp_run_movement_data_cleansing,
        "eliminate movement data errors (P13)",
    )
    cdb.create_procedure(
        "sp_markMasterDataIntegrated",
        sp_mark_master_data_integrated,
        "flag master data as integrated after the warehouse load (P12)",
    )
    cdb.create_procedure(
        "sp_clearMovementData",
        sp_clear_movement_data,
        "remove loaded movement data for delta determination (P13)",
    )

    dwh.create_materialized_view("OrdersMV", orders_mv_query())
    dwh.create_procedure(
        "sp_refreshOrdersMV",
        lambda db: db.materialized_view("OrdersMV").refresh(db),
        "refresh the OrdersMV materialized view (P13)",
    )

    for mart_db in marts.values():
        mart_db.create_materialized_view("OrdersMV", mart_revenue_view_query())
        mart_db.create_procedure(
            "sp_refreshViews",
            lambda db: db.materialized_view("OrdersMV").refresh(db),
            "refresh all materialized views of this data mart (P15)",
        )
