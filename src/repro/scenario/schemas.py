"""Every relational schema of the benchmark scenario (Figs. 1–3).

Four schema families live here:

* ``europe_*``  — the self-defined, normalized region-Europe schema
  (Fig. 2) used by Berlin/Paris (one shared database with a ``location``
  discriminator) and Trondheim,
* ``tpch_*``    — region America "follows exactly the normalized TPC-H
  schema" for Chicago, Baltimore, Madison and the local consolidated
  database US_Eastcoast,
* ``asia_*``    — the canonical-shaped tables the Asian web services hide
  behind their generic result-set XSDs,
* ``snowflake_*`` — the consolidated database (staging area) and data
  warehouse snowflake schema of Fig. 3, and the three data-mart variants
  with their per-mart denormalizations.

The canonical column vocabulary (custkey, orderkey, prodkey …) is the
target the integration processes map *into*; the source schemas use
deliberately different names so the projections of P05–P07/P11 have real
work to do.
"""

from __future__ import annotations

from repro.db.schema import Column, ForeignKey, TableSchema

# --------------------------------------------------------------------- Europe

def europe_tables() -> list[TableSchema]:
    """Fig. 2: normalized, self-defined names (cust_*, ord_*, pos_*)."""
    return [
        TableSchema(
            "eu_customer",
            [
                Column("cust_id", "BIGINT", nullable=False),
                Column("cust_name", "VARCHAR", length=40),
                Column("cust_address", "VARCHAR", length=60),
                Column("cust_phone", "VARCHAR", length=20),
                Column("cust_city", "INTEGER"),
                Column("cust_segment", "VARCHAR", length=12),
                Column("location", "VARCHAR", nullable=False, length=16),
            ],
            primary_key=("cust_id",),
        ),
        TableSchema(
            "eu_product",
            [
                Column("prod_id", "BIGINT", nullable=False),
                Column("prod_name", "VARCHAR", length=60),
                Column("prod_brand", "VARCHAR", length=12),
                Column("prod_price", "DECIMAL"),
                Column("prod_group", "INTEGER"),
                Column("location", "VARCHAR", nullable=False, length=16),
            ],
            primary_key=("prod_id",),
        ),
        TableSchema(
            "eu_order",
            [
                Column("ord_id", "BIGINT", nullable=False),
                Column("ord_customer", "BIGINT", nullable=False),
                Column("ord_date", "DATE"),
                Column("ord_state", "CHAR", length=1),
                Column("ord_priority", "VARCHAR", length=16),
                Column("ord_total", "DECIMAL"),
                Column("location", "VARCHAR", nullable=False, length=16),
            ],
            primary_key=("ord_id",),
            foreign_keys=[ForeignKey(("ord_customer",), "eu_customer", ("cust_id",))],
        ),
        TableSchema(
            "eu_orderpos",
            [
                Column("ord_id", "BIGINT", nullable=False),
                Column("pos_nr", "INTEGER", nullable=False),
                Column("pos_product", "BIGINT", nullable=False),
                Column("pos_quantity", "INTEGER"),
                Column("pos_price", "DECIMAL"),
                Column("pos_discount", "DECIMAL"),
                Column("location", "VARCHAR", nullable=False, length=16),
            ],
            primary_key=("ord_id", "pos_nr"),
            foreign_keys=[ForeignKey(("ord_id",), "eu_order", ("ord_id",))],
        ),
    ]


# -------------------------------------------------------------------- America

def tpch_tables() -> list[TableSchema]:
    """Region America: the normalized TPC-H subset the processes touch."""
    return [
        TableSchema(
            "customer",
            [
                Column("c_custkey", "BIGINT", nullable=False),
                Column("c_name", "VARCHAR", length=25),
                Column("c_address", "VARCHAR", length=40),
                Column("c_phone", "CHAR", length=15),
                Column("c_citykey", "INTEGER"),
                Column("c_mktsegment", "CHAR", length=10),
                Column("c_acctbal", "DECIMAL"),
            ],
            primary_key=("c_custkey",),
        ),
        TableSchema(
            "part",
            [
                Column("p_partkey", "BIGINT", nullable=False),
                Column("p_name", "VARCHAR", length=55),
                Column("p_brand", "CHAR", length=10),
                Column("p_retailprice", "DECIMAL"),
                Column("p_groupkey", "INTEGER"),
            ],
            primary_key=("p_partkey",),
        ),
        TableSchema(
            "orders",
            [
                Column("o_orderkey", "BIGINT", nullable=False),
                Column("o_custkey", "BIGINT", nullable=False),
                Column("o_orderdate", "DATE"),
                Column("o_orderstatus", "CHAR", length=1),
                Column("o_orderpriority", "CHAR", length=15),
                Column("o_totalprice", "DECIMAL"),
            ],
            primary_key=("o_orderkey",),
        ),
        TableSchema(
            "lineitem",
            [
                Column("l_orderkey", "BIGINT", nullable=False),
                Column("l_linenumber", "INTEGER", nullable=False),
                Column("l_partkey", "BIGINT", nullable=False),
                Column("l_quantity", "INTEGER"),
                Column("l_extendedprice", "DECIMAL"),
                Column("l_discount", "DECIMAL"),
            ],
            primary_key=("l_orderkey", "l_linenumber"),
        ),
    ]


# ----------------------------------------------------------------------- Asia

def asia_tables() -> list[TableSchema]:
    """Asian web-service data sources: canonical names, flat tables."""
    return [
        TableSchema(
            "customer",
            [
                Column("custkey", "BIGINT", nullable=False),
                Column("name", "VARCHAR", length=40),
                Column("address", "VARCHAR", length=60),
                Column("phone", "VARCHAR", length=20),
                Column("citykey", "INTEGER"),
                Column("segment", "VARCHAR", length=12),
            ],
            primary_key=("custkey",),
        ),
        TableSchema(
            "product",
            [
                Column("prodkey", "BIGINT", nullable=False),
                Column("name", "VARCHAR", length=60),
                Column("brand", "VARCHAR", length=12),
                Column("price", "DECIMAL"),
                Column("groupkey", "INTEGER"),
            ],
            primary_key=("prodkey",),
        ),
        TableSchema(
            "orders",
            [
                Column("orderkey", "BIGINT", nullable=False),
                Column("custkey", "BIGINT", nullable=False),
                Column("orderdate", "DATE"),
                Column("status", "CHAR", length=1),
                Column("priority", "VARCHAR", length=16),
                Column("totalprice", "DECIMAL"),
            ],
            primary_key=("orderkey",),
        ),
        TableSchema(
            "orderline",
            [
                Column("orderkey", "BIGINT", nullable=False),
                Column("linenumber", "INTEGER", nullable=False),
                Column("prodkey", "BIGINT", nullable=False),
                Column("quantity", "INTEGER"),
                Column("extendedprice", "DECIMAL"),
                Column("discount", "DECIMAL"),
            ],
            primary_key=("orderkey", "linenumber"),
        ),
    ]


# ---------------------------------------------------- CDB / DWH snowflake (Fig. 3)

def _snowflake_dimension_tables() -> list[TableSchema]:
    return [
        TableSchema(
            "region",
            [
                Column("regionkey", "INTEGER", nullable=False),
                Column("name", "VARCHAR", length=25),
            ],
            primary_key=("regionkey",),
        ),
        TableSchema(
            "nation",
            [
                Column("nationkey", "INTEGER", nullable=False),
                Column("name", "VARCHAR", length=25),
                Column("regionkey", "INTEGER", nullable=False),
            ],
            primary_key=("nationkey",),
            foreign_keys=[ForeignKey(("regionkey",), "region", ("regionkey",))],
        ),
        TableSchema(
            "city",
            [
                Column("citykey", "INTEGER", nullable=False),
                Column("name", "VARCHAR", length=25),
                Column("nationkey", "INTEGER", nullable=False),
            ],
            primary_key=("citykey",),
            foreign_keys=[ForeignKey(("nationkey",), "nation", ("nationkey",))],
        ),
        TableSchema(
            "productline",
            [
                Column("linekey", "INTEGER", nullable=False),
                Column("name", "VARCHAR", length=25),
            ],
            primary_key=("linekey",),
        ),
        TableSchema(
            "productgroup",
            [
                Column("groupkey", "INTEGER", nullable=False),
                Column("name", "VARCHAR", length=40),
                Column("linekey", "INTEGER", nullable=False),
            ],
            primary_key=("groupkey",),
            foreign_keys=[ForeignKey(("linekey",), "productline", ("linekey",))],
        ),
        TableSchema(
            "product",
            [
                Column("prodkey", "BIGINT", nullable=False),
                Column("name", "VARCHAR", length=60),
                Column("brand", "VARCHAR", length=12),
                Column("price", "DECIMAL"),
                Column("groupkey", "INTEGER", nullable=False),
            ],
            primary_key=("prodkey",),
            foreign_keys=[ForeignKey(("groupkey",), "productgroup", ("groupkey",))],
        ),
    ]


def _movement_tables(with_customer_fk: bool = True) -> list[TableSchema]:
    orders_fks = []
    if with_customer_fk:
        orders_fks.append(ForeignKey(("custkey",), "customer", ("custkey",)))
    return [
        TableSchema(
            "orders",
            [
                Column("orderkey", "BIGINT", nullable=False),
                Column("custkey", "BIGINT", nullable=False),
                Column("orderdate", "DATE"),
                Column("status", "CHAR", length=1),
                Column("priority", "VARCHAR", length=16),
                Column("totalprice", "DECIMAL"),
            ],
            primary_key=("orderkey",),
            foreign_keys=orders_fks,
        ),
        TableSchema(
            "orderline",
            [
                Column("orderkey", "BIGINT", nullable=False),
                Column("linenumber", "INTEGER", nullable=False),
                Column("prodkey", "BIGINT", nullable=False),
                Column("quantity", "INTEGER"),
                Column("extendedprice", "DECIMAL"),
                Column("discount", "DECIMAL"),
            ],
            primary_key=("orderkey", "linenumber"),
            foreign_keys=[ForeignKey(("orderkey",), "orders", ("orderkey",))],
        ),
    ]


def cdb_tables() -> list[TableSchema]:
    """The consolidated database (staging area).

    Same snowflake as the DWH but with staging extras: an ``integrated``
    flag on master data (P12 flags instead of deleting) and the
    failed-data destination of P10.
    """
    customer = TableSchema(
        "customer",
        [
            Column("custkey", "BIGINT", nullable=False),
            Column("name", "VARCHAR", length=40),
            Column("address", "VARCHAR", length=60),
            Column("phone", "VARCHAR", length=20),
            Column("citykey", "INTEGER"),
            Column("segment", "VARCHAR", length=12),
            Column("integrated", "BOOLEAN"),
        ],
        primary_key=("custkey",),
    )
    failed = TableSchema(
        "failed_messages",
        [
            Column("failkey", "BIGINT", nullable=False),
            Column("source", "VARCHAR", length=20),
            Column("reason", "VARCHAR", length=200),
            Column("msg", "CLOB"),
        ],
        primary_key=("failkey",),
    )
    return _snowflake_dimension_tables() + [customer] + _movement_tables(
        with_customer_fk=False  # staging data may arrive child-first
    ) + [failed]


def dwh_tables() -> list[TableSchema]:
    """The data warehouse snowflake of Fig. 3 (clean data only)."""
    customer = TableSchema(
        "customer",
        [
            Column("custkey", "BIGINT", nullable=False),
            Column("name", "VARCHAR", length=40),
            Column("address", "VARCHAR", length=60),
            Column("phone", "VARCHAR", length=20),
            Column("citykey", "INTEGER", nullable=False),
            Column("segment", "VARCHAR", length=12),
        ],
        primary_key=("custkey",),
        foreign_keys=[ForeignKey(("citykey",), "city", ("citykey",))],
    )
    return _snowflake_dimension_tables() + [customer] + _movement_tables()


# ------------------------------------------------------------------ data marts

def _denormalized_product() -> TableSchema:
    return TableSchema(
        "dim_product",
        [
            Column("prodkey", "BIGINT", nullable=False),
            Column("name", "VARCHAR", length=60),
            Column("brand", "VARCHAR", length=12),
            Column("price", "DECIMAL"),
            Column("group_name", "VARCHAR", length=40),
            Column("line_name", "VARCHAR", length=25),
        ],
        primary_key=("prodkey",),
    )


def _denormalized_location() -> TableSchema:
    return TableSchema(
        "dim_location",
        [
            Column("citykey", "INTEGER", nullable=False),
            Column("city_name", "VARCHAR", length=25),
            Column("nation_name", "VARCHAR", length=25),
            Column("region_name", "VARCHAR", length=25),
        ],
        primary_key=("citykey",),
    )


def _normalized_product() -> list[TableSchema]:
    return [t for t in _snowflake_dimension_tables()
            if t.name in ("productline", "productgroup", "product")]


def _normalized_location() -> list[TableSchema]:
    return [t for t in _snowflake_dimension_tables()
            if t.name in ("region", "nation", "city")]


def _mart_customer() -> TableSchema:
    return TableSchema(
        "customer",
        [
            Column("custkey", "BIGINT", nullable=False),
            Column("name", "VARCHAR", length=40),
            Column("citykey", "INTEGER", nullable=False),
            Column("segment", "VARCHAR", length=12),
        ],
        primary_key=("custkey",),
    )


def datamart_tables(mart: str) -> list[TableSchema]:
    """Data-mart schema variants (Section III.B):

    * ``europe`` — product *and* location dimensions denormalized,
    * ``asia`` — only the product dimension denormalized,
    * ``united_states`` — only the location dimension denormalized.
    """
    if mart == "europe":
        dimensions = [_denormalized_product(), _denormalized_location()]
    elif mart == "asia":
        dimensions = [_denormalized_product()] + _normalized_location()
    elif mart == "united_states":
        dimensions = _normalized_product() + [_denormalized_location()]
    else:
        raise ValueError(f"unknown data mart {mart!r}")
    return dimensions + [_mart_customer()] + _movement_tables()


#: Canonical result-set column types for the Asian web services.
ASIA_TYPES: dict[str, dict[str, str]] = {
    "customer": {
        "custkey": "BIGINT",
        "name": "VARCHAR",
        "address": "VARCHAR",
        "phone": "VARCHAR",
        "citykey": "INTEGER",
        "segment": "VARCHAR",
    },
    "product": {
        "prodkey": "BIGINT",
        "name": "VARCHAR",
        "brand": "VARCHAR",
        "price": "DECIMAL",
        "groupkey": "INTEGER",
    },
    "orders": {
        "orderkey": "BIGINT",
        "custkey": "BIGINT",
        "orderdate": "DATE",
        "status": "VARCHAR",
        "priority": "VARCHAR",
        "totalprice": "DECIMAL",
    },
    "orderline": {
        "orderkey": "BIGINT",
        "linenumber": "INTEGER",
        "prodkey": "BIGINT",
        "quantity": "INTEGER",
        "extendedprice": "DECIMAL",
        "discount": "DECIMAL",
    },
}
