"""The DIPBench scenario: topology, schemas, messages, processes P01–P15.

This package is the *content* of the benchmark (Sections III–IV):

* :mod:`repro.scenario.schemas` — every relational schema of Fig. 1–3:
  the self-defined normalized Europe schema, the TPC-H America schema,
  the snowflake consolidated database / data warehouse schema, and the
  three data-mart variants with their different denormalizations,
* :mod:`repro.scenario.xmlschemas` — the XML message schemas
  (Vienna, San Diego, MDM_Europe, XSD_Beijing, XSD_Seoul, Hongkong) and
  the STX stylesheets translating between them,
* :mod:`repro.scenario.topology` — builds the whole system landscape of
  Fig. 1 on the simulated network (databases, web services, registry),
* :mod:`repro.scenario.procedures` — the stored procedures
  (``sp_runMasterDataCleansing``, ``sp_runMovementDataCleansing``, the
  materialized-view refreshes),
* :mod:`repro.scenario.messages` — E1 message factories for the streams,
* :mod:`repro.scenario.processes` — the 15 process types of Table I plus
  the P14 subprocesses, as platform-independent MTM definitions.
"""

from repro.scenario.topology import Scenario, build_scenario
from repro.scenario.processes import build_processes, PROCESS_TABLE

__all__ = ["Scenario", "build_scenario", "build_processes", "PROCESS_TABLE"]
