"""E1 message factories: what the proprietary applications send.

Vienna, San Diego, MDM_Europe and Hongkong are message *sources* — they
have no queryable endpoint; the toolsuite client synthesizes their
messages and delivers them to the integration system according to the
stream schedules.  This module builds those messages, referencing the
customer/product populations the Initializer planted in the source
systems, and injects the schema violations that make San Diego the
"very error-prone" application of Section III.A.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.datagen.distributions import Distribution, UniformDistribution
from repro.datagen.text import TextSynthesizer
from repro.mtm.message import Message
from repro.scenario.topology import KEY_RANGES
from repro.xmlkit.doc import XmlElement

_STATUS_VIENNA = ("OFFEN", "FERTIG", "TEIL")
_PRIO_VIENNA = ("EILIG", "HOCH", "MITTEL", "OFFEN", "NIEDRIG")
_STATUS_HK = ("OPEN", "FILLED", "PENDING")
_PRIO_HK = ("U", "H", "M", "N", "L")
_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")


@dataclass
class Population:
    """Key populations planted by the Initializer, per source system."""

    customer_keys: dict[str, list[int]] = field(default_factory=dict)
    product_keys: list[int] = field(default_factory=list)
    city_keys: dict[str, list[int]] = field(default_factory=dict)

    def customers_of(self, source: str) -> list[int]:
        keys = self.customer_keys.get(source)
        if not keys:
            raise ValueError(f"population has no customers for {source!r}")
        return keys


class MessageFactory:
    """Builds the E1 messages of streams A and B.

    ``error_rate`` applies to San Diego messages only (P10): that fraction
    of messages violates XSD_SanDiego in one of several ways.
    """

    def __init__(
        self,
        population: Population,
        distribution: Distribution | None = None,
        seed: int = 11,
        error_rate: float = 0.15,
    ):
        self.population = population
        self.distribution = distribution or UniformDistribution(seed)
        self.text = TextSynthesizer(self.distribution)
        self.error_rate = error_rate
        self._vienna_orders = itertools.count(KEY_RANGES["vienna_orders"] + 1)
        self._hongkong_orders = itertools.count(KEY_RANGES["hongkong_orders"] + 1)
        self._sandiego_orders = itertools.count(KEY_RANGES["sandiego_orders"] + 1)
        #: Ground truth for phase-post verification: how many order
        #: messages each application sent, and which orderkeys.
        self.sandiego_sent = 0
        self.sandiego_invalid = 0
        self.vienna_sent = 0
        self.hongkong_sent = 0
        self.vienna_orderkeys: list[tuple[int, int]] = []
        self.hongkong_orderkeys: list[tuple[int, int]] = []
        self.sandiego_valid_orderkeys: list[tuple[int, int]] = []
        #: Last MDM master-data update per customer (P02 subscription).
        self.mdm_updates: dict[int, str] = {}

    # -- helpers ---------------------------------------------------------------

    def _order_lines(self, parent: XmlElement, line_tag: str, build_line) -> float:
        count = self.distribution.sample_int(1, 4)
        total = 0.0
        for number in range(1, count + 1):
            quantity = self.distribution.sample_int(1, 40)
            amount = round(self.distribution.sample_float(5.0, 900.0), 2)
            total += amount
            prodkey = self.distribution.choice(self.population.product_keys)
            parent.add(build_line(number, prodkey, quantity, amount))
        return round(total, 2)

    def _a_date(self) -> str:
        month = self.distribution.sample_int(1, 12)
        day = self.distribution.sample_int(1, 28)
        return f"2007-{month:02d}-{day:02d}"

    # -- Vienna (P04) -----------------------------------------------------------

    def vienna_order(self) -> Message:
        """A ``<ViennaOrder>`` referencing a region-Europe customer."""
        europe_customers = (
            self.population.customers_of("berlin")
            + self.population.customers_of("paris")
            + self.population.customers_of("trondheim")
        )
        orderkey = next(self._vienna_orders)
        custkey = self.distribution.choice(europe_customers)
        root = XmlElement("ViennaOrder")
        head = root.add(XmlElement("Kopf"))
        head.add_text_child("Auftrag", orderkey)
        head.add_text_child("Kunde", custkey)
        head.add_text_child("Datum", self._a_date())
        head.add_text_child("Status", self.distribution.choice(_STATUS_VIENNA))
        head.add_text_child("Prioritaet", self.distribution.choice(_PRIO_VIENNA))
        positions = root.add(XmlElement("Positionen"))

        def build_position(number: int, prodkey: int, qty: int, amount: float):
            position = XmlElement("Position", {"nr": str(number)})
            position.add_text_child("Artikel", prodkey)
            position.add_text_child("Menge", qty)
            position.add_text_child("Preis", f"{amount:.2f}")
            return position

        self._order_lines(positions, "Position", build_position)
        self.vienna_sent += 1
        self.vienna_orderkeys.append((orderkey, custkey))
        return Message(root, "vienna_order")

    # -- MDM Europe (P02) --------------------------------------------------------

    def mdm_customer_update(self) -> Message:
        """An ``<MDMCustomerMessage>``: changed Europe master data."""
        europe_customers = (
            self.population.customers_of("berlin")
            + self.population.customers_of("paris")
            + self.population.customers_of("trondheim")
        )
        custkey = self.distribution.choice(europe_customers)
        cities = self.population.city_keys.get("europe", [1])
        root = XmlElement("MDMCustomerMessage")
        kunde = root.add(XmlElement("Kunde", {"nr": str(custkey)}))
        kunde.add_text_child("Name", f"Customer#{custkey:09d}")
        anschrift = kunde.add(XmlElement("Anschrift"))
        new_address = self.text.street_address()
        self.mdm_updates[custkey] = new_address
        anschrift.add_text_child("Strasse", new_address)
        anschrift.add_text_child(
            "Stadtschluessel", self.distribution.choice(cities)
        )
        kunde.add_text_child("Telefon", self.text.phone(49))
        kunde.add_text_child("Segment", self.distribution.choice(_SEGMENTS))
        return Message(root, "mdm_customer")

    # -- Beijing master data (P01) -------------------------------------------------

    def beijing_master_data(self, batch_size: int = 5) -> Message:
        """A ``<BeijingMasterData>`` batch of changed customer records."""
        beijing_customers = self.population.customers_of("beijing")
        cities = self.population.city_keys.get("asia", [10])
        root = XmlElement("BeijingMasterData")
        for _ in range(max(1, batch_size)):
            custkey = self.distribution.choice(beijing_customers)
            record = root.add(
                XmlElement(
                    "CustomerRec",
                    {
                        "custkey": str(custkey),
                        "citykey": str(self.distribution.choice(cities)),
                    },
                )
            )
            record.add_text_child("CName", f"Customer#{custkey:09d}")
            record.add_text_child("CAddr", self.text.street_address())
            record.add_text_child("CPhone", self.text.phone(86))
            record.add_text_child("CSeg", self.distribution.choice(_SEGMENTS))
        return Message(root, "beijing_master")

    # -- Hongkong (P08) ------------------------------------------------------------

    def hongkong_order(self) -> Message:
        """An ``<HKOrder>`` business transaction."""
        orderkey = next(self._hongkong_orders)
        custkey = self.distribution.choice(
            self.population.customers_of("hongkong")
        )
        root = XmlElement("HKOrder")
        root.add_text_child("Id", orderkey)
        root.add_text_child("Cust", custkey)
        root.add_text_child("Date", self._a_date())
        root.add_text_child("Stat", self.distribution.choice(_STATUS_HK))
        root.add_text_child("Prio", self.distribution.choice(_PRIO_HK))
        items = XmlElement("Items")

        def build_item(number: int, prodkey: int, qty: int, amount: float):
            item = XmlElement("Item")
            item.add_text_child("No", number)
            item.add_text_child("Prod", prodkey)
            item.add_text_child("Qty", qty)
            item.add_text_child("Value", f"{amount:.2f}")
            return item

        total = self._order_lines(items, "Item", build_item)
        root.add_text_child("Sum", f"{total:.2f}")
        root.add(items)
        self.hongkong_sent += 1
        self.hongkong_orderkeys.append((orderkey, custkey))
        return Message(root, "hongkong_order")

    # -- San Diego (P10) --------------------------------------------------------------

    def sandiego_order(self) -> Message:
        """An ``<SDOrder>``; at ``error_rate``, deliberately invalid."""
        orderkey = next(self._sandiego_orders)
        custkey = self.distribution.choice(
            self.population.customers_of("sandiego")
        )
        root = XmlElement(
            "SDOrder", {"key": str(orderkey), "customer": str(custkey)}
        )
        root.add_text_child("Placed", self._a_date())
        root.add_text_child("State", self.distribution.choice(("O", "F", "P")))
        lines = XmlElement("Lines")

        def build_line(number: int, prodkey: int, qty: int, amount: float):
            line = XmlElement("Line", {"no": str(number), "part": str(prodkey)})
            line.add_text_child("Qty", qty)
            line.add_text_child("Amount", f"{amount:.2f}")
            return line

        total = self._order_lines(lines, "Line", build_line)
        root.add_text_child("Total", f"{total:.2f}")
        root.add(lines)

        self.sandiego_sent += 1
        if self.distribution.sample_unit() < self.error_rate:
            self._corrupt_sandiego(root)
            self.sandiego_invalid += 1
        else:
            self.sandiego_valid_orderkeys.append((orderkey, custkey))
        return Message(root, "sandiego_order")

    def _corrupt_sandiego(self, root: XmlElement) -> None:
        """Apply one of the error modes the validation of P10 must catch."""
        mode = self.distribution.sample_int(0, 3)
        if mode == 0:
            del root.attributes["customer"]  # missing required attribute
        elif mode == 1:
            root.attributes["key"] = "not-a-number"  # type violation
        elif mode == 2:
            root.add(XmlElement("Bogus", text="?"))  # undeclared child
        else:
            total = root.find("Total")
            if total is not None:
                total.text = "12,99"  # locale-broken decimal
