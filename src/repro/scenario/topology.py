"""The system landscape of Fig. 1, built on the simulated substrate.

Three hosts mirror the paper's experimental setup: ``ES`` carries all
external systems (eleven database instances plus the application server
for the web services), ``IS`` is the integration system under test, and
``CS`` runs the toolsuite.  The wireless network between them becomes a
latency/bandwidth model.

:func:`build_scenario` wires up every external system:

===============  =======================================  ==========
name             role                                     kind
===============  =======================================  ==========
berlin_paris     region Europe, shared DB (location col)  RDBMS
trondheim        region Europe                            RDBMS
beijing          region Asia (local master data)          WebService
seoul            region Asia (local master data)          WebService
hongkong         region Asia (message-driven)             WebService
chicago          region America                           RDBMS
baltimore        region America                           RDBMS
madison          region America                           RDBMS
us_eastcoast     local consolidated DB (America)          RDBMS
sales_cleaning   global consolidated DB (staging area)    RDBMS
dwh              data warehouse                           RDBMS
dm_europe        data mart Europe                         RDBMS
dm_united_states data mart United States                  RDBMS
dm_asia          data mart Asia                           RDBMS
===============  =======================================  ==========

The message-driven applications (Vienna, San Diego, MDM_Europe) have no
endpooint: they *send*; the toolsuite client generates their messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.database import Database
from repro.services.endpoints import DatabaseService, WebService
from repro.services.network import Link, Network
from repro.services.registry import ServiceRegistry
from repro.scenario import schemas
from repro.scenario.procedures import install_procedures

#: Key-space layout.  Sources within one region overlap deliberately so
#: the UNION DISTINCT steps of P03 and P09 have duplicates to remove;
#: regions are disjoint so the CDB merge is collision-free.
KEY_RANGES: dict[str, int] = {
    "berlin": 0,
    "paris": 500_000,
    "trondheim": 1_000_000,
    "vienna_orders": 1_500_000,
    "beijing": 2_000_000,
    "seoul": 2_000_000,  # overlaps beijing: P09 dedups
    "hongkong": 2_400_000,
    "hongkong_orders": 2_500_000,
    "chicago": 4_000_000,
    "baltimore": 4_000_000,  # overlaps chicago: P03 dedups
    "madison": 4_000_000,  # overlaps both
    "sandiego_orders": 4_600_000,
}

#: The P02 routing thresholds (Fig. 4 evaluates the Custkey).
EUROPE_PARIS_THRESHOLD = 500_000
EUROPE_TRONDHEIM_THRESHOLD = 1_000_000


@dataclass
class Scenario:
    """All built systems, ready for the Initializer and the engines."""

    network: Network
    registry: ServiceRegistry
    databases: dict[str, Database] = field(default_factory=dict)
    web_service_databases: dict[str, Database] = field(default_factory=dict)

    def database(self, name: str) -> Database:
        """Any backing database, RDBMS or web-service-hidden."""
        if name in self.databases:
            return self.databases[name]
        return self.web_service_databases[name]

    @property
    def all_databases(self) -> dict[str, Database]:
        return {**self.databases, **self.web_service_databases}

    def uninitialize(self) -> None:
        """Empty every external system (start of each benchmark period)."""
        for db in self.all_databases.values():
            db.truncate_all()


def _make_database(name: str, tables) -> Database:
    db = Database(name)
    for schema in tables:
        db.create_table(schema)
    return db


def build_scenario(
    latency: float = 1.0,
    bandwidth: float = 200.0,
    jitter: float = 0.0,
    seed: int = 0,
) -> Scenario:
    """Construct the full Fig. 1 landscape.

    ``latency``/``bandwidth`` parameterize every ES↔IS link (the paper's
    wireless network); ``jitter`` adds seeded variance for robustness
    experiments.
    """
    network = Network(
        default_link=Link(latency=latency, bandwidth=bandwidth),
        jitter=jitter,
        seed=seed,
    )
    for host in ("ES", "IS", "CS"):
        network.add_host(host)
    registry = ServiceRegistry(network)
    scenario = Scenario(network, registry)

    # --- region Europe -----------------------------------------------------
    scenario.databases["berlin_paris"] = _make_database(
        "berlin_paris", schemas.europe_tables()
    )
    scenario.databases["trondheim"] = _make_database(
        "trondheim", schemas.europe_tables()
    )

    # --- region America ------------------------------------------------------
    for name in ("chicago", "baltimore", "madison", "us_eastcoast"):
        scenario.databases[name] = _make_database(name, schemas.tpch_tables())

    # --- staging / warehouse / marts -----------------------------------------
    scenario.databases["sales_cleaning"] = _make_database(
        "sales_cleaning", schemas.cdb_tables()
    )
    scenario.databases["dwh"] = _make_database("dwh", schemas.dwh_tables())
    scenario.databases["dm_europe"] = _make_database(
        "dm_europe", schemas.datamart_tables("europe")
    )
    scenario.databases["dm_united_states"] = _make_database(
        "dm_united_states", schemas.datamart_tables("united_states")
    )
    scenario.databases["dm_asia"] = _make_database(
        "dm_asia", schemas.datamart_tables("asia")
    )

    install_procedures(scenario.databases["sales_cleaning"],
                       scenario.databases["dwh"],
                       {
                           "dm_europe": scenario.databases["dm_europe"],
                           "dm_united_states": scenario.databases["dm_united_states"],
                           "dm_asia": scenario.databases["dm_asia"],
                       })

    for name, db in scenario.databases.items():
        registry.register(DatabaseService(name, "ES", db))

    # --- region Asia: data sources hidden behind web services -----------------
    # Beijing and Seoul each speak their own result-set dialect (their
    # "default result set XSDs"), which is why P09 needs two different
    # STX stylesheets; Hongkong only *sends* order messages but is also
    # queryable for verification.
    dialects = {
        "beijing": ("BJData", "Tuple"),
        "seoul": ("SeoulRS", "Record"),
        "hongkong": ("ResultSet", "Row"),
    }
    for ws_name, (result_tag, row_tag) in dialects.items():
        ws_db = _make_database(f"{ws_name}_store", schemas.asia_tables())
        scenario.web_service_databases[ws_name] = ws_db
        registry.register(
            WebService(
                ws_name,
                "ES",
                ws_db,
                types=schemas.ASIA_TYPES,
                result_tag=result_tag,
                row_tag=row_tag,
            )
        )

    return scenario
