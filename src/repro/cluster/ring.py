"""Consistent-hash placement of the landscape over virtual hosts.

The cluster layer spreads the scenario databases (and the shards of
their large tables) over ``N`` virtual hosts with a classic
consistent-hash ring: every host contributes ``vnodes`` points on the
ring, a key lands on the first point clockwise from its own hash, and a
key's replica set is the next ``K`` *distinct* hosts clockwise.  Ring
positions are derived from ``sha256(f"{seed}:{host}#{vnode}")``, so
placement is a pure function of the run seed — two runs with the same
seed shard identically, which is what the determinism contract needs.

Placement is an overlay: the paper's three-machine data plane (hosts
ES/IS/CS, Table I) keeps routing every service call exactly as before,
so sharding can never perturb the measured communication costs.  The
ring decides *durability* placement — which virtual host owns a
database's primary WAL and where its follower replicas live — and that
is the layer failover reasons about.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import ClusterError

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.database import Database

#: Tables at or above this row count are split into multiple shards.
LARGE_TABLE_ROWS = 200
#: Shards per large table (each shard is one ring key).
SHARDS_PER_LARGE_TABLE = 4


def _ring_hash(token: str) -> int:
    """Stable 64-bit ring position of one token."""
    return int.from_bytes(
        hashlib.sha256(token.encode()).digest()[:8], "big"
    )


class HashRing:
    """A consistent-hash ring over named virtual hosts."""

    def __init__(self, hosts: Sequence[str], seed: int, vnodes: int = 8):
        if not hosts:
            raise ClusterError("ring needs at least one host")
        if len(set(hosts)) != len(hosts):
            raise ClusterError(f"duplicate hosts in ring: {sorted(hosts)}")
        if vnodes < 1:
            raise ClusterError(f"vnodes must be >= 1, got {vnodes}")
        self.hosts = list(hosts)
        self.seed = seed
        self.vnodes = vnodes
        points: list[tuple[int, str]] = []
        for host in hosts:
            for vnode in range(vnodes):
                points.append((_ring_hash(f"{seed}:{host}#{vnode}"), host))
        points.sort()
        self._points = points
        self._positions = [position for position, _ in points]

    def host_for(self, key: str) -> str:
        """The primary host of ``key`` (first point clockwise)."""
        return self.preference(key, 1)[0]

    def preference(
        self, key: str, count: int, alive: Iterable[str] | None = None
    ) -> list[str]:
        """The first ``count`` distinct hosts clockwise from ``key``.

        With ``alive`` given, dead hosts are skipped — the walk order is
        unchanged, so survivors keep their relative preference (the
        standard consistent-hashing failover property: keys of a dead
        host redistribute to its ring successors, nobody else moves).
        """
        allowed = set(alive) if alive is not None else None
        if allowed is not None and not allowed:
            raise ClusterError(f"no live host to place {key!r}")
        start = bisect.bisect_right(self._positions, _ring_hash(key))
        chosen: list[str] = []
        for offset in range(len(self._points)):
            _, host = self._points[(start + offset) % len(self._points)]
            if host in chosen:
                continue
            if allowed is not None and host not in allowed:
                continue
            chosen.append(host)
            if len(chosen) >= count:
                break
        if not chosen:
            raise ClusterError(f"no live host to place {key!r}")
        return chosen


class ShardMap:
    """Consistent-hash shard placement of the landscape's tables.

    Small tables are one shard; tables with at least
    :data:`LARGE_TABLE_ROWS` rows at placement time are split into
    :data:`SHARDS_PER_LARGE_TABLE` shards, each placed independently on
    the ring (key ``"db.table#s"``).  The map is placement *metadata*
    for the durability overlay — the relational engine keeps executing
    exactly as before — but it is what the ``repro cluster topology``
    command and the balance tests reason about.
    """

    def __init__(self, ring: HashRing):
        self.ring = ring
        #: ``(db, table) -> [shard primary host, ...]`` in shard order.
        self.shards: dict[tuple[str, str], list[str]] = {}
        #: ``db -> primary host`` for the database's WAL/replica unit.
        self.database_home: dict[str, str] = {}

    @classmethod
    def build(
        cls,
        databases: "Iterable[Database]",
        ring: HashRing,
        large_rows: int = LARGE_TABLE_ROWS,
        shards_per_large: int = SHARDS_PER_LARGE_TABLE,
    ) -> "ShardMap":
        shard_map = cls(ring)
        for db in databases:
            shard_map.database_home[db.name] = ring.host_for(db.name)
            for table_name in db.table_names:
                rows = len(db.table(table_name))
                count = shards_per_large if rows >= large_rows else 1
                shard_map.shards[(db.name, table_name)] = [
                    ring.host_for(f"{db.name}.{table_name}#{index}")
                    for index in range(count)
                ]
        return shard_map

    def shard_count(self) -> int:
        return sum(len(hosts) for hosts in self.shards.values())

    def shards_on(self, host: str) -> int:
        return sum(
            1
            for hosts in self.shards.values()
            for shard_host in hosts
            if shard_host == host
        )

    def balance(self) -> dict[str, int]:
        """``host -> shard count`` over every host in the ring."""
        return {host: self.shards_on(host) for host in self.ring.hosts}

    def describe(self) -> str:
        lines = [
            f"shard map: {self.shard_count()} shard(s) over "
            f"{len(self.ring.hosts)} host(s), "
            f"{self.ring.vnodes} vnode(s)/host, seed {self.ring.seed}"
        ]
        for host, count in sorted(self.balance().items()):
            lines.append(f"  {host}: {count} shard(s)")
        for (db, table), hosts in sorted(self.shards.items()):
            if len(hosts) > 1:
                lines.append(
                    f"  {db}.{table}: {len(hosts)} shards -> "
                    + ", ".join(hosts)
                )
        return "\n".join(lines)
