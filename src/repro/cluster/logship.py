"""Asynchronous WAL log-shipping from primaries to follower replicas.

The shipper hangs off the :class:`StorageManager`'s replication hook:
every group commit offers each database's freshly sealed redo records
for shipment to that database's followers over the simulated network.

Two modes:

``sync``
    Every commit is shipped and acknowledged inside the commit — the
    followers are never behind, so a failover's RPO is 0 by
    construction.
``async``
    Records buffer per follower and ship when either the batch size is
    reached or the oldest buffered commit is older than the configured
    replication lag (virtual time).  Followers run behind by up to the
    lag window — the RPO exposure a failover measures.

Checkpoint truncation is a *replication barrier*: before the
StorageManager drops a WAL tail, the shipper force-flushes every
follower up to the last LSN, so a lagging replica can never end up with
a hole it cannot fill (the alternative — re-seeding from the checkpoint
— would make replication cost depend on checkpoint cadence).

Determinism: shipping cost is modeled from the link parameters
(``latency + records/bandwidth``, times the active degradation factor)
read directly off the network — never through
:meth:`Network.transfer_cost`, which consumes the shared jitter RNG and
the run's transfer counters.  Replication therefore adds zero
perturbation to the measured schedule; its cost is reported out of band
through :class:`ReplicationStats` and the ``cluster_*`` metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cluster.replica import DatabaseReplica
from repro.errors import ClusterError

if TYPE_CHECKING:  # pragma: no cover
    from repro.observability.metrics import MetricsRegistry
    from repro.services.network import Network
    from repro.storage.manager import StorageManager

#: Replication modes (the CLI's ``--mode`` values).
REPLICATION_MODES = ("sync", "async")


@dataclass
class ReplicationStats:
    """Lifetime log-shipping statistics of one run (picklable)."""

    mode: str = "sync"
    hosts: int = 0
    replicas_per_db: int = 0
    replica_count: int = 0
    shipped_records: int = 0
    batches: int = 0
    transfer_cost_eu: float = 0.0
    max_lag_records: int = 0
    reseeds: int = 0
    divergent: int = 0

    def describe(self) -> str:
        return (
            f"replication[{self.mode}]: {self.shipped_records} record(s) in "
            f"{self.batches} batch(es) to {self.replica_count} replica(s) "
            f"on {self.hosts} host(s); max lag {self.max_lag_records} "
            f"record(s), modeled transfer cost {self.transfer_cost_eu:.2f} eu"
        )


class LogShipper:
    """Ships each attached database's WAL to its follower replicas."""

    def __init__(
        self,
        storage: "StorageManager",
        network: "Network",
        mode: str = "sync",
        lag: float = 0.0,
        batch: int = 1,
        metrics: "MetricsRegistry | None" = None,
    ):
        if mode not in REPLICATION_MODES:
            raise ClusterError(
                f"unknown replication mode {mode!r}; "
                f"known: {REPLICATION_MODES}"
            )
        if lag < 0:
            raise ClusterError(f"replication lag must be >= 0, got {lag}")
        if batch < 1:
            raise ClusterError(f"batch size must be >= 1, got {batch}")
        self.storage = storage
        self.network = network
        self.mode = mode
        self.lag = lag  # engine units
        self.batch = batch
        self._metrics = metrics
        #: db name -> follower replicas, in placement order.
        self.replicas: dict[str, list[DatabaseReplica]] = {}
        #: commit id -> commit virtual time (for the async lag window).
        self._commit_at: dict[int, float] = {}
        self.stats = ReplicationStats(mode=mode)

    # -- follower management ---------------------------------------------------

    def add_replica(self, replica: DatabaseReplica) -> None:
        self.replicas.setdefault(replica.db_name, []).append(replica)
        self.stats.replica_count = sum(
            len(group) for group in self.replicas.values()
        )

    def drop_replica(self, replica: DatabaseReplica) -> None:
        group = self.replicas.get(replica.db_name, [])
        if replica in group:
            group.remove(replica)
        self.stats.replica_count = sum(
            len(group) for group in self.replicas.values()
        )

    def followers(self, db_name: str) -> list[DatabaseReplica]:
        return list(self.replicas.get(db_name, []))

    # -- shipping --------------------------------------------------------------

    def _link_cost(self, src: str, dst: str, records: int) -> float:
        """Modeled transfer cost without touching the network's RNG or
        the run's transfer counters (see module docstring)."""
        if src == dst:
            return 0.0
        link = self.network.link_between(src, dst)
        cost = link.latency + records / link.bandwidth
        return cost * self.network.degradation(src, dst)

    def _ship(
        self, db_name: str, replica: DatabaseReplica, up_to_lsn: int,
        primary_host: str,
    ) -> int:
        wal = self.storage.wals[db_name]
        pending = [
            record
            for record in wal.records_since(replica.applied_lsn)
            if record.lsn <= up_to_lsn
        ]
        if not pending:
            return 0
        applied = replica.apply(pending)
        self.stats.shipped_records += applied
        self.stats.batches += 1
        self.stats.transfer_cost_eu += self._link_cost(
            primary_host, replica.host, applied
        )
        if self._metrics is not None:
            self._metrics.counter(
                "cluster_shipped_records_total",
                help="WAL records shipped to follower replicas",
            ).inc(applied)
            self._metrics.counter(
                "cluster_ship_batches_total",
                help="Log-shipping batches sent",
            ).inc()
        return applied

    def on_commit(self, commit_id: int, at: float, home_of) -> None:
        """Replication hook: one group commit just sealed at ``at``.

        ``home_of`` maps a database name to its current primary host
        (placement changes after a failover, so the shipper asks every
        time instead of caching).
        """
        self._commit_at[commit_id] = at
        for db_name, wal in self.storage.wals.items():
            followers = self.replicas.get(db_name)
            if not followers:
                continue
            last = wal.last_lsn
            for replica in followers:
                if replica.applied_lsn >= last:
                    continue
                if self.mode == "sync":
                    self._ship(db_name, replica, last, home_of(db_name))
                    continue
                pending = wal.records_since(replica.applied_lsn)
                overdue = any(
                    self._commit_at.get(record.commit_id, at) <= at - self.lag
                    for record in pending
                )
                if len(pending) >= self.batch or overdue:
                    self._ship(db_name, replica, last, home_of(db_name))
        self._note_lag()

    def flush_all(self, home_of) -> int:
        """Ship every follower to its primary's last LSN.

        The checkpoint barrier (called before WAL truncation) and the
        end-of-period drain.  Returns records shipped.
        """
        shipped = 0
        for db_name, wal in self.storage.wals.items():
            for replica in self.replicas.get(db_name, []):
                shipped += self._ship(
                    db_name, replica, wal.last_lsn, home_of(db_name)
                )
        self._commit_at.clear()
        self._note_lag()
        return shipped

    # -- observation -----------------------------------------------------------

    def lag_records(self) -> int:
        """Current worst-case follower lag, in records."""
        worst = 0
        for db_name, wal in self.storage.wals.items():
            for replica in self.replicas.get(db_name, []):
                worst = max(worst, wal.last_lsn - replica.applied_lsn)
        return worst

    def _note_lag(self) -> None:
        lag = self.lag_records()
        self.stats.max_lag_records = max(self.stats.max_lag_records, lag)
        if self._metrics is not None:
            self._metrics.gauge(
                "cluster_replica_lag_records",
                help="Peak follower lag behind the primary WAL, in records",
            ).set_max(float(lag))

    def divergence_report(self) -> list[str]:
        """Caught-up followers whose table digest differs from the primary.

        Must be empty on every healthy run; a non-empty report means
        redo replay is not faithful (the property the logship tests
        pin down).
        """
        from repro.storage.digest import database_digest

        problems: list[str] = []
        for db_name, followers in sorted(self.replicas.items()):
            primary = self.storage.databases.get(db_name)
            wal = self.storage.wals.get(db_name)
            if primary is None or wal is None:
                continue
            expected = database_digest(primary, include_views=False)
            for replica in followers:
                if replica.applied_lsn != wal.last_lsn:
                    continue  # lagging follower: digest can't match yet
                found = replica.digest()
                if found != expected:
                    problems.append(
                        f"{db_name}@{replica.host}: replica digest "
                        f"{found[:16]} != primary {expected[:16]} "
                        f"at LSN {replica.applied_lsn}"
                    )
        self.stats.divergent = len(problems)
        return problems
