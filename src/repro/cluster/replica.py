"""Warm follower replicas maintained by WAL redo replay.

A :class:`DatabaseReplica` is a live, table-only copy of one primary
database on a follower host.  It is seeded from the latest checkpoint
snapshot and then kept warm by replaying the primary's shipped redo
records through :meth:`Database.redo` — the exact replay path crash
recovery uses, so "replica state" and "recovered state" are the same
thing by construction.

Replicas are *table-only*: materialized views are pure functions of
their base tables and their definitions live in engine deployment, so a
follower only tracks each view's population flag (``mv_refresh`` /
``mv_invalidate`` markers in the WAL) and recomputes content at
promotion time, against the restored base tables.  Divergence detection
therefore compares table-only digests (:func:`database_digest` with
``include_views=False``) — identical on a healthy replica at every
commit boundary.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.db.database import Database
from repro.errors import ClusterError
from repro.storage.digest import database_digest
from repro.storage.snapshot import DatabaseSnapshot
from repro.storage.wal import WalRecord

if TYPE_CHECKING:  # pragma: no cover
    pass

#: WAL ops that are view population markers, not table changes.
_VIEW_OPS = ("mv_refresh", "mv_invalidate")


def restore_tables(db: Database, snapshot: DatabaseSnapshot) -> int:
    """Restore a snapshot's tables (not views) into ``db``; returns rows.

    The table half of :meth:`DatabaseSnapshot.restore_into`, reusable
    against databases that have no view objects (replicas).
    """
    restored = 0
    for name, snap in snapshot.tables.items():
        if db.has_table(name):
            table = db.table(name)
        else:
            table = db.create_table(snap.schema)
        table.restore_rows(snap.rows)
        restored += len(snap.rows)
        wanted = dict(snap.indexes)
        for index_name in table.index_names:
            if table.index_columns(index_name) != wanted.get(index_name):
                table.drop_index(index_name)
        for index_name, columns in snap.indexes:
            if not table.has_index(index_name):
                table.create_index(index_name, columns)
    return restored


class DatabaseReplica:
    """One follower copy of one database, on one virtual host."""

    def __init__(self, db_name: str, host: str):
        self.db_name = db_name
        self.host = host
        self.db = Database(db_name)
        #: view name -> populated flag, mirrored from WAL markers.
        self.view_state: dict[str, bool] = {}
        #: Last LSN applied (0 = nothing beyond the seeding snapshot).
        self.applied_lsn = 0
        #: Lifetime counters.
        self.records_applied = 0
        self.seeds = 0

    def seed(self, snapshot: DatabaseSnapshot, as_of_lsn: int) -> int:
        """(Re)build the replica from a checkpoint snapshot; returns rows.

        ``as_of_lsn`` is the last LSN the snapshot already contains:
        shipped records at or below it must not be re-applied.
        """
        self.db = Database(self.db_name)
        self.view_state = dict(snapshot.views)
        self.applied_lsn = as_of_lsn
        self.seeds += 1
        return restore_tables(self.db, snapshot)

    def apply(self, records: Iterable[WalRecord]) -> int:
        """Replay shipped redo records in LSN order; returns #applied."""
        applied = 0
        for record in records:
            if record.lsn <= self.applied_lsn:
                continue
            if record.lsn != self.applied_lsn + 1:
                raise ClusterError(
                    f"replica {self.db_name}@{self.host}: replication hole "
                    f"(applied to LSN {self.applied_lsn}, next shipped "
                    f"record is LSN {record.lsn})"
                )
            if record.op in _VIEW_OPS:
                self.view_state[record.target] = record.op == "mv_refresh"
            else:
                self.db.redo(record.target, record.op, record.payload)
            self.applied_lsn = record.lsn
            applied += 1
        self.records_applied += applied
        return applied

    def digest(self) -> str:
        """Table-only content digest, comparable against the primary's."""
        return database_digest(self.db, include_views=False)

    def promote_into(self, target: Database) -> int:
        """Copy this replica's state into the live database object.

        Tables are reconciled (extra tables on the target — committed
        drops the replica already replayed — are removed), then every
        view the target *defines* is set to this replica's tracked
        population state: populated views recompute from the restored
        base tables, exactly like checkpoint restore does.  Returns the
        number of rows restored.
        """
        snapshot = DatabaseSnapshot.capture(self.db)
        for name in list(target.table_names):
            if name not in snapshot.tables:
                target.drop_table(name)
        restored = restore_tables(target, snapshot)
        for name in target.view_names:
            view = target.materialized_view(name)
            if self.view_state.get(name, False):
                view.refresh(target)
            else:
                view.invalidate()
        return restored
