"""Deterministic failover: detection → election → promotion → redispatch.

The protocol a :class:`ClusterManager` runs when a ``crash`` fault kills
a virtual host:

1. **Failure detection** — virtual-time heartbeats every
   ``heartbeat_interval`` tu; a host is declared dead after
   ``miss_threshold`` consecutive missed beats.  Heartbeats are modeled
   (they never enter the event schedule), so detection time is a pure
   function of the crash time and the two knobs — deterministic, and
   strictly positive.
2. **Leader election** — among the dead primary's live followers, the
   one with the highest applied LSN wins; ties break on the smallest
   host id.  No randomness, no real clocks: two runs elect identically.
3. **Promotion** — the winner catches up any LSN gap from the durable
   WAL (the measured RPO exposure), copies its state into the live
   database object, and the federated catalog is rerouted to the new
   primary placement.
4. **Redispatch** — the in-flight message the crash interrupted is
   parked in the dead-letter queue during the failover and redispatched
   (with its pristine copy) once the new primary serves.

RTO is ``detection + election + promotion (modeled) + (first served
completion − crash)`` — reported out of band, like recovery time, so
the schedule itself stays byte-identical to the fault-free run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.replica import DatabaseReplica

#: Modeled election cost per candidate follower considered (engine units).
ELECTION_COST_PER_CANDIDATE = 0.25


@dataclass(frozen=True)
class HeartbeatConfig:
    """The failure detector's knobs (times in engine units)."""

    interval: float = 5.0
    miss_threshold: int = 2

    def detection_delay(self, crash_at: float) -> float:
        """Virtual time from the crash to the dead declaration.

        Beats land at ``k * interval`` for ``k >= 1``; the first beat
        strictly after the crash is missed, and the declaration comes
        ``miss_threshold`` missed beats later.
        """
        first_missed = (math.floor(crash_at / self.interval) + 1) * self.interval
        detected_at = first_missed + (self.miss_threshold - 1) * self.interval
        return detected_at - crash_at


def elect(candidates: "Sequence[DatabaseReplica]") -> "DatabaseReplica":
    """Max-LSN election with host-id tiebreak (deterministic)."""
    return sorted(candidates, key=lambda r: (-r.applied_lsn, r.host))[0]


@dataclass
class FailoverReport:
    """What one failover did, and what it cost (picklable).

    Times are engine units; the Monitor scales them to tu.  ``rto_eu``
    and ``first_served_at`` are filled once the first redispatched
    request completes; ``rpo_records`` counts the LSNs the elected
    follower had not yet applied at election time — 0 under sync
    shipping, lag-bounded under async (the gap is then recovered from
    the durable WAL, so it is measured exposure, not silent loss).
    """

    index: int
    period: int
    dead_host: str
    crash_at: float
    detected_at: float
    detection_eu: float
    #: ``(db_name, old_primary, new_primary, lsn at promotion)`` tuples.
    promoted: tuple = ()
    #: Databases on surviving hosts rolled back to the committed state
    #: (their primaries lost only the in-doubt, uncommitted work).
    rolled_back: int = 0
    #: Databases recovered from checkpoint + WAL redo because no live
    #: follower survived (degraded path; 0 on a healthy cluster).
    rebuilt_from_log: int = 0
    #: Federated-catalog routes repointed at new primaries.
    rerouted: int = 0
    rpo_records: int = 0
    catchup_records: int = 0
    rows_restored: int = 0
    replicas_reseeded: int = 0
    redispatched: int = 0
    modeled_cost_eu: float = 0.0
    first_served_at: float | None = None
    rto_eu: float | None = None
    wall_ms: float = 0.0
    #: Live-host set after this failover, for post-mortems.
    alive_hosts: tuple = field(default_factory=tuple)

    def complete(self, first_served_at: float) -> None:
        """Close the RTO clock at the first successfully served request."""
        self.first_served_at = first_served_at
        self.rto_eu = self.modeled_cost_eu + max(
            0.0, first_served_at - self.crash_at
        )

    def describe(self) -> str:
        rto = f"{self.rto_eu:.2f}" if self.rto_eu is not None else "?"
        names = ", ".join(entry[0] for entry in self.promoted) or "none"
        return (
            f"failover #{self.index} p{self.period}: host {self.dead_host} "
            f"died at t={self.crash_at:.1f}, detected after "
            f"{self.detection_eu:.1f} eu; promoted {len(self.promoted)} "
            f"database(s) [{names}], rolled back {self.rolled_back}, "
            f"rerouted {self.rerouted} catalog route(s); "
            f"RPO={self.rpo_records} record(s), RTO={rto} eu "
            f"({self.rows_restored} rows restored, "
            f"{self.catchup_records} records caught up)"
        )
