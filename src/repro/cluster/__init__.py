"""repro.cluster: sharded multi-host landscape with replicated WALs.

The cluster layer turns the single-host durability story of PR 3 into a
distributed one: the scenario databases are spread over ``N`` virtual
hosts by consistent hashing (:mod:`~repro.cluster.ring`), each
database's WAL is log-shipped to ``K`` follower replicas
(:mod:`~repro.cluster.logship` / :mod:`~repro.cluster.replica`), and a
``crash`` fault that kills a primary triggers a deterministic failover
(:mod:`~repro.cluster.failover`) with measured RTO and RPO — all
without perturbing the byte-identical benchmark schedule.
"""

from repro.cluster.failover import (
    ELECTION_COST_PER_CANDIDATE,
    FailoverReport,
    HeartbeatConfig,
    elect,
)
from repro.cluster.logship import REPLICATION_MODES, LogShipper, ReplicationStats
from repro.cluster.manager import ClusterConfig, ClusterManager
from repro.cluster.replica import DatabaseReplica, restore_tables
from repro.cluster.ring import (
    LARGE_TABLE_ROWS,
    SHARDS_PER_LARGE_TABLE,
    HashRing,
    ShardMap,
)

__all__ = [
    "ELECTION_COST_PER_CANDIDATE",
    "LARGE_TABLE_ROWS",
    "REPLICATION_MODES",
    "SHARDS_PER_LARGE_TABLE",
    "ClusterConfig",
    "ClusterManager",
    "DatabaseReplica",
    "FailoverReport",
    "HashRing",
    "HeartbeatConfig",
    "LogShipper",
    "ReplicationStats",
    "ShardMap",
    "elect",
    "restore_tables",
]
