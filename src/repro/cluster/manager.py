"""The ClusterManager: a sharded multi-host landscape with failover.

Ties the cluster layer together for one benchmark run:

* a :class:`HashRing` of ``N`` virtual hosts (overlay hosts ``H0..``,
  registered in the simulated network so replication traffic has link
  parameters to price), with a :class:`ShardMap` over the landscape's
  tables and a primary *home* per database,
* ``K`` follower :class:`DatabaseReplica` copies per database, kept
  warm by the :class:`LogShipper` off the StorageManager's replication
  hook,
* the failover protocol of :mod:`repro.cluster.failover` when a
  ``crash`` fault kills a host: detection → max-LSN election →
  promotion + catch-up → federated-catalog rerouting → redispatch of
  the parked in-flight message.

Which host a crash kills is itself deterministic: the ``k``-th crash of
a run kills the ``k``-th ring host still alive (round-robin over the
ring order), so two same-seed runs fail the same hosts at the same
virtual times.  Dead hosts stay dead until the next benchmark period
(period begin re-seeds the whole overlay, mirroring how the injector
heals the network).

The determinism contract is the same as storage's: nothing here touches
the counted query paths, consumes shared randomness or shifts the
event schedule.  All cluster costs — shipping, detection, election,
promotion — are modeled out of band, which is what lets a crashing
clustered run converge byte-identically to the fault-free single-host
run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.failover import (
    ELECTION_COST_PER_CANDIDATE,
    FailoverReport,
    HeartbeatConfig,
    elect,
)
from repro.cluster.logship import REPLICATION_MODES, LogShipper, ReplicationStats
from repro.cluster.replica import DatabaseReplica
from repro.cluster.ring import HashRing, ShardMap
from repro.errors import ClusterError, EngineCrashed
from repro.resilience.deadletter import DeadLetter
from repro.storage.recovery import LOAD_COST_PER_ROW, REDO_COST_PER_RECORD
from repro.storage.snapshot import DatabaseSnapshot

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.base import IntegrationEngine, ProcessEvent
    from repro.observability.metrics import MetricsRegistry
    from repro.services.network import Network
    from repro.storage.manager import StorageManager
    from repro.toolsuite.schedule import ScaleFactors

#: Histogram buckets for RTO, in engine units.
RTO_BUCKETS = (5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0)


@dataclass(frozen=True)
class ClusterConfig:
    """One cluster topology + replication policy (picklable).

    ``repl_lag`` is in tu (like every schedule quantity) and only
    matters in ``async`` mode; ``heartbeat_interval`` is in tu too.
    """

    hosts: int = 3
    replicas: int = 1
    mode: str = "sync"
    repl_lag: float = 0.0
    repl_batch: int = 1
    vnodes: int = 8
    heartbeat_interval: float = 5.0
    miss_threshold: int = 2

    def __post_init__(self) -> None:
        if self.hosts < 2:
            raise ClusterError(
                f"a cluster needs at least 2 hosts, got {self.hosts}"
            )
        if not 1 <= self.replicas < self.hosts:
            raise ClusterError(
                f"replicas must be in [1, hosts-1]: "
                f"{self.replicas} with {self.hosts} host(s)"
            )
        if self.mode not in REPLICATION_MODES:
            raise ClusterError(
                f"unknown replication mode {self.mode!r}; "
                f"known: {REPLICATION_MODES}"
            )
        if self.repl_lag < 0:
            raise ClusterError(
                f"replication lag must be >= 0, got {self.repl_lag}"
            )
        if self.repl_batch < 1:
            raise ClusterError(
                f"replication batch must be >= 1, got {self.repl_batch}"
            )
        if self.heartbeat_interval <= 0:
            raise ClusterError(
                f"heartbeat interval must be > 0, "
                f"got {self.heartbeat_interval}"
            )
        if self.miss_threshold < 1:
            raise ClusterError(
                f"miss threshold must be >= 1, got {self.miss_threshold}"
            )

    @property
    def host_names(self) -> list[str]:
        return [f"H{index}" for index in range(self.hosts)]


class ClusterManager:
    """Owns the ring, the replicas, the shipper and the failover path."""

    def __init__(
        self,
        config: ClusterConfig,
        storage: "StorageManager",
        network: "Network",
        factors: "ScaleFactors",
        seed: int,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.config = config
        self.storage = storage
        self.network = network
        self.factors = factors
        self.seed = seed
        self._metrics = metrics
        for host in config.host_names:
            network.add_host(host)
        self.ring = HashRing(config.host_names, seed=seed, vnodes=config.vnodes)
        self.heartbeat = HeartbeatConfig(
            interval=factors.tu_to_engine(config.heartbeat_interval),
            miss_threshold=config.miss_threshold,
        )
        self.shipper = LogShipper(
            storage,
            network,
            mode=config.mode,
            lag=factors.tu_to_engine(config.repl_lag),
            batch=config.repl_batch,
            metrics=metrics,
        )
        #: db name -> [primary host, follower hosts...], current routing.
        self.placement: dict[str, list[str]] = {}
        self.shard_map: ShardMap | None = None
        self.dead_hosts: set[str] = set()
        self.period = -1
        self._crash_count = 0
        self.failover_reports: list[FailoverReport] = []
        #: Parked in-flight messages awaiting redispatch (drained by the
        #: client once the failover completes).
        self.parking: list[tuple[DeadLetter, "ProcessEvent"]] = []
        storage.replication = self

    # -- placement ---------------------------------------------------------------

    @property
    def alive_hosts(self) -> list[str]:
        return [h for h in self.ring.hosts if h not in self.dead_hosts]

    def home_of(self, db_name: str) -> str:
        placement = self.placement.get(db_name)
        return placement[0] if placement else self.ring.host_for(db_name)

    def _follower_hosts(self, db_name: str, primary: str) -> list[str]:
        """The next ``K`` live hosts clockwise, skipping the primary."""
        alive = self.alive_hosts
        preferred = self.ring.preference(db_name, len(alive), alive=alive)
        return [h for h in preferred if h != primary][: self.config.replicas]

    # -- period lifecycle ----------------------------------------------------------

    def begin_period(self, period: int) -> None:
        """Revive the overlay and seed fresh replicas from the baseline
        checkpoint (must run after :meth:`StorageManager.begin_period`)."""
        checkpoint = self.storage.checkpoint_state
        if checkpoint is None:
            raise ClusterError(
                "cluster period begun before the storage baseline "
                "checkpoint — begin the StorageManager's period first"
            )
        self.period = period
        self.dead_hosts.clear()
        self.parking.clear()
        self.shipper.replicas.clear()
        self.shipper.stats = ReplicationStats(
            mode=self.config.mode,
            hosts=self.config.hosts,
            replicas_per_db=self.config.replicas,
        )
        self.placement.clear()
        for name in sorted(self.storage.databases):
            primary = self.ring.host_for(name)
            followers = self._follower_hosts(name, primary)
            self.placement[name] = [primary] + followers
            snapshot = checkpoint.databases[name]
            as_of = self.storage.wals[name].last_lsn
            for host in followers:
                replica = DatabaseReplica(name, host)
                replica.seed(snapshot, as_of_lsn=as_of)
                self.shipper.add_replica(replica)
        self.shard_map = ShardMap.build(
            self.storage.databases.values(), self.ring
        )

    def end_period(self) -> None:
        """End-of-period drain: ship every follower to its primary's
        last LSN so the period boundary is a replication barrier."""
        self.shipper.flush_all(self.home_of)

    # -- StorageManager replication hook -------------------------------------------

    def on_commit(self, commit_id: int, at: float) -> None:
        self.shipper.on_commit(commit_id, at, self.home_of)

    def before_truncate(self) -> None:
        """Checkpoint barrier: flush every follower before the WAL tails
        are dropped (see :class:`LogShipper`)."""
        self.shipper.flush_all(self.home_of)

    # -- failover ------------------------------------------------------------------

    def _next_victim(self) -> str:
        """The deterministic host the next crash fault kills."""
        order = self.ring.hosts
        for offset in range(len(order)):
            host = order[(self._crash_count + offset) % len(order)]
            if host not in self.dead_hosts:
                return host
        raise ClusterError("every cluster host is dead; cannot fail over")

    def park(self, event: "ProcessEvent", crash: EngineCrashed) -> None:
        """Dead-letter the in-flight message until the failover completes."""
        self.parking.append(
            (
                DeadLetter(
                    process_id=event.process_id,
                    period=event.period,
                    stream=event.stream,
                    time=crash.at,
                    attempts=1,
                    error_type="EngineCrashed",
                    error=str(crash),
                ),
                event,
            )
        )

    def pop_parked(self) -> "ProcessEvent | None":
        """Redispatch the oldest parked message (FIFO), if any."""
        if not self.parking:
            return None
        _letter, event = self.parking.pop(0)
        return event

    def failover(
        self, engine: "IntegrationEngine", crash: EngineCrashed
    ) -> FailoverReport:
        """Run the full failover protocol; returns the (open) report.

        The engine must already be redeployed and reattached, exactly
        like :meth:`RecoveryManager.recover` requires.  The report's RTO
        clock stays open until :meth:`complete_failover` is called with
        the first successfully served record.
        """
        started = time.perf_counter()
        storage = self.storage
        checkpoint = storage.checkpoint_state
        if checkpoint is None:
            raise ClusterError("failover without a checkpoint baseline")
        dead = self._next_victim()
        self._crash_count += 1
        self.dead_hosts.add(dead)
        if not self.alive_hosts:
            raise ClusterError("every cluster host is dead; cannot fail over")
        crash_at = crash.at
        detection = self.heartbeat.detection_delay(crash_at)

        storage.pause()  # promotion restore must not re-journal itself
        promoted: list[tuple[str, str, str, int]] = []
        rolled_back = rebuilt = candidates = 0
        rpo_records = catchup_records = rows_restored = reseeded = 0
        for name in sorted(storage.databases):
            db = storage.databases[name]
            wal = storage.wals[name]
            old_primary = self.home_of(name)
            followers = self.shipper.followers(name)
            for replica in followers:
                if replica.host in self.dead_hosts:
                    self.shipper.drop_replica(replica)
            live = [r for r in followers if r.host not in self.dead_hosts]
            if live:
                candidates += len(live)
                winner = elect(live)
                gap = wal.last_lsn - winner.applied_lsn
                if old_primary == dead:
                    rpo_records += gap
                catchup_records += winner.apply(
                    wal.records_since(winner.applied_lsn)
                )
                rows_restored += winner.promote_into(db)
                new_primary = (
                    winner.host if old_primary == dead else old_primary
                )
            else:
                # Degraded path: no live follower survived — rebuild from
                # the durable checkpoint + redo, like single-host recovery.
                rows_restored += checkpoint.databases[name].restore_into(db)
                for record in wal.committed_records():
                    db.redo(record.target, record.op, record.payload)
                    catchup_records += 1
                rebuilt += 1
                new_primary = (
                    self.ring.preference(name, 1, alive=self.alive_hosts)[0]
                    if old_primary == dead
                    else old_primary
                )
            if old_primary == dead:
                promoted.append((name, old_primary, new_primary, wal.last_lsn))
            else:
                rolled_back += 1
            new_followers = self._follower_hosts(name, new_primary)
            self.placement[name] = [new_primary] + new_followers
            current = {r.host: r for r in self.shipper.followers(name)}
            for host, replica in current.items():
                if host not in new_followers:
                    self.shipper.drop_replica(replica)
            snapshot = None
            for host in new_followers:
                if host in current:
                    continue
                if snapshot is None:
                    snapshot = DatabaseSnapshot.capture(db)
                replica = DatabaseReplica(name, host)
                replica.seed(snapshot, as_of_lsn=wal.last_lsn)
                self.shipper.add_replica(replica)
                reseeded += 1
        self.shipper.stats.reseeds += reseeded

        # Engine volatile state: records, runtime and exact counters as of
        # the last commit — identical to RecoveryManager's protocol.
        commits = storage.commits
        engine.records = list(checkpoint.engine_records) + [
            commit.record for commit in commits
        ]
        last_runtime = (
            commits[-1].runtime if commits else checkpoint.engine_runtime
        )
        engine.restore_runtime_state(last_runtime)
        last_counters = (
            commits[-1].counters if commits else checkpoint.counters
        )
        for name, state in last_counters.items():
            db = storage.databases.get(name)
            if db is not None:
                db.restore_counter_state(state)
        storage.resume()

        routes = {name: placement[0] for name, placement in self.placement.items()}
        engine.note_catalog_reroute(routes)

        report = FailoverReport(
            index=len(self.failover_reports),
            period=self.period,
            dead_host=dead,
            crash_at=crash_at,
            detected_at=crash_at + detection,
            detection_eu=detection,
            promoted=tuple(promoted),
            rolled_back=rolled_back,
            rebuilt_from_log=rebuilt,
            rerouted=len(promoted),
            rpo_records=rpo_records,
            catchup_records=catchup_records,
            rows_restored=rows_restored,
            replicas_reseeded=reseeded,
            modeled_cost_eu=(
                detection
                + candidates * ELECTION_COST_PER_CANDIDATE
                + rows_restored * LOAD_COST_PER_ROW
                + catchup_records * REDO_COST_PER_RECORD
            ),
            wall_ms=(time.perf_counter() - started) * 1000.0,
            alive_hosts=tuple(self.alive_hosts),
        )
        self.failover_reports.append(report)
        if self._metrics is not None:
            self._metrics.counter(
                "cluster_failovers_total",
                help="Primary failovers performed",
            ).inc()
            self._metrics.counter(
                "cluster_rpo_records_total",
                help="LSN exposure at election time (0 under sync shipping)",
            ).inc(rpo_records)
        return report

    def complete_failover(
        self, report: FailoverReport, first_served_at: float
    ) -> None:
        """Close a report's RTO clock; idempotent per report."""
        if report.rto_eu is not None:
            return
        report.redispatched += 1
        report.complete(first_served_at)
        if self._metrics is not None:
            self._metrics.histogram(
                "cluster_rto",
                buckets=RTO_BUCKETS,
                help="Modeled recovery-time objective per failover, "
                     "engine units",
            ).observe(report.rto_eu)

    # -- introspection --------------------------------------------------------------

    def stats(self) -> dict:
        """One flat dict for the CLI and the serve layer."""
        ship = self.shipper.stats
        return {
            "hosts": self.config.hosts,
            "replicas": self.config.replicas,
            "mode": self.config.mode,
            "dead_hosts": sorted(self.dead_hosts),
            "failovers": len(self.failover_reports),
            "shipped_records": ship.shipped_records,
            "batches": ship.batches,
            "max_lag_records": ship.max_lag_records,
            "reseeds": ship.reseeds,
            "rpo_records": sum(r.rpo_records for r in self.failover_reports),
        }

    def describe_topology(self) -> str:
        lines = [
            f"cluster: {self.config.hosts} host(s) x "
            f"{self.config.replicas} replica(s), {self.config.mode} "
            f"shipping, seed {self.seed}"
        ]
        for name in sorted(self.placement):
            placement = self.placement[name]
            lines.append(
                f"  {name}: primary {placement[0]}, "
                f"followers {', '.join(placement[1:]) or 'none'}"
            )
        if self.shard_map is not None:
            lines.append(self.shard_map.describe())
        return "\n".join(lines)
