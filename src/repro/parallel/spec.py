"""Picklable run specifications and the single-run entrypoint.

A :class:`RunSpec` is the pure-data description of one benchmark run —
one point of the paper's (datasize, time, distribution) scale grid, at
one seed, on one engine, with the run's resilience fault timeline and
durability settings carried along.  It contains no live objects: a
worker process receives nothing but the spec and builds its own
landscape, engine and clocks from it (``BenchmarkClient.from_spec``),
which is what makes sweeping the grid across ``multiprocessing`` workers
byte-identical to running it serially.

:func:`run_spec` executes one spec end to end and returns a
:class:`RunOutcome` — itself picklable, carrying the full
:class:`BenchmarkResult`, the landscape digest, and (when requested) the
worker's metrics/trace shards for the parent to merge.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field, replace

from repro.engine.base import InstanceRecord
from repro.errors import ReproError
from repro.observability.metrics import MetricsRegistry
from repro.resilience import FaultSpec
from repro.toolsuite.client import BenchmarkClient, BenchmarkResult
from repro.toolsuite.schedule import ScaleFactors


class SweepError(ReproError):
    """Sweep misconfiguration: bad grid axes, bad worker counts."""


class SweepSabotage(ReproError):
    """Deterministic self-inflicted failure (the ``sabotage`` test hook)."""


@dataclass(frozen=True)
class RunSpec:
    """One benchmark configuration, as plain picklable data.

    ``sabotage`` is a test hook for the sweep executor's containment
    paths: ``"raise"`` makes :func:`run_spec` fail deterministically
    before building anything, ``"hard-exit"`` makes a pool worker die
    without a Python traceback (simulating an OOM kill / segfault).
    """

    engine: str = "interpreter"
    datasize: float = 0.05
    time: float = 1.0
    distribution: int = 0
    periods: int = 1
    seed: int = 42
    jitter: float = 0.0
    engine_workers: int = 4
    sandiego_error_rate: float = 0.15
    faults: FaultSpec | None = None
    max_attempts: int = 4
    durability: str = "off"
    checkpoint_every: float | None = None
    #: Cluster overlay: 0 hosts = single-host classic run; >= 2 builds a
    #: consistent-hash cluster with ``cluster_replicas`` log-shipped
    #: followers per database (``repl_lag`` in tu, async mode only).
    cluster_hosts: int = 0
    cluster_replicas: int = 1
    repl_mode: str = "sync"
    repl_lag: float = 0.0
    repl_batch: int = 1
    verify: bool = True
    collect_metrics: bool = False
    collect_trace: bool = False
    sabotage: str = ""
    #: Synthesized-workload knob string (``repro.synth``); empty runs the
    #: classic DIPBench scenario.  The spec's own ``seed`` is inherited
    #: by the synthesizer unless the knob string pins one.
    synth: str = ""
    #: Partition memory budget in resident rows per database (see
    #: :mod:`repro.db.partition`); None keeps fully-resident storage.
    #: Physical-residency knob only — deliberately NOT part of
    #: :meth:`grid_key` or :attr:`label`, so a budgeted run occupies the
    #: same grid point (and must fingerprint identically) as its
    #: unbudgeted twin.
    mem_budget: int | None = None

    @property
    def factors(self) -> ScaleFactors:
        return ScaleFactors(
            datasize=self.datasize,
            time=self.time,
            distribution=self.distribution,
        )

    @property
    def label(self) -> str:
        """Stable human-readable grid-point identity.

        Classic runs keep the historical four-factor label byte for
        byte; a synthesized run appends its knob string, which is part
        of the grid point's identity (and so of the fingerprint).
        """
        base = (
            f"{self.engine} d={self.datasize:g} t={self.time:g} "
            f"f={self.distribution} seed={self.seed}"
        )
        if self.synth:
            return f"{base} synth={self.synth}"
        return base

    def grid_key(self) -> tuple:
        """Deterministic sort key over the sweep dimensions."""
        return (
            self.engine, self.datasize, self.time,
            self.distribution, self.seed, self.synth,
        )

    def with_engine(self, engine: str) -> "RunSpec":
        """The same grid point on another engine (conformance pairs)."""
        return replace(self, engine=engine)


@dataclass
class RunOutcome:
    """Everything one executed :class:`RunSpec` produced.

    ``status`` is ``"ok"`` for a completed run, ``"error"`` when
    :func:`run_spec` contained an exception, and ``"crashed"`` when the
    worker process executing the spec died outright.  ``wall_seconds``
    is a real measurement and is deliberately excluded from
    :meth:`fingerprint`.
    """

    spec: RunSpec
    status: str = "ok"
    error_type: str = ""
    error: str = ""
    result: BenchmarkResult | None = None
    landscape_digest: str = ""
    metrics_shard: MetricsRegistry | None = None
    spans: list[dict] | None = None
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @classmethod
    def crashed(cls, spec: RunSpec) -> "RunOutcome":
        """The deterministic record of a dead worker's grid point."""
        return cls(
            spec=spec,
            status="crashed",
            error_type="WorkerCrashed",
            error=f"worker process died while executing {spec.label}",
        )

    @classmethod
    def failed(cls, spec: RunSpec, exc: BaseException) -> "RunOutcome":
        return cls(
            spec=spec,
            status="error",
            error_type=type(exc).__name__,
            error=str(exc),
        )

    def _record_identity(self, record: InstanceRecord) -> str:
        return repr(record)

    def fingerprint(self) -> str:
        """Content hash of everything the determinism contract covers.

        Byte-identity of a parallel sweep with the serial one means: the
        landscape digest, every per-instance record, the NAVG+ table and
        the verification outcome of each grid point match — this digest
        is over exactly those, never over wall-clock measurements.
        """
        hasher = hashlib.sha256()
        hasher.update(self.label.encode())
        hasher.update(f"\x00{self.status}\x00{self.error_type}\x00".encode())
        hasher.update(self.landscape_digest.encode())
        if self.result is not None:
            for record in self.result.records:
                hasher.update(self._record_identity(record).encode())
                hasher.update(b"\x01")
            hasher.update(self.result.metrics.as_table().encode())
            hasher.update(b"\x02")
            hasher.update(
                "\n".join(self.result.verification.checks).encode()
            )
            hasher.update(
                "\n".join(self.result.verification.failures).encode()
            )
        return hasher.hexdigest()

    @property
    def label(self) -> str:
        return self.spec.label

    def navg_plus_total(self) -> float:
        """Sum of NAVG+ over the process types (one scalar per point)."""
        if self.result is None:
            return 0.0
        return sum(m.navg_plus for m in self.result.metrics.rows())

    def to_json(self) -> dict:
        """Deterministic JSON row (no wall-clock fields)."""
        row: dict = {
            "engine": self.spec.engine,
            "datasize": self.spec.datasize,
            "time": self.spec.time,
            "distribution": self.spec.distribution,
            "seed": self.spec.seed,
            "periods": self.spec.periods,
            "status": self.status,
            "error_type": self.error_type,
            "landscape_digest": self.landscape_digest,
            "fingerprint": self.fingerprint(),
        }
        if self.spec.synth:
            row["synth"] = self.spec.synth
        if self.result is not None:
            row["instances"] = self.result.total_instances
            row["errors"] = self.result.error_instances
            row["verification_ok"] = self.result.verification.ok
            row["navg_plus"] = {
                m.process_id: round(m.navg_plus, 6)
                for m in self.result.metrics.rows()
            }
        return row


def run_spec(spec: RunSpec) -> RunOutcome:
    """Execute one :class:`RunSpec` in-process and contain its failures.

    Any exception (bad spec, engine failure the client could not absorb)
    becomes an ``"error"`` outcome with a structured ``error_type``
    instead of propagating — one broken grid point must never take the
    sweep down.
    """
    from repro.storage import landscape_digest

    started = time.perf_counter()
    try:
        if spec.sabotage == "raise":
            raise SweepSabotage(f"sabotaged grid point: {spec.label}")
        if spec.synth:
            from repro.synth.runner import SynthClient

            client = SynthClient.from_spec(spec)
        else:
            client = BenchmarkClient.from_spec(spec)
        result = client.run(verify=spec.verify)
        digest = landscape_digest(client.scenario.all_databases.values())
        metrics_shard = None
        if spec.collect_metrics:
            metrics_shard = client.observability.metrics
        spans = None
        if spec.collect_trace:
            spans = [
                span.to_dict()
                for span in client.observability.tracer.finished_spans()
            ]
        return RunOutcome(
            spec=spec,
            status="ok",
            result=result,
            landscape_digest=digest,
            metrics_shard=metrics_shard,
            spans=spans,
            wall_seconds=time.perf_counter() - started,
        )
    except Exception as exc:
        outcome = RunOutcome.failed(spec, exc)
        outcome.wall_seconds = time.perf_counter() - started
        return outcome
