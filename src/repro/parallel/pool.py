"""A persistent worker pool over pipe-connected ``run_spec`` processes.

The PR-4 sweep executor fans a *batch* of :class:`RunSpec`\\ s out and
blocks until the whole grid is merged.  The serving layer
(:mod:`repro.serve`) needs the same worker processes — isolated
landscapes, crash containment, picklable outcomes — but as a *service*:
specs arrive one at a time from many tenants, and each caller wants its
own result back as soon as its run finishes.

:class:`WorkerPool` is that persistent form.  It owns a fixed set of
worker processes plus one collector thread, and exposes
``submit(spec) -> Future[RunOutcome]``.  The collector thread is the
single owner of every pipe (submissions travel through an internal
queue), so no two threads ever touch a ``Connection`` concurrently.

Crash containment matches the sweep executor: a worker that dies
outright (OOM kill, segfault, ``os._exit``) fails only the spec it was
executing — the future resolves to ``RunOutcome.crashed(spec)`` — and
the pool replaces the worker and keeps serving.

:class:`SweepExecutor` runs its parallel path on top of this pool, so
batch sweeps and served sessions exercise the same machinery.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from multiprocessing import connection

from repro.parallel.spec import RunOutcome, RunSpec, SweepError, run_spec


def _pick_start_method(requested: str | None) -> str:
    """``fork`` where available (fast, inherits the warm interpreter);
    ``spawn`` otherwise.  Both produce identical outcomes — every worker
    rebuilds its state from the spec alone."""
    available = multiprocessing.get_all_start_methods()
    if requested is not None:
        if requested not in available:
            raise SweepError(
                f"start method {requested!r} not available "
                f"(have {available})"
            )
        return requested
    return "fork" if "fork" in available else "spawn"


def _worker_loop(conn) -> None:
    """One pool worker: receive a spec, send back its outcome.

    The ``hard-exit`` sabotage hook dies *without* a traceback or a
    reply, exactly like an externally killed process — it exists so the
    containment path is testable deterministically.
    """
    try:
        while True:
            spec = conn.recv()
            if spec is None:
                return
            if spec.sabotage == "hard-exit":
                os._exit(70)
            conn.send(run_spec(spec))
    except (EOFError, OSError, KeyboardInterrupt):
        return
    finally:
        conn.close()


@dataclass
class _Worker:
    process: multiprocessing.Process
    conn: "connection.Connection"
    #: (future, spec) currently executing, or None when idle.
    current: tuple[Future, RunSpec] | None = None


class WorkerPool:
    """Fixed-size pool of ``run_spec`` worker processes with futures.

    >>> pool = WorkerPool(workers=2)
    >>> future = pool.submit(RunSpec(datasize=0.02))
    >>> outcome = future.result()
    >>> pool.close()

    Submissions are dispatched to idle workers in FIFO order, so a batch
    submitted in grid order executes in grid order — which is what keeps
    :class:`SweepExecutor` byte-identical across worker counts when it
    runs on this pool.
    """

    def __init__(self, workers: int = 2, start_method: str | None = None):
        if workers < 1:
            raise SweepError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.start_method = _pick_start_method(start_method)
        self._ctx = multiprocessing.get_context(self.start_method)
        self._tasks: "queue.Queue[tuple[Future, RunSpec] | None]" = (
            queue.Queue()
        )
        self._pool = [self._spawn() for _ in range(workers)]
        self._closed = False
        self._lock = threading.Lock()
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-worker-pool", daemon=True
        )
        self._collector.start()

    # -- public API -----------------------------------------------------------

    def submit(self, spec: RunSpec) -> "Future[RunOutcome]":
        """Queue one spec; the future resolves to its :class:`RunOutcome`.

        The future never raises for a *run* failure — errors and worker
        crashes come back as ``status="error"`` / ``"crashed"`` outcomes,
        mirroring the sweep executor's containment contract.
        """
        with self._lock:
            if self._closed:
                raise SweepError("worker pool is closed")
            future: "Future[RunOutcome]" = Future()
            self._tasks.put((future, spec))
            return future

    def run(self, spec: RunSpec) -> RunOutcome:
        """Submit one spec and block for its outcome."""
        return self.submit(spec).result()

    def close(self, timeout: float = 10.0) -> None:
        """Stop the collector, terminate the workers, fail pending work.

        Idempotent.  Futures still queued or in flight resolve to
        ``crashed`` outcomes so no caller blocks forever.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._tasks.put(None)
        self._collector.join(timeout=timeout)
        for worker in self._pool:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            worker.conn.close()
        for worker in self._pool:
            worker.process.join(timeout=timeout)
            if worker.process.is_alive():  # pragma: no cover
                worker.process.terminate()
                worker.process.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- collector thread ---------------------------------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_loop, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()  # the parent keeps only its own end
        return _Worker(process=process, conn=parent_conn)

    def _dispatch_pending(self, pending: list) -> None:
        for worker in self._pool:
            if not pending:
                return
            if worker.current is None:
                worker.current = pending.pop(0)
                worker.conn.send(worker.current[1])

    def _collect_loop(self) -> None:
        """Single owner of every worker pipe.

        Alternates between draining the submission queue (dispatching to
        idle workers in FIFO order) and waiting on busy workers'
        connections; worker death is contained to the future it was
        serving.
        """
        pending: list[tuple[Future, RunSpec]] = []
        while True:
            busy = [w for w in self._pool if w.current is not None]
            try:
                # Block only when there is nothing else to wait for.
                task = self._tasks.get(
                    block=not busy and not pending, timeout=None
                )
            except queue.Empty:
                task = False  # nothing new; fall through to the pipes
            if task is None:
                break
            if task is not False:
                pending.append(task)
                # Keep draining without blocking: a burst of submissions
                # should all be visible before dispatch.
                while True:
                    try:
                        task = self._tasks.get_nowait()
                    except queue.Empty:
                        break
                    if task is None:
                        self._fail_pending(pending)
                        return
                    pending.append(task)
            self._dispatch_pending(pending)
            busy = [w for w in self._pool if w.current is not None]
            if not busy:
                continue
            ready = connection.wait([w.conn for w in busy], timeout=0.1)
            for conn in ready:
                worker = next(w for w in self._pool if w.conn is conn)
                assert worker.current is not None
                future, spec = worker.current
                try:
                    outcome = worker.conn.recv()
                except (EOFError, OSError):
                    # The worker died mid-task: contain the failure to
                    # its spec and replace the worker.
                    self._pool.remove(worker)
                    worker.conn.close()
                    worker.process.join()
                    self._pool.append(self._spawn())
                    outcome = RunOutcome.crashed(spec)
                else:
                    worker.current = None
                # A caller may have cancelled (e.g. a timed-out await);
                # the run still completed, its result is just dropped.
                if not future.done():
                    future.set_result(outcome)
        self._fail_pending(pending)

    def _fail_pending(self, pending: list) -> None:
        """Resolve everything still queued or in flight at close time."""
        for worker in self._pool:
            if worker.current is not None:
                future, spec = worker.current
                worker.current = None
                if not future.done():
                    future.set_result(RunOutcome.crashed(spec))
        for future, spec in pending:
            if not future.done():
                future.set_result(RunOutcome.crashed(spec))
        while True:
            try:
                task = self._tasks.get_nowait()
            except queue.Empty:
                break
            if task is None:
                continue
            future, spec = task
            if not future.done():
                future.set_result(RunOutcome.crashed(spec))
