"""Scale-grid expansion: (d, t, f) × engines × seeds → RunSpecs.

The paper's execution schedule is a grid over the three scale factors;
every published DIPBench figure is a sweep over that grid.  This module
turns axis value lists into the deterministic, ordered list of
:class:`RunSpec`\\ s the executor fans out — grid order is the
``itertools.product`` order of ``(engine, datasize, time, distribution,
seed, synth)`` with each axis in the order given, and the merged sweep
result always comes back in exactly that order regardless of which
worker finished first.

The ``synth`` axis sweeps synthesized-workload knob strings
(``repro.synth``).  Because knob strings contain commas, its axis
*values* are separated by ``"/"`` (``synth=depth=1/depth=3``); the empty
default keeps the classic scenario.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping, Sequence

from repro.parallel.spec import RunSpec, SweepError

#: Axis spellings accepted by :func:`parse_grid_axes`.
_AXIS_NAMES = {
    "d": "d", "datasize": "d",
    "t": "t", "time": "t",
    "f": "f", "distribution": "f",
    "synth": "synth", "workload": "synth",
}


def parse_grid_axes(items: Iterable[str]) -> dict[str, list]:
    """Parse ``d=0.02,0.05``-style axis definitions.

    Accepts the axis keys ``d``/``datasize`` (floats), ``t``/``time``
    (floats), ``f``/``distribution`` (ints) and ``synth``/``workload``
    (knob strings, ``"/"``-separated since knob strings contain commas).
    Values keep the order they were written in; repeating an axis is an
    error.
    """
    axes: dict[str, list] = {}
    for item in items:
        key, sep, values = item.partition("=")
        key = key.strip().lower()
        if not sep or key not in _AXIS_NAMES:
            raise SweepError(
                f"bad grid axis {item!r}: expected d=..., t=..., f=... "
                "or synth=..."
            )
        axis = _AXIS_NAMES[key]
        if axis in axes:
            raise SweepError(f"grid axis {axis!r} given twice")
        try:
            if axis == "f":
                parsed = [int(v) for v in values.split(",") if v.strip()]
            elif axis == "synth":
                # Validate each knob string up front so a bad sweep axis
                # fails before any worker is spawned.
                from repro.synth.spec import knob_problems

                parsed = [v.strip() for v in values.split("/") if v.strip()]
                for knobs in parsed:
                    problems = knob_problems(knobs)
                    if problems:
                        raise SweepError(
                            f"bad synth axis value {knobs!r}: "
                            + "; ".join(problems)
                        )
            else:
                parsed = [float(v) for v in values.split(",") if v.strip()]
        except ValueError as exc:
            raise SweepError(f"bad grid axis {item!r}: {exc}") from None
        if not parsed:
            raise SweepError(f"grid axis {item!r} has no values")
        axes[axis] = parsed
    return axes


def expand_grid(
    engines: Sequence[str] = ("interpreter",),
    datasizes: Sequence[float] = (0.05,),
    times: Sequence[float] = (1.0,),
    distributions: Sequence[int] = (0,),
    seeds: Sequence[int] = (42,),
    synths: Sequence[str] = ("",),
    **common,
) -> list[RunSpec]:
    """All grid points in deterministic order, sharing ``common`` fields.

    ``common`` holds everything that is not a sweep axis (periods,
    faults, durability, ...) and is passed to every :class:`RunSpec`
    verbatim.  ``synths`` defaults to the single empty knob string —
    the classic scenario — so existing sweeps expand identically.
    """
    for name, values in (
        ("engines", engines), ("datasizes", datasizes), ("times", times),
        ("distributions", distributions), ("seeds", seeds),
        ("synths", synths),
    ):
        if not values:
            raise SweepError(f"grid axis {name!r} has no values")
    return [
        RunSpec(
            engine=engine,
            datasize=d,
            time=t,
            distribution=f,
            seed=seed,
            synth=synth,
            **common,
        )
        for engine, d, t, f, seed, synth in itertools.product(
            engines, datasizes, times, distributions, seeds, synths
        )
    ]


def grid_from_axes(
    axes: Mapping[str, list],
    engines: Sequence[str],
    seeds: Sequence[int],
    **common,
) -> list[RunSpec]:
    """Expand parsed CLI axes (see :func:`parse_grid_axes`) into specs."""
    return expand_grid(
        engines=engines,
        datasizes=axes.get("d", [0.05]),
        times=axes.get("t", [1.0]),
        distributions=axes.get("f", [0]),
        seeds=seeds,
        synths=axes.get("synth", [""]),
        **common,
    )
