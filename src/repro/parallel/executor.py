"""The deterministic parallel sweep executor.

Fans independent :class:`RunSpec`\\ s out across ``multiprocessing``
workers and merges the outcomes back **in grid order**, so a parallel
sweep is byte-identical (landscape digests, per-instance records, NAVG+
tables, verification outcomes) to the serial one at the same seeds.

Determinism model
-----------------

* Every grid point is self-contained: the worker builds its own
  landscape, engine, virtual clocks and RNGs from nothing but the spec
  (:meth:`BenchmarkClient.from_spec`), so scheduling of workers cannot
  leak between points.
* Workers return complete :class:`RunOutcome` objects; the parent stores
  them at the spec's original grid index.  Completion order is
  irrelevant — the merged result reads as if the specs ran serially.
* Observability shards (per-worker metrics registries and span rows)
  are merged into one registry/tracer *in grid order*, which keeps the
  merged export independent of the worker count too.

Worker-crash containment
------------------------

The pool is hand-rolled over ``Pipe``-connected worker processes rather
than ``concurrent.futures`` because a worker that dies outright (OOM
kill, segfault, ``os._exit``) must fail **only its own grid point**: the
parent detects the broken pipe, records the point as ``"crashed"`` with
``error_type="WorkerCrashed"``, replaces the worker, and the sweep
completes.  (``ProcessPoolExecutor`` marks the whole pool broken
instead.)
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Sequence

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Tracer
from repro.parallel.spec import RunOutcome, RunSpec, SweepError, run_spec


def _pick_start_method(requested: str | None) -> str:
    """``fork`` where available (fast, inherits the warm interpreter);
    ``spawn`` otherwise.  Both produce identical outcomes — every worker
    rebuilds its state from the spec alone."""
    available = multiprocessing.get_all_start_methods()
    if requested is not None:
        if requested not in available:
            raise SweepError(
                f"start method {requested!r} not available "
                f"(have {available})"
            )
        return requested
    return "fork" if "fork" in available else "spawn"


def _worker_loop(conn) -> None:
    """One pool worker: receive (index, spec), send (index, outcome).

    The ``hard-exit`` sabotage hook dies *without* a traceback or a
    reply, exactly like an externally killed process — it exists so the
    containment path is testable deterministically.
    """
    try:
        while True:
            task = conn.recv()
            if task is None:
                return
            index, spec = task
            if spec.sabotage == "hard-exit":
                os._exit(70)
            conn.send((index, run_spec(spec)))
    except (EOFError, OSError, KeyboardInterrupt):
        return
    finally:
        conn.close()


@dataclass
class _Worker:
    process: multiprocessing.Process
    conn: "connection.Connection"
    #: (index, spec) currently executing, or None when idle.
    current: tuple[int, RunSpec] | None = None


@dataclass
class SweepResult:
    """All grid points of one sweep, merged in deterministic grid order."""

    outcomes: list[RunOutcome]
    workers: int
    wall_seconds: float = 0.0
    start_method: str = "serial"

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    @property
    def ok(self) -> bool:
        return all(
            o.ok and (o.result is None or o.result.verification.ok)
            for o in self.outcomes
        )

    @property
    def failed(self) -> list[RunOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def total_instances(self) -> int:
        return sum(
            o.result.total_instances
            for o in self.outcomes
            if o.result is not None
        )

    def fingerprint(self) -> str:
        """Hash over every grid point's fingerprint, in grid order.

        Two sweeps over the same grid and seeds converged iff this
        matches — the CI smoke job compares it across worker counts.
        """
        hasher = hashlib.sha256()
        for outcome in self.outcomes:
            hasher.update(outcome.fingerprint().encode())
            hasher.update(b"\x00")
        return hasher.hexdigest()

    def merged_metrics(self) -> MetricsRegistry:
        """One registry with every worker's metrics shard folded in.

        Shards merge in grid order, so the merged registry is identical
        whether the sweep ran on one worker or many.
        """
        merged = MetricsRegistry()
        for outcome in self.outcomes:
            if outcome.metrics_shard is not None:
                merged.merge(outcome.metrics_shard)
        return merged

    def merged_trace(self) -> Tracer:
        """One tracer with every grid point's span shard absorbed.

        Grid points are laid side by side on the merged timeline, each
        shifted past the previous point's last span end.
        """
        tracer = Tracer()
        offset = 0.0
        for outcome in self.outcomes:
            if not outcome.spans:
                continue
            spans = tracer.absorb(outcome.spans, time_offset=offset)
            offset = max(
                (s.end_time for s in spans if s.end_time is not None),
                default=offset,
            )
        return tracer

    def to_json(self) -> dict:
        """Deterministic JSON document (no wall-clock fields)."""
        return {
            "points": [o.to_json() for o in self.outcomes],
            "fingerprint": self.fingerprint(),
        }


class SweepExecutor:
    """Executes RunSpecs serially (``workers=1``) or across a pool.

    ``workers=1`` runs every spec inline in the calling process — that
    is the serial baseline the byte-identity contract is defined
    against.  ``workers>1`` fans specs out over that many worker
    processes (capped at the number of specs).
    """

    def __init__(
        self,
        workers: int = 1,
        start_method: str | None = None,
    ):
        if workers < 1:
            raise SweepError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.start_method = _pick_start_method(start_method)

    def run(self, specs: Sequence[RunSpec]) -> SweepResult:
        specs = list(specs)
        if not specs:
            raise SweepError("nothing to sweep: no RunSpecs given")
        started = time.perf_counter()
        if self.workers == 1 or len(specs) == 1:
            outcomes = [self._run_serial(spec) for spec in specs]
            return SweepResult(
                outcomes=outcomes,
                workers=1,
                wall_seconds=time.perf_counter() - started,
                start_method="serial",
            )
        outcomes = self._run_pool(specs)
        return SweepResult(
            outcomes=outcomes,
            workers=min(self.workers, len(specs)),
            wall_seconds=time.perf_counter() - started,
            start_method=self.start_method,
        )

    # -- serial path -----------------------------------------------------------

    @staticmethod
    def _run_serial(spec: RunSpec) -> RunOutcome:
        if spec.sabotage == "hard-exit":
            # Mirror the pool's containment outcome instead of killing
            # the calling process: serial and parallel sweeps stay
            # byte-identical even under sabotage.
            return RunOutcome.crashed(spec)
        return run_spec(spec)

    # -- pool path ---------------------------------------------------------------

    def _spawn(self, ctx) -> _Worker:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_worker_loop, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()  # the parent keeps only its own end
        return _Worker(process=process, conn=parent_conn)

    def _run_pool(self, specs: list[RunSpec]) -> list[RunOutcome]:
        ctx = multiprocessing.get_context(self.start_method)
        pending: list[tuple[int, RunSpec]] = list(enumerate(specs))
        pending.reverse()  # pop() dispatches in grid order
        outcomes: list[RunOutcome | None] = [None] * len(specs)
        remaining = len(specs)
        pool = [
            self._spawn(ctx)
            for _ in range(min(self.workers, len(specs)))
        ]
        try:
            for worker in pool:
                if pending:
                    worker.current = pending.pop()
                    worker.conn.send(worker.current)
            while remaining:
                ready = connection.wait([w.conn for w in pool])
                for conn in ready:
                    worker = next(w for w in pool if w.conn is conn)
                    try:
                        index, outcome = worker.conn.recv()
                    except (EOFError, OSError):
                        # The worker died mid-task: contain the failure
                        # to its grid point and replace the worker.
                        pool.remove(worker)
                        worker.conn.close()
                        worker.process.join()
                        if worker.current is not None:
                            index, spec = worker.current
                            outcomes[index] = RunOutcome.crashed(spec)
                            remaining -= 1
                        if pending:
                            pool.append(self._spawn(ctx))
                        continue
                    outcomes[index] = outcome
                    remaining -= 1
                    worker.current = None
                    if pending:
                        worker.current = pending.pop()
                        worker.conn.send(worker.current)
                # Replacement workers spawned above still need a task.
                for worker in pool:
                    if worker.current is None and pending:
                        worker.current = pending.pop()
                        worker.conn.send(worker.current)
        finally:
            for worker in pool:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
                worker.conn.close()
            for worker in pool:
                worker.process.join(timeout=10.0)
                if worker.process.is_alive():  # pragma: no cover
                    worker.process.terminate()
                    worker.process.join()
        assert all(o is not None for o in outcomes)
        return outcomes  # type: ignore[return-value]


def run_sweep(
    specs: Sequence[RunSpec],
    workers: int = 1,
    start_method: str | None = None,
) -> SweepResult:
    """Convenience wrapper: build an executor and run the sweep."""
    return SweepExecutor(workers=workers, start_method=start_method).run(specs)
