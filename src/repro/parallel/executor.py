"""The deterministic parallel sweep executor.

Fans independent :class:`RunSpec`\\ s out across ``multiprocessing``
workers and merges the outcomes back **in grid order**, so a parallel
sweep is byte-identical (landscape digests, per-instance records, NAVG+
tables, verification outcomes) to the serial one at the same seeds.

Determinism model
-----------------

* Every grid point is self-contained: the worker builds its own
  landscape, engine, virtual clocks and RNGs from nothing but the spec
  (:meth:`BenchmarkClient.from_spec`), so scheduling of workers cannot
  leak between points.
* Workers return complete :class:`RunOutcome` objects; the parent stores
  them at the spec's original grid index.  Completion order is
  irrelevant — the merged result reads as if the specs ran serially.
* Observability shards (per-worker metrics registries and span rows)
  are merged into one registry/tracer *in grid order*, which keeps the
  merged export independent of the worker count too.

Worker-crash containment
------------------------

The pool (:class:`repro.parallel.pool.WorkerPool`) is hand-rolled over
``Pipe``-connected worker processes rather than ``concurrent.futures``
because a worker that dies outright (OOM kill, segfault, ``os._exit``)
must fail **only its own grid point**: the pool detects the broken pipe,
records the point as ``"crashed"`` with ``error_type="WorkerCrashed"``,
replaces the worker, and the sweep completes.
(``ProcessPoolExecutor`` marks the whole pool broken instead.)  The
same pool, in its persistent form, executes sessions for the
:mod:`repro.serve` front-end.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Sequence

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Tracer
from repro.parallel.pool import WorkerPool, _pick_start_method
from repro.parallel.spec import RunOutcome, RunSpec, SweepError, run_spec


@dataclass
class SweepResult:
    """All grid points of one sweep, merged in deterministic grid order."""

    outcomes: list[RunOutcome]
    workers: int
    wall_seconds: float = 0.0
    start_method: str = "serial"

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    @property
    def ok(self) -> bool:
        return all(
            o.ok and (o.result is None or o.result.verification.ok)
            for o in self.outcomes
        )

    @property
    def failed(self) -> list[RunOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def total_instances(self) -> int:
        return sum(
            o.result.total_instances
            for o in self.outcomes
            if o.result is not None
        )

    def fingerprint(self) -> str:
        """Hash over every grid point's fingerprint, in grid order.

        Two sweeps over the same grid and seeds converged iff this
        matches — the CI smoke job compares it across worker counts.
        """
        hasher = hashlib.sha256()
        for outcome in self.outcomes:
            hasher.update(outcome.fingerprint().encode())
            hasher.update(b"\x00")
        return hasher.hexdigest()

    def merged_metrics(self) -> MetricsRegistry:
        """One registry with every worker's metrics shard folded in.

        Shards merge in grid order, so the merged registry is identical
        whether the sweep ran on one worker or many.
        """
        merged = MetricsRegistry()
        for outcome in self.outcomes:
            if outcome.metrics_shard is not None:
                merged.merge(outcome.metrics_shard)
        return merged

    def merged_trace(self) -> Tracer:
        """One tracer with every grid point's span shard absorbed.

        Grid points are laid side by side on the merged timeline, each
        shifted past the previous point's last span end.
        """
        tracer = Tracer()
        offset = 0.0
        for outcome in self.outcomes:
            if not outcome.spans:
                continue
            spans = tracer.absorb(outcome.spans, time_offset=offset)
            offset = max(
                (s.end_time for s in spans if s.end_time is not None),
                default=offset,
            )
        return tracer

    def to_json(self) -> dict:
        """Deterministic JSON document (no wall-clock fields)."""
        return {
            "points": [o.to_json() for o in self.outcomes],
            "fingerprint": self.fingerprint(),
        }


class SweepExecutor:
    """Executes RunSpecs serially (``workers=1``) or across a pool.

    ``workers=1`` runs every spec inline in the calling process — that
    is the serial baseline the byte-identity contract is defined
    against.  ``workers>1`` fans specs out over that many worker
    processes (capped at the number of specs).
    """

    def __init__(
        self,
        workers: int = 1,
        start_method: str | None = None,
    ):
        if workers < 1:
            raise SweepError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.start_method = _pick_start_method(start_method)

    def run(self, specs: Sequence[RunSpec]) -> SweepResult:
        specs = list(specs)
        if not specs:
            raise SweepError("nothing to sweep: no RunSpecs given")
        started = time.perf_counter()
        if self.workers == 1 or len(specs) == 1:
            outcomes = [self._run_serial(spec) for spec in specs]
            return SweepResult(
                outcomes=outcomes,
                workers=1,
                wall_seconds=time.perf_counter() - started,
                start_method="serial",
            )
        outcomes = self._run_pool(specs)
        return SweepResult(
            outcomes=outcomes,
            workers=min(self.workers, len(specs)),
            wall_seconds=time.perf_counter() - started,
            start_method=self.start_method,
        )

    # -- serial path -----------------------------------------------------------

    @staticmethod
    def _run_serial(spec: RunSpec) -> RunOutcome:
        if spec.sabotage == "hard-exit":
            # Mirror the pool's containment outcome instead of killing
            # the calling process: serial and parallel sweeps stay
            # byte-identical even under sabotage.
            return RunOutcome.crashed(spec)
        return run_spec(spec)

    # -- pool path ---------------------------------------------------------------

    def _run_pool(self, specs: list[RunSpec]) -> list[RunOutcome]:
        """Fan the batch out over a :class:`WorkerPool`.

        Specs are submitted in grid order (the pool dispatches FIFO) and
        outcomes are collected at the spec's original grid index, so
        completion order — the only thing the worker count changes — is
        invisible in the merged result.
        """
        pool = WorkerPool(
            workers=min(self.workers, len(specs)),
            start_method=self.start_method,
        )
        try:
            futures = [pool.submit(spec) for spec in specs]
            return [future.result() for future in futures]
        finally:
            pool.close()


def run_sweep(
    specs: Sequence[RunSpec],
    workers: int = 1,
    start_method: str | None = None,
) -> SweepResult:
    """Convenience wrapper: build an executor and run the sweep."""
    return SweepExecutor(workers=workers, start_method=start_method).run(specs)
