"""repro.parallel: the deterministic parallel sweep executor.

The paper's execution schedule is a grid over three scale factors
(datasize *d*, time *t*, distribution *f*); every published DIPBench
figure is a sweep over that grid.  This package fans independent grid
points — scale-factor combinations, seed replicas, engine variants —
out across ``multiprocessing`` workers, each with its own isolated
landscape/engine/clock, and merges the results back in deterministic
grid order, so a parallel sweep is byte-identical to the serial one at
the same seeds.

* :class:`RunSpec` — one picklable benchmark configuration,
* :func:`run_spec` — execute one spec, failures contained per point,
* :func:`expand_grid` / :func:`parse_grid_axes` — grid construction,
* :class:`SweepExecutor` / :func:`run_sweep` — the worker pool,
* :class:`SweepResult` — grid-ordered outcomes + merged shards.
"""

from repro.parallel.executor import SweepExecutor, SweepResult, run_sweep
from repro.parallel.grid import expand_grid, grid_from_axes, parse_grid_axes
from repro.parallel.pool import WorkerPool
from repro.parallel.spec import (
    RunOutcome,
    RunSpec,
    SweepError,
    SweepSabotage,
    run_spec,
)

__all__ = [
    "RunSpec",
    "RunOutcome",
    "run_spec",
    "SweepError",
    "SweepSabotage",
    "expand_grid",
    "grid_from_axes",
    "parse_grid_axes",
    "SweepExecutor",
    "SweepResult",
    "run_sweep",
    "WorkerPool",
]
