"""The StorageManager: durability policy for one benchmark run.

Owns one :class:`WriteAheadLog` per attached database, the latest
:class:`Checkpoint`, and the *commit log* — one :class:`EngineCommit`
per finished process instance, carrying the instance record, the
engine's volatile runtime state and the exact per-database counters at
commit time.  Together these are sufficient for
:class:`~repro.storage.recovery.RecoveryManager` to rebuild everything
a crash destroys.

Durability modes:

``wal``
    One baseline checkpoint at period start; redo replays the whole
    period's committed tail.
``snapshot+wal``
    Additionally re-checkpoints every ``checkpoint_every`` simulated
    time units (engine units), truncating the WAL — shorter redo tails,
    costlier steady state: the recovery-time-vs-cadence trade-off the
    benchmark measures.

The zero-overhead contract: with no StorageManager attached nothing in
the hot path changes; with one attached, recording never touches the
counted query paths, never consumes randomness and never shifts the
virtual-time schedule, so fault-free runs stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import StorageError
from repro.storage.snapshot import Checkpoint, DatabaseSnapshot
from repro.storage.wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.database import Database
    from repro.engine.base import InstanceRecord, IntegrationEngine
    from repro.observability.metrics import MetricsRegistry
    from repro.storage.recovery import RecoveryReport

#: Valid durability modes (the CLI's ``--durability`` values, sans off).
DURABILITY_MODES = ("wal", "snapshot+wal")

#: Histogram buckets for modeled recovery time, in engine units.
RECOVERY_TIME_BUCKETS = (5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0)
#: Histogram buckets for redo-tail length, in records.
REDO_RECORD_BUCKETS = (1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0)


@dataclass
class EngineCommit:
    """Durable footprint of one committed process instance."""

    commit_id: int
    at: float
    record: "InstanceRecord"
    runtime: dict
    counters: dict[str, dict]


class StorageManager:
    """Durability coordinator between databases, engine and client."""

    def __init__(
        self,
        mode: str = "snapshot+wal",
        checkpoint_every: float | None = None,
        group_commit_window: float = 8.0,
        metrics: "MetricsRegistry | None" = None,
    ):
        if mode not in DURABILITY_MODES:
            raise StorageError(
                f"unknown durability mode {mode!r}; known: {DURABILITY_MODES}"
            )
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise StorageError(
                f"checkpoint interval must be > 0, got {checkpoint_every}"
            )
        if group_commit_window < 0:
            raise StorageError(
                f"group-commit window must be >= 0, got {group_commit_window}"
            )
        self.mode = mode
        self.checkpoint_every = checkpoint_every
        self.group_commit_window = group_commit_window
        self._metrics = (
            metrics if metrics is not None and metrics.enabled else None
        )
        self.databases: dict[str, "Database"] = {}
        self.wals: dict[str, WriteAheadLog] = {}
        #: Optional cluster replication hook (a ClusterManager): told
        #: about every sealed group commit, and asked to flush every
        #: follower before a checkpoint truncates the WAL tails.
        self.replication = None
        self.checkpoint_state: Checkpoint | None = None
        self.commits: list[EngineCommit] = []
        self.period = -1
        self._recording = False
        self._next_commit_id = 1
        self._next_checkpoint_due: float | None = None
        self._flush_window_end: float | None = None
        # Lifetime statistics (Monitor.recovery_summary feeds on these).
        self.commit_count = 0
        self.flushes = 0
        self.checkpoints = 0
        self.crashes = 0
        self.recoveries = 0
        self.recovery_reports: list["RecoveryReport"] = []

    # -- attachment --------------------------------------------------------------

    def _sink(self, db_name: str):
        wal = self.wals[db_name]

        def listener(target: str, op: str, payload: tuple) -> None:
            if self._recording:
                wal.append(target, op, payload)

        return listener

    def attach(self, db: "Database") -> None:
        """Put one database under WAL protection (keyed by name)."""
        if db.name not in self.wals:
            self.wals[db.name] = WriteAheadLog(db.name)
        self.databases[db.name] = db
        db.set_change_listener(self._sink(db.name))

    def attach_engine(self, engine: "IntegrationEngine") -> None:
        """Wire an engine: its internal databases plus the commit hook."""
        engine.storage = self
        for db in engine.durable_databases():
            self.attach(db)

    def reattach_engine(self, engine: "IntegrationEngine") -> None:
        """Re-bind a crashed engine's rebuilt internal databases.

        After a crash the engine holds *fresh* (empty, redeployed)
        internal databases under the same names; the existing WALs keep
        their committed tails and recovery restores into the new objects.
        """
        engine.storage = self
        for db in engine.durable_databases():
            if db.name not in self.wals:
                raise StorageError(
                    f"cannot reattach unknown database {db.name!r}"
                )
            self.databases[db.name] = db
            db.set_change_listener(self._sink(db.name))

    # -- recording lifecycle -----------------------------------------------------

    def pause(self) -> None:
        """Stop journaling (bulk initialization, snapshot restore)."""
        self._recording = False

    def resume(self) -> None:
        self._recording = True

    @property
    def recording(self) -> bool:
        return self._recording

    def begin_period(self, period: int, engine: "IntegrationEngine") -> None:
        """Start a period: baseline checkpoint over the freshly
        initialized landscape, empty WALs, recording on."""
        self.period = period
        if self.replication is not None:
            self.replication.before_truncate()
        for wal in self.wals.values():
            wal.discard_open()
            wal.truncate()
        self.commits.clear()
        self._flush_window_end = None
        self.take_checkpoint(engine, at=0.0)
        self._next_checkpoint_due = (
            self.checkpoint_every
            if self.mode == "snapshot+wal" and self.checkpoint_every
            else None
        )
        self.resume()

    # -- checkpointing -----------------------------------------------------------

    def take_checkpoint(self, engine: "IntegrationEngine", at: float) -> Checkpoint:
        """Capture everything, then truncate the WALs (sharp checkpoint)."""
        checkpoint = Checkpoint(
            at=at,
            period=self.period,
            databases={
                name: DatabaseSnapshot.capture(db)
                for name, db in self.databases.items()
            },
            counters={
                name: db.counter_state()
                for name, db in self.databases.items()
            },
            engine_records=list(engine.records),
            engine_runtime=engine.runtime_state(),
        )
        if self.replication is not None:
            self.replication.before_truncate()
        for wal in self.wals.values():
            wal.truncate()
        self.commits.clear()
        self.checkpoint_state = checkpoint
        self.checkpoints += 1
        if self._metrics is not None:
            self._metrics.counter(
                "storage_checkpoints_total",
                help="Checkpoints taken (baseline + periodic)",
            ).inc()
        return checkpoint

    # -- commit path -------------------------------------------------------------

    def commit_instance(
        self, engine: "IntegrationEngine", record: "InstanceRecord"
    ) -> None:
        """Group-commit one finished instance's changes durably."""
        if not self._recording:
            return
        commit_id = self._next_commit_id
        self._next_commit_id += 1
        sealed = 0
        for wal in self.wals.values():
            sealed += wal.commit(commit_id)
        self.commits.append(
            EngineCommit(
                commit_id=commit_id,
                at=record.completion,
                record=record,
                runtime=engine.runtime_state(),
                counters={
                    name: db.counter_state()
                    for name, db in self.databases.items()
                },
            )
        )
        self.commit_count += 1
        at = record.completion
        if self.replication is not None:
            self.replication.on_commit(commit_id, at)
        if self._flush_window_end is None or at >= self._flush_window_end:
            self.flushes += 1
            self._flush_window_end = at + self.group_commit_window
            flushed = True
        else:
            flushed = False
        if self._metrics is not None:
            if sealed:
                self._metrics.counter(
                    "storage_wal_records_total",
                    help="Logical WAL records made durable",
                ).inc(sealed)
            self._metrics.counter(
                "storage_wal_commits_total",
                help="Instance commits sealed into the WAL",
            ).inc()
            if flushed:
                self._metrics.counter(
                    "storage_wal_flushes_total",
                    help="Group-commit flushes (window-amortized)",
                ).inc()
        if self._next_checkpoint_due is not None and at >= self._next_checkpoint_due:
            self.take_checkpoint(engine, at)
            while self._next_checkpoint_due <= at:
                self._next_checkpoint_due += self.checkpoint_every

    # -- crash path --------------------------------------------------------------

    def on_crash(self, engine: "IntegrationEngine") -> None:
        """The engine died: drop uncommitted buffers, stop recording."""
        discarded = 0
        for wal in self.wals.values():
            discarded += wal.discard_open()
        self.crashes += 1
        self.pause()
        if self._metrics is not None:
            self._metrics.counter(
                "storage_crashes_total",
                help="Engine crashes taken by the durability layer",
            ).inc()
            if discarded:
                self._metrics.counter(
                    "storage_wal_discarded_total",
                    help="Uncommitted WAL records lost to crashes",
                ).inc(discarded)

    def note_recovery(self, report: "RecoveryReport") -> None:
        """Book one completed recovery (called by the RecoveryManager)."""
        self.recoveries += 1
        self.recovery_reports.append(report)
        if self._metrics is not None:
            self._metrics.counter(
                "storage_recoveries_total",
                help="Successful crash recoveries",
            ).inc()
            self._metrics.histogram(
                "storage_recovery_time",
                buckets=RECOVERY_TIME_BUCKETS,
                help="Modeled recovery time (snapshot load + redo), "
                     "engine units",
            ).observe(report.modeled_cost)
            self._metrics.histogram(
                "storage_redo_records",
                buckets=REDO_RECORD_BUCKETS,
                help="WAL records replayed per recovery",
            ).observe(float(report.redo_records))

    # -- introspection -----------------------------------------------------------

    @property
    def wal_records_total(self) -> int:
        return sum(wal.records_appended for wal in self.wals.values())

    @property
    def wal_tail_size(self) -> int:
        return sum(wal.tail_size for wal in self.wals.values())

    def stats(self) -> dict:
        """One flat dict for summaries and the CLI."""
        return {
            "mode": self.mode,
            "checkpoint_every": self.checkpoint_every,
            "databases": len(self.databases),
            "commits": self.commit_count,
            "flushes": self.flushes,
            "wal_records": self.wal_records_total,
            "wal_tail": self.wal_tail_size,
            "checkpoints": self.checkpoints,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
        }
