"""The per-database logical write-ahead log.

Records are *logical/physiological*: row-level change instructions
(insert/upsert/set/delete_at/truncate), table and index DDL, and
materialized-view recompute markers — exactly the vocabulary
:meth:`repro.db.database.Database.redo` replays.  Trigger and procedure
side-effects are journaled as their own records when they originally
run, so redo never re-fires active logic.

Write path: statements append into an *open buffer*; an instance commit
seals the buffer into the durable log under monotonically increasing
LSNs.  Commits are durable by definition (no committed work is ever
lost); the virtual-time *group-commit window* only batches the modeled
fsync accounting, so ``flushes <= commits`` — the classic group-commit
amortization, measurable without perturbing the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WalError


@dataclass(frozen=True)
class WalRecord:
    """One committed logical change record."""

    lsn: int
    commit_id: int
    target: str  # table or materialized-view name
    op: str
    payload: tuple


def _copy_payload(payload: tuple) -> tuple:
    """Detach mutable payload members (row dicts) from live table state."""
    return tuple(
        dict(part) if isinstance(part, dict) else part for part in payload
    )


class WriteAheadLog:
    """The logical WAL of one attached :class:`Database`."""

    def __init__(self, db_name: str):
        self.db_name = db_name
        self._open: list[tuple[str, str, tuple]] = []
        self._records: list[WalRecord] = []
        self._next_lsn = 1
        # Lifetime counters (survive checkpoint truncation).
        self.records_appended = 0
        self.commits = 0
        self.discarded = 0

    # -- write path -------------------------------------------------------------

    def append(self, target: str, op: str, payload: tuple) -> None:
        """Buffer one logical change record in the open transaction."""
        self._open.append((target, op, _copy_payload(payload)))

    def commit(self, commit_id: int) -> int:
        """Seal the open buffer into the durable log; returns #records."""
        sealed = 0
        for target, op, payload in self._open:
            self._records.append(
                WalRecord(self._next_lsn, commit_id, target, op, payload)
            )
            self._next_lsn += 1
            sealed += 1
        self._open.clear()
        self.records_appended += sealed
        self.commits += 1
        return sealed

    def discard_open(self) -> int:
        """Drop the open (uncommitted) buffer — the crash path.

        The in-flight instance's effects vanish, exactly like a real
        engine losing its volatile buffers; redo will not see them.
        """
        dropped = len(self._open)
        self._open.clear()
        self.discarded += dropped
        return dropped

    # -- read path --------------------------------------------------------------

    @property
    def open_size(self) -> int:
        return len(self._open)

    @property
    def tail_size(self) -> int:
        """Committed records since the last checkpoint (the redo tail)."""
        return len(self._records)

    def committed_records(self) -> list[WalRecord]:
        """The redo tail, in LSN order."""
        return list(self._records)

    @property
    def last_lsn(self) -> int:
        """The highest LSN ever sealed (0 = nothing committed yet)."""
        return self._next_lsn - 1

    @property
    def oldest_available_lsn(self) -> int:
        """The lowest LSN still in the tail (``last_lsn + 1`` if empty).

        Records below this were dropped by checkpoint truncation; a
        log-shipping follower lagging past it has a replication hole and
        must be re-seeded from the checkpoint.
        """
        return self._records[0].lsn if self._records else self._next_lsn

    def records_since(self, lsn: int) -> list[WalRecord]:
        """Committed records with LSN strictly above ``lsn``, in order.

        Raises :class:`WalError` when ``lsn`` predates the retained tail
        — those records were truncated and can no longer be shipped.
        """
        if lsn + 1 < self.oldest_available_lsn:
            raise WalError(
                f"wal[{self.db_name}]: records after LSN {lsn} requested "
                f"but the tail starts at LSN {self.oldest_available_lsn} "
                f"(truncated by a checkpoint)"
            )
        return [record for record in self._records if record.lsn > lsn]

    def truncate(self) -> int:
        """Checkpoint truncation: drop the committed tail.

        Refuses while a transaction is open — checkpoints only run at
        instance boundaries, where nothing is in flight.
        """
        if self._open:
            raise WalError(
                f"wal[{self.db_name}]: cannot truncate with "
                f"{len(self._open)} uncommitted record(s) open"
            )
        dropped = len(self._records)
        self._records.clear()
        return dropped
