"""Crash recovery: snapshot restore plus committed-WAL redo.

The protocol is classic redo-only ARIES-lite, adapted to the logical
WAL: (1) restore every attached database from the latest checkpoint,
(2) replay each database's committed redo tail in LSN order, (3) restore
the engine's volatile state — instance records, worker heaps and id
counters — as of the last commit, and (4) overwrite every database's
I/O counters with the last commit's exact values, so replayed work is
never double-counted into the cost model.

Recovery *time* is modeled out of band: the report prices snapshot
reload and redo per row/record, and also measures real wall time, but
neither enters the virtual-time schedule — the recovered run's events
execute at exactly the times the fault-free run would have used, which
is what makes byte-identical convergence provable rather than hopeful.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import RecoveryError
from repro.storage.manager import StorageManager

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.base import IntegrationEngine

#: Modeled cost (engine units) to reload one snapshot row.
LOAD_COST_PER_ROW = 0.02
#: Modeled cost (engine units) to replay one WAL record.
REDO_COST_PER_RECORD = 0.05


@dataclass(frozen=True)
class RecoveryReport:
    """What one recovery did, and what it would have cost."""

    period: int
    databases: int
    snapshot_rows: int
    redo_records: int
    commits_replayed: int
    records_restored: int
    checkpoint_at: float
    recovered_to: float
    modeled_cost: float
    wall_ms: float

    def describe(self) -> str:
        return (
            f"recovery p{self.period}: restored {self.databases} database(s) "
            f"({self.snapshot_rows} snapshot rows), replayed "
            f"{self.redo_records} WAL record(s) across "
            f"{self.commits_replayed} commit(s); engine back to "
            f"t={self.recovered_to:.1f} with {self.records_restored} "
            f"instance record(s); modeled cost {self.modeled_cost:.2f} eu "
            f"({self.wall_ms:.1f} ms wall)"
        )


class RecoveryManager:
    """Rebuilds a consistent run state from a StorageManager's logs."""

    def __init__(self, storage: StorageManager):
        self.storage = storage

    def recover(self, engine: "IntegrationEngine") -> RecoveryReport:
        """Run full redo recovery for ``engine``; returns the report.

        The engine must already be redeployed (fresh process types,
        triggers and procedures) and reattached
        (:meth:`StorageManager.reattach_engine`) so restored data lands
        in the objects the run actually uses.
        """
        storage = self.storage
        checkpoint = storage.checkpoint_state
        if checkpoint is None:
            raise RecoveryError(
                "no checkpoint to recover from — was durability enabled "
                "and the period begun?"
            )
        started = time.perf_counter()
        storage.pause()  # restore/redo must not re-journal itself

        snapshot_rows = 0
        for name, db in storage.databases.items():
            snapshot = checkpoint.databases.get(name)
            if snapshot is None:
                raise RecoveryError(
                    f"checkpoint has no snapshot for database {name!r}"
                )
            snapshot_rows += snapshot.restore_into(db)

        redo_records = 0
        for name, wal in storage.wals.items():
            db = storage.databases.get(name)
            if db is None:
                raise RecoveryError(f"database {name!r} not attached")
            for record in wal.committed_records():
                db.redo(record.target, record.op, record.payload)
                redo_records += 1

        commits = storage.commits
        engine.records = list(checkpoint.engine_records) + [
            commit.record for commit in commits
        ]
        last_runtime = commits[-1].runtime if commits else checkpoint.engine_runtime
        engine.restore_runtime_state(last_runtime)

        # Counters last: overwrite whatever restore/redo accumulated with
        # the exact committed values (the no-double-counting guarantee).
        last_counters = commits[-1].counters if commits else checkpoint.counters
        for name, state in last_counters.items():
            db = storage.databases.get(name)
            if db is not None:
                db.restore_counter_state(state)

        storage.resume()
        report = RecoveryReport(
            period=storage.period,
            databases=len(storage.databases),
            snapshot_rows=snapshot_rows,
            redo_records=redo_records,
            commits_replayed=len(commits),
            records_restored=len(engine.records),
            checkpoint_at=checkpoint.at,
            recovered_to=commits[-1].at if commits else checkpoint.at,
            modeled_cost=(
                snapshot_rows * LOAD_COST_PER_ROW
                + redo_records * REDO_COST_PER_RECORD
            ),
            wall_ms=(time.perf_counter() - started) * 1000.0,
        )
        storage.note_recovery(report)
        return report
