"""repro.storage: durability and crash recovery for the benchmark.

The landscape and engines are in-memory by design; this package gives
them the durability semantics of the systems they model: a logical
write-ahead log per database with virtual-time group commit, sharp
checkpoints on a configurable cadence, and redo recovery that restores
databases, queue tables and in-flight engine state after an injected
``crash`` fault — making *recovery time* a measurable benchmark
dimension without perturbing the deterministic schedule.
"""

from repro.storage.digest import database_digest, landscape_digest
from repro.storage.manager import (
    DURABILITY_MODES,
    EngineCommit,
    StorageManager,
)
from repro.storage.recovery import (
    LOAD_COST_PER_ROW,
    REDO_COST_PER_RECORD,
    RecoveryManager,
    RecoveryReport,
)
from repro.storage.snapshot import Checkpoint, DatabaseSnapshot, TableSnapshot
from repro.storage.wal import WalRecord, WriteAheadLog

__all__ = [
    "Checkpoint",
    "DatabaseSnapshot",
    "DURABILITY_MODES",
    "EngineCommit",
    "LOAD_COST_PER_ROW",
    "REDO_COST_PER_RECORD",
    "RecoveryManager",
    "RecoveryReport",
    "StorageManager",
    "TableSnapshot",
    "WalRecord",
    "WriteAheadLog",
    "database_digest",
    "landscape_digest",
]
