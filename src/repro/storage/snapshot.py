"""Deterministic snapshots: per-database captures and run checkpoints.

A :class:`DatabaseSnapshot` deep-copies one database's table rows, index
declarations and materialized-view population state.  View *content* is
not copied: a view is a pure function of its base tables, so restore
recomputes it — cheaper, and it keeps snapshots purely logical.

A :class:`Checkpoint` bundles the snapshots of every attached database
with the exact I/O counters and the owning engine's volatile state
(instance records, worker heaps, id counters) at one instant.  Taking a
checkpoint never reads through the counted query paths
(:meth:`Table.dump_rows`), so checkpoint cadence cannot perturb the
cost model — the determinism contract of :mod:`repro.storage`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import RecoveryError

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.database import Database


@dataclass
class TableSnapshot:
    """Rows + index declarations of one table (schema by reference:
    :class:`TableSchema` is immutable)."""

    schema: Any
    rows: list[dict]
    indexes: list[tuple[str, tuple[str, ...]]]


@dataclass
class DatabaseSnapshot:
    """Full logical state of one database at capture time."""

    db_name: str
    tables: dict[str, TableSnapshot] = field(default_factory=dict)
    #: view name -> was it populated at capture time?
    views: dict[str, bool] = field(default_factory=dict)

    @classmethod
    def capture(cls, db: "Database") -> "DatabaseSnapshot":
        snapshot = cls(db_name=db.name)
        for name in db.table_names:
            table = db.table(name)
            snapshot.tables[name] = TableSnapshot(
                schema=table.schema,
                rows=table.dump_rows(),
                indexes=[
                    (index_name, table.index_columns(index_name))
                    for index_name in table.index_names
                ],
            )
        for name in db.view_names:
            snapshot.views[name] = db.materialized_view(name).is_populated
        return snapshot

    @property
    def row_count(self) -> int:
        return sum(len(t.rows) for t in self.tables.values())

    def restore_into(self, db: "Database") -> int:
        """Load this snapshot into ``db``; returns rows restored.

        Existing tables are restored *in place* (their triggers survive —
        redeployment owns active logic, the snapshot owns data); missing
        tables (a crashed engine's rebuilt catalog) are recreated from
        the captured schema.  Index sets are reconciled idempotently via
        drop/create.  Populated views are recomputed from the restored
        base tables, which is deterministic by construction.
        """
        restored = 0
        for name, snap in self.tables.items():
            if db.has_table(name):
                table = db.table(name)
            else:
                table = db.create_table(snap.schema)
            table.restore_rows(snap.rows)
            restored += len(snap.rows)
            wanted = dict(snap.indexes)
            for index_name in table.index_names:
                if table.index_columns(index_name) != wanted.get(index_name):
                    table.drop_index(index_name)
            for index_name, columns in snap.indexes:
                if not table.has_index(index_name):
                    table.create_index(index_name, columns)
        for name, populated in self.views.items():
            try:
                view = db.materialized_view(name)
            except Exception as exc:
                raise RecoveryError(
                    f"{db.name}: view {name!r} missing after redeploy"
                ) from exc
            if populated:
                view.refresh(db)
            else:
                view.invalidate()
        return restored


@dataclass
class Checkpoint:
    """One durable run checkpoint across the whole attached landscape."""

    at: float  # virtual time (engine units) the checkpoint was taken
    period: int
    databases: dict[str, DatabaseSnapshot]
    counters: dict[str, dict]
    engine_records: list
    engine_runtime: dict

    @property
    def total_rows(self) -> int:
        return sum(s.row_count for s in self.databases.values())
