"""Stable content digests of the landscape state.

Used by the ``repro recover`` CLI, CI smoke jobs and the byte-identity
tests: two runs converged iff their landscape digests match.  The digest
walks databases in name order, tables in name order and rows in stored
order (row order is part of the determinism contract), plus each
materialized view's population state and snapshot rows.  It reads
through :meth:`Table.dump_rows`, so digesting never perturbs the
``rows_read`` counters it is meant to certify.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.database import Database


def database_digest(db: "Database", include_views: bool = True) -> str:
    """Hex digest of one database's full logical content.

    ``include_views=False`` digests table content only — the comparison
    basis between a primary and its table-only cluster replicas (view
    content is a pure function of the tables and replicas don't hold
    view objects).
    """
    hasher = hashlib.sha256()
    hasher.update(db.name.encode())
    for table_name in db.table_names:
        table = db.table(table_name)
        hasher.update(f"\x00t:{table_name}\x00".encode())
        for row in table.dump_rows():
            hasher.update(repr(sorted(row.items())).encode())
            hasher.update(b"\x01")
    if not include_views:
        return hasher.hexdigest()
    for view_name in db.view_names:
        view = db.materialized_view(view_name)
        hasher.update(f"\x00v:{view_name}:{int(view.is_populated)}\x00".encode())
        if view.is_populated:
            for row in view.snapshot:
                hasher.update(repr(sorted(row.items())).encode())
                hasher.update(b"\x01")
    return hasher.hexdigest()


def landscape_digest(databases: Iterable["Database"]) -> str:
    """Hex digest over many databases, order-independent (by name)."""
    hasher = hashlib.sha256()
    for db in sorted(databases, key=lambda d: d.name):
        hasher.update(db.name.encode())
        hasher.update(database_digest(db).encode())
        hasher.update(b"\x02")
    return hasher.hexdigest()
