"""Performance metrics: cost normalization and NAVG+ (Section V).

The benchmark's metric unit is::

    NAVG+(P) = NAVG(NC(p)) + sigma+(NC(p))

the average of the *normalized costs* of a process type's instances plus
the positive standard deviation — rewarding systems with predictable
performance.

Two normalization paths are provided:

* the engines in this repository model per-instance costs directly
  (C_c + C_m + C_p), which are normalized by construction, and
* :func:`normalize_intervals` implements the paper's harder case —
  recovering per-instance normalized costs from wall-clock intervals of
  *concurrently* executing instances, by sharing each span of time
  equally among the instances active during it.
"""

from repro.metrics.normalize import ActiveInterval, normalize_intervals
from repro.metrics.navg import (
    MetricReport,
    ProcessTypeMetrics,
    compute_metrics,
    navg_plus,
)

__all__ = [
    "ActiveInterval",
    "normalize_intervals",
    "ProcessTypeMetrics",
    "MetricReport",
    "compute_metrics",
    "navg_plus",
]
