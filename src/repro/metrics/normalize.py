"""Cost normalization for concurrent process executions.

Section V: "the effective processing time could not be used to determine
the costs of one single process [because of] the parallelism of concurrent
integration processes … the cost normalization must be realized."

Given the wall-clock execution intervals of many instances, the
normalization below splits time fairly: over every span where k instances
run concurrently, each active instance is charged span/k.  The sum of all
normalized costs equals total busy time, and for non-overlapping instances
the normalized cost equals the plain elapsed time — two invariants the
property-based tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BenchmarkError


@dataclass(frozen=True)
class ActiveInterval:
    """One instance's measured execution interval [start, end) in tu."""

    instance_id: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise BenchmarkError(
                f"interval of instance {self.instance_id} ends before it starts"
            )

    @property
    def elapsed(self) -> float:
        return self.end - self.start


def normalize_intervals(intervals: list[ActiveInterval]) -> dict[int, float]:
    """Fair-share normalized cost per instance id.

    Sweeps the union of interval boundaries; each elementary span is
    divided equally among the instances active during it.

    >>> a = ActiveInterval(1, 0.0, 10.0)
    >>> b = ActiveInterval(2, 0.0, 10.0)
    >>> normalize_intervals([a, b])
    {1: 5.0, 2: 5.0}
    """
    if not intervals:
        return {}
    seen: set[int] = set()
    for interval in intervals:
        if interval.instance_id in seen:
            raise BenchmarkError(
                f"duplicate instance id {interval.instance_id} in intervals"
            )
        seen.add(interval.instance_id)

    boundaries = sorted({i.start for i in intervals} | {i.end for i in intervals})
    normalized: dict[int, float] = {i.instance_id: 0.0 for i in intervals}
    for left, right in zip(boundaries, boundaries[1:]):
        span = right - left
        if span <= 0:
            continue
        active = [i for i in intervals if i.start <= left and i.end >= right]
        if not active:
            continue
        share = span / len(active)
        for interval in active:
            normalized[interval.instance_id] += share
    return normalized
