"""NAVG+ computation and per-run metric reports."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import BenchmarkError
from repro.engine.base import InstanceRecord


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _std(values: Sequence[float]) -> float:
    """Population standard deviation (the paper's sigma+ term)."""
    if len(values) < 2:
        return 0.0
    mu = _mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def navg_plus(normalized_costs: Sequence[float]) -> float:
    """NAVG+(P) = mean(NC) + sigma+(NC) over one process type's instances."""
    if not normalized_costs:
        raise BenchmarkError("NAVG+ over an empty instance set")
    return _mean(normalized_costs) + _std(normalized_costs)


@dataclass(frozen=True)
class ProcessTypeMetrics:
    """Aggregated metrics of one process type over a benchmark run."""

    process_id: str
    instance_count: int
    navg: float
    sigma: float
    navg_plus: float
    communication_mean: float
    management_mean: float
    processing_mean: float
    error_count: int

    @property
    def relative_sigma(self) -> float:
        """sigma / NAVG; the data-intensive types show the larger values."""
        return self.sigma / self.navg if self.navg else 0.0


@dataclass
class MetricReport:
    """All process types of one run, in process-id order."""

    per_type: dict[str, ProcessTypeMetrics] = field(default_factory=dict)

    def __getitem__(self, process_id: str) -> ProcessTypeMetrics:
        return self.per_type[process_id]

    def __contains__(self, process_id: str) -> bool:
        return process_id in self.per_type

    @property
    def process_ids(self) -> list[str]:
        return sorted(self.per_type)

    def rows(self) -> list[ProcessTypeMetrics]:
        return [self.per_type[pid] for pid in self.process_ids]

    def as_table(self) -> str:
        """Fixed-width text table (the Monitor's report format)."""
        header = (
            f"{'type':<6}{'n':>6}{'NAVG':>12}{'sigma':>12}{'NAVG+':>12}"
            f"{'C_c':>10}{'C_m':>10}{'C_p':>10}{'err':>5}"
        )
        lines = [header, "-" * len(header)]
        for m in self.rows():
            lines.append(
                f"{m.process_id:<6}{m.instance_count:>6}{m.navg:>12.2f}"
                f"{m.sigma:>12.2f}{m.navg_plus:>12.2f}"
                f"{m.communication_mean:>10.2f}{m.management_mean:>10.2f}"
                f"{m.processing_mean:>10.2f}{m.error_count:>5}"
            )
        return "\n".join(lines)


def compute_metrics(records: Iterable[InstanceRecord]) -> MetricReport:
    """Aggregate instance records into per-process-type NAVG+ metrics.

    Instances that errored are excluded from the cost statistics but
    counted in ``error_count`` (a failing instance has no meaningful
    cost; its failure is reported separately, as the toolsuite's phase
    *post* does).
    """
    by_type: dict[str, list[InstanceRecord]] = {}
    for record in records:
        by_type.setdefault(record.process_id, []).append(record)

    report = MetricReport()
    for process_id, type_records in by_type.items():
        ok = [r for r in type_records if r.status == "ok"]
        errors = len(type_records) - len(ok)
        if not ok:
            report.per_type[process_id] = ProcessTypeMetrics(
                process_id, len(type_records), 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, errors
            )
            continue
        costs = [r.normalized_cost for r in ok]
        mu = _mean(costs)
        sigma = _std(costs)
        report.per_type[process_id] = ProcessTypeMetrics(
            process_id=process_id,
            instance_count=len(type_records),
            navg=mu,
            sigma=sigma,
            navg_plus=mu + sigma,
            communication_mean=_mean([r.costs.communication for r in ok]),
            management_mean=_mean([r.costs.management for r in ok]),
            processing_mean=_mean([r.costs.processing for r in ok]),
            error_count=errors,
        )
    return report
