"""The scenario synthesizer: knobs → landscape + processes + plan.

:func:`synthesize` turns one resolved :class:`~repro.synth.spec.SynthSpec`
into a :class:`SynthWorkload`:

* a :class:`~repro.scenario.topology.Scenario` (hosts, network, service
  registry, source/hub/replica databases) structurally identical to what
  ``repro.scenario.build_scenario`` emits, so engines, storage, serve and
  the cluster overlay run it unchanged;
* MTM :class:`~repro.mtm.process.ProcessType` definitions for the enabled
  families, built *through the schema matcher* (the matched mapping, not
  the recorded ground truth);
* a fully deterministic :class:`PeriodPlan` per period — the single
  source of truth that both the message builders and the exact-verification
  oracle consume, so ground truth is never re-simulated separately.

Every random draw goes through ``repro.datagen.distributions`` seeded
from ``(spec.seed, purpose, period, …)``, with the run's distribution
factor ``f`` selecting the skew family — the dirty-data noise rides on
the same machinery as the classic Initializer's.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.datagen.distributions import Distribution, make_distribution
from repro.db.database import Database
from repro.db.expressions import col, lit
from repro.db.schema import Column, ForeignKey, TableSchema
from repro.mtm.blocks import Sequence
from repro.mtm.message import Message
from repro.mtm.operators import (
    Convert,
    Invoke,
    Projection,
    Receive,
    Selection,
    Union,
    ValidateRows,
)
from repro.mtm.process import EventType, ProcessGroup, ProcessType
from repro.scenario.processes.helpers import (
    execute_request,
    insert_request,
    query_request,
)
from repro.scenario.topology import Scenario
from repro.services.endpoints import DatabaseService, Envelope
from repro.services.network import Link, Network
from repro.services.registry import ServiceRegistry
from repro.synth.feed import LSN_COLUMN, ChangeFeed, ChangeFeedService
from repro.synth.schema import (
    CANONICAL_COLUMNS,
    CANONICAL_TYPES,
    ORDER_STATUS,
    SEGMENTS,
    TXN_KINDS,
    SourceDialect,
    canonical_schema,
    dialect_for,
    dialect_schema,
    matched_dialect,
)
from repro.synth.spec import SynthSpec
from repro.xmlkit.convert import rows_to_resultset

HUB_DB = "synth_hub"
REPLICA_DB = "synth_replica"

_STREETS = (
    "Oak Avenue", "Birch Road", "Cedar Lane", "Elm Street",
    "Maple Drive", "Pine Court", "Willow Way", "Aspen Place",
)

_CUSTOMER_COLS = [name for name, _, _ in CANONICAL_COLUMNS["customer"]]
_ORDER_COLS = [name for name, _, _ in CANONICAL_COLUMNS["orders"]]
_TXN_COLS = [name for name, _, _ in CANONICAL_COLUMNS["txn"]]


def _sub_seed(seed: int, *tags) -> int:
    """Stable derived seed for one purpose (no Python hash randomization)."""
    label = ":".join(str(t) for t in tags)
    return seed * 1_000_003 + zlib.crc32(label.encode())


# -- the deterministic plan --------------------------------------------------------


@dataclass
class RoundPlan:
    """Canonical-form message payloads of one round, per source index."""

    orders: dict[int, list[dict]] = field(default_factory=dict)
    txns: dict[int, list[dict]] = field(default_factory=dict)
    cust_updates: dict[int, list[dict]] = field(default_factory=dict)


@dataclass
class PeriodPlan:
    """Everything one period sends plus the dirty-data ground truth."""

    period: int
    #: source → initial canonical customer rows (dirt included), in
    #: physical insertion order.
    initial_customers: dict[int, list[dict]] = field(default_factory=dict)
    #: source → (duplicate custkey, original custkey) pairs — the exact
    #: entity-matching ground truth for the dedup task.
    duplicate_pairs: dict[int, list[tuple[int, int]]] = field(
        default_factory=dict
    )
    #: source → custkeys of corrupted (empty-name) rows the cleansing
    #: selection must drop.
    corrupted_keys: dict[int, list[int]] = field(default_factory=dict)
    rounds: list[RoundPlan] = field(default_factory=list)

    def message_count(self) -> int:
        return sum(
            len(rows)
            for rnd in self.rounds
            for per_source in (rnd.orders, rnd.txns, rnd.cust_updates)
            for rows in per_source.values()
        )


def build_period_plan(spec: SynthSpec, f: int, period: int) -> PeriodPlan:
    """Deterministically derive one period's messages and ground truth."""
    assert spec.seed is not None, "plan needs a resolved spec"
    seed = spec.seed
    plan = PeriodPlan(period=period)
    scale = spec.scale
    entity_count = max(6, round(10 * scale))

    # Shared entity pool: sources overlap (the same real-world entity
    # appears in several sources), which is what makes cross-source
    # entity matching meaningful.
    pool_dist = make_distribution(f, seed=_sub_seed(seed, "pool", period))
    entities: list[dict] = []
    for k in range(entity_count):
        entities.append(
            {
                "custkey": 10_000 + k,
                "name": f"Customer {k:05d}",
                "address": (
                    f"{pool_dist.sample_int(1, 999)} "
                    f"{pool_dist.choice(_STREETS)}"
                ),
                "phone": (
                    f"{pool_dist.sample_int(100, 999)}-"
                    f"{pool_dist.sample_int(1000, 9999)}"
                ),
                "segment": pool_dist.choice(SEGMENTS),
            }
        )

    # Per-source populations with injected dirt.  Value picks go through
    # the run's skewed distribution (that is where DIPBench's f matters);
    # rate decisions use a uniform coin so the noise / update_ratio knobs
    # keep their calibration under skew.
    current_customers: dict[int, dict[int, dict]] = {}
    for i in range(spec.sources):
        dist = make_distribution(f, seed=_sub_seed(seed, "src", period, i))
        coin = make_distribution(0, seed=_sub_seed(seed, "coin", period, i))
        rows: list[dict] = []
        for entity in entities:
            if coin.sample_unit() < 0.65:
                rows.append(dict(entity))
        if not rows:
            rows.append(dict(entities[i % len(entities)]))
        dirty: list[dict] = []
        pairs: list[tuple[int, int]] = []
        corrupted: list[int] = []
        dup_seq = 0
        for row in rows:
            if coin.sample_unit() < spec.noise:
                # Duplicate entity: fresh surrogate key, varied name,
                # same address+phone (the blocking key dedup merges on).
                dup_key = 90_000 + i * 1_000 + dup_seq
                dup_seq += 1
                dirty.append(
                    {**row, "custkey": dup_key, "name": row["name"] + " II"}
                )
                pairs.append((dup_key, row["custkey"]))
        corrupt_count = 0
        for row in list(rows):
            if coin.sample_unit() < spec.noise / 2:
                # Corrupted master data: empty name, unique address and
                # phone so the dirty row never merges with a real entity.
                bad_key = 95_000 + i * 1_000 + corrupt_count
                corrupted.append(bad_key)
                dirty.append(
                    {
                        "custkey": bad_key,
                        "name": "",
                        "address": f"0 Unknown {i}-{corrupt_count}",
                        "phone": f"000-{corrupt_count:04d}",
                        "segment": dist.choice(SEGMENTS),
                    }
                )
                corrupt_count += 1
        all_rows = rows + dirty
        plan.initial_customers[i] = all_rows
        plan.duplicate_pairs[i] = pairs
        plan.corrupted_keys[i] = corrupted
        current_customers[i] = {r["custkey"]: dict(r) for r in all_rows}

    # Rounds: the E1 message streams, referencing keys that exist.
    messages = max(1, round(spec.messages * scale))
    groups = source_groups(spec)
    group_of = {i: g for g, members in enumerate(groups) for i in members}
    order_keys: dict[int, list[int]] = {i: [] for i in range(spec.sources)}
    txn_seq: dict[int, int] = {i: 0 for i in range(spec.sources)}
    new_cust_seq: dict[int, int] = {i: 0 for i in range(spec.sources)}
    for r in range(spec.rounds):
        rnd = RoundPlan()
        for i in range(spec.sources):
            dist = make_distribution(
                f, seed=_sub_seed(seed, "round", period, r, i)
            )
            coin = make_distribution(
                0, seed=_sub_seed(seed, "roundcoin", period, r, i)
            )
            initial_keys = [row["custkey"] for row in plan.initial_customers[i]]
            if "pipeline" in spec.families:
                rows = []
                for _ in range(messages):
                    if coin.sample_unit() < spec.update_ratio and order_keys[i]:
                        orderkey = dist.choice(order_keys[i])
                    else:
                        # Group-shared key range: sources in one
                        # consolidation group collide deliberately so
                        # UNION DISTINCT has duplicates to remove.
                        orderkey = (
                            100_000
                            + group_of[i] * 10_000
                            + dist.sample_int(0, 4_999)
                        )
                        if orderkey not in order_keys[i]:
                            order_keys[i].append(orderkey)
                    amount = round(dist.sample_float(10.0, 500.0), 2)
                    if coin.sample_unit() < spec.noise:
                        amount = -amount  # invalid: row validation drops it
                    rows.append(
                        {
                            "orderkey": orderkey,
                            "custkey": dist.choice(initial_keys),
                            "amount": amount,
                            "status": dist.choice(ORDER_STATUS),
                        }
                    )
                rnd.orders[i] = rows
            if "cdc" in spec.families:
                rows = []
                for _ in range(messages):
                    txn_seq[i] += 1
                    rows.append(
                        {
                            "txnkey": i * 100_000 + txn_seq[i],
                            "custkey": dist.choice(initial_keys),
                            "amount": round(dist.sample_float(1.0, 200.0), 2),
                            "kind": dist.choice(TXN_KINDS),
                        }
                    )
                rnd.txns[i] = rows
            if "scd" in spec.families:
                rows = []
                state = current_customers[i]
                for _ in range(messages):
                    if coin.sample_unit() < spec.update_ratio and state:
                        custkey = dist.choice(list(state))
                        image = dict(state[custkey])
                        if coin.sample_unit() < 0.5:
                            # Type-2 change: a new address and phone.
                            image["address"] = (
                                f"{dist.sample_int(1, 999)} "
                                f"{dist.choice(_STREETS)}"
                            )
                            image["phone"] = (
                                f"{dist.sample_int(100, 999)}-"
                                f"{dist.sample_int(1000, 9999)}"
                            )
                        else:
                            # Type-1 change: segment reassignment.
                            image["segment"] = dist.choice(SEGMENTS)
                    else:
                        new_cust_seq[i] += 1
                        custkey = 50_000 + i * 1_000 + new_cust_seq[i]
                        image = {
                            "custkey": custkey,
                            "name": f"Customer N{i}-{new_cust_seq[i]:04d}",
                            "address": (
                                f"{dist.sample_int(1, 999)} "
                                f"{dist.choice(_STREETS)}"
                            ),
                            "phone": (
                                f"{dist.sample_int(100, 999)}-"
                                f"{dist.sample_int(1000, 9999)}"
                            ),
                            "segment": dist.choice(SEGMENTS),
                        }
                    state[image["custkey"]] = dict(image)
                    rows.append(image)
                rnd.cust_updates[i] = rows
        plan.rounds.append(rnd)
    return plan


def source_groups(spec: SynthSpec) -> list[list[int]]:
    """Consolidation groups: consecutive chunks of ``fan_out`` sources."""
    return [
        list(range(start, min(start + spec.fan_out, spec.sources)))
        for start in range(0, spec.sources, spec.fan_out)
    ]


# -- the SCD stored procedure ------------------------------------------------------


def sp_scd_apply(db: Database) -> dict[str, int]:
    """Apply the staged canonical snapshot to the dimension tables.

    Type 1 (``name``, ``segment``): overwrite in the dimension *and* in
    every history version.  Type 2 (``address``, ``phone``): close the
    current history row and open the next version.  Runs inside the hub
    database, so its row traffic is charged as external processing cost
    by ``DatabaseService.op_execute``.
    """
    staging = db.table("scd_staging")
    dim = db.table("dim_customer")
    hist = db.table("dim_customer_hist")
    max_version: dict[int, int] = {}
    for h in hist:
        key = h["custkey"]
        max_version[key] = max(max_version.get(key, 0), h["version"])
    inserted = type1 = type2 = 0
    snapshot = staging.to_relation()
    for row in snapshot.rows:
        key = row["custkey"]
        current = dim.get(key)
        if current is None:
            dim.insert(dict(row))
            hist.insert({**row, "version": 1, "current": 1})
            max_version[key] = 1
            inserted += 1
            continue
        type1_changed = (
            row["name"] != current["name"]
            or row["segment"] != current["segment"]
        )
        type2_changed = (
            row["address"] != current["address"]
            or row["phone"] != current["phone"]
        )
        if not (type1_changed or type2_changed):
            continue
        dim.upsert(dict(row))
        if type1_changed:
            hist.update(
                {"name": row["name"], "segment": row["segment"]},
                predicate=col("custkey") == lit(key),
            )
            type1 += 1
        if type2_changed:
            hist.update(
                {"current": 0},
                predicate=(col("custkey") == lit(key))
                & (col("current") == lit(1)),
            )
            version = max_version[key] + 1
            max_version[key] = version
            hist.insert({**row, "version": version, "current": 1})
            type2 += 1
    staging.truncate()
    return {"inserted": inserted, "type1": type1, "type2": type2}


# -- request builders beyond the scenario helpers ---------------------------------


def pull_request():
    """Request builder: pull pending change records from a feed."""

    def build(context) -> Envelope:
        return Envelope("pull", {}, payload_units=1.0)

    build.kind = "pull"
    return build


def ack_request(input_var: str):
    """Request builder: ack a pulled batch up to its highest LSN."""

    def build(context) -> Envelope:
        relation = context.get(input_var).relation()
        upto = max((row[LSN_COLUMN] for row in relation.rows), default=0)
        return Envelope("ack", {"upto": upto}, payload_units=1.0)

    build.kind = "ack"
    build.input_var = input_var
    return build


# -- the workload ------------------------------------------------------------------


@dataclass
class SynthWorkload:
    """One synthesized workload: landscape, processes, plan, truth."""

    spec: SynthSpec
    f: int
    scenario: Scenario
    processes: dict[str, ProcessType]
    dialects: list[SourceDialect]
    matched: list[SourceDialect]
    feeds: dict[int, ChangeFeed]
    groups: list[list[int]]
    _plans: dict[int, PeriodPlan] = field(default_factory=dict)

    def plan(self, period: int) -> PeriodPlan:
        if period not in self._plans:
            self._plans[period] = build_period_plan(self.spec, self.f, period)
        return self._plans[period]

    def source_db(self, index: int) -> Database:
        return self.scenario.databases[f"src{index}"]

    def populate(self, period: int) -> None:
        """Plant the period's initial source data (dialect layout)."""
        plan = self.plan(period)
        for i in range(self.spec.sources):
            db = self.source_db(i)
            dialect = self.dialects[i]
            table = dialect.table("customer")
            mapping = dialect.columns("customer")
            for row in plan.initial_customers[i]:
                db.insert(
                    table, {mapping[k]: v for k, v in row.items()}
                )

    # -- E1 message building ----------------------------------------------------

    def order_message(self, row: dict) -> Message:
        document = rows_to_resultset(_ORDER_COLS, [row], table="orders")
        return Message(document, message_type="SynthOrder")

    def txn_message(self, row: dict) -> Message:
        document = rows_to_resultset(_TXN_COLS, [row], table="txn")
        return Message(document, message_type="SynthTxn")

    def customer_message(self, row: dict) -> Message:
        document = rows_to_resultset(_CUSTOMER_COLS, [row], table="customer")
        return Message(document, message_type="SynthCustomer")

    # -- stream catalog ---------------------------------------------------------

    def e1_streams(self) -> list[tuple[str, int, str]]:
        """(process id, source index, kind) of every E1 stream, in the
        fixed scheduling order."""
        streams: list[tuple[str, int, str]] = []
        if "pipeline" in self.spec.families:
            streams += [(f"SYU{i}", i, "orders") for i in range(self.spec.sources)]
        if "cdc" in self.spec.families:
            streams += [(f"SYT{i}", i, "txns") for i in range(self.spec.sources)]
        if "scd" in self.spec.families:
            streams += [
                (f"SYM{i}", i, "cust_updates") for i in range(self.spec.sources)
            ]
        return streams

    def e2_processes(self) -> list[str]:
        """Dependent process ids in their serialized execution order."""
        ids: list[str] = []
        if "pipeline" in self.spec.families:
            ids += [f"SYP{g}" for g in range(len(self.groups))]
        if "cdc" in self.spec.families:
            ids += [f"SYC{i}" for i in range(self.spec.sources)]
        if "scd" in self.spec.families:
            ids.append("SYS")
        if "dirty" in self.spec.families:
            ids.append("SYD")
        return ids


def synthesize(spec: SynthSpec, f: int = 0, jitter: float = 0.0) -> SynthWorkload:
    """Build the full workload for a resolved spec (seed must be set)."""
    spec.assert_valid()
    if spec.seed is None:
        raise ValueError("synthesize() needs a resolved spec (seed set)")

    network = Network(
        default_link=Link(latency=1.0, bandwidth=200.0),
        jitter=jitter,
        seed=spec.seed,
    )
    for host in ("ES", "IS", "CS"):
        network.add_host(host)
    registry = ServiceRegistry(network)
    scenario = Scenario(network, registry)

    dialects = [dialect_for(i) for i in range(spec.sources)]
    matched = [matched_dialect(d) for d in dialects]
    groups = source_groups(spec)

    # Source databases (dialected physical schemas).
    feeds: dict[int, ChangeFeed] = {}
    for i, dialect in enumerate(dialects):
        db = Database(f"src{i}")
        db.create_table(dialect_schema(dialect, "customer"))
        if "pipeline" in spec.families:
            db.create_table(dialect_schema(dialect, "orders"))
        if "cdc" in spec.families:
            table = db.create_table(dialect_schema(dialect, "txn"))
            feed = ChangeFeed(table)
            feeds[i] = feed
            registry.register(
                ChangeFeedService(f"feed{i}", "ES", feed)
            )
        scenario.databases[db.name] = db
        registry.register(DatabaseService(db.name, "ES", db))

    # The hub (canonical warehouse schema).
    if spec.families != ("cdc",):
        hub = Database(HUB_DB)
        if "pipeline" in spec.families:
            hub.create_table(canonical_schema("orders", "orders_hub"))
        if "scd" in spec.families:
            hub.create_table(canonical_schema("customer", "scd_staging"))
            hub.create_table(canonical_schema("customer", "dim_customer"))
            hist_columns = [
                Column("custkey", "INTEGER", nullable=False),
                Column("version", "INTEGER", nullable=False),
                Column("name", "VARCHAR", length=44),
                Column("address", "VARCHAR", length=60),
                Column("phone", "VARCHAR", length=20),
                Column("segment", "VARCHAR", length=12),
                Column("current", "INTEGER"),
            ]
            hub.create_table(
                TableSchema(
                    "dim_customer_hist",
                    hist_columns,
                    primary_key=("custkey", "version"),
                    foreign_keys=[
                        ForeignKey(
                            columns=("custkey",),
                            parent_table="dim_customer",
                            parent_columns=("custkey",),
                        )
                    ],
                )
            )
            hub.create_procedure(
                "sp_scd_apply",
                sp_scd_apply,
                description="type-1/type-2 dimension maintenance",
            )
        if "dirty" in spec.families:
            hub.create_table(canonical_schema("customer", "golden_customer"))
        scenario.databases[HUB_DB] = hub
        registry.register(DatabaseService(HUB_DB, "ES", hub))

    # The replication target of the CDC family.
    if "cdc" in spec.families:
        replica = Database(REPLICA_DB)
        for i in range(spec.sources):
            replica.create_table(canonical_schema("txn", f"txn_src{i}"))
        scenario.databases[REPLICA_DB] = replica
        registry.register(DatabaseService(REPLICA_DB, "ES", replica))

    processes = _build_processes(spec, matched, groups)
    return SynthWorkload(
        spec=spec,
        f=f,
        scenario=scenario,
        processes=processes,
        dialects=dialects,
        matched=matched,
        feeds=feeds,
        groups=groups,
    )


# -- process construction ----------------------------------------------------------


def _to_dialect(mapping: dict[str, str], canonical_cols: list[str]) -> dict:
    """Projection mapping canonical → dialect (output name → input name)."""
    return {mapping[name]: name for name in canonical_cols}


def _to_canonical(mapping: dict[str, str], canonical_cols: list[str]) -> dict:
    """Projection mapping dialect → canonical (output name → input name)."""
    return {name: mapping[name] for name in canonical_cols}


def _transform_stages(
    spec: SynthSpec, in_var: str, tag: str
) -> tuple[list, str]:
    """The DAG-depth transform stages of a consolidation process.

    ``transform_mix`` selects relational stages (lossless selections and
    expression projections), XML stages (relation → result set → relation
    round-trips), or an alternation of the two.
    """
    steps: list = []
    var = in_var
    for s in range(spec.depth):
        out = f"{tag}_s{s}"
        use_xml = spec.transform_mix == "xml" or (
            spec.transform_mix == "balanced" and s % 2 == 1
        )
        if use_xml:
            steps.append(
                Convert(var, f"{out}_x", "relation_to_xml", table="stage")
            )
            steps.append(
                Convert(
                    f"{out}_x",
                    out,
                    "xml_to_relation",
                    columns=_ORDER_COLS,
                    types=CANONICAL_TYPES["orders"],
                )
            )
        elif s % 2 == 0:
            steps.append(
                Selection(var, out, col("amount") > lit(0.0))
            )
        else:
            projection = {name: name for name in _ORDER_COLS}
            projection["amount"] = col("amount") + lit(0.0)
            steps.append(Projection(var, out, projection))
        var = out
    return steps, var


def _build_processes(
    spec: SynthSpec,
    matched: list[SourceDialect],
    groups: list[list[int]],
) -> dict[str, ProcessType]:
    processes: dict[str, ProcessType] = {}

    def add(process: ProcessType) -> None:
        processes[process.process_id] = process

    # E1 feeds, one per source per enabled family.
    for i, m in enumerate(matched):
        if "pipeline" in spec.families:
            add(
                ProcessType(
                    f"SYU{i}",
                    ProcessGroup.A,
                    f"synth order feed into source {i}",
                    EventType.E1_MESSAGE,
                    Sequence(
                        [
                            Receive("msg", expected_type="SynthOrder"),
                            Convert(
                                "msg",
                                "rows",
                                "xml_to_relation",
                                columns=_ORDER_COLS,
                                types=CANONICAL_TYPES["orders"],
                            ),
                            ValidateRows(
                                "rows",
                                checks={
                                    "amount_positive": col("amount") > lit(0.0)
                                },
                                output="valid",
                                filter_invalid=True,
                            ),
                            Projection(
                                "valid",
                                "out_rows",
                                _to_dialect(m.columns("orders"), _ORDER_COLS),
                            ),
                            Invoke(
                                f"src{i}",
                                insert_request(
                                    m.table("orders"), "out_rows", mode="upsert"
                                ),
                                output="ack",
                            ),
                        ]
                    ),
                )
            )
        if "cdc" in spec.families:
            add(
                ProcessType(
                    f"SYT{i}",
                    ProcessGroup.A,
                    f"synth transaction feed into source {i}",
                    EventType.E1_MESSAGE,
                    Sequence(
                        [
                            Receive("msg", expected_type="SynthTxn"),
                            Convert(
                                "msg",
                                "rows",
                                "xml_to_relation",
                                columns=_TXN_COLS,
                                types=CANONICAL_TYPES["txn"],
                            ),
                            Projection(
                                "rows",
                                "out_rows",
                                _to_dialect(m.columns("txn"), _TXN_COLS),
                            ),
                            Invoke(
                                f"src{i}",
                                insert_request(
                                    m.table("txn"), "out_rows", mode="insert"
                                ),
                                output="ack",
                            ),
                        ]
                    ),
                )
            )
        if "scd" in spec.families:
            add(
                ProcessType(
                    f"SYM{i}",
                    ProcessGroup.A,
                    f"synth master-data update into source {i}",
                    EventType.E1_MESSAGE,
                    Sequence(
                        [
                            Receive("msg", expected_type="SynthCustomer"),
                            Convert(
                                "msg",
                                "rows",
                                "xml_to_relation",
                                columns=_CUSTOMER_COLS,
                                types=CANONICAL_TYPES["customer"],
                            ),
                            Projection(
                                "rows",
                                "out_rows",
                                _to_dialect(
                                    m.columns("customer"), _CUSTOMER_COLS
                                ),
                            ),
                            Invoke(
                                f"src{i}",
                                insert_request(
                                    m.table("customer"),
                                    "out_rows",
                                    mode="upsert",
                                ),
                                output="ack",
                            ),
                        ]
                    ),
                )
            )

    # Pipeline consolidations: one DAG per source group.
    if "pipeline" in spec.families:
        for g, members in enumerate(groups):
            steps: list = []
            inputs: list[str] = []
            for i in members:
                m = matched[i]
                steps.append(
                    Invoke(
                        f"src{i}",
                        query_request(m.table("orders")),
                        output=f"q{i}",
                    )
                )
                steps.append(
                    Projection(
                        f"q{i}",
                        f"c{i}",
                        _to_canonical(m.columns("orders"), _ORDER_COLS),
                    )
                )
                inputs.append(f"c{i}")
            steps.append(
                Union(inputs, "merged", distinct_key=("orderkey",))
            )
            stages, final_var = _transform_stages(spec, "merged", f"p{g}")
            steps.extend(stages)
            steps.append(
                Invoke(
                    HUB_DB,
                    insert_request("orders_hub", final_var, mode="upsert"),
                    output="ack",
                )
            )
            add(
                ProcessType(
                    f"SYP{g}",
                    ProcessGroup.B,
                    f"synth consolidation of sources {members}",
                    EventType.E2_SCHEDULE,
                    Sequence(steps),
                )
            )

    # CDC replication pulls, one per source.
    if "cdc" in spec.families:
        for i, m in enumerate(matched):
            add(
                ProcessType(
                    f"SYC{i}",
                    ProcessGroup.B,
                    f"synth CDC replication of source {i}",
                    EventType.E2_SCHEDULE,
                    Sequence(
                        [
                            Invoke(
                                f"feed{i}", pull_request(), output="changes"
                            ),
                            Projection(
                                "changes",
                                "canon",
                                _to_canonical(m.columns("txn"), _TXN_COLS),
                            ),
                            Invoke(
                                REPLICA_DB,
                                insert_request(
                                    f"txn_src{i}", "canon", mode="insert"
                                ),
                                output="applied",
                            ),
                            Invoke(
                                f"feed{i}",
                                ack_request("changes"),
                                output="ack",
                            ),
                        ]
                    ),
                )
            )

    # SCD dimension maintenance: one global apply over all sources.
    if "scd" in spec.families:
        steps = []
        inputs = []
        for i, m in enumerate(matched):
            steps.append(
                Invoke(
                    f"src{i}",
                    query_request(m.table("customer")),
                    output=f"q{i}",
                )
            )
            steps.append(
                Projection(
                    f"q{i}",
                    f"c{i}",
                    _to_canonical(m.columns("customer"), _CUSTOMER_COLS),
                )
            )
            inputs.append(f"c{i}")
        steps += [
            Union(inputs, "allcust", distinct_key=("custkey",)),
            Selection("allcust", "clean", col("name") != lit("")),
            Invoke(
                HUB_DB,
                insert_request("scd_staging", "clean", mode="upsert"),
                output="staged",
            ),
            Invoke(
                HUB_DB,
                execute_request("sp_scd_apply"),
                output="applied",
            ),
        ]
        add(
            ProcessType(
                "SYS",
                ProcessGroup.C,
                "synth type-1/type-2 dimension maintenance",
                EventType.E2_SCHEDULE,
                Sequence(steps),
            )
        )

    # Dirty-data dedup / entity matching into the golden table.
    if "dirty" in spec.families:
        steps = []
        inputs = []
        for i, m in enumerate(matched):
            steps.append(
                Invoke(
                    f"src{i}",
                    query_request(m.table("customer")),
                    output=f"q{i}",
                )
            )
            steps.append(
                Projection(
                    f"q{i}",
                    f"c{i}",
                    _to_canonical(m.columns("customer"), _CUSTOMER_COLS),
                )
            )
            inputs.append(f"c{i}")
        steps += [
            Union(inputs, "allc", distinct_key=None),
            Selection("allc", "cleanc", col("name") != lit("")),
            # Entity matching: UNION DISTINCT on the (address, phone)
            # blocking key — first occurrence wins, recovering exactly
            # one golden record per real-world entity.
            Union(["cleanc"], "golden", distinct_key=("address", "phone")),
            Invoke(
                HUB_DB,
                insert_request("golden_customer", "golden", mode="upsert"),
                output="ack",
            ),
        ]
        add(
            ProcessType(
                "SYD",
                ProcessGroup.C,
                "synth dedup/entity matching into the golden table",
                EventType.E2_SCHEDULE,
                Sequence(steps),
            )
        )
    return processes
