"""Scenario manifests: the serializable description of a synthesis.

``repro synth generate`` prints (or writes) one of these; its digest is
the *output* identity of the determinism contract — two manifests share
a digest iff the synthesizer produced structurally identical scenarios
(schemas, services, process graphs, message counts, ground-truth
volumes).  :data:`MANIFEST_FORMAT` versions the shape, like the
``dipbench.session/v1`` wire format does for serve.
"""

from __future__ import annotations

import hashlib
import json

from repro.mtm.blocks import Operator, Sequence
from repro.synth.families import family_of_process
from repro.synth.generator import SynthWorkload

MANIFEST_FORMAT = "dipbench.synth/v1"


def _operator_names(node) -> list[str]:
    """Flattened operator class names of a process graph, in order."""
    if isinstance(node, Sequence):
        names: list[str] = []
        for step in node.steps:
            names.extend(_operator_names(step))
        return names
    if isinstance(node, Operator):
        return [type(node).__name__]
    return [type(node).__name__]


def build_manifest(workload: SynthWorkload, periods: int = 1) -> dict:
    """The full structural description of one synthesized workload."""
    spec = workload.spec
    databases: dict[str, dict] = {}
    for name, db in sorted(workload.scenario.databases.items()):
        tables: dict[str, dict] = {}
        for table_name in sorted(db.table_names):
            schema = db.table(table_name).schema
            tables[table_name] = {
                "columns": [
                    [c.name, c.sql_type] for c in schema.columns
                ],
                "primary_key": list(schema.primary_key),
                "foreign_keys": [
                    {
                        "columns": list(fk.columns),
                        "parent_table": fk.parent_table,
                        "parent_columns": list(fk.parent_columns),
                    }
                    for fk in (schema.foreign_keys or [])
                ],
            }
        databases[name] = {"tables": tables}

    processes: dict[str, dict] = {}
    for pid in sorted(workload.processes):
        process = workload.processes[pid]
        processes[pid] = {
            "family": family_of_process(pid),
            "group": process.group.name,
            "event_type": process.event_type.name,
            "operators": _operator_names(process.root),
        }

    plans: dict[str, dict] = {}
    for period in range(periods):
        plan = workload.plan(period)
        plans[str(period)] = {
            "messages": plan.message_count(),
            "initial_customers": {
                str(i): len(rows)
                for i, rows in sorted(plan.initial_customers.items())
            },
            "ground_truth": {
                "duplicate_pairs": sum(
                    len(p) for p in plan.duplicate_pairs.values()
                ),
                "corrupted_rows": sum(
                    len(k) for k in plan.corrupted_keys.values()
                ),
            },
        }

    return {
        "format": MANIFEST_FORMAT,
        "spec": spec.canonical(),
        "spec_digest": spec.digest(),
        "distribution": workload.f,
        "families": list(spec.families),
        "groups": [list(g) for g in workload.groups],
        "dialects": {
            str(d.index): {
                "style": d.style,
                "tables": dict(sorted(d.table_names.items())),
            }
            for d in workload.dialects
        },
        "databases": databases,
        "services": sorted(workload.scenario.registry.service_names),
        "processes": processes,
        "plans": plans,
    }


def manifest_digest(manifest: dict) -> str:
    """Stable content hash of a manifest (sorted-keys compact JSON)."""
    payload = json.dumps(manifest, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def manifest_to_json(manifest: dict) -> str:
    return json.dumps(manifest, indent=2, sort_keys=True)
