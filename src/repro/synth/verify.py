"""Exact verification of synthesized runs against the generated plan.

The oracle and the message builders consume the *same*
:class:`~repro.synth.generator.PeriodPlan`, so expected state is a pure
fold over the plan — never a re-simulation.  Every fold replicates the
exact operator semantics the generated processes use:

* ``Table.upsert`` keeps the original row position (ordered-dict
  assignment is the oracle equivalent);
* ``UNION DISTINCT`` keeps the *first* row per key, inputs in process
  order (source index order here);
* the dirty-data folds replay the cleansing selection and the
  (address, phone) blocking-key dedup, so duplicate suppression and
  corruption removal are checked against the generated ground truth,
  not against heuristics.

All table reads go through plain iteration, which charges no counters —
verification never perturbs the landscape digest.
"""

from __future__ import annotations

from repro.synth.generator import PeriodPlan, SynthWorkload
from repro.toolsuite.verification import VerificationReport

_ENTITY_OF_FAMILY = {"pipeline": "orders", "cdc": "txn", "scd": "customer"}


def _read_canonical(workload: SynthWorkload, i: int, entity: str) -> list[dict]:
    """A source table's rows mapped back to canonical columns."""
    dialect = workload.dialects[i]
    mapping = dialect.columns(entity)  # canonical -> dialect (ground truth)
    table = workload.source_db(i).table(dialect.table(entity))
    return [
        {canonical: row[phys] for canonical, phys in mapping.items()}
        for row in table
    ]


# -- expected-state folds ----------------------------------------------------------


def expected_source_customers(
    workload: SynthWorkload, plan: PeriodPlan, i: int
) -> dict[int, dict]:
    """Initial population + (when scd is on) every round's upserts."""
    state: dict[int, dict] = {
        row["custkey"]: dict(row) for row in plan.initial_customers[i]
    }
    if "scd" in workload.spec.families:
        for rnd in plan.rounds:
            for image in rnd.cust_updates.get(i, ()):
                state[image["custkey"]] = dict(image)
    return state


def expected_source_orders(plan: PeriodPlan, i: int) -> dict[int, dict]:
    """Order upserts with the invalid-amount rows validated away."""
    state: dict[int, dict] = {}
    for rnd in plan.rounds:
        for row in rnd.orders.get(i, ()):
            if row["amount"] > 0:
                state[row["orderkey"]] = dict(row)
    return state


def expected_source_txns(plan: PeriodPlan, i: int) -> list[dict]:
    return [
        dict(row) for rnd in plan.rounds for row in rnd.txns.get(i, ())
    ]


def expected_hub_orders(
    workload: SynthWorkload, plan: PeriodPlan
) -> dict[int, dict]:
    """Per-group UNION DISTINCT over the final source states.

    Order keys never disappear from a source, so the last round's
    consolidation rewrites every key the hub ever saw — the final hub
    content equals the fold over final source states.
    """
    hub: dict[int, dict] = {}
    for members in workload.groups:
        for i in members:
            for key, row in expected_source_orders(plan, i).items():
                if key not in hub:
                    hub[key] = dict(row)
    return hub


def _round_customer_states(
    workload: SynthWorkload, plan: PeriodPlan
) -> list[list[list[dict]]]:
    """Per round: per source, the ordered customer rows *after* that
    round's master-data upserts (what the round's E2 processes query)."""
    states: list[dict[int, dict]] = [
        {row["custkey"]: dict(row) for row in plan.initial_customers[i]}
        for i in range(workload.spec.sources)
    ]
    snapshots: list[list[list[dict]]] = []
    for rnd in plan.rounds:
        if "scd" in workload.spec.families:
            for i in range(workload.spec.sources):
                for image in rnd.cust_updates.get(i, ()):
                    states[i][image["custkey"]] = dict(image)
        snapshots.append(
            [
                [dict(row) for row in states[i].values()]
                for i in range(workload.spec.sources)
            ]
        )
    return snapshots


def _staged_snapshot(per_source: list[list[dict]]) -> list[dict]:
    """One round's SYS staging: distinct-by-custkey then cleanse."""
    staged: dict[int, dict] = {}
    for rows in per_source:
        for row in rows:
            if row["custkey"] not in staged:
                staged[row["custkey"]] = dict(row)
    return [row for row in staged.values() if row["name"] != ""]


def expected_dimensions(
    workload: SynthWorkload, plan: PeriodPlan
) -> tuple[dict[int, dict], list[dict]]:
    """Replay ``sp_scd_apply`` over every round's staged snapshot."""
    dim: dict[int, dict] = {}
    hist: list[dict] = []
    max_version: dict[int, int] = {}
    for per_source in _round_customer_states(workload, plan):
        for row in _staged_snapshot(per_source):
            key = row["custkey"]
            current = dim.get(key)
            if current is None:
                dim[key] = dict(row)
                hist.append({**row, "version": 1, "current": 1})
                max_version[key] = 1
                continue
            type1_changed = (
                row["name"] != current["name"]
                or row["segment"] != current["segment"]
            )
            type2_changed = (
                row["address"] != current["address"]
                or row["phone"] != current["phone"]
            )
            if not (type1_changed or type2_changed):
                continue
            dim[key] = dict(row)
            if type1_changed:
                for h in hist:
                    if h["custkey"] == key:
                        h["name"] = row["name"]
                        h["segment"] = row["segment"]
            if type2_changed:
                for h in hist:
                    if h["custkey"] == key and h["current"] == 1:
                        h["current"] = 0
                version = max_version[key] + 1
                max_version[key] = version
                hist.append({**row, "version": version, "current": 1})
    return dim, hist


def expected_golden(
    workload: SynthWorkload, plan: PeriodPlan
) -> dict[int, dict]:
    """Replay every round's dedup fold and accumulate the upserts."""
    golden: dict[int, dict] = {}
    for per_source in _round_customer_states(workload, plan):
        seen_blocks: set[tuple] = set()
        for rows in per_source:
            for row in rows:
                if row["name"] == "":
                    continue
                block = (row["address"], row["phone"])
                if block in seen_blocks:
                    continue
                seen_blocks.add(block)
                golden[row["custkey"]] = dict(row)
    return golden


# -- the report --------------------------------------------------------------------


def _compare_keyed(
    report: VerificationReport,
    name: str,
    actual: list[dict],
    expected: dict,
    key: str,
) -> None:
    got = {row[key]: row for row in actual}
    if got == expected:
        report.record(name, True)
        return
    missing = sorted(set(expected) - set(got))[:5]
    extra = sorted(set(got) - set(expected))[:5]
    differing = sorted(
        k for k in set(got) & set(expected) if got[k] != expected[k]
    )[:5]
    report.record(
        name,
        False,
        f"rows={len(got)}/{len(expected)} missing={missing} "
        f"extra={extra} differing={differing}",
    )


def verify_workload(workload: SynthWorkload, period: int) -> VerificationReport:
    """Verify the landscape state the final period left behind."""
    report = VerificationReport()
    spec = workload.spec
    plan = workload.plan(period)

    # Schema matching is a task of the workload: the processes were built
    # from the matcher's output; compare it with the recorded truth.
    for i, (truth, matched) in enumerate(
        zip(workload.dialects, workload.matched)
    ):
        ok = (
            matched.table_names == truth.table_names
            and matched.column_maps == truth.column_maps
        )
        report.record(
            f"schema_matching_src{i}",
            ok,
            f"matched={matched.table_names}/{matched.column_maps} "
            f"truth={truth.table_names}/{truth.column_maps}",
        )

    for i in range(spec.sources):
        _compare_keyed(
            report,
            f"source{i}_customers",
            _read_canonical(workload, i, "customer"),
            expected_source_customers(workload, plan, i),
            "custkey",
        )
        if "pipeline" in spec.families:
            _compare_keyed(
                report,
                f"source{i}_orders",
                _read_canonical(workload, i, "orders"),
                expected_source_orders(plan, i),
                "orderkey",
            )
        if "cdc" in spec.families:
            expected_txns = expected_source_txns(plan, i)
            actual_txns = _read_canonical(workload, i, "txn")
            report.record(
                f"source{i}_txn_log",
                actual_txns == expected_txns,
                f"rows={len(actual_txns)}/{len(expected_txns)}",
            )
            replica = workload.scenario.databases["synth_replica"]
            replicated = [dict(r) for r in replica.table(f"txn_src{i}")]
            report.record(
                f"cdc_replica_src{i}",
                replicated == expected_txns,
                f"rows={len(replicated)}/{len(expected_txns)}",
            )
            report.record(
                f"cdc_feed{i}_drained",
                workload.feeds[i].drained,
                f"cursor={workload.feeds[i].cursor} "
                f"lsn={workload.feeds[i].next_lsn - 1}",
            )

    hub = workload.scenario.databases.get("synth_hub")
    if "pipeline" in spec.families:
        _compare_keyed(
            report,
            "hub_consolidated_orders",
            [dict(r) for r in hub.table("orders_hub")],
            expected_hub_orders(workload, plan),
            "orderkey",
        )
    if "scd" in spec.families:
        dim_expected, hist_expected = expected_dimensions(workload, plan)
        _compare_keyed(
            report,
            "scd_dimension",
            [dict(r) for r in hub.table("dim_customer")],
            dim_expected,
            "custkey",
        )
        actual_hist = sorted(
            (dict(r) for r in hub.table("dim_customer_hist")),
            key=lambda r: (r["custkey"], r["version"]),
        )
        hist_expected = sorted(
            hist_expected, key=lambda r: (r["custkey"], r["version"])
        )
        report.record(
            "scd_history",
            actual_hist == hist_expected,
            f"rows={len(actual_hist)}/{len(hist_expected)}",
        )
        open_versions = [
            r["custkey"]
            for r in hub.table("dim_customer_hist")
            if r["current"] == 1
        ]
        report.record(
            "scd_single_current_version",
            len(open_versions) == len(set(open_versions)),
            "a customer has multiple current history versions",
        )
        staged_left = len(hub.table("scd_staging"))
        report.record(
            "scd_staging_drained", staged_left == 0, f"rows={staged_left}"
        )
    if "dirty" in spec.families:
        golden_expected = expected_golden(workload, plan)
        _compare_keyed(
            report,
            "dirty_golden_customers",
            [dict(r) for r in hub.table("golden_customer")],
            golden_expected,
            "custkey",
        )
        golden_keys = {r["custkey"] for r in hub.table("golden_customer")}
        leaked = [
            key
            for keys in plan.corrupted_keys.values()
            for key in keys
            if key in golden_keys
        ]
        report.record(
            "dirty_corruption_cleansed",
            not leaked,
            f"corrupted keys in golden table: {leaked[:5]}",
        )
        if "scd" not in spec.families:
            # With static addresses the blocking key holds, so every
            # generated duplicate must have merged into its original.
            unmerged = [
                (dup, orig)
                for pairs in plan.duplicate_pairs.values()
                for dup, orig in pairs
                if dup in golden_keys or orig not in golden_keys
            ]
            report.record(
                "dirty_duplicates_merged",
                not unmerged,
                f"unmerged duplicate pairs: {unmerged[:5]}",
            )

    for name, db in sorted(workload.scenario.databases.items()):
        violations = db.check_integrity()
        report.record(
            f"integrity_{name}",
            not violations,
            "; ".join(str(v) for v in violations[:3]),
        )
    return report
