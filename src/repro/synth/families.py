"""Process-family classification and per-family cost reporting.

Synthesized process ids are prefixed (``SYU3``, ``SYC0``, ``SYS``, …);
:func:`family_of_process` maps any process id — synthesized or classic —
to a human-readable workload family so the Monitor, ``repro profile``
and the sweep tables never fall back to raw P-ids for generated
workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.base import InstanceRecord
from repro.metrics.navg import compute_metrics

#: Synthesized process-id prefixes → family, longest prefix wins.
#:
#: ``SYU`` order feeds and ``SYP`` consolidations are the pipeline family;
#: ``SYT`` transaction feeds and ``SYC`` replication pulls are CDC;
#: ``SYM`` master-data updates and ``SYS`` the dimension apply are SCD;
#: ``SYD`` is the dedup/entity-matching task of the dirty family.
_PREFIX_FAMILY = {
    "SYU": "pipeline",
    "SYP": "pipeline",
    "SYT": "cdc",
    "SYC": "cdc",
    "SYM": "scd",
    "SYS": "scd",
    "SYD": "dirty",
}

#: Classic DIPBench process groups, for uniform labeling.
_CLASSIC_FAMILY = {
    "P01": "source-mgmt", "P02": "source-mgmt", "P03": "source-mgmt",
    "P04": "consolidation", "P05": "consolidation", "P06": "consolidation",
    "P07": "consolidation", "P08": "consolidation", "P09": "consolidation",
    "P10": "consolidation", "P11": "consolidation",
    "P12": "warehouse", "P13": "warehouse",
    "P14": "marts", "P15": "marts",
}


def is_synthesized(process_id: str) -> bool:
    return process_id.startswith("SY")


def family_of_process(process_id: str) -> str:
    """Workload family of a process id, ``""`` when unknown."""
    if is_synthesized(process_id):
        for prefix in sorted(_PREFIX_FAMILY, key=len, reverse=True):
            if process_id.startswith(prefix):
                return _PREFIX_FAMILY[prefix]
        return ""
    base = process_id.split("_")[0]
    return _CLASSIC_FAMILY.get(base, "")


def label_process(process_id: str) -> str:
    """``"SYC0 [cdc]"`` — the id plus its family, when one is known."""
    family = family_of_process(process_id)
    return f"{process_id} [{family}]" if family else process_id


@dataclass(frozen=True)
class FamilyRow:
    """Aggregate cost row of one workload family."""

    family: str
    process_types: int
    instances: int
    errors: int
    navg_plus_total: float
    mean_communication: float
    mean_management: float
    mean_processing: float


def family_breakdown(
    records: list[InstanceRecord], time_scale: float = 1.0
) -> list[FamilyRow]:
    """Per-family aggregate of a run's instance records.

    NAVG+ is computed per process type (as always) and summed within
    each family; mean cost components are over the family's successful
    instances, reported in tu like the Monitor does.
    """
    by_family: dict[str, list[InstanceRecord]] = {}
    for record in records:
        family = family_of_process(record.process_id) or "other"
        by_family.setdefault(family, []).append(record)
    rows: list[FamilyRow] = []
    for family in sorted(by_family):
        members = by_family[family]
        report = compute_metrics(members)
        ok = [r for r in members if r.status == "ok"]
        count = max(len(ok), 1)
        rows.append(
            FamilyRow(
                family=family,
                process_types=len({r.process_id for r in members}),
                instances=len(members),
                errors=sum(1 for r in members if r.status != "ok"),
                navg_plus_total=(
                    sum(m.navg_plus for m in report.rows()) * time_scale
                ),
                mean_communication=(
                    sum(r.costs.communication for r in ok) / count * time_scale
                ),
                mean_management=(
                    sum(r.costs.management for r in ok) / count * time_scale
                ),
                mean_processing=(
                    sum(r.costs.processing for r in ok) / count * time_scale
                ),
            )
        )
    return rows


def format_family_table(rows: list[FamilyRow]) -> str:
    """Fixed-width per-family cost table (tu)."""
    header = (
        f"{'family':<14}{'types':>6}{'inst':>7}{'err':>5}"
        f"{'NAVG+Σ':>12}{'C_c':>10}{'C_m':>10}{'C_p':>10}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row.family:<14}{row.process_types:>6}{row.instances:>7}"
            f"{row.errors:>5}{row.navg_plus_total:>12.2f}"
            f"{row.mean_communication:>10.2f}{row.mean_management:>10.2f}"
            f"{row.mean_processing:>10.2f}"
        )
    return "\n".join(lines)
