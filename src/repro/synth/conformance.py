"""Differential engine conformance for synthesized workloads.

Every generated scenario must mean the same thing to every engine: the
bridge runs one resolved spec through all registered engines and asserts

* identical landscape digests (the integrated state, byte for byte);
* identical per-process instance counts and status multisets;
* exact verification passing everywhere.

Run fingerprints are *not* compared across engines — they embed the
engine name and per-engine cost profiles by design.  Fingerprint
identity is asserted per engine across repeated runs (determinism), by
the property tests.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.storage.digest import landscape_digest
from repro.synth.generator import synthesize
from repro.synth.runner import SynthClient
from repro.synth.spec import SynthSpec
from repro.toolsuite.schedule import ScaleFactors


@dataclass
class EngineOutcome:
    """What one engine produced for the shared spec."""

    engine: str
    digest: str
    instance_statuses: dict[str, "Counter"]
    verification_ok: bool
    failures: list[str]


@dataclass
class ConformanceReport:
    """Cross-engine comparison of one synthesized scenario."""

    spec: SynthSpec
    outcomes: list[EngineOutcome] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [
            f"conformance {status}: spec {self.spec.to_string() or '<defaults>'} "
            f"across {len(self.outcomes)} engines"
        ]
        lines.extend(f"  FAIL {p}" for p in self.problems)
        return "\n".join(lines)


def run_differential(
    spec: SynthSpec,
    f: int = 0,
    periods: int = 1,
    time: float = 1.0,
    engines: list[str] | None = None,
) -> ConformanceReport:
    """Run ``spec`` on every engine and compare the outcomes."""
    from repro.engine import ENGINES

    spec.assert_valid()
    if spec.seed is None:
        raise ValueError("run_differential needs a resolved spec")
    names = engines if engines is not None else sorted(ENGINES)
    report = ConformanceReport(spec=spec)
    for name in names:
        workload = synthesize(spec, f=f)
        engine = ENGINES[name](workload.scenario.registry, worker_count=4)
        client = SynthClient(
            workload,
            engine,
            ScaleFactors(time=time, distribution=f),
            periods=periods,
        )
        result = client.run(verify=True)
        statuses: dict[str, Counter] = {}
        for record in result.records:
            statuses.setdefault(record.process_id, Counter())[
                record.status
            ] += 1
        report.outcomes.append(
            EngineOutcome(
                engine=name,
                digest=landscape_digest(
                    workload.scenario.all_databases.values()
                ),
                instance_statuses=statuses,
                verification_ok=result.verification.ok,
                failures=list(result.verification.failures),
            )
        )

    baseline = report.outcomes[0]
    for outcome in report.outcomes:
        if not outcome.verification_ok:
            report.problems.append(
                f"{outcome.engine}: verification failed: "
                + "; ".join(outcome.failures[:3])
            )
        if outcome.digest != baseline.digest:
            report.problems.append(
                f"{outcome.engine}: landscape digest {outcome.digest[:12]} "
                f"!= {baseline.engine}'s {baseline.digest[:12]}"
            )
        if outcome.instance_statuses != baseline.instance_statuses:
            diff = {
                pid
                for pid in (
                    set(outcome.instance_statuses)
                    | set(baseline.instance_statuses)
                )
                if outcome.instance_statuses.get(pid)
                != baseline.instance_statuses.get(pid)
            }
            report.problems.append(
                f"{outcome.engine}: instance statuses diverge from "
                f"{baseline.engine} for {sorted(diff)}"
            )
    return report
