"""Synthesized schemas: canonical entities, source dialects, matching.

The synthesizer emits *heterogeneous* sources: each source system names
the same three entities (customer, orders, transaction log) in its own
dialect — abbreviated, prefixed or upper-cased table and column names —
while the integration hub speaks the canonical form.  The dialect
generator records the exact canonical → dialect mapping as ground
truth; :func:`match_columns` / :func:`match_table` implement an
Alaska-style deterministic schema matcher (normalization + synonym
thesaurus + string similarity) whose output is *verified against* that
ground truth and then used to build the generated integration processes.
Schema matching is therefore a real task of the workload: a wrong match
fails verification and the differential conformance suite.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field

from repro.db.schema import Column, ForeignKey, TableSchema
from repro.errors import ReproError

#: Canonical entity → ordered (column, sql_type, length) triples.
CANONICAL_COLUMNS: dict[str, tuple[tuple[str, str, int | None], ...]] = {
    "customer": (
        ("custkey", "INTEGER", None),
        ("name", "VARCHAR", 40),
        ("address", "VARCHAR", 60),
        ("phone", "VARCHAR", 20),
        ("segment", "VARCHAR", 12),
    ),
    "orders": (
        ("orderkey", "INTEGER", None),
        ("custkey", "INTEGER", None),
        # DOUBLE (not DECIMAL): XML round-trips must give back exactly
        # the float the plan generated, or exact verification breaks.
        ("amount", "DOUBLE", None),
        ("status", "VARCHAR", 8),
    ),
    "txn": (
        ("txnkey", "INTEGER", None),
        ("custkey", "INTEGER", None),
        ("amount", "DOUBLE", None),
        ("kind", "VARCHAR", 10),
    ),
}

#: SQL types per canonical column, for XML → relation conversion.
CANONICAL_TYPES: dict[str, dict[str, str]] = {
    entity: {name: sql_type for name, sql_type, _ in columns}
    for entity, columns in CANONICAL_COLUMNS.items()
}

#: Value domains (satellite property checks assert generated data stays
#: inside these).
SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
ORDER_STATUS = ("OPEN", "FILLED", "PENDING")
TXN_KINDS = ("DEBIT", "CREDIT", "REFUND")

#: Abbreviation dialect, canonical → abbreviated.
_ABBREV = {
    "custkey": "custno", "name": "nm", "address": "addr",
    "phone": "tel", "segment": "seg",
    "orderkey": "ordno", "amount": "amt", "status": "stat",
    "txnkey": "txnno", "kind": "knd",
}

_STYLE_TABLE_NAMES = {
    "canonical": {"customer": "customer", "orders": "orders", "txn": "txn_log"},
    "abbrev": {"customer": "cust", "orders": "ord", "txn": "txns"},
    "prefixed": {
        "customer": "customer_master",
        "orders": "order_entry",
        "txn": "txn_feed",
    },
    "upper": {"customer": "CUSTOMER_T", "orders": "ORDERS_T", "txn": "TXN_T"},
}

_STYLES = ("canonical", "abbrev", "prefixed", "upper")

_ENTITY_PREFIX = {"customer": "c_", "orders": "o_", "txn": "t_"}


class SchemaMatchError(ReproError):
    """The deterministic matcher could not assign a column or table."""


def _dialect_column(style: str, entity: str, canonical: str) -> str:
    if style == "canonical":
        return canonical
    if style == "abbrev":
        return _ABBREV.get(canonical, canonical)
    if style == "prefixed":
        return _ENTITY_PREFIX[entity] + canonical
    if style == "upper":
        return canonical.upper()
    raise ReproError(f"unknown dialect style {style!r}")


@dataclass(frozen=True)
class SourceDialect:
    """One source system's naming scheme plus the ground-truth mapping."""

    index: int
    style: str
    #: entity → dialected table name.
    table_names: dict[str, str] = field(default_factory=dict)
    #: entity → {canonical column → dialect column} (the ground truth).
    column_maps: dict[str, dict[str, str]] = field(default_factory=dict)

    def table(self, entity: str) -> str:
        return self.table_names[entity]

    def columns(self, entity: str) -> dict[str, str]:
        return self.column_maps[entity]

    def dialect_types(self, entity: str) -> dict[str, str]:
        """SQL types keyed by *dialect* column name."""
        mapping = self.column_maps[entity]
        return {
            mapping[name]: sql_type
            for name, sql_type in CANONICAL_TYPES[entity].items()
        }


def dialect_for(index: int) -> SourceDialect:
    """The (fixed, deterministic) dialect of source ``index``."""
    style = _STYLES[index % len(_STYLES)]
    return SourceDialect(
        index=index,
        style=style,
        table_names=dict(_STYLE_TABLE_NAMES[style]),
        column_maps={
            entity: {
                name: _dialect_column(style, entity, name)
                for name, _, _ in columns
            }
            for entity, columns in CANONICAL_COLUMNS.items()
        },
    )


def canonical_schema(
    entity: str,
    table_name: str | None = None,
    foreign_keys: list[ForeignKey] | None = None,
) -> TableSchema:
    """A canonical-form :class:`TableSchema` for ``entity``."""
    columns = [
        Column(name, sql_type, nullable=(name not in ("custkey",)), length=length)
        for name, sql_type, length in CANONICAL_COLUMNS[entity]
    ]
    spec = CANONICAL_COLUMNS[entity]
    return TableSchema(
        table_name or entity,
        columns,
        primary_key=(spec[0][0],),
        foreign_keys=foreign_keys,
    )


def dialect_schema(dialect: SourceDialect, entity: str) -> TableSchema:
    """The dialected :class:`TableSchema` of ``entity`` in one source.

    Orders and transactions carry a foreign key to the source's own
    customer table (checked deferred, like every FK in the landscape) —
    the FK-closure property tests run over exactly these.
    """
    mapping = dialect.columns(entity)
    columns = [
        Column(mapping[name], sql_type, length=length)
        for name, sql_type, length in CANONICAL_COLUMNS[entity]
    ]
    pk = (mapping[CANONICAL_COLUMNS[entity][0][0]],)
    foreign_keys = None
    if entity in ("orders", "txn"):
        foreign_keys = [
            ForeignKey(
                columns=(mapping["custkey"],),
                parent_table=dialect.table("customer"),
                parent_columns=(dialect.columns("customer")["custkey"],),
            )
        ]
    return TableSchema(
        dialect.table(entity), columns, primary_key=pk, foreign_keys=foreign_keys
    )


# -- the deterministic matcher ----------------------------------------------------

#: Synonym thesaurus: tokens that name the same concept across systems.
#: This is matcher knowledge (like any schema-matching tool ships), not
#: the per-source ground truth — that is recorded by the generator and
#: compared against the matcher's output during verification.
_SYNONYMS = (
    {"custkey", "custno", "custid", "customerkey"},
    {"name", "nm", "fullname"},
    {"address", "addr", "street"},
    {"phone", "tel", "telephone", "phoneno"},
    {"segment", "seg", "sector"},
    {"orderkey", "ordno", "orderid", "orderno"},
    {"amount", "amt", "total"},
    {"status", "stat", "state"},
    {"txnkey", "txnno", "txnid"},
    {"kind", "knd", "type"},
    {"customer", "cust", "clients"},
    {"orders", "ord", "order"},
    {"txn", "txns", "txnlog", "txnfeed", "transactions"},
)


def _normalize(name: str) -> str:
    out = name.lower()
    # Strip a single-letter entity prefix ("c_", "o_", ...) and common
    # suffixes ("_t" physical-table markers, "_log"/"_feed"/"_master"
    # qualifiers) — generic normalization, not per-source knowledge.
    if len(out) > 2 and out[1] == "_":
        out = out[2:]
    for suffix in ("_master", "_entry", "_log", "_feed", "_t"):
        if out.endswith(suffix):
            out = out[: -len(suffix)]
            break
    return out.replace("_", "")


def _score(candidate: str, target: str) -> float:
    a, b = _normalize(candidate), _normalize(target)
    if a == b:
        return 1.0
    for group in _SYNONYMS:
        if a in group and b in group:
            return 0.95
    return difflib.SequenceMatcher(a=a, b=b).ratio()


def match_columns(
    source_columns: list[str], canonical_columns: list[str]
) -> dict[str, str]:
    """Greedy best-score assignment canonical → source column.

    Deterministic: canonical columns are matched in order, ties broken
    by source column order; a best score below 0.5 is a failed match.
    """
    available = list(source_columns)
    mapping: dict[str, str] = {}
    for target in canonical_columns:
        best, best_score = None, -1.0
        for candidate in available:
            score = _score(candidate, target)
            if score > best_score:
                best, best_score = candidate, score
        if best is None or best_score < 0.5:
            raise SchemaMatchError(
                f"no source column matches {target!r} among {available}"
            )
        mapping[target] = best
        available.remove(best)
    return mapping


def match_table(table_names: list[str], entity: str) -> str:
    """Pick the source table that names ``entity``, deterministically."""
    best, best_score = None, -1.0
    for candidate in table_names:
        score = _score(candidate, entity)
        if score > best_score:
            best, best_score = candidate, score
    if best is None or best_score < 0.5:
        raise SchemaMatchError(
            f"no table matches entity {entity!r} among {table_names}"
        )
    return best


def matched_dialect(dialect: SourceDialect) -> SourceDialect:
    """Re-derive a source's mapping *through the matcher* (not the truth).

    The generated processes are built from this; verification compares
    it field by field against the recorded ground truth, which is what
    makes schema matching an exactly-verified task.
    """
    table_names = [dialect.table(e) for e in ("customer", "orders", "txn")]
    matched_tables: dict[str, str] = {}
    for entity in ("customer", "orders", "txn"):
        matched_tables[entity] = match_table(list(table_names), entity)
    column_maps: dict[str, dict[str, str]] = {}
    for entity in ("customer", "orders", "txn"):
        source_cols = list(dialect.columns(entity).values())
        canonical = [name for name, _, _ in CANONICAL_COLUMNS[entity]]
        column_maps[entity] = match_columns(source_cols, canonical)
    return SourceDialect(
        index=dialect.index,
        style=dialect.style,
        table_names=matched_tables,
        column_maps=column_maps,
    )
