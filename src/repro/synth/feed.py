"""CDC change feeds: LSN-stamped logical change capture per source.

The PR-3 storage layer owns each table's single WAL ``listener`` slot,
so CDC taps the *observer* interface instead (``Table.add_observer``):
every append to a watched source table becomes one logical change
record with a monotonically increasing LSN — exactly the shape a WAL
change listener would emit, but composable with durability being on.

The watched transaction-log tables are append-only within a benchmark
period (fresh transaction keys per message), so ``on_insert`` captures
every change exactly once.  The only coarse ``on_mutation`` these tables
ever see is the period-start truncate (or a recovery ``restore_rows``),
which the feed treats as a rebase: cursor and log reset with the table.

:class:`ChangeFeedService` exposes the feed as a registered service
endpoint (``pull`` / ``ack``), so the generated replication processes
reach it through the ordinary INVOKE → registry → network path and every
pull is charged communication + external cost like any other call.
"""

from __future__ import annotations

from repro.db.relation import Relation
from repro.db.table import Table, TableObserver
from repro.errors import ServiceError
from repro.services.endpoints import Envelope, ServiceEndpoint

#: The LSN column added in front of the captured row.
LSN_COLUMN = "lsn"


class ChangeFeed(TableObserver):
    """An ordered log of captured row images with an ack cursor."""

    def __init__(self, table: Table):
        self.table_name = table.name
        #: Captured columns: LSN first, then the source table's columns.
        self.columns = (LSN_COLUMN,) + tuple(table.schema.column_names)
        self.records: list[dict] = []
        self.next_lsn = 1
        self.cursor = 0
        table.add_observer(self)

    # -- TableObserver ----------------------------------------------------------

    def on_insert(self, table_name: str, row: dict) -> None:
        self.records.append({LSN_COLUMN: self.next_lsn, **row})
        self.next_lsn += 1

    def on_mutation(self, table_name: str) -> None:
        """Coarse mutation (period-start truncate / recovery restore):
        the watched table was rebuilt, so the feed rebases with it."""
        self.records.clear()
        self.next_lsn = 1
        self.cursor = 0

    # -- feed protocol ----------------------------------------------------------

    def pending(self) -> list[dict]:
        """Change records past the ack cursor, in LSN order."""
        return [r for r in self.records if r[LSN_COLUMN] > self.cursor]

    def ack(self, upto: int) -> int:
        """Advance the cursor (idempotent; never moves backwards)."""
        self.cursor = max(self.cursor, int(upto))
        return self.cursor

    @property
    def drained(self) -> bool:
        return self.cursor >= self.next_lsn - 1


class ChangeFeedService(ServiceEndpoint):
    """Service face of one :class:`ChangeFeed`.

    Operations:

    * ``pull`` — body ignored; response body is a Relation of pending
      change records (``lsn`` + source columns), charged per row like a
      query against an external system;
    * ``ack``  — body is ``{"upto": lsn}``; advances the cursor and
      responds with the new cursor position.
    """

    #: External processing cost per pulled change record (tu), matching
    #: the DatabaseService stored-procedure unit.
    external_unit = 0.02

    def __init__(self, name: str, host: str, feed: ChangeFeed):
        super().__init__(name, host)
        self.feed = feed

    def operations(self) -> list[str]:
        return ["pull", "ack"]

    def op_pull(self, request: Envelope) -> Envelope:
        pending = self.feed.pending()
        relation = Relation(list(self.feed.columns), pending)
        return Envelope(
            "changes",
            relation,
            payload_units=float(len(pending)),
            external_cost=self.external_unit * len(pending),
        )

    def op_ack(self, request: Envelope) -> Envelope:
        body = request.body
        if not isinstance(body, dict) or "upto" not in body:
            raise ServiceError(
                f"feed {self.name}: ack body must be {{'upto': lsn}}"
            )
        cursor = self.feed.ack(body["upto"])
        return Envelope("ack_ok", {"cursor": cursor}, payload_units=1.0)
