"""repro.synth: parameterized workload synthesis.

DIPBench ships one fixed landscape and 15 process types; this package
makes the workload itself a knob space.  A :class:`SynthSpec` (DAG
depth/fan-out, transform mix, update ratio, source count, scale, noise,
process families) plus a seed deterministically generates a full
integration scenario — heterogeneous source schemas, MTM process
definitions, message streams, schedules and exact ground truth — that
every engine, the sweep executor, serve and the cluster overlay run
unchanged.

Process families beyond the classic pipeline: CDC/replication off
LSN-stamped change feeds, slowly-changing-dimension (type-1/type-2)
maintenance, and Alaska-style dirty-data tasks (dedup/entity matching,
schema matching) verified exactly against generated ground truth.
"""

from repro.synth.conformance import ConformanceReport, run_differential
from repro.synth.families import (
    FamilyRow,
    family_breakdown,
    family_of_process,
    format_family_table,
    is_synthesized,
    label_process,
)
from repro.synth.feed import ChangeFeed, ChangeFeedService
from repro.synth.generator import (
    PeriodPlan,
    SynthWorkload,
    build_period_plan,
    synthesize,
)
from repro.synth.manifest import (
    MANIFEST_FORMAT,
    build_manifest,
    manifest_digest,
    manifest_to_json,
)
from repro.synth.runner import SynthClient
from repro.synth.schema import (
    SchemaMatchError,
    SourceDialect,
    dialect_for,
    match_columns,
    match_table,
    matched_dialect,
)
from repro.synth.spec import FAMILIES, SynthSpec, SynthSpecError, knob_problems
from repro.synth.verify import verify_workload

__all__ = [
    "FAMILIES",
    "MANIFEST_FORMAT",
    "ChangeFeed",
    "ChangeFeedService",
    "ConformanceReport",
    "FamilyRow",
    "PeriodPlan",
    "SchemaMatchError",
    "SourceDialect",
    "SynthClient",
    "SynthSpec",
    "SynthSpecError",
    "SynthWorkload",
    "build_manifest",
    "build_period_plan",
    "dialect_for",
    "family_breakdown",
    "family_of_process",
    "format_family_table",
    "is_synthesized",
    "knob_problems",
    "label_process",
    "manifest_digest",
    "manifest_to_json",
    "match_columns",
    "match_table",
    "matched_dialect",
    "run_differential",
    "synthesize",
    "verify_workload",
]
