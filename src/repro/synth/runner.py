"""SynthClient: drives an engine through a synthesized workload.

The client mirrors :class:`~repro.toolsuite.client.BenchmarkClient`'s
contract exactly — ``from_spec(RunSpec)``, ``run(verify) →
BenchmarkResult``, ``.scenario`` / ``.observability`` / ``.monitor``
attributes — so ``repro.parallel.run_spec`` only has to pick the client
class when ``RunSpec.synth`` is set; containment, landscape digesting,
metric shard collection and fingerprints are shared code paths.

Each period uninitializes the landscape (change feeds rebase with their
tables), replants the plan's initial populations, then executes
``spec.rounds`` rounds: the round's E1 message streams drain through one
deadline-ordered scheduler, after which the dependent E2 processes run
serialized at the running completion frontier — consolidations, CDC
pulls, the SCD apply, the dedup — "serialized in order to ensure the
correct results", exactly like streams C and D of the classic schedule.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.base import InstanceRecord, IntegrationEngine, ProcessEvent
from repro.errors import BenchmarkError
from repro.observability import Observability
from repro.simtime.clock import VirtualClock
from repro.simtime.scheduler import EventScheduler
from repro.synth.generator import SynthWorkload, synthesize
from repro.synth.spec import SynthSpec
from repro.toolsuite.client import BenchmarkResult
from repro.toolsuite.monitor import Monitor
from repro.toolsuite.schedule import ScaleFactors
from repro.toolsuite.verification import VerificationReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.parallel.spec import RunSpec

#: Virtual-time layout of one period, in tu: rounds are spaced far
#: enough apart that a round's E1 arrivals never collide with the
#: previous round's, and messages within a stream stay ordered.
_ROUND_SPACING_TU = 200.0
_MESSAGE_SPACING_TU = 2.0
_STREAM_OFFSET_TU = 0.13


class SynthClient:
    """Benchmark client for synthesized workloads."""

    def __init__(
        self,
        workload: SynthWorkload,
        engine: IntegrationEngine,
        factors: ScaleFactors | None = None,
        periods: int = 1,
        observability: Observability | None = None,
    ):
        if periods < 1 or periods > 100:
            raise BenchmarkError(f"periods must be in [1, 100]: {periods}")
        self.workload = workload
        self.scenario = workload.scenario
        self.engine = engine
        self.factors = factors or ScaleFactors()
        self.periods = periods
        self.observability = observability or Observability.disabled()
        if self.observability.enabled:
            self.engine.observability = self.observability
            self.scenario.registry.network.bind_metrics(
                self.observability.metrics
            )
        mem_budget = getattr(engine, "mem_budget", None)
        if mem_budget is not None:
            for db in self.scenario.all_databases.values():
                db.set_memory_budget(mem_budget)
        self.monitor = Monitor(
            time_scale=self.factors.time, observability=self.observability
        )

    @classmethod
    def from_spec(cls, spec: "RunSpec") -> "SynthClient":
        """Build a fully wired synth client from one picklable RunSpec.

        Symmetric to ``BenchmarkClient.from_spec``: a sweep worker
        receives nothing but the spec and synthesizes its own landscape,
        engine and observability, so parallel grid points share no state
        and reproduce the serial run byte-identically.
        """
        from repro.engine import ENGINES
        from repro.observability.metrics import (
            MetricsRegistry,
            NullMetricsRegistry,
        )
        from repro.observability.tracer import NullTracer, Tracer

        if spec.engine not in ENGINES:
            raise BenchmarkError(
                f"unknown engine {spec.engine!r}; "
                f"choose from {sorted(ENGINES)}"
            )
        synth_spec = SynthSpec.parse(spec.synth).resolve(spec.seed)
        workload = synthesize(
            synth_spec, f=spec.distribution, jitter=spec.jitter
        )
        engine = ENGINES[spec.engine](
            workload.scenario.registry,
            worker_count=spec.engine_workers,
            mem_budget=spec.mem_budget,
        )
        observability = None
        if spec.collect_metrics or spec.collect_trace:
            observability = Observability(
                tracer=Tracer() if spec.collect_trace else NullTracer(),
                metrics=(
                    MetricsRegistry()
                    if spec.collect_metrics
                    else NullMetricsRegistry()
                ),
            )
        return cls(
            workload,
            engine,
            spec.factors,
            periods=spec.periods,
            observability=observability,
        )

    # -- execution --------------------------------------------------------------

    def run(self, verify: bool = True) -> BenchmarkResult:
        """Execute all periods; verify the last one against the plan."""
        self._deploy()
        last_period = 0
        for period in range(self.periods):
            self.run_period(period)
            last_period = period
        if verify:
            from repro.synth.verify import verify_workload

            verification = verify_workload(self.workload, last_period)
        else:
            verification = VerificationReport(checks=[], failures=[])
        return BenchmarkResult(
            factors=self.factors,
            periods=self.periods,
            records=list(self.monitor.records),
            metrics=self.monitor.metrics(),
            verification=verification,
            engine_name=self.engine.engine_name,
        )

    def _deploy(self) -> None:
        if not self.engine.deployed_ids:
            self.engine.deploy_all(self.workload.processes.values())

    def run_period(self, period: int) -> list[InstanceRecord]:
        """Uninitialize, replant, then run every round's E1 → E2 wave."""
        self._deploy()
        workload = self.workload
        plan = workload.plan(period)
        self.scenario.uninitialize()  # change feeds rebase with the truncate
        workload.populate(period)
        self.engine.reset_workers()
        records_before = len(self.engine.records)

        streams = workload.e1_streams()
        builders = {
            "orders": workload.order_message,
            "txns": workload.txn_message,
            "cust_updates": workload.customer_message,
        }
        for r, rnd in enumerate(plan.rounds):
            round_base = r * _ROUND_SPACING_TU
            scheduler = EventScheduler(VirtualClock())
            payloads = {
                "orders": rnd.orders,
                "txns": rnd.txns,
                "cust_updates": rnd.cust_updates,
            }
            for s, (process_id, source, kind) in enumerate(streams):
                rows = payloads[kind].get(source, ())
                for k, row in enumerate(rows):
                    deadline_tu = (
                        round_base
                        + _MESSAGE_SPACING_TU * k
                        + _STREAM_OFFSET_TU * s
                    )
                    scheduler.push(
                        self.factors.tu_to_engine(deadline_tu),
                        (process_id, kind, row),
                    )
            frontier = self.factors.tu_to_engine(round_base)
            for event in scheduler.drain():
                process_id, kind, row = event.payload
                record = self._handle(
                    ProcessEvent(
                        process_id,
                        deadline=event.deadline,
                        message=builders[kind](row),
                        period=period,
                        stream="E1",
                    )
                )
                frontier = max(frontier, record.completion)
            # The dependent wave, serialized at the completion frontier.
            for process_id in workload.e2_processes():
                record = self._handle(
                    ProcessEvent(
                        process_id,
                        deadline=frontier,
                        message=None,
                        period=period,
                        stream="E2",
                    )
                )
                frontier = max(frontier, record.completion)

        new_records = self.engine.records[records_before:]
        self.monitor.absorb(new_records)
        metrics = self.observability.metrics
        if metrics.enabled:
            metrics.counter(
                "client_periods_total", help="Benchmark periods executed"
            ).inc()
        return new_records

    def _handle(self, event: ProcessEvent) -> InstanceRecord:
        """Dispatch one event; failures become error records, like the
        classic client's boundary."""
        try:
            return self.engine.handle_event(event)
        except Exception as exc:
            return self.engine.record_failure(event, exc)
