"""SynthSpec: the explicit knob space of the workload synthesizer.

DIPBench fixes one landscape and 15 process types; DWEB argues a
benchmark becomes far more useful when the workload itself is a
parameterized generator.  A :class:`SynthSpec` is that parameterization:
pure picklable data describing the *shape* of an integration scenario —
source count, DAG depth and fan-out, transform mix, update/query ratio,
scale, dirtiness — plus which process families to emit.

Everything downstream (schemas, process graphs, message streams,
schedules, ground truth) is a deterministic function of ``(spec, seed)``;
:meth:`SynthSpec.digest` is the stable content hash of that function's
input, and the scenario manifest digest (``repro.synth.manifest``) is the
hash of its output.

The compact knob-string form (``"sources=3,depth=2,families=cdc+scd"``)
is what travels through ``RunSpec.synth``, the ``repro synth`` /
``repro sweep --synth`` CLI, the grid axes, and the
``dipbench.session/v1`` serve boundary.  Pair separator is ``","`` and
the families list uses ``"+"`` (grid axis *values* are ``"/"``-separated
precisely so knob strings can keep their commas).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace

from repro.errors import ReproError

#: The synthesized process families, in canonical order.
#:
#: * ``pipeline`` — classic E1 order feeds per source plus E2 multi-source
#:   consolidation DAGs (depth/fan-out/transform-mix knobs apply here);
#: * ``cdc``      — change-data-capture: an LSN-stamped change feed tapped
#:   off the source tables' change observers, replicated into a replica DB;
#: * ``scd``      — slowly-changing-dimension maintenance (type 1 + type 2)
#:   against the synthesized warehouse schema;
#: * ``dirty``    — Alaska-style dirty-data tasks: dedup/entity matching
#:   over overlapping noisy sources and schema matching over heterogeneous
#:   source dialects, with exact generated ground truth.
FAMILIES = ("pipeline", "cdc", "scd", "dirty")

_TRANSFORM_MIXES = ("relational", "xml", "balanced")

#: Knob-string aliases → canonical field names.
_ALIASES = {
    "sources": "sources",
    "depth": "depth",
    "fan_out": "fan_out",
    "fanout": "fan_out",
    "transform_mix": "transform_mix",
    "mix": "transform_mix",
    "update_ratio": "update_ratio",
    "update": "update_ratio",
    "scale": "scale",
    "noise": "noise",
    "rounds": "rounds",
    "messages": "messages",
    "msgs": "messages",
    "families": "families",
    "seed": "seed",
}


class SynthSpecError(ReproError):
    """Invalid synthesis knobs; ``problems`` lists every issue found."""

    def __init__(self, problems: list[str]):
        super().__init__("invalid synth spec: " + "; ".join(problems))
        self.problems = list(problems)


@dataclass(frozen=True)
class SynthSpec:
    """The knob space of one synthesized workload.

    ``seed`` is optional: ``None`` means "inherit the run's seed"
    (:meth:`resolve` fills it in), so the same knob string swept over
    ``--seeds`` produces a different-but-deterministic scenario per seed.
    """

    #: Number of heterogeneous source systems (each gets its own schema
    #: dialect and its own E1 message streams).
    sources: int = 2
    #: Extra transform stages in each consolidation DAG (DAG depth).
    depth: int = 1
    #: Sources consumed per consolidation process (DAG fan-in/fan-out).
    fan_out: int = 2
    #: What the extra stages do: "relational", "xml" (XML round-trips),
    #: or "balanced" (alternating).
    transform_mix: str = "relational"
    #: Fraction of E1 messages that update existing entities instead of
    #: inserting new ones (the update/query ratio knob).
    update_ratio: float = 0.5
    #: Multiplies population sizes and messages per stream.
    scale: float = 1.0
    #: Dirtiness: duplicate rate for entity matching, corruption rate for
    #: cleansing, invalid-amount rate for row validation.
    noise: float = 0.2
    #: Rounds per benchmark period; each round runs the E1 streams and
    #: then the dependent E2 processes, so SCD version churn and CDC
    #: incremental pulls happen *within* one period.
    rounds: int = 2
    #: E1 messages per stream per round (before ``scale``).
    messages: int = 3
    #: Enabled process families, canonically ordered.
    families: tuple[str, ...] = FAMILIES
    #: Explicit generator seed; None inherits the RunSpec seed.
    seed: int | None = None

    # -- validation -------------------------------------------------------------

    def validate(self) -> list[str]:
        """Range-check every knob; returns all problems (empty = valid)."""
        problems: list[str] = []
        if not 1 <= self.sources <= 8:
            problems.append(f"sources must be in [1, 8]: {self.sources}")
        if not 0 <= self.depth <= 6:
            problems.append(f"depth must be in [0, 6]: {self.depth}")
        if not 1 <= self.fan_out <= 8:
            problems.append(f"fan_out must be in [1, 8]: {self.fan_out}")
        if self.transform_mix not in _TRANSFORM_MIXES:
            problems.append(
                f"transform_mix must be one of {_TRANSFORM_MIXES}: "
                f"{self.transform_mix!r}"
            )
        if not 0.0 <= self.update_ratio <= 1.0:
            problems.append(
                f"update_ratio must be in [0, 1]: {self.update_ratio}"
            )
        if not 0.0 < self.scale <= 10.0:
            problems.append(f"scale must be in (0, 10]: {self.scale}")
        if not 0.0 <= self.noise <= 0.9:
            problems.append(f"noise must be in [0, 0.9]: {self.noise}")
        if not 1 <= self.rounds <= 6:
            problems.append(f"rounds must be in [1, 6]: {self.rounds}")
        if not 1 <= self.messages <= 64:
            problems.append(f"messages must be in [1, 64]: {self.messages}")
        if not self.families:
            problems.append("families must name at least one family")
        for family in self.families:
            if family not in FAMILIES:
                problems.append(
                    f"unknown family {family!r}; choose from {FAMILIES}"
                )
        if len(set(self.families)) != len(self.families):
            problems.append(f"duplicate families: {self.families}")
        if self.seed is not None and self.seed < 0:
            problems.append(f"seed must be >= 0: {self.seed}")
        return problems

    def assert_valid(self) -> "SynthSpec":
        problems = self.validate()
        if problems:
            raise SynthSpecError(problems)
        return self

    # -- identity ---------------------------------------------------------------

    def canonical(self) -> dict:
        """Deterministic plain-JSON form (the digest input)."""
        return {
            "sources": self.sources,
            "depth": self.depth,
            "fan_out": self.fan_out,
            "transform_mix": self.transform_mix,
            "update_ratio": self.update_ratio,
            "scale": self.scale,
            "noise": self.noise,
            "rounds": self.rounds,
            "messages": self.messages,
            "families": list(self.families),
            "seed": self.seed,
        }

    def digest(self) -> str:
        """Stable content hash over the canonical knob values.

        Two specs share a digest iff every knob (including the resolved
        seed) matches — the determinism contract's *input* identity.
        """
        payload = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def resolve(self, run_seed: int) -> "SynthSpec":
        """Fill the inherited seed in; no-op when one was given."""
        if self.seed is not None:
            return self
        return replace(self, seed=run_seed)

    # -- the knob-string form ---------------------------------------------------

    def to_string(self) -> str:
        """Compact knob string listing the non-default knobs.

        Round-trips through :meth:`parse`:
        ``SynthSpec.parse(spec.to_string()) == spec``.
        """
        defaults = SynthSpec()
        parts: list[str] = []
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if value == getattr(defaults, spec_field.name):
                continue
            if spec_field.name == "families":
                parts.append("families=" + "+".join(value))
            elif isinstance(value, float):
                parts.append(f"{spec_field.name}={value:g}")
            else:
                parts.append(f"{spec_field.name}={value}")
        return ",".join(parts)

    @classmethod
    def parse(cls, text: str) -> "SynthSpec":
        """Parse a knob string; raises :class:`SynthSpecError` listing
        *every* problem (unknown knobs, uncoercible values, range
        violations) rather than stopping at the first."""
        values, problems = _parse_pairs(text)
        if problems:
            raise SynthSpecError(problems)
        spec = cls(**values)
        return spec.assert_valid()


def knob_problems(text: str) -> list[str]:
    """Every problem with a knob string, without raising (serve boundary)."""
    values, problems = _parse_pairs(text)
    if problems:
        return problems
    return SynthSpec(**values).validate()


_INT_KNOBS = {"sources", "depth", "fan_out", "rounds", "messages", "seed"}
_FLOAT_KNOBS = {"update_ratio", "scale", "noise"}


def _parse_pairs(text: str) -> tuple[dict, list[str]]:
    values: dict = {}
    problems: list[str] = []
    for raw in filter(None, (p.strip() for p in text.split(","))):
        key, sep, value = raw.partition("=")
        key = key.strip()
        if not sep:
            problems.append(f"knob {raw!r} is not a key=value pair")
            continue
        name = _ALIASES.get(key)
        if name is None:
            problems.append(
                f"unknown knob {key!r}; choose from "
                + ", ".join(sorted(set(_ALIASES.values())))
            )
            continue
        if name in values:
            problems.append(f"knob {name!r} given more than once")
            continue
        value = value.strip()
        if name == "families":
            names = tuple(f for f in value.split("+") if f)
            # Canonical order regardless of how the user listed them.
            ordered = tuple(f for f in FAMILIES if f in names)
            extras = tuple(f for f in names if f not in FAMILIES)
            values[name] = ordered + extras
        elif name == "transform_mix":
            values[name] = value
        elif name in _INT_KNOBS:
            try:
                values[name] = int(value)
            except ValueError:
                problems.append(f"knob {name}: not an integer: {value!r}")
        elif name in _FLOAT_KNOBS:
            try:
                values[name] = float(value)
            except ValueError:
                problems.append(f"knob {name}: not a number: {value!r}")
    return values, problems
