"""Exception hierarchy for the DIPBench reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch problems at the granularity they care about: a benchmark driver
catches ``ReproError``, a process engine distinguishes ``ValidationError``
(expected, routed to failed-data destinations, see process type P10) from
``EngineError`` (a bug or misconfiguration).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------- db


class DatabaseError(ReproError):
    """Base class for relational-engine errors."""


class SchemaError(DatabaseError):
    """A table/column definition is invalid or referenced but missing."""


class IntegrityError(DatabaseError):
    """A constraint (primary key, not-null, foreign key) was violated."""


class QueryError(DatabaseError):
    """A query referenced unknown tables/columns or was ill-typed."""


class ProcedureError(DatabaseError):
    """A stored procedure failed or does not exist."""


# ------------------------------------------------------------------------- xml


class XmlError(ReproError):
    """Base class for XML-kit errors."""


class XmlParseError(XmlError):
    """The input text is not well-formed XML (for our subset)."""


class XsdValidationError(XmlError):
    """A document does not conform to its XSD schema.

    Carries a list of human-readable violation messages in ``violations``.
    """

    def __init__(self, message: str, violations: list[str] | None = None):
        super().__init__(message)
        self.violations: list[str] = violations or []


class StxError(XmlError):
    """An STX stylesheet is invalid or failed during transformation."""


class XPathError(XmlError):
    """An XPath expression is outside the supported subset or ill-formed."""


# -------------------------------------------------------------------- services


class ServiceError(ReproError):
    """Base class for the simulated network / web-service layer."""


class EndpointNotFound(ServiceError):
    """No endpoint is registered under the requested service name."""


class OperationNotSupported(ServiceError):
    """The endpoint exists but does not expose the requested operation."""


class NetworkError(ServiceError):
    """A simulated transport failure (used by failure-injection tests)."""


class EndpointUnavailableError(ServiceError):
    """The endpoint exists but is offline (injected outage)."""


# -------------------------------------------------------------------- resilience


class ResilienceError(ReproError):
    """Base class for the fault-injection / resilience layer."""


class FaultSpecError(ResilienceError):
    """A fault spec is malformed or references unknown targets."""


class TransientEngineFault(ResilienceError):
    """An injected transient engine failure (recoverable by retrying)."""


class CircuitOpenError(ResilienceError):
    """A call was rejected because the endpoint's circuit breaker is open."""


class AttemptTimeout(ResilienceError):
    """One execution attempt exceeded the policy's virtual-time budget."""


# --------------------------------------------------------------------- storage


class StorageError(ReproError):
    """Base class for the durability layer (WAL / snapshots / recovery)."""


class WalError(StorageError):
    """The write-ahead log was used inconsistently (bad LSN, no commit)."""


class RecoveryError(StorageError):
    """Crash recovery could not restore a consistent state."""


class EngineCrashed(ReproError):
    """An injected ``crash`` fault hard-killed the engine.

    Deliberately *not* a :class:`ResilienceError`: a crash is not an
    instance failure the retry policy may absorb — it must propagate to
    the benchmark client, which performs durable recovery and resumes
    the schedule.  ``pristine_message`` carries an unexecuted copy of
    the in-flight inbound message (commit-point crashes only) so the
    re-dispatched instance sees exactly the original input.  ``at`` is
    the virtual time (engine units) the crash struck — the zero point of
    a cluster failover's RTO clock.
    """

    def __init__(self, message: str, pristine_message=None, at: float = 0.0):
        super().__init__(message)
        self.pristine_message = pristine_message
        self.at = at


class ClusterError(StorageError):
    """The multi-host cluster layer hit an inconsistent state
    (replication hole, no electable follower, bad configuration)."""


# ------------------------------------------------------------------------- mtm


class MtmError(ReproError):
    """Base class for process-model errors."""


class ProcessDefinitionError(MtmError):
    """A process graph is statically invalid (dangling edges, bad config)."""


class ProcessRuntimeError(MtmError):
    """An operator failed while a process instance was executing."""


class ValidationError(MtmError):
    """A VALIDATE operator rejected a message.

    This is an *expected* outcome for error-prone sources (San Diego, P10):
    engines route the offending data to failed-data destinations instead of
    aborting the process instance.
    """

    def __init__(self, message: str, violations: list[str] | None = None):
        super().__init__(message)
        self.violations: list[str] = violations or []


# ---------------------------------------------------------------------- engine


class EngineError(ReproError):
    """Base class for integration-engine errors."""


class DeploymentError(EngineError):
    """A process type could not be deployed on the engine."""


# --------------------------------------------------------------------- serving


class ServeError(ReproError):
    """Base class for the benchmark-as-a-service front-end."""


class TranslationError(ServeError):
    """An external request does not conform to a supported contract.

    Raised at the API boundary by the versioned message translators;
    maps to HTTP 400.  ``problems`` lists every violation found, so a
    client can fix its request in one round trip.
    """

    def __init__(self, message: str, problems: list[str] | None = None):
        super().__init__(message)
        self.problems: list[str] = problems or []


class AdmissionRejected(ServeError):
    """The server refused to enqueue a session (backpressure).

    ``reason`` is a stable machine-readable class (``rate-limited``,
    ``queue-full``, ``tenant-quota``, ``draining``); ``retry_after`` is
    the suggested wait in seconds (HTTP ``Retry-After``).
    """

    def __init__(self, message: str, reason: str, retry_after: float = 1.0):
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after


class UnknownTenant(ServeError):
    """The request named a tenant the server has no policy for."""


class SessionNotFound(ServeError):
    """No session with the requested id is visible to the tenant."""


# ------------------------------------------------------------------- benchmark


class BenchmarkError(ReproError):
    """Base class for toolsuite errors (initializer / client / monitor)."""


class VerificationError(BenchmarkError):
    """Phase *post* found functionally incorrect integrated data."""


class ScaleFactorError(BenchmarkError):
    """A scale factor is outside its valid domain."""
