"""repro.observability: span tracing, run-wide metrics, exporters.

The benchmark's Monitor (Section VI) only sees finished instance
records; this package makes the *inside* of a run visible — operator
execution, DB/network calls, queue waits — as hierarchical spans on the
virtual timeline plus a shared metrics registry, with deterministic
exporters (JSONL spans, Chrome ``trace_event`` JSON for Perfetto, and
Prometheus text).

Quick start::

    from repro.observability import Observability

    obs = Observability()
    client = BenchmarkClient(scenario, engine, observability=obs)
    client.run()
    obs.write_chrome_trace("trace.json")   # open in ui.perfetto.dev
    print(obs.prometheus())
"""

from repro.observability.context import DISABLED, Observability
from repro.observability.export import (
    export_chrome_trace,
    export_prometheus,
    export_spans_jsonl,
)
from repro.observability.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    ObservabilityError,
    PAYLOAD_BUCKETS,
    QUEUE_WAIT_BUCKETS,
)
from repro.observability.profile import (
    ExecutionProfile,
    NetworkObservation,
    OperatorObservation,
)
from repro.observability.tracer import (
    NullSpan,
    NullTracer,
    Span,
    STATUS_ERROR,
    STATUS_OK,
    Tracer,
)

__all__ = [
    "DISABLED",
    "DEFAULT_BUCKETS",
    "Counter",
    "ExecutionProfile",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NetworkObservation",
    "NullMetricsRegistry",
    "NullSpan",
    "NullTracer",
    "Observability",
    "ObservabilityError",
    "OperatorObservation",
    "PAYLOAD_BUCKETS",
    "QUEUE_WAIT_BUCKETS",
    "STATUS_ERROR",
    "STATUS_OK",
    "Span",
    "Tracer",
    "export_chrome_trace",
    "export_prometheus",
    "export_spans_jsonl",
]
