"""Exporters: JSONL span log, Chrome trace_event JSON, Prometheus text.

All three are deterministic under virtual time — no wall-clock values,
stable ordering — so exports from identical seeded runs are
byte-identical and diffable.

* ``export_spans_jsonl`` — one JSON object per finished span, in
  (start, span_id) order.
* ``export_chrome_trace`` — the Trace Event Format (complete ``"X"``
  events), loadable in ``chrome://tracing`` and https://ui.perfetto.dev.
  Virtual tu are mapped to microseconds at ``TU_TO_US`` per tu so one tu
  displays as one millisecond.
* ``export_prometheus`` — the text exposition format for a
  :class:`~repro.observability.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.observability.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.observability.tracer import Span, Tracer

#: Chrome trace timestamps are microseconds; one virtual tu renders as
#: one millisecond, keeping sub-tu operator spans visible.
TU_TO_US = 1000.0

#: Stable Chrome-trace thread ids per benchmark stream.
_STREAM_TIDS = {"A": 1, "B": 2, "C": 3, "D": 4}
_DEFAULT_TID = 0
_SCHEDULE_TID = 5  # run/period/stream scaffolding without a stream


def _finished(spans: Iterable[Span]) -> list[Span]:
    return sorted(
        (s for s in spans if s.finished),
        key=lambda s: (s.start_time, s.span_id),
    )


def export_spans_jsonl(source: Tracer | Sequence[Span]) -> str:
    """One finished span per line as compact JSON."""
    spans = source.spans if isinstance(source, Tracer) else source
    lines = [
        json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":"))
        for span in _finished(spans)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def _trace_tid(span: Span, by_id: dict[int, Span]) -> int:
    """Thread id: the owning stream's lane, walking up to the root."""
    node: Span | None = span
    while node is not None:
        stream = node.attributes.get("stream")
        if stream in _STREAM_TIDS:
            return _STREAM_TIDS[stream]
        if node.kind == "stream" and node.name in _STREAM_TIDS:
            return _STREAM_TIDS[node.name]
        node = by_id.get(node.parent_id) if node.parent_id else None
    if span.kind in ("run", "period", "init"):
        return _SCHEDULE_TID
    return _DEFAULT_TID


def export_chrome_trace(source: Tracer | Sequence[Span]) -> str:
    """Trace Event Format JSON for chrome://tracing / Perfetto."""
    spans = source.spans if isinstance(source, Tracer) else source
    finished = _finished(spans)
    by_id = {s.span_id: s for s in finished}

    events: list[dict] = []
    seen_tids: set[int] = set()
    for span in finished:
        tid = _trace_tid(span, by_id)
        seen_tids.add(tid)
        args: dict[str, object] = dict(span.attributes)
        args["status"] = span.status
        if span.error:
            args["error"] = span.error
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": span.start_time * TU_TO_US,
                "dur": span.duration * TU_TO_US,
                "pid": 1,
                "tid": tid,
                "args": args,
            }
        )
    events.sort(key=lambda e: (e["ts"], e["tid"]))

    names = {
        _DEFAULT_TID: "engine",
        _SCHEDULE_TID: "benchmark",
        **{tid: f"stream {s}" for s, tid in _STREAM_TIDS.items()},
    }
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": names.get(tid, f"lane {tid}")},
        }
        for tid in sorted(seen_tids)
    ]
    document = {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "virtual",
            "time_unit": "tu",
            "tu_to_us": TU_TO_US,
        },
    }
    return json.dumps(document, sort_keys=True, indent=1)


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _label_str(labels: Sequence[tuple[str, str]], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def export_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition of every registered instrument."""
    lines: list[str] = []
    emitted_headers: set[str] = set()
    for instrument in registry.collect():
        if instrument.name not in emitted_headers:
            emitted_headers.add(instrument.name)
            if instrument.help:
                lines.append(f"# HELP {instrument.name} {instrument.help}")
            lines.append(
                f"# TYPE {instrument.name} {instrument.instrument_type}"
            )
        if isinstance(instrument, Histogram):
            cumulative = instrument.cumulative_counts()
            for bound, count in zip(instrument.buckets, cumulative):
                le = _label_str(instrument.labels, f'le="{_format_value(bound)}"')
                lines.append(f"{instrument.name}_bucket{le} {count}")
            le_inf = _label_str(instrument.labels, 'le="+Inf"')
            lines.append(f"{instrument.name}_bucket{le_inf} {cumulative[-1]}")
            label_str = _label_str(instrument.labels)
            lines.append(
                f"{instrument.name}_sum{label_str} "
                f"{_format_value(instrument.sum)}"
            )
            lines.append(f"{instrument.name}_count{label_str} {instrument.count}")
        elif isinstance(instrument, (Counter, Gauge)):
            label_str = _label_str(instrument.labels)
            lines.append(
                f"{instrument.name}{label_str} {_format_value(instrument.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")
