"""Span-based tracing under virtual time.

A span is one named interval on the benchmark's virtual timeline
(run → period → stream → instance → operator / network transfer).  All
times are *virtual* engine units, never wall clock, so traces are
bit-for-bit reproducible across runs with the same seed.

Because each benchmark period restarts its virtual clock at zero, the
tracer carries a ``time_offset`` the benchmark client advances between
periods; spans record offset-adjusted times, giving one globally
monotone timeline that the Chrome-trace exporter can lay out directly.

The default :class:`NullTracer` makes every call a no-op returning one
shared :class:`NullSpan`, so instrumented hot paths cost nothing when
tracing is off.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Iterator, Mapping

#: Span status values (mirrors InstanceRecord.status).
STATUS_OK = "ok"
STATUS_ERROR = "error"


class Span:
    """One interval on the virtual timeline.

    ``end_time`` is ``None`` while the span is open.  Times already
    include the tracer's ``time_offset`` at creation/finish time.
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "kind",
        "start_time",
        "end_time",
        "status",
        "error",
        "attributes",
        "_tracer",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        kind: str,
        start_time: float,
        tracer: "Tracer | None" = None,
        attributes: Mapping[str, object] | None = None,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.start_time = start_time
        self.end_time: float | None = None
        self.status = STATUS_OK
        self.error = ""
        self.attributes: dict[str, object] = dict(attributes or {})
        self._tracer = tracer

    @property
    def finished(self) -> bool:
        return self.end_time is not None

    @property
    def duration(self) -> float:
        if self.end_time is None:
            return 0.0
        return self.end_time - self.start_time

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def end(self, at: float, status: str = STATUS_OK, error: str = "") -> None:
        """Finish the span at virtual time ``at`` (tracer offset applies)."""
        if self._tracer is not None:
            self._tracer._finish(self, at, status, error)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (the JSONL exporter's row)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start_time,
            "end": self.end_time,
            "status": self.status,
            "error": self.error,
            "attributes": self.attributes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, kind={self.kind!r}, "
            f"[{self.start_time}, {self.end_time}], {self.status})"
        )


class Tracer:
    """Produces hierarchical spans; keeps an explicit parent stack.

    ``begin`` opens a span and (by default) makes it the current parent;
    ``record`` adds an already-finished child without touching the stack;
    ``use_parent`` temporarily reparents — the benchmark client uses it
    to attach engine-emitted instance spans to the right stream span.
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._ids = itertools.count(1)
        self._stack: list[Span] = []
        #: Added to every recorded time: the client advances this between
        #: benchmark periods so per-period virtual clocks (which restart
        #: at zero) line up on one global timeline.
        self.time_offset = 0.0

    # -- span creation -------------------------------------------------------

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def begin(
        self,
        name: str,
        start: float,
        kind: str = "span",
        parent: Span | None = None,
        attributes: Mapping[str, object] | None = None,
        activate: bool = True,
    ) -> Span:
        """Open a span starting at virtual time ``start``."""
        if parent is None:
            parent = self.current
        span = Span(
            next(self._ids),
            parent.span_id if parent is not None else None,
            name,
            kind,
            start + self.time_offset,
            tracer=self,
            attributes=attributes,
        )
        self.spans.append(span)
        if activate:
            self._stack.append(span)
        return span

    def record(
        self,
        name: str,
        start: float,
        end: float,
        kind: str = "span",
        parent: Span | None = None,
        attributes: Mapping[str, object] | None = None,
        status: str = STATUS_OK,
        error: str = "",
    ) -> Span:
        """Add a complete span without making it current."""
        span = self.begin(
            name, start, kind=kind, parent=parent,
            attributes=attributes, activate=False,
        )
        self._finish(span, end, status, error)
        return span

    def _finish(self, span: Span, at: float, status: str, error: str) -> None:
        span.end_time = at + self.time_offset
        if span.end_time < span.start_time:
            # Clamp pathological inputs instead of corrupting the timeline.
            span.end_time = span.start_time
        span.status = status
        span.error = error
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            self._stack.remove(span)

    @contextmanager
    def use_parent(self, span: Span | None) -> Iterator[None]:
        """Temporarily make ``span`` the current parent."""
        if span is None:
            yield
            return
        self._stack.append(span)
        try:
            yield
        finally:
            if self._stack and self._stack[-1] is span:
                self._stack.pop()
            elif span in self._stack:  # pragma: no cover - defensive
                self._stack.remove(span)

    # -- shard merging ---------------------------------------------------------

    def absorb(
        self,
        span_rows: "list[dict[str, object]]",
        time_offset: float = 0.0,
    ) -> list[Span]:
        """Rebuild spans from another tracer's exported rows.

        ``span_rows`` is a list of :meth:`Span.to_dict` rows (itself
        picklable/JSON-safe, which is how worker processes ship their
        trace shards back to the sweep parent).  Ids are re-assigned from
        this tracer's counter with parent links remapped, and every time
        is shifted by ``time_offset`` so shards can be laid side by side
        on one timeline.  Rows must list parents before children (the
        :meth:`finished_spans` export order guarantees that).
        """
        id_map: dict[object, int] = {}
        absorbed: list[Span] = []
        for row in span_rows:
            span = Span(
                next(self._ids),
                id_map.get(row["parent_id"]),
                str(row["name"]),
                str(row["kind"]),
                float(row["start"]) + time_offset,  # type: ignore[arg-type]
                tracer=None,
                attributes=row.get("attributes") or {},  # type: ignore[arg-type]
            )
            if row.get("end") is not None:
                span.end_time = float(row["end"]) + time_offset  # type: ignore[arg-type]
            span.status = str(row.get("status", STATUS_OK))
            span.error = str(row.get("error", ""))
            id_map[row["span_id"]] = span.span_id
            self.spans.append(span)
            absorbed.append(span)
        return absorbed

    # -- queries -------------------------------------------------------------

    def finished_spans(self) -> list[Span]:
        """Finished spans sorted by (start, id) — the export order."""
        return sorted(
            (s for s in self.spans if s.finished),
            key=lambda s: (s.start_time, s.span_id),
        )

    def spans_of_kind(self, kind: str) -> list[Span]:
        return [s for s in self.spans if s.kind == kind]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def clear(self) -> None:
        self.spans.clear()
        self._stack.clear()
        self.time_offset = 0.0


class NullSpan(Span):
    """The shared do-nothing span the NullTracer hands out."""

    def __init__(self) -> None:
        super().__init__(0, None, "", "null", 0.0, tracer=None)

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def end(self, at: float, status: str = STATUS_OK, error: str = "") -> None:
        pass


_NULL_SPAN = NullSpan()


class NullTracer(Tracer):
    """Zero-overhead tracer: records nothing, allocates nothing per call."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    @property
    def current(self) -> Span | None:
        return None

    def begin(self, name, start, kind="span", parent=None, attributes=None,
              activate=True):  # type: ignore[override]
        return _NULL_SPAN

    def record(self, name, start, end, kind="span", parent=None,
               attributes=None, status=STATUS_OK, error=""):  # type: ignore[override]
        return _NULL_SPAN

    @contextmanager
    def use_parent(self, span):  # type: ignore[override]
        yield

    def absorb(self, span_rows, time_offset=0.0):  # type: ignore[override]
        return []
